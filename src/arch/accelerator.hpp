// Accelerator specification: the user-defined inputs of the paper's flow
// (Figure 4) — operations per cycle, data width, GLB size, and off-chip
// memory bandwidth — plus the PE-array geometry the baseline simulator
// needs.  Section 4 defaults: 16x16 PEs, 512 OPs/cycle (a MAC counts as two
// operations and takes two cycles, so 256 MACs complete per cycle), 8-bit
// data, 16 bytes/cycle of DRAM bandwidth, GLB in {64..1024} kB.
#pragma once

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/units.hpp"

namespace rainbow::arch {

struct AcceleratorSpec {
  int pe_rows = 16;
  int pe_cols = 16;
  int ops_per_cycle = 512;          ///< arithmetic operations retired per cycle
  int data_width_bits = 8;          ///< element width
  count_t glb_bytes = 256 * 1024;   ///< unified scratchpad capacity
  double dram_bytes_per_cycle = 16; ///< off-chip bandwidth
  /// On-chip (scratchpad -> PE) bandwidth in bytes/cycle; 0 means
  /// unlimited — the paper's Section 4 assumption ("on-chip memory
  /// bandwidth is assumed to be enough to match the demands of the PEs").
  /// Set a finite value to probe when that assumption holds (see
  /// bench_ablation_onchip_bw).
  double sram_bytes_per_cycle = 0;

  /// MACs completed per cycle: a MAC is two operations over two cycles.
  [[nodiscard]] double macs_per_cycle() const {
    return static_cast<double>(ops_per_cycle) / 2.0;
  }

  [[nodiscard]] int pe_count() const { return pe_rows * pe_cols; }

  [[nodiscard]] count_t element_bytes() const {
    return static_cast<count_t>(data_width_bits) / 8;
  }

  /// GLB capacity expressed in elements of the configured width.
  [[nodiscard]] count_t glb_elems() const {
    return glb_bytes / element_bytes();
  }

  /// Off-chip bandwidth in elements per cycle.
  [[nodiscard]] double elements_per_cycle() const {
    return dram_bytes_per_cycle / static_cast<double>(element_bytes());
  }

  [[nodiscard]] bool sram_bandwidth_limited() const {
    return sram_bytes_per_cycle > 0.0;
  }

  /// Effective MAC throughput once the scratchpad must feed two operands
  /// per MAC: min(arithmetic rate, sram bandwidth / 2 operands).  Equals
  /// macs_per_cycle() under the paper's unlimited-bandwidth assumption.
  [[nodiscard]] double effective_macs_per_cycle() const {
    if (!sram_bandwidth_limited()) {
      return macs_per_cycle();
    }
    const double operand_rate =
        sram_bytes_per_cycle / (2.0 * static_cast<double>(element_bytes()));
    return std::min(macs_per_cycle(), operand_rate);
  }

  /// Throws std::invalid_argument if any field is non-positive or the data
  /// width is not a whole number of bytes.
  void validate() const;
};

/// The Section 4 configuration with a chosen GLB size.
[[nodiscard]] AcceleratorSpec paper_spec(count_t glb_bytes);

/// The five GLB sizes swept in the evaluation: 64..1024 kB.
[[nodiscard]] std::vector<count_t> paper_glb_sizes();

}  // namespace rainbow::arch
