#include "arch/spec_io.hpp"

#include <charconv>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/line_reader.hpp"

namespace rainbow::arch {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("spec parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

long long parse_ll(const std::string& field, std::size_t line_no,
                   const std::string& key) {
  long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc() || ptr != field.data() + field.size()) {
    fail(line_no, "bad integer for " + key + " '" + field + "'");
  }
  return value;
}

double parse_double(const std::string& field, std::size_t line_no,
                    const std::string& key) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(field, &consumed);
    if (consumed != field.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    fail(line_no, "bad number for " + key + " '" + field + "'");
  }
}

}  // namespace

NamedSpec parse_spec(const std::string& text) {
  NamedSpec named;
  named.spec = paper_spec(256 * 1024);  // field defaults: the Section 4 spec
  util::LineReader reader(text);
  bool saw_header = false;
  std::set<std::string> seen;
  std::optional<util::TextLine> line;
  while (true) {
    try {
      line = reader.next();
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string("spec parse error at ") + e.what());
    }
    if (!line) {
      break;
    }
    const std::size_t line_no = line->number;
    const auto fields = util::split_csv_line(line->text);
    if (!saw_header) {
      if (fields.size() != 2 || fields[0] != "spec" || fields[1].empty()) {
        fail(line_no, "expected 'spec, <name>' header");
      }
      named.name = fields[1];
      saw_header = true;
      continue;
    }
    if (fields.size() != 2) {
      fail(line_no, "expected '<key>, <value>'");
    }
    const std::string& key = fields[0];
    const std::string& value = fields[1];
    if (!seen.insert(key).second) {
      fail(line_no, "duplicate key '" + key + "'");
    }
    AcceleratorSpec& spec = named.spec;
    if (key == "pe_rows") {
      spec.pe_rows = static_cast<int>(parse_ll(value, line_no, key));
    } else if (key == "pe_cols") {
      spec.pe_cols = static_cast<int>(parse_ll(value, line_no, key));
    } else if (key == "ops_per_cycle") {
      spec.ops_per_cycle = static_cast<int>(parse_ll(value, line_no, key));
    } else if (key == "data_width_bits") {
      spec.data_width_bits = static_cast<int>(parse_ll(value, line_no, key));
    } else if (key == "glb_bytes") {
      const long long bytes = parse_ll(value, line_no, key);
      if (bytes <= 0) {
        fail(line_no, "glb_bytes must be positive");
      }
      spec.glb_bytes = static_cast<count_t>(bytes);
    } else if (key == "dram_bytes_per_cycle") {
      spec.dram_bytes_per_cycle = parse_double(value, line_no, key);
    } else if (key == "sram_bytes_per_cycle") {
      spec.sram_bytes_per_cycle = parse_double(value, line_no, key);
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_header) {
    throw std::runtime_error("spec parse error: missing 'spec' header");
  }
  try {
    named.spec.validate();
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string("spec parse error: ") + e.what());
  }
  return named;
}

std::string serialize_spec(const NamedSpec& named) {
  std::ostringstream out;
  out << "spec, " << named.name << '\n'
      << "pe_rows, " << named.spec.pe_rows << '\n'
      << "pe_cols, " << named.spec.pe_cols << '\n'
      << "ops_per_cycle, " << named.spec.ops_per_cycle << '\n'
      << "data_width_bits, " << named.spec.data_width_bits << '\n'
      << "glb_bytes, " << named.spec.glb_bytes << '\n'
      << "dram_bytes_per_cycle, " << named.spec.dram_bytes_per_cycle << '\n'
      << "sram_bytes_per_cycle, " << named.spec.sram_bytes_per_cycle << '\n';
  return out.str();
}

NamedSpec load_spec(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_spec: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

void save_spec(const NamedSpec& named, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_spec: cannot create " + path.string());
  }
  out << serialize_spec(named);
}

}  // namespace rainbow::arch
