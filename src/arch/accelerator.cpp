#include "arch/accelerator.hpp"

namespace rainbow::arch {

void AcceleratorSpec::validate() const {
  if (pe_rows <= 0 || pe_cols <= 0) {
    throw std::invalid_argument("AcceleratorSpec: PE array dims must be positive");
  }
  if (ops_per_cycle <= 0) {
    throw std::invalid_argument("AcceleratorSpec: ops_per_cycle must be positive");
  }
  if (data_width_bits <= 0 || data_width_bits % 8 != 0) {
    throw std::invalid_argument(
        "AcceleratorSpec: data_width_bits must be a positive multiple of 8");
  }
  if (glb_bytes == 0) {
    throw std::invalid_argument("AcceleratorSpec: glb_bytes must be positive");
  }
  if (dram_bytes_per_cycle <= 0.0) {
    throw std::invalid_argument(
        "AcceleratorSpec: dram_bytes_per_cycle must be positive");
  }
}

AcceleratorSpec paper_spec(count_t glb_bytes) {
  AcceleratorSpec spec;
  spec.glb_bytes = glb_bytes;
  spec.validate();
  return spec;
}

std::vector<count_t> paper_glb_sizes() {
  using util::kib;
  return {kib(64), kib(128), kib(256), kib(512), kib(1024)};
}

}  // namespace rainbow::arch
