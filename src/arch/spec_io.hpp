// Plain-text format for accelerator specifications, the spec counterpart
// of the model text format: rainbowd accepts spec uploads so a deployment
// can register the machines it plans for once and reference them by name.
//
//   spec, edge-64
//   pe_rows, 16
//   pe_cols, 16
//   ops_per_cycle, 512
//   data_width_bits, 8
//   glb_bytes, 65536
//   dram_bytes_per_cycle, 16
//   sram_bytes_per_cycle, 0
//
// Every field line is optional (omitted fields keep the Section 4 paper
// defaults); unknown or repeated keys are errors, and the parsed spec must
// pass AcceleratorSpec::validate().  Input is read through the shared
// wire-hardened line reader (CRLF, comments, control-byte rejection).
#pragma once

#include <filesystem>
#include <string>

#include "arch/accelerator.hpp"

namespace rainbow::arch {

/// A spec plus the name it is registered under.
struct NamedSpec {
  std::string name;
  AcceleratorSpec spec;
};

/// Parses a spec from text.  Throws std::runtime_error with a line number
/// on malformed input or an invalid field combination.
[[nodiscard]] NamedSpec parse_spec(const std::string& text);

/// Serializes a spec into the text format (round-trips with parse_spec).
[[nodiscard]] std::string serialize_spec(const NamedSpec& named);

/// File convenience wrappers.
[[nodiscard]] NamedSpec load_spec(const std::filesystem::path& path);
void save_spec(const NamedSpec& named, const std::filesystem::path& path);

}  // namespace rainbow::arch
