// GEMM driver for the PE array: tiles C = A x B into rows x cols output
// folds, feeds each fold's operand streams with the canonical skew, and
// reports the exact cycle count — which must land on the closed-form
// T + rows + cols - 2 per fold that the scalesim timing model uses.
#pragma once

#include <vector>

#include "systolic/pe_array.hpp"

namespace rainbow::systolic {

/// Row-major integer matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, 0) {
    if (rows <= 0 || cols <= 0) {
      throw std::invalid_argument("Matrix: non-positive dims");
    }
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] value_t& at(int r, int c) {
    check(r, c);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  [[nodiscard]] value_t at(int r, int c) const {
    check(r, c);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  /// Raw row-major storage, for the blocked kernel.
  [[nodiscard]] const value_t* data() const { return data_.data(); }
  [[nodiscard]] value_t* data() { return data_.data(); }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  void check(int r, int c) const {
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
      throw std::out_of_range("Matrix: index out of range");
    }
  }
  int rows_ = 0, cols_ = 0;
  std::vector<value_t> data_;
};

/// Plain triple-loop product, the golden reference for the array.
[[nodiscard]] Matrix naive_matmul(const Matrix& a, const Matrix& b);

/// Cache-blocked product (ref::gemm_blocked under the hood): bit-exact
/// with naive_matmul, >= 5x faster single-thread (bench_execbackend).
/// `threads` splits output rows; 1 = serial, 0 = hardware concurrency.
[[nodiscard]] Matrix blocked_matmul(const Matrix& a, const Matrix& b,
                                    int threads = 1);

struct GemmRun {
  Matrix product;
  count_t folds = 0;
  count_t cycles = 0;  ///< summed over folds, fill and drain included
};

/// Computes A x B on a rows x cols PE array, fold by fold.  Folds are
/// independent (disjoint output tiles, per-fold cycle counts), so
/// `threads` > 1 or 0 simulates them concurrently on a private pool with
/// results identical to the serial walk.  Throws std::invalid_argument on
/// dimension mismatch.
[[nodiscard]] GemmRun systolic_matmul(const Matrix& a, const Matrix& b,
                                      int pe_rows, int pe_cols,
                                      int threads = 1);

}  // namespace rainbow::systolic
