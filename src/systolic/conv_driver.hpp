// Convolution on the functional array: im2col lowering (the GEMM view the
// scalesim fold model assumes), execution on the register-level PE array,
// and reshape back to an ofmap.  Ties the whole stack together: the result
// must equal ref::reference_forward and the cycle count must equal
// scalesim::compute_cycles.
#pragma once

#include "arch/accelerator.hpp"
#include "ref/exec_backend.hpp"
#include "ref/reference.hpp"
#include "systolic/gemm.hpp"

namespace rainbow::systolic {

/// The im2col operand matrix: one row per output pixel, one column per
/// (channel, ky, kx) filter tap; zero padding materialised.
[[nodiscard]] Matrix im2col(const model::Layer& layer, const ref::Tensor3& ifmap,
                            int channel_first = 0, int channel_count = -1);

/// Filter matrix: one column per filter, one row per (channel, ky, kx).
[[nodiscard]] Matrix filter_matrix(const model::Layer& layer,
                                   const ref::Tensor4& filters,
                                   int channel_first = 0,
                                   int channel_count = -1);

struct ConvRun {
  ref::Tensor3 ofmap;
  count_t folds = 0;
  count_t cycles = 0;
};

/// Runs `layer` on a pe_rows x pe_cols output-stationary array (depthwise
/// layers run channel by channel, one column active — the utilization
/// cliff the timing model charges).
///
/// `backend` selects how the numerics are produced: kNaive steps the PE
/// array register by register (the oracle); kBlocked computes the same
/// ofmap through ref::blocked_forward and charges folds/cycles with the
/// closed form `reduction + pe_rows + pe_cols - 2` per fold — the count
/// the stepped array provably lands on, so both backends return
/// bit-identical ConvRuns.  `threads` parallelises fold simulation
/// (naive) or the blocked kernel; results are thread-count independent.
[[nodiscard]] ConvRun run_conv(
    const model::Layer& layer, const ref::LayerOperands& operands,
    const arch::AcceleratorSpec& spec,
    ref::ExecBackend backend = ref::default_exec_backend(), int threads = 1);

}  // namespace rainbow::systolic
