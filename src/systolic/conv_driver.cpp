#include "systolic/conv_driver.hpp"

#include <stdexcept>

#include "ref/blocked_kernel.hpp"

namespace rainbow::systolic {

Matrix im2col(const model::Layer& layer, const ref::Tensor3& ifmap,
              int channel_first, int channel_count) {
  if (channel_count < 0) {
    channel_count = layer.channels() - channel_first;
  }
  if (channel_first < 0 || channel_first + channel_count > layer.channels()) {
    throw std::invalid_argument("im2col: channel slice out of range");
  }
  const int m = layer.ofmap_h() * layer.ofmap_w();
  const int k = channel_count * layer.filter_h() * layer.filter_w();
  Matrix a(m, k);
  const int p = layer.padding();
  const int s = layer.stride();
  for (int y = 0; y < layer.ofmap_h(); ++y) {
    for (int x = 0; x < layer.ofmap_w(); ++x) {
      const int row = y * layer.ofmap_w() + x;
      int col = 0;
      for (int c = 0; c < channel_count; ++c) {
        for (int ky = 0; ky < layer.filter_h(); ++ky) {
          for (int kx = 0; kx < layer.filter_w(); ++kx) {
            a.at(row, col++) = ifmap.padded_at(channel_first + c,
                                               y * s + ky - p, x * s + kx - p);
          }
        }
      }
    }
  }
  return a;
}

Matrix filter_matrix(const model::Layer& layer, const ref::Tensor4& filters,
                     int channel_first, int channel_count) {
  const bool dw = layer.is_depthwise();
  if (channel_count < 0) {
    channel_count = dw ? 1 : layer.channels() - channel_first;
  }
  const int k = channel_count * layer.filter_h() * layer.filter_w();
  const int n = dw ? 1 : layer.filters();
  (void)channel_first;
  Matrix b(k, n);
  if (dw) {
    throw std::invalid_argument(
        "filter_matrix: use the per-channel path for depthwise layers");
  }
  for (int f = 0; f < n; ++f) {
    int row = 0;
    for (int c = 0; c < channel_count; ++c) {
      for (int ky = 0; ky < layer.filter_h(); ++ky) {
        for (int kx = 0; kx < layer.filter_w(); ++kx) {
          b.at(row++, f) = filters.at(f, channel_first + c, ky, kx);
        }
      }
    }
  }
  return b;
}

namespace {

count_t ceil_div(count_t a, count_t b) { return (a + b - 1) / b; }

// The fold/cycle counts the stepped array arrives at, computed in closed
// form: every fold runs reduction + pe_rows + pe_cols - 2 steps.
void charge_folds(count_t m, count_t n, count_t reduction,
                  const arch::AcceleratorSpec& spec, ConvRun& run) {
  const count_t folds = ceil_div(m, static_cast<count_t>(spec.pe_rows)) *
                        ceil_div(n, static_cast<count_t>(spec.pe_cols));
  run.folds += folds;
  run.cycles += folds * (reduction + spec.pe_rows + spec.pe_cols - 2);
}

}  // namespace

ConvRun run_conv(const model::Layer& layer, const ref::LayerOperands& operands,
                 const arch::AcceleratorSpec& spec, ref::ExecBackend backend,
                 int threads) {
  ref::validate_operands(layer, operands);
  ConvRun run;
  if (backend == ref::ExecBackend::kBlocked) {
    run.ofmap = ref::blocked_forward(layer, operands, threads);
    const count_t m = static_cast<count_t>(layer.ofmap_h()) * layer.ofmap_w();
    const count_t taps =
        static_cast<count_t>(layer.filter_h()) * layer.filter_w();
    if (layer.is_depthwise()) {
      for (int c = 0; c < layer.channels(); ++c) {
        charge_folds(m, 1, taps, spec, run);
      }
    } else {
      charge_folds(m, static_cast<count_t>(layer.filters()),
                   taps * layer.channels(), spec, run);
    }
    return run;
  }
  run.ofmap = ref::Tensor3(layer.ofmap_channels(), layer.ofmap_h(),
                           layer.ofmap_w());
  if (layer.is_depthwise()) {
    // One channel at a time, a single active column.
    for (int c = 0; c < layer.channels(); ++c) {
      const Matrix a = im2col(layer, operands.ifmap, c, 1);
      Matrix b(layer.filter_h() * layer.filter_w(), 1);
      int row = 0;
      for (int ky = 0; ky < layer.filter_h(); ++ky) {
        for (int kx = 0; kx < layer.filter_w(); ++kx) {
          b.at(row++, 0) = operands.filters.at(c, 0, ky, kx);
        }
      }
      const GemmRun gemm =
          systolic_matmul(a, b, spec.pe_rows, spec.pe_cols, threads);
      run.folds += gemm.folds;
      run.cycles += gemm.cycles;
      for (int y = 0; y < layer.ofmap_h(); ++y) {
        for (int x = 0; x < layer.ofmap_w(); ++x) {
          run.ofmap.at(c, y, x) = gemm.product.at(y * layer.ofmap_w() + x, 0);
        }
      }
    }
    return run;
  }
  const Matrix a = im2col(layer, operands.ifmap);
  const Matrix b = filter_matrix(layer, operands.filters);
  const GemmRun gemm =
      systolic_matmul(a, b, spec.pe_rows, spec.pe_cols, threads);
  run.folds = gemm.folds;
  run.cycles = gemm.cycles;
  for (int f = 0; f < layer.filters(); ++f) {
    for (int y = 0; y < layer.ofmap_h(); ++y) {
      for (int x = 0; x < layer.ofmap_w(); ++x) {
        run.ofmap.at(f, y, x) = gemm.product.at(y * layer.ofmap_w() + x, f);
      }
    }
  }
  return run;
}

}  // namespace rainbow::systolic
