// Register-level output-stationary systolic array.  Each PE holds an
// accumulator; operand A values flow east through per-PE registers, B
// values flow south, and every cycle each PE multiplies its two registers
// into its accumulator.  With the standard skewed feeding (row r of A
// delayed r cycles, column c of B delayed c cycles) PE(r,c) sees matched
// operand pairs and accumulates a full dot product in place — the
// dataflow behind the paper's baseline (and this library's fold-timing
// formula, which the tests check cycle-for-cycle against this model).
#pragma once

#include <span>
#include <vector>

#include "ref/tensor.hpp"
#include "util/units.hpp"

namespace rainbow::systolic {

using ref::value_t;

class PEArray {
 public:
  PEArray(int rows, int cols);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] count_t cycles() const { return cycles_; }

  /// Clears accumulators and pipeline registers (start of a fold).
  void reset();

  /// Advances one cycle: `a_in[r]` enters row r from the west, `b_in[c]`
  /// enters column c from the north; values already in flight shift one
  /// PE east/south; then every PE accumulates.  Throws
  /// std::invalid_argument on span size mismatch.
  void step(std::span<const value_t> a_in, std::span<const value_t> b_in);

  /// Accumulator of PE(r, c).
  [[nodiscard]] value_t acc(int r, int c) const;

 private:
  int rows_, cols_;
  count_t cycles_ = 0;
  std::vector<value_t> acc_;    // rows x cols
  std::vector<value_t> a_reg_;  // operand moving east
  std::vector<value_t> b_reg_;  // operand moving south

  [[nodiscard]] std::size_t idx(int r, int c) const {
    return static_cast<std::size_t>(r) * cols_ + c;
  }
};

}  // namespace rainbow::systolic
