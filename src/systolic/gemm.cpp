#include "systolic/gemm.hpp"

#include <algorithm>
#include <stdexcept>

namespace rainbow::systolic {

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("naive_matmul: dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      value_t acc = 0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(k, j);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

GemmRun systolic_matmul(const Matrix& a, const Matrix& b, int pe_rows,
                        int pe_cols) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("systolic_matmul: dimension mismatch");
  }
  const int reduction = a.cols();
  PEArray array(pe_rows, pe_cols);
  GemmRun run;
  run.product = Matrix(a.rows(), b.cols());

  std::vector<value_t> a_in(static_cast<std::size_t>(pe_rows));
  std::vector<value_t> b_in(static_cast<std::size_t>(pe_cols));

  for (int row0 = 0; row0 < a.rows(); row0 += pe_rows) {
    const int active_rows = std::min(pe_rows, a.rows() - row0);
    for (int col0 = 0; col0 < b.cols(); col0 += pe_cols) {
      const int active_cols = std::min(pe_cols, b.cols() - col0);
      array.reset();
      // Skewed feeding: row r's stream is delayed by r cycles, column c's
      // by c, so matched operand pairs meet inside every PE.  The fold
      // completes after reduction + rows + cols - 2 steps.
      const int total_steps = reduction + pe_rows + pe_cols - 2;
      for (int t = 0; t < total_steps; ++t) {
        for (int r = 0; r < pe_rows; ++r) {
          const int k = t - r;
          a_in[static_cast<std::size_t>(r)] =
              (r < active_rows && k >= 0 && k < reduction)
                  ? a.at(row0 + r, k)
                  : 0;
        }
        for (int c = 0; c < pe_cols; ++c) {
          const int k = t - c;
          b_in[static_cast<std::size_t>(c)] =
              (c < active_cols && k >= 0 && k < reduction)
                  ? b.at(k, col0 + c)
                  : 0;
        }
        array.step(a_in, b_in);
      }
      run.cycles += array.cycles();
      ++run.folds;
      for (int r = 0; r < active_rows; ++r) {
        for (int c = 0; c < active_cols; ++c) {
          run.product.at(row0 + r, col0 + c) = array.acc(r, c);
        }
      }
    }
  }
  return run;
}

}  // namespace rainbow::systolic
