#include "systolic/gemm.hpp"

#include <algorithm>
#include <stdexcept>

#include "ref/blocked_kernel.hpp"
#include "util/thread_pool.hpp"

namespace rainbow::systolic {

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("naive_matmul: dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.cols(); ++j) {
      value_t acc = 0;
      for (int k = 0; k < a.cols(); ++k) {
        acc += a.at(i, k) * b.at(k, j);
      }
      c.at(i, j) = acc;
    }
  }
  return c;
}

Matrix blocked_matmul(const Matrix& a, const Matrix& b, int threads) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("blocked_matmul: dimension mismatch");
  }
  Matrix c(a.rows(), b.cols());
  ref::gemm_blocked(a.data(), b.data(), c.data(), a.rows(), b.cols(),
                    a.cols(), threads);
  return c;
}

namespace {

/// Simulates one output fold on a fresh PE array and writes its tile of
/// the product.  Folds touch disjoint tiles, so concurrent calls with
/// distinct (row0, col0) are race-free.
count_t run_fold(const Matrix& a, const Matrix& b, int row0, int col0,
                 int pe_rows, int pe_cols, Matrix& product) {
  const int reduction = a.cols();
  const int active_rows = std::min(pe_rows, a.rows() - row0);
  const int active_cols = std::min(pe_cols, b.cols() - col0);
  PEArray array(pe_rows, pe_cols);
  std::vector<value_t> a_in(static_cast<std::size_t>(pe_rows));
  std::vector<value_t> b_in(static_cast<std::size_t>(pe_cols));
  // Skewed feeding: row r's stream is delayed by r cycles, column c's
  // by c, so matched operand pairs meet inside every PE.  The fold
  // completes after reduction + rows + cols - 2 steps.
  const int total_steps = reduction + pe_rows + pe_cols - 2;
  for (int t = 0; t < total_steps; ++t) {
    for (int r = 0; r < pe_rows; ++r) {
      const int k = t - r;
      a_in[static_cast<std::size_t>(r)] =
          (r < active_rows && k >= 0 && k < reduction) ? a.at(row0 + r, k)
                                                       : 0;
    }
    for (int c = 0; c < pe_cols; ++c) {
      const int k = t - c;
      b_in[static_cast<std::size_t>(c)] =
          (c < active_cols && k >= 0 && k < reduction) ? b.at(k, col0 + c)
                                                       : 0;
    }
    array.step(a_in, b_in);
  }
  for (int r = 0; r < active_rows; ++r) {
    for (int c = 0; c < active_cols; ++c) {
      product.at(row0 + r, col0 + c) = array.acc(r, c);
    }
  }
  return array.cycles();
}

}  // namespace

GemmRun systolic_matmul(const Matrix& a, const Matrix& b, int pe_rows,
                        int pe_cols, int threads) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("systolic_matmul: dimension mismatch");
  }
  GemmRun run;
  run.product = Matrix(a.rows(), b.cols());

  struct Fold {
    int row0 = 0, col0 = 0;
    count_t cycles = 0;
  };
  std::vector<Fold> folds;
  for (int row0 = 0; row0 < a.rows(); row0 += pe_rows) {
    for (int col0 = 0; col0 < b.cols(); col0 += pe_cols) {
      folds.push_back({row0, col0, 0});
    }
  }

  const std::size_t workers =
      threads == 0 ? std::thread::hardware_concurrency()
                   : static_cast<std::size_t>(std::max(threads, 1));
  if (workers <= 1 || folds.size() <= 1) {
    for (Fold& fold : folds) {
      fold.cycles = run_fold(a, b, fold.row0, fold.col0, pe_rows, pe_cols,
                             run.product);
    }
  } else {
    util::parallel_for_each(
        folds,
        [&](Fold& fold) {
          fold.cycles = run_fold(a, b, fold.row0, fold.col0, pe_rows,
                                 pe_cols, run.product);
        },
        std::min(workers, folds.size()));
  }
  // Totals are accumulated in fold order, so the run is bit-identical to
  // the serial walk no matter how many workers ran it.
  for (const Fold& fold : folds) {
    run.cycles += fold.cycles;
    ++run.folds;
  }
  return run;
}

}  // namespace rainbow::systolic
