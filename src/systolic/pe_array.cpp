#include "systolic/pe_array.hpp"

#include <stdexcept>

namespace rainbow::systolic {

PEArray::PEArray(int rows, int cols) : rows_(rows), cols_(cols) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("PEArray: non-positive dimensions");
  }
  acc_.assign(static_cast<std::size_t>(rows) * cols, 0);
  a_reg_.assign(acc_.size(), 0);
  b_reg_.assign(acc_.size(), 0);
}

void PEArray::reset() {
  std::fill(acc_.begin(), acc_.end(), 0);
  std::fill(a_reg_.begin(), a_reg_.end(), 0);
  std::fill(b_reg_.begin(), b_reg_.end(), 0);
  cycles_ = 0;
}

void PEArray::step(std::span<const value_t> a_in,
                   std::span<const value_t> b_in) {
  if (static_cast<int>(a_in.size()) != rows_ ||
      static_cast<int>(b_in.size()) != cols_) {
    throw std::invalid_argument("PEArray::step: operand span size mismatch");
  }
  // Shift A east (west edge receives a_in) and B south.
  for (int r = 0; r < rows_; ++r) {
    for (int c = cols_ - 1; c > 0; --c) {
      a_reg_[idx(r, c)] = a_reg_[idx(r, c - 1)];
    }
    a_reg_[idx(r, 0)] = a_in[static_cast<std::size_t>(r)];
  }
  for (int c = 0; c < cols_; ++c) {
    for (int r = rows_ - 1; r > 0; --r) {
      b_reg_[idx(r, c)] = b_reg_[idx(r - 1, c)];
    }
    b_reg_[idx(0, c)] = b_in[static_cast<std::size_t>(c)];
  }
  // Multiply-accumulate everywhere.
  for (std::size_t i = 0; i < acc_.size(); ++i) {
    acc_[i] += a_reg_[i] * b_reg_[i];
  }
  ++cycles_;
}

value_t PEArray::acc(int r, int c) const {
  if (r < 0 || r >= rows_ || c < 0 || c >= cols_) {
    throw std::out_of_range("PEArray::acc: index out of range");
  }
  return acc_[idx(r, c)];
}

}  // namespace rainbow::systolic
