// The blocked execution backend's compute kernels: a cache-blocked,
// SIMD-friendly integer GEMM and an im2col convolution built on it.
//
// Bit-exactness with the naive oracle is structural, not approximate:
// every output element is the same set of int32 products, and int32
// addition is associative and commutative, so any summation order yields
// the identical bit pattern.  What the blocking changes is purely the
// memory-access pattern — contiguous row spans, bounded working sets, no
// per-element bounds checks — which is where the >= 5x single-thread
// speedup (bench_execbackend) comes from.
#pragma once

#include "model/layer.hpp"
#include "ref/tensor.hpp"

namespace rainbow::ref {

/// C (m x n, row-major) = A (m x k, row-major) * B (k x n, row-major).
/// C is fully overwritten.  Blocked over k and n with an i-unrolled
/// saxpy-style inner loop that compilers vectorize; bit-exact with the
/// naive triple loop.  `threads` splits the m dimension (disjoint C rows):
/// 1 = serial, 0 = hardware concurrency.
void gemm_blocked(const value_t* a, const value_t* b, value_t* c, int m,
                  int n, int k, int threads = 1);

/// Materializes the K x M im2col operand (K = channels*fh*fw taps down the
/// rows, M = oh*ow output pixels across the columns) for a channel slice,
/// interior spans copied row-wise.  `col` must hold
/// channel_count*fh*fw*oh*ow elements.
void im2col_rows(const model::Layer& layer, const Tensor3& ifmap,
                 int channel_first, int channel_count, value_t* col);

/// The blocked backend's forward convolution: im2col + gemm_blocked,
/// writing the (ofmap_channels x oh x ow) output directly as the GEMM
/// product.  Handles every layer kind (CV / DW / PW / PL / FC); depthwise
/// layers run channel by channel.  Bit-exact with reference_forward.
/// `threads`: within-layer parallelism (disjoint output channels);
/// 1 = serial, 0 = hardware concurrency.
[[nodiscard]] Tensor3 blocked_forward(const model::Layer& layer,
                                      const LayerOperands& operands,
                                      int threads = 1);

}  // namespace rainbow::ref
