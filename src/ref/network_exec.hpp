// Network-level functional execution: run a whole plan numerically, layer
// by layer, each layer computed through its *assigned policy's* loop nest,
// the output tensor feeding the next layer's input — including pooling
// between zoo stages is out of scope (plans come from trunk-consistent
// networks like the random generator's).  This validates the policies'
// composition and the inter-layer hand-off semantics end to end: the final
// tensor must equal the chained golden reference.
#pragma once

#include "core/plan.hpp"
#include "ref/policy_exec.hpp"

namespace rainbow::ref {

struct NetworkRun {
  Tensor3 output;                 ///< the last layer's ofmap
  std::vector<BufferPeaks> peaks; ///< per-layer staging high-water marks
  std::vector<double> layer_ms;   ///< per-layer wall time (the counters the
                                  ///< backend benches report speedup from)
};

/// True when every adjacent pair of layers is shape-compatible for direct
/// chaining (consumer ifmap == producer ofmap) — the precondition of
/// execute_network.
[[nodiscard]] bool chainable(const model::Network& network);

/// Runs `network` under `plan`, seeding layer 0 with `input` and chaining
/// outputs forward.  Filters for every layer come from
/// random_operands(layer, seed + index).  Layers chain, so parallelism
/// lives *inside* each layer: `options` selects the backend (default:
/// default_exec_backend()) and its within-layer thread count; outputs and
/// peaks are identical for every backend/thread combination (tests pin
/// this).  Throws std::invalid_argument on plan/network mismatch or a
/// non-chainable network.
[[nodiscard]] NetworkRun execute_network(const model::Network& network,
                                         const core::ExecutionPlan& plan,
                                         const Tensor3& input,
                                         std::uint64_t filter_seed,
                                         const ExecOptions& options = {});

/// The chained golden reference with the same filters.
[[nodiscard]] Tensor3 reference_network(const model::Network& network,
                                        const Tensor3& input,
                                        std::uint64_t filter_seed);

}  // namespace rainbow::ref
