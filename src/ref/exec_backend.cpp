#include "ref/exec_backend.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>

namespace rainbow::ref {

std::string_view to_string(ExecBackend backend) {
  switch (backend) {
    case ExecBackend::kNaive:
      return "naive";
    case ExecBackend::kBlocked:
      return "blocked";
  }
  throw std::logic_error("to_string: invalid ExecBackend");
}

ExecBackend exec_backend_from_string(std::string_view name) {
  if (name == "naive") {
    return ExecBackend::kNaive;
  }
  if (name == "blocked") {
    return ExecBackend::kBlocked;
  }
  throw std::invalid_argument("unknown exec backend '" + std::string(name) +
                              "' (expected naive|blocked)");
}

namespace {

std::atomic<ExecBackend> g_default{ExecBackend::kBlocked};
std::once_flag g_env_read;

void apply_env_override() {
  if (const char* env = std::getenv("RAINBOW_EXEC_BACKEND")) {
    g_default.store(exec_backend_from_string(env), std::memory_order_relaxed);
  }
}

}  // namespace

ExecBackend default_exec_backend() {
  std::call_once(g_env_read, apply_env_override);
  return g_default.load(std::memory_order_relaxed);
}

void set_default_exec_backend(ExecBackend backend) {
  std::call_once(g_env_read, apply_env_override);  // flag beats environment
  g_default.store(backend, std::memory_order_relaxed);
}

}  // namespace rainbow::ref
