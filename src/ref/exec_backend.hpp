// Execution-backend selection seam for the functional simulation paths.
// The naive loop nests (reference_forward, the policy executors, the
// register-level systolic array) are the correctness *oracle*; the blocked
// backend recomputes the same integer arithmetic through an im2col +
// cache-blocked GEMM kernel (blocked_kernel.hpp) that is bit-exact by
// construction — int32 addition commutes — and an order of magnitude
// faster.  Every consumer defaults to the oracle unless it opts into
// default_exec_backend(), which honours the RAINBOW_EXEC_BACKEND
// environment variable and the tools' --exec-backend flag.
#pragma once

#include <string>
#include <string_view>

namespace rainbow::ref {

enum class ExecBackend {
  kNaive,    ///< the original per-element loop nests (the oracle)
  kBlocked,  ///< im2col + cache-blocked GEMM, bit-exact with the oracle
};

[[nodiscard]] std::string_view to_string(ExecBackend backend);

/// Inverse of to_string ("naive" | "blocked"); throws std::invalid_argument
/// on anything else.
[[nodiscard]] ExecBackend exec_backend_from_string(std::string_view name);

/// The process-wide default backend: starts as kBlocked (fast paths opt in
/// to it explicitly), overridden by RAINBOW_EXEC_BACKEND=naive|blocked at
/// first use, and by set_default_exec_backend (e.g. a --exec-backend flag)
/// afterwards.  A malformed environment value throws on first query rather
/// than being silently ignored.
[[nodiscard]] ExecBackend default_exec_backend();
void set_default_exec_backend(ExecBackend backend);

}  // namespace rainbow::ref
