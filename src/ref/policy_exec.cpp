#include "ref/policy_exec.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "ref/blocked_kernel.hpp"

namespace rainbow::ref {

namespace {

using core::Policy;
using core::PolicyChoice;
using model::Layer;

/// The input column span the output sweep actually touches:
/// (O_W - 1) * S + F_W, in padded coordinates starting at -P.
int effective_width(const Layer& layer) {
  return (layer.ofmap_w() - 1) * layer.stride() + layer.filter_w();
}

/// Bounded staging buffer for a sliding window of `rows` input rows over
/// `chans` channels.  Rows are addressed by absolute padded input row; the
/// buffer holds only the current window and faults on anything else.
class WindowBuffer {
 public:
  WindowBuffer(int chans, int rows, int width)
      : chans_(chans), rows_(rows), width_(width),
        data_(static_cast<std::size_t>(chans) * rows * width, 0),
        base_(std::vector<int>(static_cast<std::size_t>(chans), kUnset)) {}

  [[nodiscard]] count_t size() const { return data_.size(); }

  /// Loads rows [first, first + rows_) of channel `src_c` (padded
  /// coordinates: row/col offset by -padding) from the ifmap.  Interior
  /// spans are copied row-wise; only the padding fringe is zero-filled.
  void fill(const Tensor3& ifmap, int src_c, int slot_c, int first,
            int padding) {
    base_[static_cast<std::size_t>(slot_c)] = first;
    const int ih = ifmap.height();
    const int iw = ifmap.width();
    // Buffer column x reads source column x - padding: one contiguous
    // interior span [x0, x1), zeros on both sides.
    const int x0 = std::clamp(padding, 0, width_);
    const int x1 = std::clamp(iw + padding, x0, width_);
    for (int r = 0; r < rows_; ++r) {
      value_t* dst = &at(slot_c, r, 0);
      const int sy = first + r - padding;
      if (sy < 0 || sy >= ih) {
        std::fill(dst, dst + width_, 0);
        continue;
      }
      std::fill(dst, dst + x0, 0);
      if (x1 > x0) {
        const value_t* src = ifmap.row(src_c, sy);
        std::copy(src + x0 - padding, src + x1 - padding, dst + x0);
      }
      std::fill(dst + x1, dst + width_, 0);
    }
  }

  /// Reads a window element: channel slot, absolute padded row, padded col.
  [[nodiscard]] value_t read(int slot_c, int abs_row, int x) const {
    const int base = base_[static_cast<std::size_t>(slot_c)];
    if (base == kUnset || abs_row < base || abs_row >= base + rows_) {
      throw std::logic_error("WindowBuffer: access outside resident window");
    }
    return at(slot_c, abs_row - base, x);
  }

 private:
  static constexpr int kUnset = INT32_MIN;

  [[nodiscard]] value_t& at(int c, int r, int x) {
    return data_[(static_cast<std::size_t>(c) * rows_ + r) * width_ + x];
  }
  [[nodiscard]] value_t at(int c, int r, int x) const {
    return data_[(static_cast<std::size_t>(c) * rows_ + r) * width_ + x];
  }

  int chans_, rows_, width_;
  std::vector<value_t> data_;
  std::vector<int> base_;
};

void track(count_t& peak, count_t value) { peak = std::max(peak, value); }

int filter_units(const Layer& layer) {
  return layer.is_depthwise() ? layer.channels() : layer.filters();
}

/// Dot product of one window row band with one filter at output column x.
value_t window_dot(const WindowBuffer& window, int slot, int abs_row,
                   const Tensor4& filters, int n, int fc, int x,
                   const Layer& layer) {
  value_t acc = 0;
  for (int ky = 0; ky < layer.filter_h(); ++ky) {
    for (int kx = 0; kx < layer.filter_w(); ++kx) {
      acc += window.read(slot, abs_row + ky, x * layer.stride() + kx) *
             filters.at(n, fc, ky, kx);
    }
  }
  return acc;
}

}  // namespace

Tensor3 execute_policy(const Layer& layer, const PolicyChoice& choice,
                       const LayerOperands& operands, BufferPeaks* peaks) {
  validate_operands(layer, operands);
  BufferPeaks local;
  BufferPeaks& peak = peaks ? *peaks : local;
  peak = BufferPeaks{};

  const int fh = layer.filter_h();
  const int fw = layer.filter_w();
  const int ci = layer.channels();
  const int nf = layer.filters();
  const int oh = layer.ofmap_h();
  const int ow = layer.ofmap_w();
  const int we = effective_width(layer);
  const bool dw = layer.is_depthwise();
  const int units = filter_units(layer);

  Tensor3 out(layer.ofmap_channels(), oh, ow);
  const Tensor3& ifmap = operands.ifmap;
  const Tensor4& filters = operands.filters;

  auto check_block = [&](int n) {
    if (n < 1 || n > units) {
      throw std::invalid_argument("execute_policy: filter block out of range");
    }
  };

  switch (choice.policy) {
    case Policy::kIntraLayer: {
      // Whole layer resident: the reference nest runs straight out of the
      // full operand and output tensors.
      track(peak.ifmap, ifmap.size());
      track(peak.filter, filters.size());
      out = reference_forward(layer, operands);
      track(peak.ofmap, out.size());
      return out;
    }

    case Policy::kIfmapReuse: {
      // All filters resident; a fh-row window over all channels slides
      // height-wise; one output row (all channels) is staged and flushed.
      track(peak.filter, filters.size());
      WindowBuffer window(ci, fh, we);
      track(peak.ifmap, window.size());
      std::vector<value_t> row(static_cast<std::size_t>(ow) *
                               layer.ofmap_channels());
      track(peak.ofmap, row.size());
      for (int r = 0; r < oh; ++r) {
        const int first = r * layer.stride();
        for (int c = 0; c < ci; ++c) {
          window.fill(ifmap, c, c, first, layer.padding());
        }
        for (int o = 0; o < layer.ofmap_channels(); ++o) {
          for (int x = 0; x < ow; ++x) {
            value_t acc = 0;
            if (dw) {
              acc = window_dot(window, o, first, filters, o, 0, x, layer);
            } else {
              for (int c = 0; c < ci; ++c) {
                acc += window_dot(window, c, first, filters, o, c, x, layer);
              }
            }
            row[static_cast<std::size_t>(o) * ow + x] = acc;
          }
        }
        for (int o = 0; o < layer.ofmap_channels(); ++o) {
          for (int x = 0; x < ow; ++x) {
            out.at(o, r, x) = row[static_cast<std::size_t>(o) * ow + x];
          }
        }
      }
      return out;
    }

    case Policy::kFilterReuse: {
      // Whole ifmap resident; filters stream one at a time; one output
      // channel staged per filter.
      track(peak.ifmap, ifmap.size());
      track(peak.filter, layer.single_filter_elems());
      Tensor3 channel(1, oh, ow);
      track(peak.ofmap, channel.size());
      for (int o = 0; o < layer.ofmap_channels(); ++o) {
        for (int y = 0; y < oh; ++y) {
          for (int x = 0; x < ow; ++x) {
            value_t acc = 0;
            if (dw) {
              for (int ky = 0; ky < fh; ++ky) {
                for (int kx = 0; kx < fw; ++kx) {
                  acc += ifmap.padded_at(o, y * layer.stride() + ky - layer.padding(),
                                         x * layer.stride() + kx - layer.padding()) *
                         filters.at(o, 0, ky, kx);
                }
              }
            } else {
              for (int c = 0; c < ci; ++c) {
                for (int ky = 0; ky < fh; ++ky) {
                  for (int kx = 0; kx < fw; ++kx) {
                    acc += ifmap.padded_at(c, y * layer.stride() + ky - layer.padding(),
                                           x * layer.stride() + kx - layer.padding()) *
                           filters.at(o, c, ky, kx);
                  }
                }
              }
            }
            channel.at(0, y, x) = acc;
          }
        }
        for (int y = 0; y < oh; ++y) {
          for (int x = 0; x < ow; ++x) {
            out.at(o, y, x) = channel.at(0, y, x);
          }
        }
      }
      return out;
    }

    case Policy::kPerChannel: {
      if (dw) {
        // Channel-independent: one-channel window, one filter, one output
        // channel staged at a time.
        WindowBuffer window(1, fh, we);
        track(peak.ifmap, window.size());
        track(peak.filter, static_cast<count_t>(fh) * fw);
        Tensor3 channel(1, oh, ow);
        track(peak.ofmap, channel.size());
        for (int c = 0; c < ci; ++c) {
          for (int r = 0; r < oh; ++r) {
            const int first = r * layer.stride();
            window.fill(ifmap, c, 0, first, layer.padding());
            for (int x = 0; x < ow; ++x) {
              channel.at(0, r, x) =
                  window_dot(window, 0, first, filters, c, 0, x, layer);
            }
          }
          for (int y = 0; y < oh; ++y) {
            for (int x = 0; x < ow; ++x) {
              out.at(c, y, x) = channel.at(0, y, x);
            }
          }
        }
        return out;
      }
      // One channel of every filter resident; a one-channel window slides;
      // the whole ofmap accumulates on-chip across channels.
      track(peak.filter, static_cast<count_t>(fh) * fw * nf);
      WindowBuffer window(1, fh, we);
      track(peak.ifmap, window.size());
      track(peak.ofmap, out.size());
      for (int c = 0; c < ci; ++c) {
        for (int r = 0; r < oh; ++r) {
          const int first = r * layer.stride();
          window.fill(ifmap, c, 0, first, layer.padding());
          for (int n = 0; n < nf; ++n) {
            for (int x = 0; x < ow; ++x) {
              out.at(n, r, x) +=
                  window_dot(window, 0, first, filters, n, c, x, layer);
            }
          }
        }
      }
      return out;
    }

    case Policy::kPartialIfmap: {
      check_block(choice.filter_block);
      const int nb = choice.filter_block;
      if (dw) {
        // Blocks of channels; each channel meets its single filter.
        for (int c0 = 0; c0 < ci; c0 += nb) {
          const int block = std::min(nb, ci - c0);
          WindowBuffer window(block, fh, we);
          track(peak.ifmap, window.size());
          track(peak.filter, static_cast<count_t>(fh) * fw * block);
          std::vector<value_t> row(static_cast<std::size_t>(block) * ow);
          track(peak.ofmap, row.size());
          for (int r = 0; r < oh; ++r) {
            const int first = r * layer.stride();
            for (int b = 0; b < block; ++b) {
              window.fill(ifmap, c0 + b, b, first, layer.padding());
              for (int x = 0; x < ow; ++x) {
                row[static_cast<std::size_t>(b) * ow + x] = window_dot(
                    window, b, first, filters, c0 + b, 0, x, layer);
              }
            }
            for (int b = 0; b < block; ++b) {
              for (int x = 0; x < ow; ++x) {
                out.at(c0 + b, r, x) = row[static_cast<std::size_t>(b) * ow + x];
              }
            }
          }
        }
        return out;
      }
      // Blocks of filters; the full-channel window re-sweeps per block.
      for (int n0 = 0; n0 < nf; n0 += nb) {
        const int block = std::min(nb, nf - n0);
        track(peak.filter, static_cast<count_t>(fh) * fw * ci * block);
        WindowBuffer window(ci, fh, we);
        track(peak.ifmap, window.size());
        std::vector<value_t> row(static_cast<std::size_t>(block) * ow);
        track(peak.ofmap, row.size());
        for (int r = 0; r < oh; ++r) {
          const int first = r * layer.stride();
          for (int c = 0; c < ci; ++c) {
            window.fill(ifmap, c, c, first, layer.padding());
          }
          for (int b = 0; b < block; ++b) {
            for (int x = 0; x < ow; ++x) {
              value_t acc = 0;
              for (int c = 0; c < ci; ++c) {
                acc += window_dot(window, c, first, filters, n0 + b, c, x, layer);
              }
              row[static_cast<std::size_t>(b) * ow + x] = acc;
            }
          }
          for (int b = 0; b < block; ++b) {
            for (int x = 0; x < ow; ++x) {
              out.at(n0 + b, r, x) = row[static_cast<std::size_t>(b) * ow + x];
            }
          }
        }
      }
      return out;
    }

    case Policy::kPartialPerChannel: {
      check_block(choice.filter_block);
      const int nb = choice.filter_block;
      if (dw) {
        // Identical stream to per-channel reuse (each channel is its own
        // block member); delegate.
        PolicyChoice p3 = choice;
        p3.policy = Policy::kPerChannel;
        return execute_policy(layer, p3, operands, peaks);
      }
      // Blocks of filters; per block a one-channel window re-sweeps all
      // channels while the block's ofmap slab accumulates on-chip.
      for (int n0 = 0; n0 < nf; n0 += nb) {
        const int block = std::min(nb, nf - n0);
        std::vector<value_t> acc(static_cast<std::size_t>(block) * oh * ow, 0);
        track(peak.ofmap, acc.size());
        track(peak.filter, static_cast<count_t>(fh) * fw * block);
        WindowBuffer window(1, fh, we);
        track(peak.ifmap, window.size());
        for (int c = 0; c < ci; ++c) {
          for (int r = 0; r < oh; ++r) {
            const int first = r * layer.stride();
            window.fill(ifmap, c, 0, first, layer.padding());
            for (int b = 0; b < block; ++b) {
              for (int x = 0; x < ow; ++x) {
                acc[(static_cast<std::size_t>(b) * oh + r) * ow + x] +=
                    window_dot(window, 0, first, filters, n0 + b, c, x, layer);
              }
            }
          }
        }
        for (int b = 0; b < block; ++b) {
          for (int y = 0; y < oh; ++y) {
            for (int x = 0; x < ow; ++x) {
              out.at(n0 + b, y, x) =
                  acc[(static_cast<std::size_t>(b) * oh + y) * ow + x];
            }
          }
        }
      }
      return out;
    }

    case Policy::kFallbackTiled: {
      check_block(choice.filter_block);
      if (choice.row_stripe < 1 || choice.row_stripe > oh) {
        throw std::invalid_argument("execute_policy: row stripe out of range");
      }
      const int nb = choice.filter_block;
      const int stripe = choice.row_stripe;
      for (int r0 = 0; r0 < oh; r0 += stripe) {
        const int rows = std::min(stripe, oh - r0);
        const int in_rows = (rows - 1) * layer.stride() + fh;
        for (int u0 = 0; u0 < units; u0 += nb) {
          const int block = std::min(nb, units - u0);
          std::vector<value_t> acc(
              static_cast<std::size_t>(block) * rows * ow, 0);
          track(peak.ofmap, acc.size());
          track(peak.filter, static_cast<count_t>(fh) * fw * block);
          WindowBuffer window(1, in_rows, we);
          track(peak.ifmap, window.size());
          const int channels = dw ? block : ci;
          for (int cc = 0; cc < channels; ++cc) {
            const int src_c = dw ? u0 + cc : cc;
            window.fill(ifmap, src_c, 0, r0 * layer.stride(), layer.padding());
            for (int b = 0; b < block; ++b) {
              if (dw && b != cc) {
                continue;  // a depthwise channel meets only its own filter
              }
              const int n = u0 + b;
              const int fc = dw ? 0 : cc;
              for (int r = 0; r < rows; ++r) {
                const int first = (r0 + r) * layer.stride();
                for (int x = 0; x < ow; ++x) {
                  acc[(static_cast<std::size_t>(b) * rows + r) * ow + x] +=
                      window_dot(window, 0, first, filters, n, fc, x, layer);
                }
              }
            }
          }
          for (int b = 0; b < block; ++b) {
            for (int r = 0; r < rows; ++r) {
              for (int x = 0; x < ow; ++x) {
                out.at(u0 + b, r0 + r, x) =
                    acc[(static_cast<std::size_t>(b) * rows + r) * ow + x];
              }
            }
          }
        }
      }
      return out;
    }
  }
  throw std::logic_error("execute_policy: invalid Policy");
}

BufferPeaks policy_peaks(const Layer& layer, const PolicyChoice& choice) {
  const int fh = layer.filter_h();
  const int fw = layer.filter_w();
  const int ci = layer.channels();
  const int nf = layer.filters();
  const int oh = layer.ofmap_h();
  const int ow = layer.ofmap_w();
  const int we = effective_width(layer);
  const bool dw = layer.is_depthwise();
  const int units = filter_units(layer);

  const count_t ifmap_full =
      static_cast<count_t>(ci) * layer.ifmap_h() * layer.ifmap_w();
  const count_t filter_full =
      static_cast<count_t>(nf) * (dw ? 1 : ci) * fh * fw;
  const count_t ofmap_full =
      static_cast<count_t>(layer.ofmap_channels()) * oh * ow;

  auto check_block = [&](int n) {
    if (n < 1 || n > units) {
      throw std::invalid_argument("execute_policy: filter block out of range");
    }
  };

  BufferPeaks peak;
  switch (choice.policy) {
    case Policy::kIntraLayer:
      peak.ifmap = ifmap_full;
      peak.filter = filter_full;
      peak.ofmap = ofmap_full;
      return peak;

    case Policy::kIfmapReuse:
      peak.filter = filter_full;
      peak.ifmap = static_cast<count_t>(ci) * fh * we;
      peak.ofmap = static_cast<count_t>(ow) * layer.ofmap_channels();
      return peak;

    case Policy::kFilterReuse:
      peak.ifmap = ifmap_full;
      peak.filter = layer.single_filter_elems();
      peak.ofmap = static_cast<count_t>(oh) * ow;
      return peak;

    case Policy::kPerChannel:
      if (dw) {
        peak.ifmap = static_cast<count_t>(fh) * we;
        peak.filter = static_cast<count_t>(fh) * fw;
        peak.ofmap = static_cast<count_t>(oh) * ow;
        return peak;
      }
      peak.filter = static_cast<count_t>(fh) * fw * nf;
      peak.ifmap = static_cast<count_t>(fh) * we;
      peak.ofmap = ofmap_full;
      return peak;

    case Policy::kPartialIfmap: {
      check_block(choice.filter_block);
      // The first block is the largest; later (tail) blocks only shrink.
      const count_t block =
          static_cast<count_t>(std::min(choice.filter_block, units));
      if (dw) {
        peak.ifmap = block * fh * we;
        peak.filter = static_cast<count_t>(fh) * fw * block;
        peak.ofmap = block * ow;
        return peak;
      }
      peak.filter = static_cast<count_t>(fh) * fw * ci * block;
      peak.ifmap = static_cast<count_t>(ci) * fh * we;
      peak.ofmap = block * ow;
      return peak;
    }

    case Policy::kPartialPerChannel: {
      check_block(choice.filter_block);
      if (dw) {
        PolicyChoice p3 = choice;
        p3.policy = Policy::kPerChannel;
        return policy_peaks(layer, p3);
      }
      const count_t block =
          static_cast<count_t>(std::min(choice.filter_block, nf));
      peak.ofmap = block * oh * ow;
      peak.filter = static_cast<count_t>(fh) * fw * block;
      peak.ifmap = static_cast<count_t>(fh) * we;
      return peak;
    }

    case Policy::kFallbackTiled: {
      check_block(choice.filter_block);
      if (choice.row_stripe < 1 || choice.row_stripe > oh) {
        throw std::invalid_argument("execute_policy: row stripe out of range");
      }
      const count_t rows =
          static_cast<count_t>(std::min(choice.row_stripe, oh));
      const count_t in_rows = (rows - 1) * layer.stride() + fh;
      const count_t block =
          static_cast<count_t>(std::min(choice.filter_block, units));
      peak.ofmap = block * rows * ow;
      peak.filter = static_cast<count_t>(fh) * fw * block;
      peak.ifmap = in_rows * we;
      return peak;
    }
  }
  throw std::logic_error("policy_peaks: invalid Policy");
}

Tensor3 execute_policy(const Layer& layer, const PolicyChoice& choice,
                       const LayerOperands& operands, BufferPeaks* peaks,
                       const ExecOptions& options) {
  if (options.backend == ExecBackend::kNaive) {
    return execute_policy(layer, choice, operands, peaks);
  }
  validate_operands(layer, operands);
  // Validates the choice exactly like the oracle, then reports the peaks
  // its staging buffers would have reached.
  const BufferPeaks analytic = policy_peaks(layer, choice);
  if (peaks) {
    *peaks = analytic;
  }
  return blocked_forward(layer, operands, options.threads);
}

}  // namespace rainbow::ref
