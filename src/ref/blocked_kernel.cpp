#include "ref/blocked_kernel.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <vector>

#include "ref/reference.hpp"
#include "util/thread_pool.hpp"

namespace rainbow::ref {

namespace {

int resolve_threads(int threads, int work_items) {
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  return std::clamp(threads, 1, std::max(1, work_items));
}

/// Runs fn(begin, end) over [0, total) in contiguous chunks, one per
/// worker.  threads == 1 (or trivial totals) runs inline — the serial and
/// parallel paths execute the identical arithmetic on disjoint ranges, so
/// results are independent of the thread count.
template <typename Fn>
void parallel_chunks(int total, int threads, Fn&& fn) {
  threads = resolve_threads(threads, total);
  if (threads <= 1 || total <= 1) {
    fn(0, total);
    return;
  }
  util::ThreadPool pool(static_cast<std::size_t>(threads));
  const int chunk = (total + threads - 1) / threads;
  for (int begin = 0; begin < total; begin += chunk) {
    const int end = std::min(total, begin + chunk);
    pool.submit([&fn, begin, end] { fn(begin, end); });
  }
  pool.wait();
}

// Cache blocking: a kKC x kJC panel of B (1 MB at int32, L2-resident on
// anything modern) is reused by kMR unrolled A rows, so the hot loop reads
// one contiguous B row per k step instead of striding the whole matrix.
constexpr int kKC = 256;
constexpr int kJC = 1024;
constexpr int kMR = 4;

// The portable build targets baseline x86-64 (SSE2), where int32 SIMD
// multiply does not exist — the saxpy loop vectorizes poorly.  On x86
// compilers that support per-function ISA targeting, the same body is
// additionally compiled for AVX2 and picked at runtime.  The arithmetic
// is untouched, so both instantiations are bit-identical.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define RAINBOW_GEMM_AVX2_DISPATCH 1
#else
#define RAINBOW_GEMM_AVX2_DISPATCH 0
#endif

__attribute__((always_inline)) inline void gemm_rows_body(
    const value_t* a, const value_t* b, value_t* c, int m_begin, int m_end,
    int n, int k) {
  for (int jj = 0; jj < n; jj += kJC) {
    const int j_end = std::min(n, jj + kJC);
    for (int kk = 0; kk < k; kk += kKC) {
      const int k_end = std::min(k, kk + kKC);
      int i = m_begin;
      for (; i + kMR <= m_end; i += kMR) {
        value_t* c0 = c + static_cast<std::size_t>(i) * n;
        value_t* c1 = c0 + n;
        value_t* c2 = c1 + n;
        value_t* c3 = c2 + n;
        const value_t* a0 = a + static_cast<std::size_t>(i) * k;
        const value_t* a1 = a0 + k;
        const value_t* a2 = a1 + k;
        const value_t* a3 = a2 + k;
        for (int l = kk; l < k_end; ++l) {
          const value_t av0 = a0[l];
          const value_t av1 = a1[l];
          const value_t av2 = a2[l];
          const value_t av3 = a3[l];
          const value_t* brow = b + static_cast<std::size_t>(l) * n;
          for (int j = jj; j < j_end; ++j) {
            const value_t bv = brow[j];
            c0[j] += av0 * bv;
            c1[j] += av1 * bv;
            c2[j] += av2 * bv;
            c3[j] += av3 * bv;
          }
        }
      }
      for (; i < m_end; ++i) {
        value_t* crow = c + static_cast<std::size_t>(i) * n;
        const value_t* arow = a + static_cast<std::size_t>(i) * k;
        for (int l = kk; l < k_end; ++l) {
          const value_t av = arow[l];
          const value_t* brow = b + static_cast<std::size_t>(l) * n;
          for (int j = jj; j < j_end; ++j) {
            crow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

void gemm_rows_generic(const value_t* a, const value_t* b, value_t* c,
                       int m_begin, int m_end, int n, int k) {
  gemm_rows_body(a, b, c, m_begin, m_end, n, k);
}

#if RAINBOW_GEMM_AVX2_DISPATCH
__attribute__((target("avx2"))) void gemm_rows_avx2(const value_t* a,
                                                    const value_t* b,
                                                    value_t* c, int m_begin,
                                                    int m_end, int n, int k) {
  gemm_rows_body(a, b, c, m_begin, m_end, n, k);
}
#endif

using GemmRowsFn = void (*)(const value_t*, const value_t*, value_t*, int,
                            int, int, int);

GemmRowsFn select_gemm_rows() {
#if RAINBOW_GEMM_AVX2_DISPATCH
  if (__builtin_cpu_supports("avx2")) {
    return gemm_rows_avx2;
  }
#endif
  return gemm_rows_generic;
}

const GemmRowsFn gemm_rows = select_gemm_rows();

}  // namespace

void gemm_blocked(const value_t* a, const value_t* b, value_t* c, int m,
                  int n, int k, int threads) {
  if (m <= 0 || n <= 0 || k <= 0) {
    throw std::invalid_argument("gemm_blocked: non-positive dims");
  }
  std::fill(c, c + static_cast<std::size_t>(m) * n, 0);
  parallel_chunks(m, threads, [&](int begin, int end) {
    gemm_rows(a, b, c, begin, end, n, k);
  });
}

void im2col_rows(const model::Layer& layer, const Tensor3& ifmap,
                 int channel_first, int channel_count, value_t* col) {
  if (channel_count < 0) {
    channel_count = layer.channels() - channel_first;
  }
  if (channel_first < 0 || channel_first + channel_count > layer.channels()) {
    throw std::invalid_argument("im2col_rows: channel slice out of range");
  }
  const int oh = layer.ofmap_h();
  const int ow = layer.ofmap_w();
  const int ih = layer.ifmap_h();
  const int iw = layer.ifmap_w();
  const int fh = layer.filter_h();
  const int fw = layer.filter_w();
  const int s = layer.stride();
  const int p = layer.padding();
  const std::size_t m = static_cast<std::size_t>(oh) * ow;
  value_t* dst = col;
  for (int c = 0; c < channel_count; ++c) {
    for (int ky = 0; ky < fh; ++ky) {
      for (int kx = 0; kx < fw; ++kx, dst += m) {
        for (int y = 0; y < oh; ++y) {
          value_t* drow = dst + static_cast<std::size_t>(y) * ow;
          const int sy = y * s + ky - p;
          if (sy < 0 || sy >= ih) {
            std::fill(drow, drow + ow, 0);
            continue;
          }
          const value_t* src = ifmap.row(channel_first + c, sy);
          if (s == 1) {
            // Source column is x + (kx - p): one interior span, padded ends.
            const int off = kx - p;
            const int x0 = std::clamp(-off, 0, ow);
            const int x1 = std::clamp(iw - off, x0, ow);
            std::fill(drow, drow + x0, 0);
            std::copy(src + x0 + off, src + x1 + off, drow + x0);
            std::fill(drow + x1, drow + ow, 0);
          } else {
            for (int x = 0; x < ow; ++x) {
              const int sx = x * s + kx - p;
              drow[x] = (sx < 0 || sx >= iw) ? 0 : src[sx];
            }
          }
        }
      }
    }
  }
}

Tensor3 blocked_forward(const model::Layer& layer,
                        const LayerOperands& operands, int threads) {
  validate_operands(layer, operands);
  const int oh = layer.ofmap_h();
  const int ow = layer.ofmap_w();
  const std::size_t m = static_cast<std::size_t>(oh) * ow;
  const int fh = layer.filter_h();
  const int fw = layer.filter_w();
  Tensor3 out(layer.ofmap_channels(), oh, ow);

  if (layer.is_depthwise()) {
    const int taps = fh * fw;
    // Channel c's output row is an axpy over its im2col tap rows with its
    // own single filter — channels are independent, hence the chunking.
    parallel_chunks(layer.channels(), threads, [&](int begin, int end) {
      std::vector<value_t> col(static_cast<std::size_t>(taps) * m);
      for (int c = begin; c < end; ++c) {
        im2col_rows(layer, operands.ifmap, c, 1, col.data());
        const value_t* f =
            operands.filters.data() + static_cast<std::size_t>(c) * taps;
        value_t* orow = out.data() + static_cast<std::size_t>(c) * m;
        std::fill(orow, orow + m, 0);
        for (int t = 0; t < taps; ++t) {
          const value_t fv = f[t];
          const value_t* crow = col.data() + static_cast<std::size_t>(t) * m;
          for (std::size_t j = 0; j < m; ++j) {
            orow[j] += fv * crow[j];
          }
        }
      }
    });
    return out;
  }

  // Dense kinds: out (N x M) = filters (N x K) x im2col (K x M), and the
  // GEMM product's row-major layout IS the ofmap's CHW layout.
  const int kdim = layer.channels() * fh * fw;
  std::vector<value_t> col(static_cast<std::size_t>(kdim) * m);
  im2col_rows(layer, operands.ifmap, 0, layer.channels(), col.data());
  gemm_blocked(operands.filters.data(), col.data(), out.data(),
               layer.filters(), static_cast<int>(m), kdim, threads);
  return out;
}

}  // namespace rainbow::ref
