// Minimal dense tensors for the numerical reference path: int32
// activations/weights (wide enough to hold int8 x int8 accumulations
// exactly), CHW / NCHW layouts, bounds-checked access.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "model/layer.hpp"

namespace rainbow::ref {

using value_t = std::int32_t;

/// A channels x height x width activation tensor.
class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(int channels, int height, int width)
      : c_(channels), h_(height), w_(width),
        data_(static_cast<std::size_t>(channels) * height * width, 0) {
    if (channels <= 0 || height <= 0 || width <= 0) {
      throw std::invalid_argument("Tensor3: non-positive dims");
    }
  }

  [[nodiscard]] int channels() const { return c_; }
  [[nodiscard]] int height() const { return h_; }
  [[nodiscard]] int width() const { return w_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] value_t& at(int c, int y, int x) {
    check(c, y, x);
    return data_[(static_cast<std::size_t>(c) * h_ + y) * w_ + x];
  }
  [[nodiscard]] value_t at(int c, int y, int x) const {
    check(c, y, x);
    return data_[(static_cast<std::size_t>(c) * h_ + y) * w_ + x];
  }

  /// Zero-padded read: coordinates outside the map return 0 (convolution
  /// padding semantics).
  [[nodiscard]] value_t padded_at(int c, int y, int x) const {
    if (y < 0 || y >= h_ || x < 0 || x >= w_) {
      return 0;
    }
    return at(c, y, x);
  }

  /// Raw storage, CHW row-major — the blocked kernel's span copies.
  [[nodiscard]] const value_t* data() const { return data_.data(); }
  [[nodiscard]] value_t* data() { return data_.data(); }

  /// Pointer to the `w_` contiguous elements of row (c, y).
  [[nodiscard]] const value_t* row(int c, int y) const {
    check(c, y, 0);
    return data_.data() + (static_cast<std::size_t>(c) * h_ + y) * w_;
  }

  friend bool operator==(const Tensor3&, const Tensor3&) = default;

 private:
  void check(int c, int y, int x) const {
    if (c < 0 || c >= c_ || y < 0 || y >= h_ || x < 0 || x >= w_) {
      throw std::out_of_range("Tensor3: index out of range");
    }
  }

  int c_ = 0, h_ = 0, w_ = 0;
  std::vector<value_t> data_;
};

/// A filters x channels x height x width weight tensor (channels == 1 for
/// depthwise filters).
class Tensor4 {
 public:
  Tensor4() = default;
  Tensor4(int filters, int channels, int height, int width)
      : n_(filters), c_(channels), h_(height), w_(width),
        data_(static_cast<std::size_t>(filters) * channels * height * width,
              0) {
    if (filters <= 0 || channels <= 0 || height <= 0 || width <= 0) {
      throw std::invalid_argument("Tensor4: non-positive dims");
    }
  }

  [[nodiscard]] int filters() const { return n_; }
  [[nodiscard]] int channels() const { return c_; }
  [[nodiscard]] int height() const { return h_; }
  [[nodiscard]] int width() const { return w_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] value_t& at(int n, int c, int y, int x) {
    check(n, c, y, x);
    return data_[((static_cast<std::size_t>(n) * c_ + c) * h_ + y) * w_ + x];
  }
  [[nodiscard]] value_t at(int n, int c, int y, int x) const {
    check(n, c, y, x);
    return data_[((static_cast<std::size_t>(n) * c_ + c) * h_ + y) * w_ + x];
  }

  /// Raw storage, NCHW row-major: filter n's channels*height*width weights
  /// are contiguous — exactly one row of the GEMM filter matrix.
  [[nodiscard]] const value_t* data() const { return data_.data(); }

 private:
  void check(int n, int c, int y, int x) const {
    if (n < 0 || n >= n_ || c < 0 || c >= c_ || y < 0 || y >= h_ || x < 0 ||
        x >= w_) {
      throw std::out_of_range("Tensor4: index out of range");
    }
  }

  int n_ = 0, c_ = 0, h_ = 0, w_ = 0;
  std::vector<value_t> data_;
};

/// Randomly filled operands for a layer (seeded, small int8-range values).
struct LayerOperands {
  Tensor3 ifmap;
  Tensor4 filters;
};

[[nodiscard]] LayerOperands random_operands(const model::Layer& layer,
                                            std::uint64_t seed);

}  // namespace rainbow::ref
