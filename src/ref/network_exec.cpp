#include "ref/network_exec.hpp"

#include <chrono>
#include <stdexcept>

namespace rainbow::ref {

bool chainable(const model::Network& network) {
  for (std::size_t i = 0; i + 1 < network.size(); ++i) {
    if (!network.is_sequential_boundary(i)) {
      return false;
    }
    const auto& producer = network.layer(i);
    const auto& consumer = network.layer(i + 1);
    if (consumer.channels() != producer.ofmap_channels() ||
        consumer.ifmap_h() != producer.ofmap_h() ||
        consumer.ifmap_w() != producer.ofmap_w()) {
      return false;
    }
  }
  return true;
}

namespace {

LayerOperands operands_for(const model::Layer& layer, const Tensor3& input,
                           std::uint64_t seed) {
  LayerOperands ops = random_operands(layer, seed);
  ops.ifmap = input;  // replace the random ifmap with the chained tensor
  return ops;
}

}  // namespace

NetworkRun execute_network(const model::Network& network,
                           const core::ExecutionPlan& plan,
                           const Tensor3& input, std::uint64_t filter_seed,
                           const ExecOptions& options) {
  if (plan.size() != network.size()) {
    throw std::invalid_argument("execute_network: plan/network mismatch");
  }
  if (!chainable(network)) {
    throw std::invalid_argument("execute_network: network is not chainable");
  }
  NetworkRun run;
  run.peaks.reserve(network.size());
  run.layer_ms.reserve(network.size());
  Tensor3 current = input;
  for (std::size_t i = 0; i < network.size(); ++i) {
    const model::Layer& layer = network.layer(i);
    const LayerOperands ops = operands_for(layer, current, filter_seed + i);
    BufferPeaks peaks;
    const auto start = std::chrono::steady_clock::now();
    current = execute_policy(layer, plan.assignment(i).estimate.choice, ops,
                             &peaks, options);
    run.layer_ms.push_back(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
    run.peaks.push_back(peaks);
  }
  run.output = std::move(current);
  return run;
}

Tensor3 reference_network(const model::Network& network, const Tensor3& input,
                          std::uint64_t filter_seed) {
  if (!chainable(network)) {
    throw std::invalid_argument("reference_network: network is not chainable");
  }
  Tensor3 current = input;
  for (std::size_t i = 0; i < network.size(); ++i) {
    const model::Layer& layer = network.layer(i);
    current = reference_forward(layer, operands_for(layer, current,
                                                    filter_seed + i));
  }
  return current;
}

}  // namespace rainbow::ref
