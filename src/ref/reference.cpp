#include "ref/reference.hpp"

#include <random>

namespace rainbow::ref {

void validate_operands(const model::Layer& layer,
                       const LayerOperands& operands) {
  if (operands.ifmap.channels() != layer.channels() ||
      operands.ifmap.height() != layer.ifmap_h() ||
      operands.ifmap.width() != layer.ifmap_w()) {
    throw std::invalid_argument("operands: ifmap shape mismatch for layer '" +
                                layer.name() + "'");
  }
  const int filter_channels = layer.is_depthwise() ? 1 : layer.channels();
  if (operands.filters.filters() != layer.filters() ||
      operands.filters.channels() != filter_channels ||
      operands.filters.height() != layer.filter_h() ||
      operands.filters.width() != layer.filter_w()) {
    throw std::invalid_argument("operands: filter shape mismatch for layer '" +
                                layer.name() + "'");
  }
}

Tensor3 reference_forward(const model::Layer& layer,
                          const LayerOperands& operands) {
  validate_operands(layer, operands);
  const int p = layer.padding();
  const int s = layer.stride();
  Tensor3 out(layer.ofmap_channels(), layer.ofmap_h(), layer.ofmap_w());
  if (layer.is_depthwise()) {
    for (int c = 0; c < layer.channels(); ++c) {
      for (int y = 0; y < layer.ofmap_h(); ++y) {
        for (int x = 0; x < layer.ofmap_w(); ++x) {
          value_t acc = 0;
          for (int ky = 0; ky < layer.filter_h(); ++ky) {
            for (int kx = 0; kx < layer.filter_w(); ++kx) {
              acc += operands.ifmap.padded_at(c, y * s + ky - p,
                                              x * s + kx - p) *
                     operands.filters.at(c, 0, ky, kx);
            }
          }
          out.at(c, y, x) = acc;
        }
      }
    }
    return out;
  }
  for (int n = 0; n < layer.filters(); ++n) {
    for (int y = 0; y < layer.ofmap_h(); ++y) {
      for (int x = 0; x < layer.ofmap_w(); ++x) {
        value_t acc = 0;
        for (int c = 0; c < layer.channels(); ++c) {
          for (int ky = 0; ky < layer.filter_h(); ++ky) {
            for (int kx = 0; kx < layer.filter_w(); ++kx) {
              acc += operands.ifmap.padded_at(c, y * s + ky - p,
                                              x * s + kx - p) *
                     operands.filters.at(n, c, ky, kx);
            }
          }
        }
        out.at(n, y, x) = acc;
      }
    }
  }
  return out;
}

LayerOperands random_operands(const model::Layer& layer, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(-8, 8);
  LayerOperands ops;
  ops.ifmap = Tensor3(layer.channels(), layer.ifmap_h(), layer.ifmap_w());
  for (int c = 0; c < layer.channels(); ++c) {
    for (int y = 0; y < layer.ifmap_h(); ++y) {
      for (int x = 0; x < layer.ifmap_w(); ++x) {
        ops.ifmap.at(c, y, x) = dist(rng);
      }
    }
  }
  const int filter_channels = layer.is_depthwise() ? 1 : layer.channels();
  ops.filters = Tensor4(layer.filters(), filter_channels, layer.filter_h(),
                        layer.filter_w());
  for (int n = 0; n < layer.filters(); ++n) {
    for (int c = 0; c < filter_channels; ++c) {
      for (int y = 0; y < layer.filter_h(); ++y) {
        for (int x = 0; x < layer.filter_w(); ++x) {
          ops.filters.at(n, c, y, x) = dist(rng);
        }
      }
    }
  }
  return ops;
}

}  // namespace rainbow::ref
