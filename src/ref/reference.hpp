// Golden reference: plain loop-nest convolution for every layer kind
// (CV / DW / PW / PL / FC), exact integer arithmetic, standard zero-padding
// semantics.  The policy executors (policy_exec.hpp) must reproduce these
// outputs bit-for-bit.
#pragma once

#include "model/layer.hpp"
#include "ref/tensor.hpp"

namespace rainbow::ref {

/// Computes `layer` on `operands`.  Validates operand shapes against the
/// layer; throws std::invalid_argument on mismatch.
[[nodiscard]] Tensor3 reference_forward(const model::Layer& layer,
                                        const LayerOperands& operands);

/// Shape checks shared by the executors.
void validate_operands(const model::Layer& layer,
                       const LayerOperands& operands);

}  // namespace rainbow::ref
