// Numerical policy executors: run a layer through the *actual loop nest*
// of each memory-management policy, staging data in buffers sized by the
// policy's footprint terms, and produce the layer's real output.  Together
// with reference.hpp this proves the Section 3.2 policies are semantically
// correct tilings — every policy computes bit-identical results to the
// golden reference while never holding more than its claimed footprint
// on-chip.
#pragma once

#include "core/footprint.hpp"
#include "ref/reference.hpp"

namespace rainbow::ref {

/// High-water marks of the executor's staging buffers, in elements —
/// directly comparable to core::working_footprint's terms.
struct BufferPeaks {
  count_t ifmap = 0;
  count_t filter = 0;
  count_t ofmap = 0;
};

/// Executes `layer` under `choice.policy` with the choice's tiling
/// parameters.  Returns the computed ofmap; fills `peaks` (if non-null)
/// with the staging-buffer high-water marks.  Throws std::invalid_argument
/// for malformed choices or operand shape mismatches.
[[nodiscard]] Tensor3 execute_policy(const model::Layer& layer,
                                     const core::PolicyChoice& choice,
                                     const LayerOperands& operands,
                                     BufferPeaks* peaks = nullptr);

}  // namespace rainbow::ref
