// Numerical policy executors: run a layer through the *actual loop nest*
// of each memory-management policy, staging data in buffers sized by the
// policy's footprint terms, and produce the layer's real output.  Together
// with reference.hpp this proves the Section 3.2 policies are semantically
// correct tilings — every policy computes bit-identical results to the
// golden reference while never holding more than its claimed footprint
// on-chip.
#pragma once

#include "core/footprint.hpp"
#include "ref/exec_backend.hpp"
#include "ref/reference.hpp"

namespace rainbow::ref {

/// High-water marks of the executor's staging buffers, in elements —
/// directly comparable to core::working_footprint's terms.
struct BufferPeaks {
  count_t ifmap = 0;
  count_t filter = 0;
  count_t ofmap = 0;

  friend bool operator==(const BufferPeaks&, const BufferPeaks&) = default;
};

/// Execution options for the backend-aware entry points.  The default
/// backend follows default_exec_backend() (env / --exec-backend override);
/// construct explicitly for a pinned choice.
struct ExecOptions {
  ExecBackend backend = default_exec_backend();
  /// Within-layer parallelism of the blocked backend (disjoint output
  /// tiles; results are thread-count-independent).  1 = serial, 0 = all
  /// hardware threads.  Ignored by the naive oracle.
  int threads = 1;
};

/// Executes `layer` under `choice.policy` with the choice's tiling
/// parameters through the *naive oracle* — the policy's actual staging
/// loop nest.  Returns the computed ofmap; fills `peaks` (if non-null)
/// with the staging-buffer high-water marks.  Throws std::invalid_argument
/// for malformed choices or operand shape mismatches.
[[nodiscard]] Tensor3 execute_policy(const model::Layer& layer,
                                     const core::PolicyChoice& choice,
                                     const LayerOperands& operands,
                                     BufferPeaks* peaks = nullptr);

/// Backend-aware executor.  kNaive runs the oracle above; kBlocked computes
/// the same output through the im2col + blocked GEMM kernel (bit-exact) and
/// reports the oracle's staging peaks via policy_peaks.  Tests pin both
/// equalities across every policy.
[[nodiscard]] Tensor3 execute_policy(const model::Layer& layer,
                                     const core::PolicyChoice& choice,
                                     const LayerOperands& operands,
                                     BufferPeaks* peaks,
                                     const ExecOptions& options);

/// The staging-buffer high-water marks the naive executor would report for
/// (layer, choice), computed from shapes alone — byte-identical to running
/// the oracle, at zero cost.  Throws std::invalid_argument for malformed
/// choices (same validation as execute_policy).
[[nodiscard]] BufferPeaks policy_peaks(const model::Layer& layer,
                                       const core::PolicyChoice& choice);

}  // namespace rainbow::ref
