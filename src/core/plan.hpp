// Execution plans: the analyser's output (Figure 4).  A plan assigns every
// layer of a network a policy choice plus its estimate, and aggregates the
// network-level metrics the evaluation section reports (off-chip access
// volume, latency, prefetch and inter-layer-reuse coverage).
#pragma once

#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "core/estimator.hpp"
#include "model/network.hpp"

namespace rainbow::core {

/// Optimization objectives of Section 3.1.
enum class Objective {
  kAccesses,  ///< Objective 1: minimise off-chip data transfers
  kLatency,   ///< Objective 2: minimise inference latency
};

[[nodiscard]] std::string_view to_string(Objective objective);

/// One layer's slot in a plan.
struct LayerAssignment {
  std::size_t layer_index = 0;
  Estimate estimate;
  /// Inter-layer reuse: this layer reads its ifmap from / leaves its ofmap
  /// in the GLB.
  bool ifmap_from_glb = false;
  bool ofmap_stays_in_glb = false;

  friend bool operator==(const LayerAssignment&, const LayerAssignment&) = default;
};

/// A complete execution plan for one network on one accelerator.
class ExecutionPlan {
 public:
  ExecutionPlan(std::string scheme, std::string model,
                arch::AcceleratorSpec spec, Objective objective)
      : scheme_(std::move(scheme)),
        model_(std::move(model)),
        spec_(spec),
        objective_(objective) {}

  void add(LayerAssignment assignment) {
    assignments_.push_back(std::move(assignment));
  }

  [[nodiscard]] const std::string& scheme() const { return scheme_; }
  [[nodiscard]] const std::string& model() const { return model_; }
  [[nodiscard]] const arch::AcceleratorSpec& spec() const { return spec_; }
  [[nodiscard]] Objective objective() const { return objective_; }
  [[nodiscard]] std::size_t size() const { return assignments_.size(); }
  [[nodiscard]] const LayerAssignment& assignment(std::size_t i) const {
    return assignments_.at(i);
  }
  [[nodiscard]] const std::vector<LayerAssignment>& assignments() const {
    return assignments_;
  }
  [[nodiscard]] LayerAssignment& mutable_assignment(std::size_t i) {
    return assignments_.at(i);
  }

  /// Total off-chip transfers in elements / bytes / MB.
  [[nodiscard]] count_t total_accesses() const;
  [[nodiscard]] count_t total_access_bytes() const;
  [[nodiscard]] double total_access_mb() const;

  /// End-to-end latency in cycles (layers execute back-to-back).
  [[nodiscard]] double total_latency_cycles() const;

  /// Sum of per-layer compute cycles (the zero-stall lower bound).
  [[nodiscard]] double total_compute_cycles() const;

  /// Fraction of layers whose chosen policy prefetches, in [0, 1].
  [[nodiscard]] double prefetch_coverage() const;

  /// Fraction of layer boundaries exploiting inter-layer reuse, relative to
  /// `eligible_boundaries` (pass the network's sequential-boundary count).
  [[nodiscard]] double interlayer_coverage(std::size_t eligible_boundaries) const;
  [[nodiscard]] std::size_t interlayer_links() const;

  /// True when every layer's estimate fits the GLB.
  [[nodiscard]] bool feasible() const;

 private:
  std::string scheme_;
  std::string model_;
  arch::AcceleratorSpec spec_;
  Objective objective_;
  std::vector<LayerAssignment> assignments_;
};

/// Number of boundaries where layer i+1 consumes layer i's output directly
/// — the denominator of the paper's inter-layer-reuse coverage.
[[nodiscard]] std::size_t sequential_boundaries(const model::Network& network);

}  // namespace rainbow::core
