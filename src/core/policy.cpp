#include "core/policy.hpp"

#include <ostream>
#include <stdexcept>

namespace rainbow::core {

std::string_view to_string(Policy policy) {
  switch (policy) {
    case Policy::kIntraLayer:
      return "intra-layer reuse";
    case Policy::kIfmapReuse:
      return "policy 1 (ifmap reuse)";
    case Policy::kFilterReuse:
      return "policy 2 (filter reuse)";
    case Policy::kPerChannel:
      return "policy 3 (per-channel reuse)";
    case Policy::kPartialIfmap:
      return "policy 4 (partial ifmap reuse)";
    case Policy::kPartialPerChannel:
      return "policy 5 (partial per-channel reuse)";
    case Policy::kFallbackTiled:
      return "fallback constrained tiling";
  }
  throw std::logic_error("to_string: invalid Policy");
}

std::string short_label(Policy policy, bool prefetch) {
  std::string label;
  switch (policy) {
    case Policy::kIntraLayer:
      label = "intra";
      break;
    case Policy::kIfmapReuse:
      label = "p1";
      break;
    case Policy::kFilterReuse:
      label = "p2";
      break;
    case Policy::kPerChannel:
      label = "p3";
      break;
    case Policy::kPartialIfmap:
      label = "p4";
      break;
    case Policy::kPartialPerChannel:
      label = "p5";
      break;
    case Policy::kFallbackTiled:
      label = "tiled";
      break;
  }
  if (prefetch) {
    label += "+p";
  }
  return label;
}

Policy policy_from_short_label(std::string_view label) {
  if (label == "intra") return Policy::kIntraLayer;
  if (label == "p1") return Policy::kIfmapReuse;
  if (label == "p2") return Policy::kFilterReuse;
  if (label == "p3") return Policy::kPerChannel;
  if (label == "p4") return Policy::kPartialIfmap;
  if (label == "p5") return Policy::kPartialPerChannel;
  if (label == "tiled") return Policy::kFallbackTiled;
  throw std::invalid_argument("policy_from_short_label: unknown label '" +
                              std::string(label) + "'");
}

std::ostream& operator<<(std::ostream& os, const PolicyChoice& choice) {
  os << short_label(choice.policy, choice.prefetch);
  if (choice.policy == Policy::kPartialIfmap ||
      choice.policy == Policy::kPartialPerChannel ||
      choice.policy == Policy::kFallbackTiled) {
    os << "(n=" << choice.filter_block;
    if (choice.policy == Policy::kFallbackTiled) {
      os << ",R=" << choice.row_stripe;
    }
    os << ')';
  }
  return os;
}

bool is_minimum_traffic(Policy policy, const model::Layer& layer) {
  switch (policy) {
    case Policy::kIntraLayer:
    case Policy::kIfmapReuse:
    case Policy::kFilterReuse:
    case Policy::kPerChannel:
      return true;
    case Policy::kPartialIfmap:
    case Policy::kPartialPerChannel:
      // One filter per channel: the "re-load per filter block" penalty
      // vanishes because each channel meets exactly one filter.
      return layer.is_depthwise();
    case Policy::kFallbackTiled:
      return false;
  }
  throw std::logic_error("is_minimum_traffic: invalid Policy");
}

}  // namespace rainbow::core
