#include "core/fallback.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/units.hpp"

namespace rainbow::core {

std::string_view to_string(AccessDirection direction) {
  switch (direction) {
    case AccessDirection::kHeightWise:
      return "height-wise";
    case AccessDirection::kWidthWise:
      return "width-wise";
    case AccessDirection::kDepthWise:
      return "depth-wise";
  }
  throw std::logic_error("to_string: invalid AccessDirection");
}

namespace {

/// Input units consumed when `out_units` outputs are produced along one
/// spatial dimension with filter extent f and stride s.
count_t input_extent(count_t out_units, count_t f, count_t s) {
  return (out_units - 1) * s + f;
}

}  // namespace

count_t ifmap_traffic_with_reload(const model::Layer& layer,
                                  AccessDirection direction,
                                  int tile_extent) {
  const count_t ph = static_cast<count_t>(layer.padded_ifmap_h());
  const count_t pw = static_cast<count_t>(layer.padded_ifmap_w());
  const count_t ci = static_cast<count_t>(layer.channels());
  const count_t s = static_cast<count_t>(layer.stride());

  switch (direction) {
    case AccessDirection::kHeightWise: {
      const count_t oh = static_cast<count_t>(layer.ofmap_h());
      if (tile_extent < 1 || static_cast<count_t>(tile_extent) > oh) {
        throw std::invalid_argument("ifmap_traffic_with_reload: bad height tile");
      }
      count_t rows = 0;
      for (count_t first = 0; first < oh; first += tile_extent) {
        const count_t out_rows = std::min<count_t>(tile_extent, oh - first);
        rows += input_extent(out_rows, layer.filter_h(), s);
      }
      return rows * pw * ci;
    }
    case AccessDirection::kWidthWise: {
      const count_t ow = static_cast<count_t>(layer.ofmap_w());
      if (tile_extent < 1 || static_cast<count_t>(tile_extent) > ow) {
        throw std::invalid_argument("ifmap_traffic_with_reload: bad width tile");
      }
      count_t cols = 0;
      for (count_t first = 0; first < ow; first += tile_extent) {
        const count_t out_cols = std::min<count_t>(tile_extent, ow - first);
        cols += input_extent(out_cols, layer.filter_w(), s);
      }
      return cols * ph * ci;
    }
    case AccessDirection::kDepthWise: {
      if (tile_extent < 1 || static_cast<count_t>(tile_extent) > ci) {
        throw std::invalid_argument("ifmap_traffic_with_reload: bad depth tile");
      }
      // Channel cuts have no filter overlap: each channel group is loaded
      // exactly once while its partial sums accumulate, so a single
      // traversal costs the padded volume regardless of the tile depth.
      return ph * pw * ci;
    }
  }
  throw std::logic_error("ifmap_traffic_with_reload: invalid direction");
}

count_t reload_overhead(const model::Layer& layer, AccessDirection direction,
                        int tile_extent) {
  return ifmap_traffic_with_reload(layer, direction, tile_extent) -
         layer.padded_ifmap_elems();
}

}  // namespace rainbow::core
