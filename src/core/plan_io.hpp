// Plan persistence: a small text format for the *decisions* of a plan
// (policy, prefetch, tiling parameters, inter-layer flags per layer).
// Saving a plan and re-loading it against the same network and spec
// reconstructs identical metrics — so plans can be generated once, stored
// next to a deployment, audited, or hand-edited and re-validated.
//
//   plan, ResNet18, 65536, 8, accesses
//   0, p1, 1, 1, 0, 0, 0        # index, policy, prefetch, n, R, in, out
//   1, p4, 0, 90, 0, 0, 0
//   ...
#pragma once

#include <filesystem>
#include <string>

#include "core/estimator.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {

/// Serializes a plan's decisions (not its metrics — those are re-derived
/// on load).
[[nodiscard]] std::string serialize_plan(const ExecutionPlan& plan);

/// Reconstructs a plan from its serialized decisions: every layer's
/// estimate is re-computed with `options`, inter-layer adjustments
/// included.  Throws std::runtime_error on malformed input, a
/// network/spec mismatch, or a decision that is infeasible on this GLB
/// (the validation half of the round trip).
[[nodiscard]] ExecutionPlan parse_plan(const std::string& text,
                                       const model::Network& network,
                                       const EstimatorOptions& options = {});

void save_plan(const ExecutionPlan& plan, const std::filesystem::path& path);
[[nodiscard]] ExecutionPlan load_plan(const std::filesystem::path& path,
                                      const model::Network& network,
                                      const EstimatorOptions& options = {});

}  // namespace rainbow::core
