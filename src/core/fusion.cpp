#include "core/fusion.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace rainbow::core {

namespace {

bool row_streamable(const model::Layer& layer) {
  // Dense layers have no spatial rows to stream; everything else does.
  return layer.kind() != model::LayerKind::kFullyConnected;
}

bool shapes_chain(const model::Layer& producer, const model::Layer& consumer) {
  return consumer.channels() == producer.ofmap_channels() &&
         consumer.ifmap_h() == producer.ofmap_h() &&
         consumer.ifmap_w() == producer.ofmap_w();
}

}  // namespace

std::vector<FusionCandidate> fusion_candidates(const model::Network& network,
                                               const ExecutionPlan& plan,
                                               const Estimator& estimator) {
  if (plan.size() != network.size()) {
    throw std::invalid_argument("fusion_candidates: plan/network mismatch");
  }
  const count_t glb = estimator.spec().glb_elems();
  std::vector<FusionCandidate> out;
  for (std::size_t i = 0; i + 1 < network.size(); ++i) {
    if (!network.is_sequential_boundary(i)) {
      continue;
    }
    const model::Layer& producer = network.layer(i);
    const model::Layer& consumer = network.layer(i + 1);
    if (!row_streamable(producer) || !row_streamable(consumer) ||
        !shapes_chain(producer, consumer)) {
      continue;
    }
    FusionCandidate c;
    c.producer = i;

    // Working set of the fused cascade (all element counts):
    //   producer: sliding window over its ifmap + all its filters;
    //   intermediate: a rolling window of F_H(consumer) rows, full width
    //   and channels of the intermediate tensor;
    //   consumer: all its filters + one output row.
    const count_t producer_window =
        static_cast<count_t>(producer.filter_h()) * producer.padded_ifmap_w() *
        producer.channels();
    const count_t rolling =
        static_cast<count_t>(consumer.filter_h()) * consumer.padded_ifmap_w() *
        consumer.channels();
    const count_t consumer_row =
        static_cast<count_t>(consumer.ofmap_w()) * consumer.ofmap_channels();
    c.memory_elems = producer_window + producer.filter_elems() + rolling +
                     consumer.filter_elems() + consumer_row;
    c.feasible = c.memory_elems <= glb;

    // Fused traffic: the intermediate tensor never crosses the DRAM
    // boundary in either direction.
    c.fused_accesses = estimator.ifmap_read_base(producer) +
                       producer.filter_elems() + consumer.filter_elems() +
                       consumer.ofmap_elems();
    c.unfused_accesses = plan.assignment(i).estimate.accesses() +
                         plan.assignment(i + 1).estimate.accesses();
    out.push_back(c);
  }
  return out;
}

std::vector<FusionCandidate> select_fusions(
    const std::vector<FusionCandidate>& candidates) {
  std::vector<FusionCandidate> sorted;
  for (const FusionCandidate& c : candidates) {
    if (c.feasible && c.saving() > 0) {
      sorted.push_back(c);
    }
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const FusionCandidate& a, const FusionCandidate& b) {
              return a.saving() > b.saving();
            });
  std::vector<FusionCandidate> chosen;
  std::set<std::size_t> used;
  for (const FusionCandidate& c : sorted) {
    if (used.count(c.producer) || used.count(c.producer + 1)) {
      continue;
    }
    used.insert(c.producer);
    used.insert(c.producer + 1);
    chosen.push_back(c);
  }
  std::sort(chosen.begin(), chosen.end(),
            [](const FusionCandidate& a, const FusionCandidate& b) {
              return a.producer < b.producer;
            });
  return chosen;
}

count_t fused_total_accesses(const ExecutionPlan& plan,
                             const std::vector<FusionCandidate>& fusions) {
  count_t total = plan.total_accesses();
  for (const FusionCandidate& f : fusions) {
    total -= std::min(total, f.saving());
  }
  return total;
}

}  // namespace rainbow::core
