#include "core/estimator.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/checked.hpp"
#include "util/units.hpp"

namespace rainbow::core {

namespace {

using model::Layer;
using util::cadd;
using util::ceil_div;
using util::cmul;

/// Number of filter "units" the partial policies block over: 3D filters for
/// regular convolutions, per-channel filters (== channels) for depthwise.
int filter_units(const Layer& layer) {
  return layer.is_depthwise() ? layer.channels() : layer.filters();
}

/// Total input rows streamed when the ofmap is processed in row stripes of
/// height `stripe` (fallback tiler): adjacent stripes re-load the (F_H - S)
/// halo rows, the height-wise re-load of Figure 2.
count_t stripe_input_rows(const Layer& layer, int stripe) {
  const count_t oh = static_cast<count_t>(layer.ofmap_h());
  const count_t s = static_cast<count_t>(layer.stride());
  const count_t fh = static_cast<count_t>(layer.filter_h());
  count_t rows = 0;
  for (count_t first = 0; first < oh; first += stripe) {
    const count_t out_rows = std::min<count_t>(stripe, oh - first);
    rows = cadd(rows, cadd(cmul(out_rows - 1, s), fh));
  }
  return rows;
}

}  // namespace

Estimator::Estimator(const arch::AcceleratorSpec& spec, EstimatorOptions options)
    : spec_(spec), options_(options) {
  spec_.validate();
  if (options_.batch < 1) {
    throw std::invalid_argument("Estimator: batch must be >= 1");
  }
}

bool Estimator::filters_amortize_over_batch(Policy policy) {
  // Policies whose filter working set is resident while the activation
  // sweep runs can hoist the batch loop inside it (Section 2.2's "global
  // reuse"): every weight crosses the DRAM boundary once per batch.
  switch (policy) {
    case Policy::kIntraLayer:
    case Policy::kIfmapReuse:
    case Policy::kPartialIfmap:
      return true;
    case Policy::kFilterReuse:
    case Policy::kPerChannel:
    case Policy::kPartialPerChannel:
    case Policy::kFallbackTiled:
      return false;
  }
  throw std::logic_error("filters_amortize_over_batch: invalid Policy");
}

count_t Estimator::ifmap_read_base(const Layer& layer) const {
  return options_.padded_traffic ? layer.padded_ifmap_elems()
                                 : layer.ifmap_elems();
}

double Estimator::compute_cycles(const Layer& layer) const {
  return static_cast<double>(layer.macs()) * options_.batch /
         spec_.effective_macs_per_cycle();
}

TrafficBreakdown Estimator::traffic(const Layer& layer,
                                    const PolicyChoice& choice,
                                    const InterlayerAdjust& adjust) const {
  TrafficBreakdown t;
  const count_t if_base = ifmap_read_base(layer);
  switch (choice.policy) {
    case Policy::kIntraLayer:
    case Policy::kIfmapReuse:
    case Policy::kFilterReuse:
    case Policy::kPerChannel:
      t.ifmap_reads = if_base;
      t.filter_reads = layer.filter_elems();
      break;
    case Policy::kPartialIfmap:
    case Policy::kPartialPerChannel: {
      // Each filter block sweeps the whole ifmap again; depthwise layers
      // pair each channel with exactly one filter, so no re-load there.
      const count_t reloads =
          layer.is_depthwise()
              ? 1
              : ceil_div(static_cast<count_t>(layer.filters()),
                         static_cast<count_t>(choice.filter_block));
      t.ifmap_reads = cmul(if_base, reloads);
      t.filter_reads = layer.filter_elems();
      break;
    }
    case Policy::kFallbackTiled: {
      const count_t stripes =
          ceil_div(static_cast<count_t>(layer.ofmap_h()),
                   static_cast<count_t>(choice.row_stripe));
      const count_t reloads =
          layer.is_depthwise()
              ? 1
              : ceil_div(static_cast<count_t>(layer.filters()),
                         static_cast<count_t>(choice.filter_block));
      const count_t pw = static_cast<count_t>(layer.padded_ifmap_w());
      const count_t ci = static_cast<count_t>(layer.channels());
      count_t rows = stripe_input_rows(layer, choice.row_stripe);
      if (!options_.padded_traffic) {
        // Scale the striped row count down by the unpadded/padded ratio so
        // the no-padding ablation stays consistent.
        rows = cmul(rows, layer.ifmap_elems()) / layer.padded_ifmap_elems();
      }
      t.ifmap_reads = cmul(cmul(cmul(rows, pw), ci), reloads);
      // Filters are re-streamed for every ofmap row stripe.
      t.filter_reads = cmul(layer.filter_elems(), stripes);
      break;
    }
  }
  t.ofmap_writes = layer.ofmap_elems();

  // Batch scaling: activations stream per image; filters amortize when the
  // policy keeps its filter working set resident across the sweep.
  const count_t batch = static_cast<count_t>(options_.batch);
  t.ifmap_reads = cmul(t.ifmap_reads, batch);
  t.ofmap_writes = cmul(t.ofmap_writes, batch);
  if (!filters_amortize_over_batch(choice.policy)) {
    t.filter_reads = cmul(t.filter_reads, batch);
  }

  if (adjust.ifmap_resident) {
    t.ifmap_reads = 0;
  }
  if (adjust.keep_ofmap) {
    t.ofmap_writes = 0;
  }
  return t;
}

Footprint planned_footprint(const Layer& layer, const PolicyChoice& choice,
                            const InterlayerAdjust& adjust) {
  Footprint fp = working_footprint(layer, choice);
  if (adjust.ifmap_resident) {
    // The whole (unpadded) ifmap sits in the GLB, left by the producer.
    fp.ifmap = layer.ifmap_elems();
  }
  if (adjust.keep_ofmap) {
    fp.ofmap = layer.ofmap_elems();
  }
  if (choice.prefetch) {
    // Double-buffer only the streamed terms; resident inter-layer data has
    // a single copy by construction.
    Footprint doubled = fp.doubled();
    if (adjust.ifmap_resident) {
      doubled.ifmap = fp.ifmap;
    }
    if (adjust.keep_ofmap) {
      doubled.ofmap = fp.ofmap;
    }
    return doubled;
  }
  return fp;
}

Estimator::Exposure Estimator::exposure(const Layer& layer,
                                        const PolicyChoice& choice,
                                        const InterlayerAdjust& adjust) const {
  const count_t fh = static_cast<count_t>(layer.filter_h());
  const count_t fw = static_cast<count_t>(layer.filter_w());
  const count_t ci = static_cast<count_t>(layer.channels());
  const count_t nf = static_cast<count_t>(layer.filters());
  const count_t pw = static_cast<count_t>(layer.padded_ifmap_w());
  const count_t ow = static_cast<count_t>(layer.ofmap_w());
  const count_t oh = static_cast<count_t>(layer.ofmap_h());
  const count_t co = static_cast<count_t>(layer.ofmap_channels());
  const count_t n = static_cast<count_t>(choice.filter_block);

  Exposure e;
  switch (choice.policy) {
    case Policy::kIntraLayer:
      e.init = cadd(ifmap_read_base(layer), layer.filter_elems());
      e.final = layer.ofmap_elems();
      break;
    case Policy::kIfmapReuse:
      e.init = cadd(layer.filter_elems(), cmul(cmul(fh, pw), ci));
      e.final = cmul(ow, co);
      break;
    case Policy::kFilterReuse:
      e.init = cadd(ifmap_read_base(layer), layer.single_filter_elems());
      e.final = cmul(oh, ow);
      break;
    case Policy::kPerChannel:
      if (layer.is_depthwise()) {
        e.init = cadd(cmul(fh, fw), cmul(fh, pw));
        e.final = cmul(oh, ow);
      } else {
        e.init = cadd(cmul(cmul(fh, fw), nf), cmul(fh, pw));
        e.final = layer.ofmap_elems();
      }
      break;
    case Policy::kPartialIfmap:
      e.init = cadd(cmul(cmul(fh, fw),
                         layer.is_depthwise() ? n : cmul(ci, n)),
                    cmul(cmul(fh, pw), layer.is_depthwise() ? n : ci));
      e.final = cmul(ow, n);
      break;
    case Policy::kPartialPerChannel:
      e.init = cadd(cmul(cmul(fh, fw), n), cmul(fh, pw));
      e.final = cmul(cmul(oh, ow), n);
      break;
    case Policy::kFallbackTiled: {
      const count_t r = static_cast<count_t>(choice.row_stripe);
      const count_t s = static_cast<count_t>(layer.stride());
      e.init = cadd(cmul(cmul(fh, fw), n),
                    cmul(cadd(cmul(r - 1, s), fh), pw));
      e.final = cmul(cmul(r, ow), n);
      break;
    }
  }
  if (adjust.ifmap_resident) {
    // No initial ifmap load: only the filter part of the first working set
    // is exposed.  Conservatively keep the filter term.
    const count_t filter_init = std::min(e.init, layer.filter_elems());
    e.init = filter_init;
  }
  if (adjust.keep_ofmap) {
    e.final = 0;
  }
  return e;
}

Estimate Estimator::estimate_choice(const Layer& layer,
                                    const PolicyChoice& choice,
                                    const InterlayerAdjust& adjust) const {
  Estimate est;
  est.choice = choice;
  est.footprint = planned_footprint(layer, choice, adjust);
  est.traffic = traffic(layer, choice, adjust);
  est.compute_cycles = compute_cycles(layer);
  est.feasible = est.footprint.total() <= spec_.glb_elems();

  const double bw = spec_.elements_per_cycle();
  const double total_transfer =
      static_cast<double>(est.traffic.total()) / bw;
  if (choice.prefetch) {
    Exposure e = exposure(layer, choice, adjust);
    // Exposure can exceed actual traffic when adjustments zero out reads;
    // clamp so the steady-state term never goes negative.
    const count_t exposed =
        std::min<count_t>(e.init + e.final, est.traffic.total());
    const double hidden =
        static_cast<double>(est.traffic.total() - exposed) / bw;
    est.latency_cycles = static_cast<double>(exposed) / bw +
                         std::max(est.compute_cycles, hidden);
  } else {
    est.latency_cycles = est.compute_cycles + total_transfer;
  }
  return est;
}

std::optional<int> Estimator::max_filter_block(const Layer& layer,
                                               Policy policy, bool prefetch,
                                               const InterlayerAdjust& adjust) const {
  // Footprint is monotone increasing in n, so binary-search the largest
  // feasible block.  n ranges over [1, F#) — n == F# would be P1/P3.
  const int units = filter_units(layer);
  const int hi_limit = std::max(1, units - 1);
  auto fits = [&](int n) {
    PolicyChoice choice{.policy = policy, .prefetch = prefetch,
                        .filter_block = n};
    return planned_footprint(layer, choice, adjust).total() <=
           spec_.glb_elems();
  };
  if (!fits(1)) {
    return std::nullopt;
  }
  int lo = 1;
  int hi = hi_limit;
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (fits(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::optional<PolicyChoice> Estimator::best_fallback(const Layer& layer,
                                                     bool prefetch,
                                                     const InterlayerAdjust& adjust) const {
  const int units = filter_units(layer);
  const int oh = layer.ofmap_h();
  std::optional<PolicyChoice> best;
  count_t best_accesses = 0;
  for (int n = 1; n <= std::max(1, units - 1); ++n) {
    // For fixed n the footprint grows with R; find the largest feasible R
    // (fewest stripes => least filter re-streaming) by binary search.
    auto fits = [&](int r) {
      PolicyChoice choice{.policy = Policy::kFallbackTiled,
                          .prefetch = prefetch,
                          .filter_block = n,
                          .row_stripe = r};
      return planned_footprint(layer, choice, adjust).total() <=
             spec_.glb_elems();
    };
    if (!fits(1)) {
      break;  // larger n only grows the footprint
    }
    int lo = 1;
    int hi = oh;
    while (lo < hi) {
      const int mid = lo + (hi - lo + 1) / 2;
      if (fits(mid)) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    PolicyChoice choice{.policy = Policy::kFallbackTiled,
                        .prefetch = prefetch,
                        .filter_block = n,
                        .row_stripe = lo};
    const count_t accesses = traffic(layer, choice, adjust).total();
    if (!best || accesses < best_accesses) {
      best = choice;
      best_accesses = accesses;
    }
  }
  return best;
}

Estimate Estimator::estimate(const Layer& layer, Policy policy, bool prefetch,
                             const InterlayerAdjust& adjust) const {
  PolicyChoice choice{.policy = policy, .prefetch = prefetch};
  switch (policy) {
    case Policy::kPartialIfmap:
    case Policy::kPartialPerChannel: {
      const auto block = max_filter_block(layer, policy, prefetch, adjust);
      if (!block) {
        choice.filter_block = 1;
        Estimate est = estimate_choice(layer, choice, adjust);
        est.feasible = false;
        return est;
      }
      choice.filter_block = *block;
      return estimate_choice(layer, choice, adjust);
    }
    case Policy::kFallbackTiled: {
      const auto best = best_fallback(layer, prefetch, adjust);
      if (!best) {
        choice.filter_block = 1;
        choice.row_stripe = 1;
        Estimate est = estimate_choice(layer, choice, adjust);
        est.feasible = false;
        return est;
      }
      return estimate_choice(layer, *best, adjust);
    }
    default:
      return estimate_choice(layer, choice, adjust);
  }
}

}  // namespace rainbow::core
