// Algorithm 1: for each layer, evaluate every candidate policy (and its
// prefetching variant), keep the feasible ones, and pick the best under the
// chosen objective — minimum accesses with latency as the tie-breaker, or
// minimum latency with accesses as the tie-breaker.  When no candidate fits
// the GLB, the analyser falls back to constrained tiling (the paper's
// "search for appropriate tile sizes", Section 3.3).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/estimator.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {

class EvalCache;

struct AnalyzerOptions {
  /// Consider the "+p" prefetching variants (Figure 10 disables this).
  bool allow_prefetch = true;
  /// Candidate policies Algorithm 1 iterates over.  Defaults to all six.
  std::vector<Policy> policies{kAllPolicies, kAllPolicies + 6};
  EstimatorOptions estimator;
  /// Memoizes best_estimate results when set (see core/eval_cache.hpp).
  /// Share one cache across analyzers/sweep points freely: keys include
  /// every input that can change the result.  Null disables caching.
  std::shared_ptr<EvalCache> eval_cache;
};

class Analyzer {
 public:
  Analyzer(const arch::AcceleratorSpec& spec, AnalyzerOptions options = {});

  [[nodiscard]] const Estimator& estimator() const { return estimator_; }
  [[nodiscard]] const AnalyzerOptions& options() const { return options_; }

  /// Best feasible estimate for one layer under `objective`, considering
  /// all candidate policies (and prefetch variants when enabled), falling
  /// back to constrained tiling.  Throws std::runtime_error when even the
  /// fallback cannot fit — the layer is unexecutable on this GLB.
  [[nodiscard]] Estimate best_estimate(const model::Layer& layer,
                                       Objective objective,
                                       const InterlayerAdjust& adjust = {}) const;

  /// One row of an explanation: a candidate and whether it won.
  struct Candidate {
    Estimate estimate;
    bool chosen = false;
  };

  /// Every candidate Algorithm 1 considered for `layer` (policies x
  /// prefetch variants, plus the constrained-tiling fallback), with the
  /// winner under `objective` marked.  Infeasible candidates are included
  /// so callers can show *why* they lost.
  [[nodiscard]] std::vector<Candidate> explain(const model::Layer& layer,
                                               Objective objective) const;

  /// Heterogeneous plan: Algorithm 1 applied per layer ("Het").
  [[nodiscard]] ExecutionPlan heterogeneous(const model::Network& network,
                                            Objective objective) const;

  /// heterogeneous() with the per-layer evaluations fanned across
  /// `threads` workers (0 = hardware concurrency).  Layers are independent
  /// and best_estimate is a pure function of its inputs, so the result is
  /// byte-identical to the sequential path (the determinism tests pin
  /// this).
  [[nodiscard]] ExecutionPlan heterogeneous_parallel(
      const model::Network& network, Objective objective,
      std::size_t threads = 0) const;

  /// Homogeneous plan: one fixed policy for every layer; layers where the
  /// policy does not fit use constrained tiling so the plan stays
  /// executable.
  [[nodiscard]] ExecutionPlan homogeneous(const model::Network& network,
                                          Policy policy, bool prefetch,
                                          Objective objective) const;

  /// The best homogeneous plan under `objective` ("Hom" in the
  /// evaluation).  Paper semantics: a candidate policy qualifies only when
  /// it fits *every* layer (with P4/P5's memory-dependent filter block
  /// auto-tuned per layer); the best qualifying policy/prefetch pair wins.
  /// When no policy fits everywhere (tiny GLBs), falls back to the
  /// tiling-patched variant so a plan always exists.
  [[nodiscard]] ExecutionPlan best_homogeneous(const model::Network& network,
                                               Objective objective) const;

 private:
  /// True when `candidate` beats `incumbent` under `objective`
  /// (primary metric first, the other metric as the tie-breaker).
  [[nodiscard]] static bool better(const Estimate& candidate,
                                   const Estimate& incumbent,
                                   Objective objective);

  /// Algorithm 1 proper, bypassing the memoization cache.
  [[nodiscard]] Estimate evaluate_best(const model::Layer& layer,
                                       Objective objective,
                                       const InterlayerAdjust& adjust) const;

  arch::AcceleratorSpec spec_;
  AnalyzerOptions options_;
  Estimator estimator_;
};

}  // namespace rainbow::core
