// MemoryManager: the top-level facade matching the paper's operational flow
// (Figure 4, the RAINBOW tool).  Inputs: a CNN description and accelerator
// specifications.  Outputs: homogeneous / heterogeneous execution plans for
// either objective, optionally with prefetching and inter-layer reuse.
//
//   rainbow::core::MemoryManager manager(rainbow::arch::paper_spec(64 KiB));
//   auto plan = manager.plan(net, Objective::kAccesses);
//   std::cout << plan.total_access_mb() << " MB off-chip\n";
#pragma once

#include <string>

#include "core/analyzer.hpp"
#include "core/interlayer.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {

struct ManagerOptions {
  AnalyzerOptions analyzer;
  /// Apply the Section 5.4 inter-layer-reuse pass on heterogeneous plans.
  bool interlayer_reuse = false;
  /// Fan the per-layer evaluations of plan() across a thread pool.  The
  /// resulting plan is byte-identical to the sequential path (layers are
  /// independent); combine with analyzer.eval_cache for warm re-planning.
  bool parallel_planning = false;
  /// Worker count for parallel planning; 0 = hardware concurrency.
  std::size_t planning_threads = 0;
};

class MemoryManager {
 public:
  explicit MemoryManager(const arch::AcceleratorSpec& spec,
                         ManagerOptions options = {});

  [[nodiscard]] const arch::AcceleratorSpec& spec() const { return spec_; }
  [[nodiscard]] const Analyzer& analyzer() const { return analyzer_; }
  [[nodiscard]] const ManagerOptions& options() const { return options_; }

  /// Heterogeneous plan ("Het"): best policy per layer, plus the
  /// inter-layer pass when enabled in the options.
  [[nodiscard]] ExecutionPlan plan(const model::Network& network,
                                   Objective objective) const;

  /// Best homogeneous plan ("Hom"): one policy network-wide.
  [[nodiscard]] ExecutionPlan plan_homogeneous(const model::Network& network,
                                               Objective objective) const;

  /// A specific homogeneous plan for one named policy.
  [[nodiscard]] ExecutionPlan plan_with_policy(const model::Network& network,
                                               Policy policy, bool prefetch,
                                               Objective objective) const;

  /// Human-readable per-layer report of a plan (policy, footprint split,
  /// accesses, latency) — the Figure 6 style breakdown.
  [[nodiscard]] std::string describe(const ExecutionPlan& plan,
                                     const model::Network& network) const;

 private:
  arch::AcceleratorSpec spec_;
  ManagerOptions options_;
  Analyzer analyzer_;
};

}  // namespace rainbow::core
