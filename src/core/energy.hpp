// Energy accounting for execution plans.  The paper's motivation is
// energy: off-chip transfers cost roughly 10-100x a local operation
// (Section 2.3), so access reduction is energy reduction.  This module
// turns a plan's traffic/compute totals into joules with a simple,
// documented per-event model (defaults are representative 28-45 nm edge
// numbers; only the ratios matter for the reproduced trends).
//
// SRAM accounting: every MAC reads two operands from the scratchpad, and
// every DRAM transfer crosses the scratchpad once (fill or drain).
#pragma once

#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {

struct EnergyModel {
  double dram_pj_per_byte = 160.0;  ///< ~640 pJ per 32-bit DRAM word
  double sram_pj_per_byte = 5.0;    ///< large on-chip SRAM (the GLB)
  double rf_pj_per_byte = 0.5;      ///< PE-local register / forwarding path
  double mac_pj = 0.2;              ///< 8-bit MAC

  /// Throws std::invalid_argument on non-positive coefficients.
  void validate() const;

  /// Off-chip : on-chip cost ratio per byte (the paper's "10-100x").
  [[nodiscard]] double dram_to_sram_ratio() const {
    return dram_pj_per_byte / sram_pj_per_byte;
  }
};

struct EnergyBreakdown {
  double dram_pj = 0.0;
  double sram_pj = 0.0;
  double rf_pj = 0.0;  ///< hierarchical model only; zero in the flat model
  double mac_pj = 0.0;

  [[nodiscard]] double total_pj() const {
    return dram_pj + sram_pj + rf_pj + mac_pj;
  }
  [[nodiscard]] double total_mj() const { return total_pj() * 1e-9; }

  EnergyBreakdown& operator+=(const EnergyBreakdown& other);
};

/// Energy of one layer estimate on `spec`.
[[nodiscard]] EnergyBreakdown layer_energy(const Estimate& estimate,
                                           const model::Layer& layer,
                                           const arch::AcceleratorSpec& spec,
                                           const EnergyModel& model = {});

/// Energy of a whole plan.
[[nodiscard]] EnergyBreakdown plan_energy(const ExecutionPlan& plan,
                                          const model::Network& network,
                                          const EnergyModel& model = {});

/// Energy of raw traffic/MAC totals (for baseline simulator results).
/// Flat two-level model: every MAC charges two scratchpad operand reads.
[[nodiscard]] EnergyBreakdown raw_energy(count_t dram_elems, count_t macs,
                                         const arch::AcceleratorSpec& spec,
                                         const EnergyModel& model = {});

/// Eyeriss-style three-level refinement (DRAM / GLB / PE registers): the
/// output-stationary systolic array forwards operands between PEs, so one
/// GLB read feeds a whole row or column per cycle — the GLB sees
/// folds x T x (rows + cols) reads instead of 2 x MACs, while the
/// register/forwarding level carries the 2-per-MAC traffic.  `glb_stream`
/// is that operand-stream count (scalesim::fold_geometry gives it:
/// folds x T x (active rows + cols), exactly what run_traced measures).
[[nodiscard]] EnergyBreakdown hierarchical_energy(
    count_t dram_elems, count_t glb_stream, count_t macs,
    const arch::AcceleratorSpec& spec, const EnergyModel& model = {});

/// GLB operand-stream reads of one layer on the spec's PE array (the
/// `glb_stream` input of hierarchical_energy).
[[nodiscard]] count_t glb_stream_elems(const model::Layer& layer,
                                       const arch::AcceleratorSpec& spec);

/// Hierarchical energy of a whole plan.
[[nodiscard]] EnergyBreakdown hierarchical_plan_energy(
    const ExecutionPlan& plan, const model::Network& network,
    const EnergyModel& model = {});

}  // namespace rainbow::core
