#include "core/analyzer.hpp"

#include <numeric>
#include <stdexcept>

#include "core/eval_cache.hpp"
#include "util/thread_pool.hpp"

namespace rainbow::core {

Analyzer::Analyzer(const arch::AcceleratorSpec& spec, AnalyzerOptions options)
    : spec_(spec),
      options_(std::move(options)),
      estimator_(spec, options_.estimator) {
  if (options_.policies.empty()) {
    throw std::invalid_argument("Analyzer: empty candidate policy set");
  }
}

bool Analyzer::better(const Estimate& candidate, const Estimate& incumbent,
                      Objective objective) {
  switch (objective) {
    case Objective::kAccesses:
      if (candidate.accesses() != incumbent.accesses()) {
        return candidate.accesses() < incumbent.accesses();
      }
      return candidate.latency_cycles < incumbent.latency_cycles;
    case Objective::kLatency:
      if (candidate.latency_cycles != incumbent.latency_cycles) {
        return candidate.latency_cycles < incumbent.latency_cycles;
      }
      return candidate.accesses() < incumbent.accesses();
  }
  throw std::logic_error("Analyzer::better: invalid Objective");
}

Estimate Analyzer::best_estimate(const model::Layer& layer,
                                 Objective objective,
                                 const InterlayerAdjust& adjust) const {
  if (options_.eval_cache) {
    return options_.eval_cache->get_or_compute(
        make_eval_key(layer, spec_, objective, options_, adjust),
        [&] { return evaluate_best(layer, objective, adjust); });
  }
  return evaluate_best(layer, objective, adjust);
}

Estimate Analyzer::evaluate_best(const model::Layer& layer,
                                 Objective objective,
                                 const InterlayerAdjust& adjust) const {
  std::optional<Estimate> best;
  auto consider = [&](const Estimate& est) {
    if (!est.feasible) {
      return;
    }
    if (!best || better(est, *best, objective)) {
      best = est;
    }
  };
  for (Policy policy : options_.policies) {
    consider(estimator_.estimate(layer, policy, /*prefetch=*/false, adjust));
    if (options_.allow_prefetch) {
      consider(estimator_.estimate(layer, policy, /*prefetch=*/true, adjust));
    }
  }
  // The tile-size search of Algorithm 1 (line 10 failing): always a
  // candidate, not just the escape hatch — on cramped GLBs a row-striped
  // tiling can beat the surviving fixed policies (e.g. P5 with a tiny
  // filter block), and pruning it would let a homogeneous plan win over
  // the heterogeneous one.
  consider(estimator_.estimate(layer, Policy::kFallbackTiled,
                               /*prefetch=*/false, adjust));
  if (options_.allow_prefetch) {
    consider(estimator_.estimate(layer, Policy::kFallbackTiled,
                                 /*prefetch=*/true, adjust));
  }
  if (!best) {
    throw std::runtime_error("Analyzer: layer '" + layer.name() +
                             "' cannot execute within a " +
                             std::to_string(spec_.glb_bytes / 1024) +
                             " kB GLB under any policy or tiling");
  }
  return *best;
}

std::vector<Analyzer::Candidate> Analyzer::explain(const model::Layer& layer,
                                                   Objective objective) const {
  std::vector<Candidate> candidates;
  auto add = [&](Policy policy, bool prefetch) {
    candidates.push_back({estimator_.estimate(layer, policy, prefetch), false});
  };
  for (Policy policy : options_.policies) {
    add(policy, false);
    if (options_.allow_prefetch) {
      add(policy, true);
    }
  }
  add(Policy::kFallbackTiled, false);
  if (options_.allow_prefetch) {
    add(Policy::kFallbackTiled, true);
  }
  std::size_t winner = candidates.size();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!candidates[i].estimate.feasible) {
      continue;
    }
    if (winner == candidates.size() ||
        better(candidates[i].estimate, candidates[winner].estimate,
               objective)) {
      winner = i;
    }
  }
  if (winner < candidates.size()) {
    candidates[winner].chosen = true;
  }
  return candidates;
}

ExecutionPlan Analyzer::heterogeneous(const model::Network& network,
                                      Objective objective) const {
  ExecutionPlan plan("Het", network.name(), spec_, objective);
  for (std::size_t i = 0; i < network.size(); ++i) {
    LayerAssignment assignment;
    assignment.layer_index = i;
    assignment.estimate = best_estimate(network.layer(i), objective);
    plan.add(std::move(assignment));
  }
  return plan;
}

ExecutionPlan Analyzer::heterogeneous_parallel(const model::Network& network,
                                               Objective objective,
                                               std::size_t threads) const {
  // Evaluate into an index-addressed buffer, then assemble in layer order:
  // the plan is identical to heterogeneous() no matter how the pool
  // interleaves the evaluations.
  std::vector<Estimate> estimates(network.size());
  std::vector<std::size_t> indices(network.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  util::parallel_for_each(
      indices,
      [&](std::size_t i) {
        estimates[i] = best_estimate(network.layer(i), objective);
      },
      threads);
  ExecutionPlan plan("Het", network.name(), spec_, objective);
  for (std::size_t i = 0; i < network.size(); ++i) {
    LayerAssignment assignment;
    assignment.layer_index = i;
    assignment.estimate = std::move(estimates[i]);
    plan.add(std::move(assignment));
  }
  return plan;
}

ExecutionPlan Analyzer::homogeneous(const model::Network& network,
                                    Policy policy, bool prefetch,
                                    Objective objective) const {
  ExecutionPlan plan("Hom[" + std::string(short_label(policy, prefetch)) + "]",
                     network.name(), spec_, objective);
  for (std::size_t i = 0; i < network.size(); ++i) {
    LayerAssignment assignment;
    assignment.layer_index = i;
    Estimate est = estimator_.estimate(network.layer(i), policy, prefetch);
    if (!est.feasible) {
      // The fixed policy does not fit this layer.  Per the paper's "search
      // for appropriate tile sizes" (Section 3.3), degrade to the most
      // memory-frugal named policy (P5 with an auto-tuned block, paying
      // its re-load penalty) and only then to row-striped constrained
      // tiling.  Deliberately weaker than the heterogeneous analyser's
      // free choice — a homogeneous plan does not get to pick the best
      // escape hatch per layer.
      est = estimator_.estimate(network.layer(i), Policy::kPartialPerChannel,
                                prefetch);
      if (!est.feasible) {
        est = estimator_.estimate(network.layer(i), Policy::kFallbackTiled,
                                  prefetch);
      }
      if (!est.feasible && prefetch) {
        est = estimator_.estimate(network.layer(i), Policy::kFallbackTiled,
                                  /*prefetch=*/false);
      }
      if (!est.feasible) {
        throw std::runtime_error("Analyzer: layer '" +
                                 network.layer(i).name() +
                                 "' cannot execute within the GLB");
      }
    }
    assignment.estimate = std::move(est);
    plan.add(std::move(assignment));
  }
  return plan;
}

ExecutionPlan Analyzer::best_homogeneous(const model::Network& network,
                                         Objective objective) const {
  std::optional<ExecutionPlan> best;
  auto better_plan = [&](const ExecutionPlan& a, const ExecutionPlan& b) {
    switch (objective) {
      case Objective::kAccesses:
        if (a.total_accesses() != b.total_accesses()) {
          return a.total_accesses() < b.total_accesses();
        }
        return a.total_latency_cycles() < b.total_latency_cycles();
      case Objective::kLatency:
        if (a.total_latency_cycles() != b.total_latency_cycles()) {
          return a.total_latency_cycles() < b.total_latency_cycles();
        }
        return a.total_accesses() < b.total_accesses();
    }
    throw std::logic_error("better_plan: invalid Objective");
  };
  for (Policy policy : options_.policies) {
    for (int prefetch = 0; prefetch <= (options_.allow_prefetch ? 1 : 0);
         ++prefetch) {
      ExecutionPlan plan =
          homogeneous(network, policy, prefetch != 0, objective);
      if (!best || better_plan(plan, *best)) {
        best = std::move(plan);
      }
    }
  }
  if (!best) {
    throw std::logic_error("best_homogeneous: no candidate plans");
  }
  return *best;
}

}  // namespace rainbow::core
