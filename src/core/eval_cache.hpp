// Memoization cache for Algorithm 1 (Analyzer::best_estimate).  Paper-model
// networks repeat identical layer shapes many times (ResNet-18's basic
// blocks, MobileNetV2's inverted residuals), and a DSE sweep re-plans the
// same network across thousands of (GLB, width, batch, objective) points —
// so the same (layer, spec, options, objective, adjust) evaluation recurs
// constantly.  The cache keys on a canonical *value* signature of every
// input that can influence the result; identical inputs hash identically
// across processes (no pointers, no addresses, no iteration-order
// dependence), which the key-soundness tests lock down.
//
// Thread-safety: the cache is sharded by key hash; each shard holds its own
// mutex, map, and FIFO eviction queue, so planner threads hammering the
// cache contend only when they collide on a shard.  Each shard is padded to
// a cache-line boundary and keeps its own plain counters under the shard
// mutex — global atomic counters would put every shard's hot path on the
// same contended cache line, re-serializing exactly the traffic sharding
// exists to spread.  stats() sums the shards; the invariants
// hits + misses == lookups  and  inserts - evictions == entries  hold
// (checked by the concurrency stress test).
//
// The cache stores only *results*: Analyzer::best_estimate stays a pure
// function of its inputs, so cached and uncached planning produce
// byte-identical plans (the determinism golden tests assert exactly this).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "arch/accelerator.hpp"
#include "core/estimator.hpp"
#include "core/plan.hpp"
#include "model/layer.hpp"

namespace rainbow::core {

struct AnalyzerOptions;

/// Canonical byte-string signature of one best_estimate evaluation, with a
/// precomputed FNV-1a hash.  Two keys compare equal iff every field that
/// can influence the estimate is equal; the layer *name* is deliberately
/// excluded so repeated identical shapes share one entry.
class EvalKey {
 public:
  explicit EvalKey(std::string bytes)
      : bytes_(std::move(bytes)), hash_(fnv1a(bytes_)) {}

  [[nodiscard]] const std::string& bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t hash() const { return hash_; }

  friend bool operator==(const EvalKey& a, const EvalKey& b) {
    return a.hash_ == b.hash_ && a.bytes_ == b.bytes_;
  }

  /// 64-bit FNV-1a over a byte string (util/hash.hpp): deterministic
  /// across processes and platforms, unlike std::hash<std::string>.
  [[nodiscard]] static std::uint64_t fnv1a(const std::string& bytes);

 private:
  std::string bytes_;
  std::uint64_t hash_ = 0;
};

/// Builds the canonical signature of one evaluation: layer dimensions (not
/// the name), every AcceleratorSpec field, the objective, the analyzer
/// options that steer Algorithm 1 (prefetch toggle, candidate-policy list
/// in order, estimator options), and the inter-layer residency adjustments.
[[nodiscard]] EvalKey make_eval_key(const model::Layer& layer,
                                    const arch::AcceleratorSpec& spec,
                                    Objective objective,
                                    const AnalyzerOptions& options,
                                    const InterlayerAdjust& adjust);

/// Counter snapshot.  hit_rate() is hits / lookups (0 when idle).
struct EvalCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;    ///< new entries actually added
  std::uint64_t evictions = 0;  ///< entries dropped by the size bound
  std::uint64_t entries = 0;    ///< current resident entries
  std::uint64_t capacity = 0;   ///< configured bound
  /// Approximate resident heap bytes: per entry, the key's byte string
  /// (stored twice — map key and FIFO queue copy) plus the Estimate value
  /// and a fixed allowance for map-node/queue overhead.  Makes cache
  /// sizing observable when many models share one daemon (`--cache-stats`,
  /// the rainbowd stats request); it is an estimate, not malloc truth.
  std::uint64_t approx_bytes = 0;

  [[nodiscard]] double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) / static_cast<double>(lookups);
  }

  [[nodiscard]] double approx_mb() const {
    return static_cast<double>(approx_bytes) / (1024.0 * 1024.0);
  }
};

class EvalCache {
 public:
  static constexpr std::size_t kShardCount = 16;

  /// `max_entries` bounds the total resident entries across all shards
  /// (rounded up to a multiple of the shard count); each shard evicts its
  /// oldest entry (FIFO) once full.  An Estimate is ~100 bytes, so the
  /// default bound costs at most a few hundred MB in the worst case and
  /// far less in practice.
  explicit EvalCache(std::size_t max_entries = 1 << 20);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Returns the cached estimate, or nullopt on a miss.  Counts one lookup
  /// and one hit or miss.
  [[nodiscard]] std::optional<Estimate> lookup(const EvalKey& key);

  /// Inserts `estimate` under `key` unless an entry already exists (the
  /// first writer wins, so concurrent duplicate computations are benign).
  /// Counts one insert only when a new entry is added.
  void insert(const EvalKey& key, const Estimate& estimate);

  /// lookup(); on a miss, computes via `fn()` and inserts.  Exceptions from
  /// `fn` propagate and cache nothing.
  template <typename Fn>
  [[nodiscard]] Estimate get_or_compute(const EvalKey& key, Fn&& fn) {
    if (std::optional<Estimate> cached = lookup(key)) {
      return *std::move(cached);
    }
    Estimate computed = std::forward<Fn>(fn)();
    insert(key, computed);
    return computed;
  }

  [[nodiscard]] EvalCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;

  /// Approximate resident heap bytes (see EvalCacheStats::approx_bytes).
  [[nodiscard]] std::uint64_t approx_bytes() const;

  /// Fixed per-entry overhead allowance: two EvalKey objects, the hash-map
  /// node (bucket pointer + hash + alignment), and the FIFO queue slot.
  static constexpr std::uint64_t kPerEntryOverhead =
      2 * sizeof(void*) * 8;  // ~128 bytes on LP64
  [[nodiscard]] std::size_t capacity() const {
    return per_shard_capacity_ * kShardCount;
  }

  /// Drops every entry; counters are retained.
  void clear();

 private:
  struct KeyHash {
    std::size_t operator()(const EvalKey& key) const noexcept {
      return static_cast<std::size_t>(key.hash());
    }
  };

  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<EvalKey, Estimate, KeyHash> map;
    std::deque<EvalKey> insertion_order;  // FIFO eviction
    std::uint64_t key_bytes = 0;  ///< sum of resident key byte-string sizes
    // Per-shard counters, guarded by the shard mutex the hot path already
    // holds — no extra atomic traffic, no shared counter cache line.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shard_for(const EvalKey& key) {
    // The low bits index the map buckets; take high bits for the shard so
    // the two partitions stay independent.
    return shards_[(key.hash() >> 59) % kShardCount];
  }

  std::array<Shard, kShardCount> shards_;
  std::size_t per_shard_capacity_;
};

}  // namespace rainbow::core
