// The on-chip memory-management policies of Section 3.2.  Each policy is a
// tiling scheme for one layer: which slice of each data type is resident in
// the global buffer at a time, and in what order tiles stream through.
//
// Naming note: the paper's running text defines Policy 1 as "ifmap reuse"
// (all filters resident) and Policy 3 as "per-channel reuse" (one channel of
// all filters resident); its Table 3 prints those two columns swapped.  We
// follow the text.
#pragma once

#include <iosfwd>
#include <string>

#include "model/layer.hpp"

namespace rainbow::core {

enum class Policy {
  kIntraLayer,        ///< whole layer resident; every element moves once
  kIfmapReuse,        ///< P1: all filters resident, ifmap sliding window
  kFilterReuse,       ///< P2: whole ifmap resident, filters one-by-one
  kPerChannel,        ///< P3: one channel of all filters, full ofmap resident
  kPartialIfmap,      ///< P4: P1 with filter blocks of n; ifmap re-loaded
  kPartialPerChannel, ///< P5: P3 with filter blocks of n; ifmap re-loaded
  kFallbackTiled,     ///< constrained tiling when nothing above fits
};

/// All policies Algorithm 1 iterates over (fallback excluded: it is the
/// escape hatch when none of these fit).
inline constexpr Policy kAllPolicies[] = {
    Policy::kIntraLayer,   Policy::kIfmapReuse,        Policy::kFilterReuse,
    Policy::kPerChannel,   Policy::kPartialIfmap,      Policy::kPartialPerChannel,
};

[[nodiscard]] std::string_view to_string(Policy policy);

/// Short labels used in the Figure 6 style per-layer breakdowns:
/// "intra", "p1".."p5", "tiled"; prefetch appends "+p".
[[nodiscard]] std::string short_label(Policy policy, bool prefetch);

/// Inverse of short_label's policy part ("intra", "p1".."p5", "tiled" —
/// without any "+p" suffix).  Throws std::invalid_argument on anything
/// else.
[[nodiscard]] Policy policy_from_short_label(std::string_view label);

/// A concrete, fully-parameterised choice for one layer.
struct PolicyChoice {
  Policy policy = Policy::kIntraLayer;
  bool prefetch = false;
  /// Filter-block size n for P4/P5 (1 <= n < F#); 1 otherwise.
  int filter_block = 1;
  /// Fallback tiler parameters (kFallbackTiled only): ofmap row-stripe
  /// height and filter block.
  int row_stripe = 0;

  friend bool operator==(const PolicyChoice&, const PolicyChoice&) = default;
};

std::ostream& operator<<(std::ostream& os, const PolicyChoice& choice);

/// True when `policy` moves every element between GLB and DRAM exactly once
/// for this layer (P4/P5 qualify only for depthwise layers, which have a
/// single filter per channel — the paper's Section 5.1 observation).
[[nodiscard]] bool is_minimum_traffic(Policy policy, const model::Layer& layer);

}  // namespace rainbow::core
