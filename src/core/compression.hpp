// Memory-compression what-if analysis.  Transparent DRAM-link compression
// (the product space of the second author's affiliation) multiplies each
// data type's off-chip *bytes* by a ratio without changing the on-chip
// working sets — so it composes with the memory-management policies
// instead of replacing them.  This module re-derives a plan's traffic,
// latency, and energy under such ratios, as a post-plan analysis that
// leaves the planner untouched.
#pragma once

#include "core/energy.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {

/// Compressed-size ratios in (0, 1]: 1.0 = incompressible.  Typical edge
/// CNN numbers: weights ~0.5-0.7 after entropy coding, activations
/// ~0.3-0.6 thanks to ReLU sparsity.
struct CompressionModel {
  double ifmap_ratio = 1.0;
  double filter_ratio = 1.0;
  double ofmap_ratio = 1.0;

  /// Throws std::invalid_argument when a ratio leaves (0, 1].
  void validate() const;
};

struct CompressedMetrics {
  double dram_bytes = 0.0;          ///< compressed bytes on the link
  double raw_bytes = 0.0;           ///< uncompressed equivalent
  double latency_cycles = 0.0;      ///< serialized: compute + link time
  double energy_mj = 0.0;           ///< DRAM term scaled by the ratios

  [[nodiscard]] double compression_factor() const {
    return dram_bytes > 0.0 ? raw_bytes / dram_bytes : 1.0;
  }
};

/// Re-derives a plan's off-chip metrics under `compression`.  The latency
/// model is the serialized one (compute + link occupancy) — conservative,
/// but consistent across ratios.  Throws on plan/network mismatch.
[[nodiscard]] CompressedMetrics apply_compression(
    const ExecutionPlan& plan, const model::Network& network,
    const CompressionModel& compression, const EnergyModel& energy = {});

}  // namespace rainbow::core
