// Machine-readable plan export: a structured per-layer report and a JSON
// writer, the hand-off format for toolchains (dashboards, regression
// diffing, compiler frontends) that should not scrape the human tables.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/energy.hpp"
#include "core/eval_cache.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {

/// One layer's row of the structured report.
struct LayerReport {
  std::size_t index = 0;
  std::string name;
  std::string kind;
  std::string policy;       ///< short label, "+p" included
  int filter_block = 1;
  int row_stripe = 0;
  count_t memory_elems = 0;
  count_t ifmap_elems = 0, filter_elems = 0, ofmap_elems = 0;  // footprint
  count_t accesses = 0;
  double latency_cycles = 0.0;
  bool ifmap_from_glb = false;
  bool ofmap_stays_in_glb = false;
};

struct PlanReport {
  std::string model;
  std::string scheme;
  std::string objective;
  count_t glb_bytes = 0;
  int data_width_bits = 8;
  count_t total_accesses = 0;
  double total_latency_cycles = 0.0;
  double energy_mj = 0.0;
  double prefetch_coverage = 0.0;
  /// Evaluation-cache counters for the planning run that produced the
  /// plan, when the caller attaches them (build_report cannot know which
  /// cache — if any — the plan came from).
  std::optional<EvalCacheStats> eval_cache;
  std::vector<LayerReport> layers;
};

/// Builds the structured report.  Throws std::invalid_argument on
/// plan/network mismatch.
[[nodiscard]] PlanReport build_report(const ExecutionPlan& plan,
                                      const model::Network& network,
                                      const EnergyModel& energy = {});

/// Serializes a report as JSON (UTF-8, two-space indent).
void write_json(const PlanReport& report, std::ostream& os);
[[nodiscard]] std::string to_json(const PlanReport& report);

}  // namespace rainbow::core
