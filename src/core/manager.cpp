#include "core/manager.hpp"

#include <sstream>

#include "util/table.hpp"

namespace rainbow::core {

MemoryManager::MemoryManager(const arch::AcceleratorSpec& spec,
                             ManagerOptions options)
    : spec_(spec),
      options_(std::move(options)),
      analyzer_(spec, options_.analyzer) {}

ExecutionPlan MemoryManager::plan(const model::Network& network,
                                  Objective objective) const {
  ExecutionPlan het =
      options_.parallel_planning
          ? analyzer_.heterogeneous_parallel(network, objective,
                                             options_.planning_threads)
          : analyzer_.heterogeneous(network, objective);
  if (options_.interlayer_reuse) {
    return apply_interlayer_reuse(het, network, analyzer_);
  }
  return het;
}

ExecutionPlan MemoryManager::plan_homogeneous(const model::Network& network,
                                              Objective objective) const {
  return analyzer_.best_homogeneous(network, objective);
}

ExecutionPlan MemoryManager::plan_with_policy(const model::Network& network,
                                              Policy policy, bool prefetch,
                                              Objective objective) const {
  return analyzer_.homogeneous(network, policy, prefetch, objective);
}

std::string MemoryManager::describe(const ExecutionPlan& plan,
                                    const model::Network& network) const {
  std::ostringstream os;
  os << plan.scheme() << " plan for " << plan.model() << " (objective: "
     << to_string(plan.objective()) << ", GLB "
     << plan.spec().glb_bytes / 1024 << " kB)\n";
  util::Table table({"layer", "kind", "policy", "ifmap kB", "filter kB",
                     "ofmap kB", "total kB", "accesses", "latency cyc",
                     "inter"});
  const double to_kb =
      static_cast<double>(plan.spec().element_bytes()) / 1024.0;
  for (const LayerAssignment& a : plan.assignments()) {
    const model::Layer& layer = network.layer(a.layer_index);
    const Footprint& fp = a.estimate.footprint;
    std::ostringstream policy_label;
    policy_label << a.estimate.choice;
    std::string inter;
    if (a.ifmap_from_glb) inter += "in";
    if (a.ofmap_stays_in_glb) inter += inter.empty() ? "out" : "+out";
    table.add_row({layer.name(), std::string(model::to_string(layer.kind())),
                   policy_label.str(),
                   util::fmt(static_cast<double>(fp.ifmap) * to_kb),
                   util::fmt(static_cast<double>(fp.filter) * to_kb),
                   util::fmt(static_cast<double>(fp.ofmap) * to_kb),
                   util::fmt(static_cast<double>(fp.total()) * to_kb),
                   util::fmt_count(a.estimate.accesses()),
                   util::fmt_count(static_cast<unsigned long long>(
                       a.estimate.latency_cycles)),
                   inter.empty() ? "-" : inter});
  }
  table.print(os);
  os << "total: " << util::fmt(plan.total_access_mb(), 2)
     << " MB off-chip, "
     << util::fmt_count(
            static_cast<unsigned long long>(plan.total_latency_cycles()))
     << " cycles, prefetch coverage "
     << util::fmt(100.0 * plan.prefetch_coverage()) << "%\n";
  return os.str();
}

}  // namespace rainbow::core
