// Inter-layer reuse pass (Section 5.4): keep a layer's full ofmap resident
// in the GLB and let the next layer consume it as its ifmap, eliminating
// the ofmap store and the ifmap load at that boundary.  Only applies at
// sequential boundaries (layer i+1 reads layer i's output) and only when
// the resident ofmap fits in the GLB alongside both layers' working sets.
#pragma once

#include "core/analyzer.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {

/// Greedy left-to-right application of inter-layer reuse to `plan`.
/// At each sequential boundary, both adjacent layers are re-planned with
/// the residency adjustments; the link is kept when both remain feasible,
/// the plan's objective metric does not regress, and the whole plan's
/// region sequence still places on a first-fit allocator (a resident
/// window can fragment the scratchpad for a later layer even when every
/// layer fits by size).  Returns the improved plan (the input plan is the
/// no-reuse baseline of Figure 11).
[[nodiscard]] ExecutionPlan apply_interlayer_reuse(const ExecutionPlan& plan,
                                                   const model::Network& network,
                                                   const Analyzer& analyzer);

}  // namespace rainbow::core
