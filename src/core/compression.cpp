#include "core/compression.hpp"

#include <stdexcept>

namespace rainbow::core {

void CompressionModel::validate() const {
  for (double r : {ifmap_ratio, filter_ratio, ofmap_ratio}) {
    if (r <= 0.0 || r > 1.0) {
      throw std::invalid_argument(
          "CompressionModel: ratios must lie in (0, 1]");
    }
  }
}

CompressedMetrics apply_compression(const ExecutionPlan& plan,
                                    const model::Network& network,
                                    const CompressionModel& compression,
                                    const EnergyModel& energy) {
  compression.validate();
  energy.validate();
  if (plan.size() != network.size()) {
    throw std::invalid_argument("apply_compression: plan/network mismatch");
  }
  const auto& spec = plan.spec();
  const double elem_bytes = static_cast<double>(spec.element_bytes());

  CompressedMetrics m;
  double compute_cycles = 0.0;
  double sram_pj = 0.0;
  double mac_pj = 0.0;
  for (const LayerAssignment& a : plan.assignments()) {
    const TrafficBreakdown& t = a.estimate.traffic;
    const double raw =
        static_cast<double>(t.total()) * elem_bytes;
    const double compressed =
        (static_cast<double>(t.ifmap_reads) * compression.ifmap_ratio +
         static_cast<double>(t.filter_reads) * compression.filter_ratio +
         static_cast<double>(t.ofmap_writes) * compression.ofmap_ratio) *
        elem_bytes;
    m.raw_bytes += raw;
    m.dram_bytes += compressed;
    compute_cycles += a.estimate.compute_cycles;
    // On-chip costs see the *decompressed* data: the scratchpad stores and
    // the PEs consume raw elements.
    const count_t macs = static_cast<count_t>(
        a.estimate.compute_cycles * spec.effective_macs_per_cycle() + 0.5);
    const double sram_elems = 2.0 * static_cast<double>(macs) +
                              static_cast<double>(t.total());
    sram_pj += sram_elems * elem_bytes * energy.sram_pj_per_byte;
    mac_pj += static_cast<double>(macs) * energy.mac_pj;
  }
  m.latency_cycles =
      compute_cycles + m.dram_bytes / spec.dram_bytes_per_cycle;
  m.energy_mj =
      (m.dram_bytes * energy.dram_pj_per_byte + sram_pj + mac_pj) * 1e-9;
  return m;
}

}  // namespace rainbow::core
