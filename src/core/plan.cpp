#include "core/plan.hpp"

#include <stdexcept>

namespace rainbow::core {

std::string_view to_string(Objective objective) {
  switch (objective) {
    case Objective::kAccesses:
      return "accesses";
    case Objective::kLatency:
      return "latency";
  }
  throw std::logic_error("to_string: invalid Objective");
}

count_t ExecutionPlan::total_accesses() const {
  count_t total = 0;
  for (const LayerAssignment& a : assignments_) {
    total += a.estimate.accesses();
  }
  return total;
}

count_t ExecutionPlan::total_access_bytes() const {
  return total_accesses() * spec_.element_bytes();
}

double ExecutionPlan::total_access_mb() const {
  return static_cast<double>(total_access_bytes()) / (1024.0 * 1024.0);
}

double ExecutionPlan::total_latency_cycles() const {
  double total = 0.0;
  for (const LayerAssignment& a : assignments_) {
    total += a.estimate.latency_cycles;
  }
  return total;
}

double ExecutionPlan::total_compute_cycles() const {
  double total = 0.0;
  for (const LayerAssignment& a : assignments_) {
    total += a.estimate.compute_cycles;
  }
  return total;
}

double ExecutionPlan::prefetch_coverage() const {
  if (assignments_.empty()) {
    return 0.0;
  }
  std::size_t prefetching = 0;
  for (const LayerAssignment& a : assignments_) {
    if (a.estimate.choice.prefetch) {
      ++prefetching;
    }
  }
  return static_cast<double>(prefetching) /
         static_cast<double>(assignments_.size());
}

std::size_t ExecutionPlan::interlayer_links() const {
  std::size_t links = 0;
  for (const LayerAssignment& a : assignments_) {
    if (a.ofmap_stays_in_glb) {
      ++links;
    }
  }
  return links;
}

double ExecutionPlan::interlayer_coverage(std::size_t eligible_boundaries) const {
  if (eligible_boundaries == 0) {
    return 0.0;
  }
  return static_cast<double>(interlayer_links()) /
         static_cast<double>(eligible_boundaries);
}

bool ExecutionPlan::feasible() const {
  for (const LayerAssignment& a : assignments_) {
    if (!a.estimate.feasible) {
      return false;
    }
  }
  return true;
}

std::size_t sequential_boundaries(const model::Network& network) {
  std::size_t count = 0;
  for (std::size_t i = 0; i + 1 < network.size(); ++i) {
    if (network.is_sequential_boundary(i)) {
      ++count;
    }
  }
  return count;
}

}  // namespace rainbow::core
