#include "core/report.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rainbow::core {

PlanReport build_report(const ExecutionPlan& plan,
                        const model::Network& network,
                        const EnergyModel& energy) {
  if (plan.size() != network.size()) {
    throw std::invalid_argument("build_report: plan/network size mismatch");
  }
  PlanReport report;
  report.model = plan.model();
  report.scheme = plan.scheme();
  report.objective = std::string(to_string(plan.objective()));
  report.glb_bytes = plan.spec().glb_bytes;
  report.data_width_bits = plan.spec().data_width_bits;
  report.total_accesses = plan.total_accesses();
  report.total_latency_cycles = plan.total_latency_cycles();
  report.energy_mj = plan_energy(plan, network, energy).total_mj();
  report.prefetch_coverage = plan.prefetch_coverage();
  report.layers.reserve(plan.size());
  for (const LayerAssignment& a : plan.assignments()) {
    const model::Layer& layer = network.layer(a.layer_index);
    LayerReport row;
    row.index = a.layer_index;
    row.name = layer.name();
    row.kind = std::string(model::to_string(layer.kind()));
    row.policy = short_label(a.estimate.choice.policy, a.estimate.choice.prefetch);
    row.filter_block = a.estimate.choice.filter_block;
    row.row_stripe = a.estimate.choice.row_stripe;
    row.memory_elems = a.estimate.memory_elems();
    row.ifmap_elems = a.estimate.footprint.ifmap;
    row.filter_elems = a.estimate.footprint.filter;
    row.ofmap_elems = a.estimate.footprint.ofmap;
    row.accesses = a.estimate.accesses();
    row.latency_cycles = a.estimate.latency_cycles;
    row.ifmap_from_glb = a.ifmap_from_glb;
    row.ofmap_stays_in_glb = a.ofmap_stays_in_glb;
    report.layers.push_back(std::move(row));
  }
  return report;
}

namespace {

/// Minimal JSON string escaping (layer names are identifiers, but be safe).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

void write_json(const PlanReport& report, std::ostream& os) {
  os << "{\n"
     << "  \"model\": \"" << escape(report.model) << "\",\n"
     << "  \"scheme\": \"" << escape(report.scheme) << "\",\n"
     << "  \"objective\": \"" << report.objective << "\",\n"
     << "  \"glb_bytes\": " << report.glb_bytes << ",\n"
     << "  \"data_width_bits\": " << report.data_width_bits << ",\n"
     << "  \"total_accesses\": " << report.total_accesses << ",\n"
     << "  \"total_latency_cycles\": " << report.total_latency_cycles << ",\n"
     << "  \"energy_mj\": " << report.energy_mj << ",\n"
     << "  \"prefetch_coverage\": " << report.prefetch_coverage << ",\n";
  if (report.eval_cache) {
    const EvalCacheStats& c = *report.eval_cache;
    os << "  \"eval_cache\": {\"lookups\": " << c.lookups
       << ", \"hits\": " << c.hits << ", \"misses\": " << c.misses
       << ", \"inserts\": " << c.inserts << ", \"evictions\": " << c.evictions
       << ", \"entries\": " << c.entries << ", \"hit_rate\": " << c.hit_rate()
       << "},\n";
  }
  os << "  \"layers\": [\n";
  for (std::size_t i = 0; i < report.layers.size(); ++i) {
    const LayerReport& l = report.layers[i];
    os << "    {\"index\": " << l.index << ", \"name\": \"" << escape(l.name)
       << "\", \"kind\": \"" << l.kind << "\", \"policy\": \"" << l.policy
       << "\", \"filter_block\": " << l.filter_block
       << ", \"row_stripe\": " << l.row_stripe
       << ", \"memory_elems\": " << l.memory_elems
       << ", \"footprint\": {\"ifmap\": " << l.ifmap_elems
       << ", \"filter\": " << l.filter_elems << ", \"ofmap\": " << l.ofmap_elems
       << "}, \"accesses\": " << l.accesses
       << ", \"latency_cycles\": " << l.latency_cycles
       << ", \"ifmap_from_glb\": " << (l.ifmap_from_glb ? "true" : "false")
       << ", \"ofmap_stays_in_glb\": "
       << (l.ofmap_stays_in_glb ? "true" : "false") << "}"
       << (i + 1 < report.layers.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

std::string to_json(const PlanReport& report) {
  std::ostringstream os;
  write_json(report, os);
  return os.str();
}

}  // namespace rainbow::core
