#include "core/multitenant.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rainbow::core {

namespace {

/// Interleaved (tenant, layer) order: A0 B0 A1 B1 ... with the longer
/// tenant's tail running solo.
std::vector<std::pair<int, std::size_t>> interleave(std::size_t a_layers,
                                                    std::size_t b_layers) {
  std::vector<std::pair<int, std::size_t>> order;
  order.reserve(a_layers + b_layers);
  const std::size_t common = std::min(a_layers, b_layers);
  for (std::size_t i = 0; i < common; ++i) {
    order.emplace_back(0, i);
    order.emplace_back(1, i);
  }
  for (std::size_t i = common; i < a_layers; ++i) {
    order.emplace_back(0, i);
  }
  for (std::size_t i = common; i < b_layers; ++i) {
    order.emplace_back(1, i);
  }
  return order;
}

double metric(const Estimate& est, Objective objective) {
  return objective == Objective::kAccesses
             ? static_cast<double>(est.accesses())
             : est.latency_cycles;
}

}  // namespace

MultiTenantPlan plan_multi_tenant(const model::Network& a,
                                  const model::Network& b,
                                  const arch::AcceleratorSpec& spec,
                                  Objective objective,
                                  const AnalyzerOptions& options) {
  const Analyzer analyzer(spec, options);
  const auto order = interleave(a.size(), b.size());
  const count_t glb = spec.glb_elems();

  auto layer_of = [&](const std::pair<int, std::size_t>& step) -> const model::Layer& {
    return step.first == 0 ? a.layer(step.second) : b.layer(step.second);
  };

  // Feasible candidates and the minimal footprint per step.
  std::vector<std::vector<Analyzer::Candidate>> candidates(order.size());
  std::vector<count_t> min_footprint(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    candidates[i] = analyzer.explain(layer_of(order[i]), objective);
    count_t best = std::numeric_limits<count_t>::max();
    for (const auto& c : candidates[i]) {
      if (c.estimate.feasible) {
        best = std::min(best, c.estimate.memory_elems());
      }
    }
    if (best == std::numeric_limits<count_t>::max()) {
      throw std::runtime_error(
          "plan_multi_tenant: layer '" + layer_of(order[i]).name() +
          "' cannot execute within the GLB at all");
    }
    min_footprint[i] = best;
  }

  MultiTenantPlan plan;
  plan.steps.reserve(order.size());
  count_t prev_footprint = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    // The step shares the GLB with its predecessor (still resident) and
    // must leave room for the successor's most frugal working set.
    const count_t next_min = (i + 1 < order.size()) ? min_footprint[i + 1] : 0;
    if (prev_footprint > glb || next_min > glb) {
      throw std::runtime_error("plan_multi_tenant: neighbouring working sets "
                               "exceed the GLB");
    }
    const count_t budget = glb - std::max(prev_footprint, next_min);
    const Analyzer::Candidate* best = nullptr;
    for (const auto& c : candidates[i]) {
      if (!c.estimate.feasible || c.estimate.memory_elems() > budget) {
        continue;
      }
      if (!best ||
          metric(c.estimate, objective) < metric(best->estimate, objective)) {
        best = &c;
      }
    }
    if (!best) {
      throw std::runtime_error(
          "plan_multi_tenant: layer '" + layer_of(order[i]).name() +
          "' cannot fit next to its neighbours; tenants too large for " +
          std::to_string(spec.glb_bytes / 1024) + " kB");
    }
    TenantStep step;
    step.tenant = order[i].first;
    step.layer_index = order[i].second;
    step.estimate = best->estimate;
    plan.peak_combined_elems =
        std::max(plan.peak_combined_elems,
                 prev_footprint + step.estimate.memory_elems());
    prev_footprint = step.estimate.memory_elems();
    plan.total_accesses += step.estimate.accesses();
    plan.steps.push_back(std::move(step));
  }

  // Latency: per-layer compute/transfer decomposition.  Serialized runs
  // everything back to back; overlapped hides step i+1's transfers behind
  // step i's compute (the cross-tenant pipeline).
  const double bw = spec.elements_per_cycle();
  auto transfer = [&](const TenantStep& s) {
    return static_cast<double>(s.estimate.accesses()) / bw;
  };
  for (const TenantStep& s : plan.steps) {
    plan.serialized_latency_cycles += s.estimate.compute_cycles + transfer(s);
  }
  if (!plan.steps.empty()) {
    plan.overlapped_latency_cycles = transfer(plan.steps.front());
    for (std::size_t i = 0; i + 1 < plan.steps.size(); ++i) {
      plan.overlapped_latency_cycles +=
          std::max(plan.steps[i].estimate.compute_cycles,
                   transfer(plan.steps[i + 1]));
    }
    plan.overlapped_latency_cycles +=
        plan.steps.back().estimate.compute_cycles;
  }
  return plan;
}

}  // namespace rainbow::core
