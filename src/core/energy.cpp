#include "core/energy.hpp"

#include <algorithm>
#include <stdexcept>

namespace rainbow::core {

void EnergyModel::validate() const {
  if (dram_pj_per_byte <= 0.0 || sram_pj_per_byte <= 0.0 ||
      rf_pj_per_byte <= 0.0 || mac_pj <= 0.0) {
    throw std::invalid_argument("EnergyModel: coefficients must be positive");
  }
}

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& other) {
  dram_pj += other.dram_pj;
  sram_pj += other.sram_pj;
  rf_pj += other.rf_pj;
  mac_pj += other.mac_pj;
  return *this;
}

EnergyBreakdown raw_energy(count_t dram_elems, count_t macs,
                           const arch::AcceleratorSpec& spec,
                           const EnergyModel& model) {
  model.validate();
  const double elem_bytes = static_cast<double>(spec.element_bytes());
  EnergyBreakdown e;
  e.dram_pj = static_cast<double>(dram_elems) * elem_bytes *
              model.dram_pj_per_byte;
  // Each MAC reads two operands from the scratchpad; each DRAM transfer
  // crosses it once.
  const double sram_elems =
      2.0 * static_cast<double>(macs) + static_cast<double>(dram_elems);
  e.sram_pj = sram_elems * elem_bytes * model.sram_pj_per_byte;
  e.mac_pj = static_cast<double>(macs) * model.mac_pj;
  return e;
}

EnergyBreakdown layer_energy(const Estimate& estimate,
                             const model::Layer& layer,
                             const arch::AcceleratorSpec& spec,
                             const EnergyModel& model) {
  (void)layer;  // MACs already baked into the estimate's compute cycles
  const count_t macs = static_cast<count_t>(estimate.compute_cycles *
                                            spec.effective_macs_per_cycle() + 0.5);
  return raw_energy(estimate.accesses(), macs, spec, model);
}

count_t glb_stream_elems(const model::Layer& layer,
                         const arch::AcceleratorSpec& spec) {
  // Mirrors scalesim::fold_geometry (core cannot depend on scalesim; the
  // equivalence is pinned by EnergyTest.GlbStreamMatchesTracedSimulation):
  // per fold, every reduction step feeds one operand per active row plus
  // one per active column.
  const count_t rows = static_cast<count_t>(spec.pe_rows);
  const count_t cols = static_cast<count_t>(spec.pe_cols);
  count_t out_pixels = static_cast<count_t>(layer.ofmap_h()) * layer.ofmap_w();
  count_t filters;
  count_t reduction;
  count_t groups = 1;
  if (layer.is_depthwise()) {
    filters = 1;
    reduction = static_cast<count_t>(layer.filter_h()) * layer.filter_w();
    groups = static_cast<count_t>(layer.channels());
  } else {
    filters = static_cast<count_t>(layer.filters());
    reduction = static_cast<count_t>(layer.filter_h()) * layer.filter_w() *
                layer.channels();
  }
  count_t stream = 0;
  for (count_t r0 = 0; r0 < out_pixels; r0 += rows) {
    const count_t active_rows = std::min(rows, out_pixels - r0);
    for (count_t c0 = 0; c0 < filters; c0 += cols) {
      const count_t active_cols = std::min(cols, filters - c0);
      stream += reduction * (active_rows + active_cols);
    }
  }
  return stream * groups;
}

EnergyBreakdown hierarchical_energy(count_t dram_elems, count_t glb_stream,
                                    count_t macs,
                                    const arch::AcceleratorSpec& spec,
                                    const EnergyModel& model) {
  model.validate();
  const double elem_bytes = static_cast<double>(spec.element_bytes());
  EnergyBreakdown e;
  e.dram_pj = static_cast<double>(dram_elems) * elem_bytes *
              model.dram_pj_per_byte;
  // The GLB sees the operand streams into the array edges plus the DRAM
  // fills/drains crossing it.
  e.sram_pj = (static_cast<double>(glb_stream) +
               static_cast<double>(dram_elems)) *
              elem_bytes * model.sram_pj_per_byte;
  // The register/forwarding level carries two operands per MAC.
  e.rf_pj = 2.0 * static_cast<double>(macs) * elem_bytes *
            model.rf_pj_per_byte;
  e.mac_pj = static_cast<double>(macs) * model.mac_pj;
  return e;
}

EnergyBreakdown hierarchical_plan_energy(const ExecutionPlan& plan,
                                         const model::Network& network,
                                         const EnergyModel& model) {
  if (plan.size() != network.size()) {
    throw std::invalid_argument(
        "hierarchical_plan_energy: plan/network size mismatch");
  }
  EnergyBreakdown total;
  for (const LayerAssignment& a : plan.assignments()) {
    const model::Layer& layer = network.layer(a.layer_index);
    const count_t macs = static_cast<count_t>(
        a.estimate.compute_cycles * plan.spec().effective_macs_per_cycle() +
        0.5);
    // Batched plans carry batch x the single-image MACs; the operand
    // streams scale with them.
    const count_t batch = std::max<count_t>(1, macs / layer.macs());
    total += hierarchical_energy(
        a.estimate.accesses(),
        glb_stream_elems(layer, plan.spec()) * batch, macs, plan.spec(),
        model);
  }
  return total;
}

EnergyBreakdown plan_energy(const ExecutionPlan& plan,
                            const model::Network& network,
                            const EnergyModel& model) {
  if (plan.size() != network.size()) {
    throw std::invalid_argument("plan_energy: plan/network size mismatch");
  }
  EnergyBreakdown total;
  for (const LayerAssignment& a : plan.assignments()) {
    total += layer_energy(a.estimate, network.layer(a.layer_index),
                          plan.spec(), model);
  }
  return total;
}

}  // namespace rainbow::core
