// Layer-fusion analysis: the paper executes layer-by-layer (Section 4) and
// its inter-layer reuse (Section 5.4) keeps a FULL ofmap resident — which
// only pays off on large buffers.  Fusion is the finer-grained alternative
// its future work points toward: produce layer i's ofmap row by row and
// consume the rows immediately in layer i+1 through a rolling window, so
// the intermediate tensor never exists in full ANYWHERE — not in DRAM, not
// in the GLB.  The price: both layers' filters must be resident at once
// and the two computations interleave.
//
// This module analyses which boundaries of a plan are fusible under the
// GLB constraint, what each fusion saves, and greedily selects a
// non-overlapping set of fused pairs (a layer participates in at most one
// fusion; chains longer than two are future work, like the paper's).
#pragma once

#include "core/estimator.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {

/// Fusion of boundary i -> i+1 under the row-streaming (P1-style) regime.
struct FusionCandidate {
  std::size_t producer = 0;     ///< layer index i
  /// Working set: producer window + both filter sets + rolling
  /// intermediate window (F_H(i+1) rows) + one consumer output row.
  count_t memory_elems = 0;
  /// Off-chip traffic of the fused pair.
  count_t fused_accesses = 0;
  /// Traffic the unfused pair moves under the plan being analysed.
  count_t unfused_accesses = 0;
  bool feasible = false;        ///< memory_elems fits the GLB

  [[nodiscard]] count_t saving() const {
    return unfused_accesses > fused_accesses
               ? unfused_accesses - fused_accesses
               : 0;
  }
};

/// Analyses every sequential boundary of `plan`.  A boundary qualifies
/// structurally when the consumer's ifmap is exactly the producer's ofmap
/// (matching dims) and both layers stream row-wise (any kind except
/// dense layers, whose "rows" are the whole tensor).
[[nodiscard]] std::vector<FusionCandidate> fusion_candidates(
    const model::Network& network, const ExecutionPlan& plan,
    const Estimator& estimator);

/// Greedy non-overlapping selection maximising total saving.  Returns the
/// chosen candidates (subset of the feasible ones).
[[nodiscard]] std::vector<FusionCandidate> select_fusions(
    const std::vector<FusionCandidate>& candidates);

/// Total plan accesses after applying `fusions` to `plan`.
[[nodiscard]] count_t fused_total_accesses(
    const ExecutionPlan& plan, const std::vector<FusionCandidate>& fusions);

}  // namespace rainbow::core
