// Tile re-load accounting for the three ifmap access directions of
// Figure 2.  When a tile is smaller than the ifmap along the traversal
// direction, the filter overlap forces (F - S) rows/columns of halo to be
// fetched again at every tile boundary; depth-wise cuts force no halo but
// re-visit the full spatial extent per channel group.
//
// The estimator's fallback tiler uses the height-wise direction (cheapest);
// this module exposes all three so the ablation bench can quantify the
// difference and tests can pin the geometry.
#pragma once

#include "model/layer.hpp"

namespace rainbow::core {

enum class AccessDirection { kHeightWise, kWidthWise, kDepthWise };

[[nodiscard]] std::string_view to_string(AccessDirection direction);

/// Elements of ifmap fetched from DRAM when the (padded) ifmap is traversed
/// once in `direction` with tiles spanning `tile_extent` units of that
/// direction (output rows for height-wise, output columns for width-wise,
/// channels for depth-wise).  Includes halo re-loads; equals the padded
/// ifmap volume exactly when one tile covers the whole direction.
/// Throws std::invalid_argument when tile_extent is out of range.
[[nodiscard]] count_t ifmap_traffic_with_reload(const model::Layer& layer,
                                                AccessDirection direction,
                                                int tile_extent);

/// Halo elements re-loaded relative to the single-pass minimum:
/// ifmap_traffic_with_reload(...) - padded ifmap volume.
[[nodiscard]] count_t reload_overhead(const model::Layer& layer,
                                      AccessDirection direction,
                                      int tile_extent);

}  // namespace rainbow::core
