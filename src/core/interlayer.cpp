#include "core/interlayer.hpp"

#include <optional>
#include <stdexcept>

#include "core/estimator.hpp"
#include "engine/glb.hpp"

namespace rainbow::core {

namespace {

double metric(const Estimate& est, Objective objective) {
  return objective == Objective::kAccesses
             ? static_cast<double>(est.accesses())
             : est.latency_cycles;
}

/// Replays the plan's allocation/free skeleton — the same region order the
/// lowering emits — against a real first-fit allocator.  Fitting by size
/// is not enough once a hand-off window pins part of the scratchpad: the
/// window lands wherever first-fit left it, and the holes around it can be
/// too fragmented for the next layer's regions even when their sum fits.
/// A link that fragments the scratchpad this way must stay off-chip.
bool placements_fit(const ExecutionPlan& plan, const model::Network& network) {
  engine::Glb glb(plan.spec().glb_elems());
  std::optional<engine::Glb::Region> persisted;
  try {
    for (const LayerAssignment& a : plan.assignments()) {
      const model::Layer& layer = network.layer(a.layer_index);
      const InterlayerAdjust adjust{.ifmap_resident = a.ifmap_from_glb,
                                    .keep_ofmap = a.ofmap_stays_in_glb};
      const Footprint fp =
          planned_footprint(layer, a.estimate.choice, adjust);
      std::optional<engine::Glb::Region> ifmap;
      if (a.ifmap_from_glb) {
        ifmap = persisted;
        persisted.reset();
      } else if (fp.ifmap != 0) {
        ifmap = glb.allocate(fp.ifmap, layer.name());
      }
      std::optional<engine::Glb::Region> filter;
      if (fp.filter != 0) {
        filter = glb.allocate(fp.filter, layer.name());
      }
      std::optional<engine::Glb::Region> ofmap;
      if (fp.ofmap != 0) {
        ofmap = glb.allocate(fp.ofmap, layer.name());
      }
      if (ifmap) {
        glb.release(*ifmap);
      }
      if (filter) {
        glb.release(*filter);
      }
      if (ofmap) {
        if (a.ofmap_stays_in_glb) {
          persisted = ofmap;
        } else {
          glb.release(*ofmap);
        }
      }
    }
  } catch (const std::runtime_error&) {
    return false;
  }
  return true;
}

}  // namespace

ExecutionPlan apply_interlayer_reuse(const ExecutionPlan& plan,
                                     const model::Network& network,
                                     const Analyzer& analyzer) {
  if (plan.size() != network.size()) {
    throw std::invalid_argument(
        "apply_interlayer_reuse: plan/network size mismatch");
  }
  ExecutionPlan result("Het+inter", plan.model(), plan.spec(),
                       plan.objective());
  for (const LayerAssignment& a : plan.assignments()) {
    result.add(a);
  }

  const Objective objective = plan.objective();
  for (std::size_t i = 0; i + 1 < network.size(); ++i) {
    if (!network.is_sequential_boundary(i)) {
      continue;
    }
    LayerAssignment& producer = result.mutable_assignment(i);
    LayerAssignment& consumer = result.mutable_assignment(i + 1);

    // Re-plan the producer keeping its full ofmap resident (plus any
    // residency it already inherited from boundary i-1), and the consumer
    // reading its ifmap from the GLB.
    InterlayerAdjust producer_adjust{.ifmap_resident = producer.ifmap_from_glb,
                                     .keep_ofmap = true};
    InterlayerAdjust consumer_adjust{.ifmap_resident = true,
                                     .keep_ofmap = false};
    Estimate new_producer;
    Estimate new_consumer;
    try {
      new_producer = analyzer.best_estimate(network.layer(i), objective,
                                            producer_adjust);
      new_consumer = analyzer.best_estimate(network.layer(i + 1), objective,
                                            consumer_adjust);
    } catch (const std::runtime_error&) {
      continue;  // residency cannot fit; boundary stays off-chip
    }
    if (!new_producer.feasible || !new_consumer.feasible) {
      continue;
    }
    // Both layers must be able to hold the resident ofmap at the moment of
    // hand-over; a link is only profitable when it does not regress the
    // objective metric across the pair.
    const double old_cost = metric(producer.estimate, objective) +
                            metric(consumer.estimate, objective);
    const double new_cost =
        metric(new_producer, objective) + metric(new_consumer, objective);
    if (new_cost > old_cost) {
      continue;
    }
    // Apply tentatively, then replay the whole plan's placements: the
    // resident window can fragment the scratchpad for a later layer even
    // though every layer fits by size.  An unplaceable link is reverted.
    const Estimate old_producer = producer.estimate;
    const Estimate old_consumer = consumer.estimate;
    producer.estimate = new_producer;
    producer.ofmap_stays_in_glb = true;
    consumer.estimate = new_consumer;
    consumer.ifmap_from_glb = true;
    if (!placements_fit(result, network)) {
      producer.estimate = old_producer;
      producer.ofmap_stays_in_glb = false;
      consumer.estimate = old_consumer;
      consumer.ifmap_from_glb = false;
    }
  }
  return result;
}

}  // namespace rainbow::core
