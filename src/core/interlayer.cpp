#include "core/interlayer.hpp"

#include <stdexcept>

namespace rainbow::core {

namespace {

double metric(const Estimate& est, Objective objective) {
  return objective == Objective::kAccesses
             ? static_cast<double>(est.accesses())
             : est.latency_cycles;
}

}  // namespace

ExecutionPlan apply_interlayer_reuse(const ExecutionPlan& plan,
                                     const model::Network& network,
                                     const Analyzer& analyzer) {
  if (plan.size() != network.size()) {
    throw std::invalid_argument(
        "apply_interlayer_reuse: plan/network size mismatch");
  }
  ExecutionPlan result("Het+inter", plan.model(), plan.spec(),
                       plan.objective());
  for (const LayerAssignment& a : plan.assignments()) {
    result.add(a);
  }

  const Objective objective = plan.objective();
  for (std::size_t i = 0; i + 1 < network.size(); ++i) {
    if (!network.is_sequential_boundary(i)) {
      continue;
    }
    LayerAssignment& producer = result.mutable_assignment(i);
    LayerAssignment& consumer = result.mutable_assignment(i + 1);

    // Re-plan the producer keeping its full ofmap resident (plus any
    // residency it already inherited from boundary i-1), and the consumer
    // reading its ifmap from the GLB.
    InterlayerAdjust producer_adjust{.ifmap_resident = producer.ifmap_from_glb,
                                     .keep_ofmap = true};
    InterlayerAdjust consumer_adjust{.ifmap_resident = true,
                                     .keep_ofmap = false};
    Estimate new_producer;
    Estimate new_consumer;
    try {
      new_producer = analyzer.best_estimate(network.layer(i), objective,
                                            producer_adjust);
      new_consumer = analyzer.best_estimate(network.layer(i + 1), objective,
                                            consumer_adjust);
    } catch (const std::runtime_error&) {
      continue;  // residency cannot fit; boundary stays off-chip
    }
    if (!new_producer.feasible || !new_consumer.feasible) {
      continue;
    }
    // Both layers must be able to hold the resident ofmap at the moment of
    // hand-over; a link is only profitable when it does not regress the
    // objective metric across the pair.
    const double old_cost = metric(producer.estimate, objective) +
                            metric(consumer.estimate, objective);
    const double new_cost =
        metric(new_producer, objective) + metric(new_consumer, objective);
    if (new_cost > old_cost) {
      continue;
    }
    producer.estimate = new_producer;
    producer.ofmap_stays_in_glb = true;
    consumer.estimate = new_consumer;
    consumer.ifmap_from_glb = true;
  }
  return result;
}

}  // namespace rainbow::core
