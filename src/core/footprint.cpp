#include "core/footprint.hpp"

#include <stdexcept>

#include "util/checked.hpp"

namespace rainbow::core {

namespace {

using model::Layer;
using util::cadd;
using util::cmul;

void check_filter_block(const Layer& layer, int n) {
  const int max_n = layer.is_depthwise() ? layer.channels() : layer.filters();
  if (n < 1 || n > max_n) {
    throw std::invalid_argument("policy_footprint: filter block " +
                                std::to_string(n) + " out of range for layer '" +
                                layer.name() + "'");
  }
}

}  // namespace

Footprint working_footprint(const Layer& layer, const PolicyChoice& choice) {
  const count_t fh = static_cast<count_t>(layer.filter_h());
  const count_t fw = static_cast<count_t>(layer.filter_w());
  const count_t ci = static_cast<count_t>(layer.channels());
  const count_t nf = static_cast<count_t>(layer.filters());
  const count_t pw = static_cast<count_t>(layer.padded_ifmap_w());
  const count_t ow = static_cast<count_t>(layer.ofmap_w());
  const count_t oh = static_cast<count_t>(layer.ofmap_h());
  const count_t co = static_cast<count_t>(layer.ofmap_channels());
  const count_t n = static_cast<count_t>(choice.filter_block);

  switch (choice.policy) {
    case Policy::kIntraLayer:
      return {layer.ifmap_elems(), layer.filter_elems(), layer.ofmap_elems()};

    case Policy::kIfmapReuse:
      // Sliding window of F_H rows across all channels; all filters; one
      // ofmap row across all output channels.
      return {cmul(cmul(fh, pw), ci), layer.filter_elems(), cmul(ow, co)};

    case Policy::kFilterReuse:
      // Whole ifmap; one 3D filter; one ofmap channel.
      return {layer.ifmap_elems(), layer.single_filter_elems(), cmul(oh, ow)};

    case Policy::kPerChannel:
      // One-channel sliding window; one channel of every filter; the whole
      // ofmap (partial sums accumulate across input channels on-chip).
      // Depthwise layers have no cross-channel accumulation, so one ofmap
      // channel suffices.
      if (layer.is_depthwise()) {
        return {cmul(fh, pw), cmul(fh, fw), cmul(oh, ow)};
      }
      return {cmul(fh, pw), cmul(cmul(fh, fw), nf), layer.ofmap_elems()};

    case Policy::kPartialIfmap:
      // P1 with a block of n filters; ofmap row spans only the block.
      check_filter_block(layer, choice.filter_block);
      if (layer.is_depthwise()) {
        // Block of n per-channel filters; only those n channels of the
        // window are needed.
        return {cmul(cmul(fh, pw), n), cmul(cmul(fh, fw), n), cmul(ow, n)};
      }
      return {cmul(cmul(fh, pw), ci), cmul(cmul(cmul(fh, fw), ci), n),
              cmul(ow, n)};

    case Policy::kPartialPerChannel:
      // P3 with a block of n filter channels; ofmap spans only the block.
      check_filter_block(layer, choice.filter_block);
      return {cmul(fh, pw), cmul(cmul(fh, fw), n), cmul(cmul(oh, ow), n)};

    case Policy::kFallbackTiled: {
      // Ofmap row-stripe of height R for a block of n filters, streamed one
      // input channel at a time (the P5 access pattern shrunk further along
      // the height direction — the cheapest re-load direction of Fig. 2).
      check_filter_block(layer, choice.filter_block);
      const count_t r = static_cast<count_t>(choice.row_stripe);
      if (r < 1 || r > oh) {
        throw std::invalid_argument(
            "policy_footprint: row stripe out of range for layer '" +
            layer.name() + "'");
      }
      const count_t s = static_cast<count_t>(layer.stride());
      // Input rows per stripe.
      const count_t stripe_rows = cadd(cmul(r - 1, s), fh);
      return {cmul(stripe_rows, pw), cmul(cmul(fh, fw), n),
              cmul(cmul(r, ow), n)};
    }
  }
  throw std::logic_error("working_footprint: invalid Policy");
}

Footprint policy_footprint(const Layer& layer, const PolicyChoice& choice) {
  const Footprint base = working_footprint(layer, choice);
  return choice.prefetch ? base.doubled() : base;
}

}  // namespace rainbow::core
