// Multi-tenant co-scheduling: the paper's introduction motivates flexible
// management partly by multi-tenancy [20] — several models sharing one
// accelerator.  This module plans two tenants whose layers interleave
// round-robin on one unified GLB: at every step the two active layers'
// working sets must fit *together*, and while one tenant's layer computes
// the other's next layer prefetches — cross-tenant overlap a fixed
// per-tenant partition cannot express.
//
// The planner chooses both layers' policies jointly (candidate x candidate
// search per step, the same Algorithm 1 candidates) under the combined
// capacity constraint.
#pragma once

#include "core/analyzer.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::core {

/// One interleaved step: which tenant ran which layer, with its estimate.
struct TenantStep {
  int tenant = 0;  ///< 0 = A, 1 = B
  std::size_t layer_index = 0;
  Estimate estimate;
};

struct MultiTenantPlan {
  std::vector<TenantStep> steps;
  count_t total_accesses = 0;
  /// Layers executed strictly back-to-back (no cross-tenant overlap).
  double serialized_latency_cycles = 0.0;
  /// Cross-tenant software pipelining: while step i computes, step i+1's
  /// transfers run — the interleaving hides one tenant's loads behind the
  /// other's compute.
  double overlapped_latency_cycles = 0.0;
  /// Largest combined working set of two adjacent steps, in elements —
  /// must fit the GLB.
  count_t peak_combined_elems = 0;

  [[nodiscard]] double total_access_mb(const arch::AcceleratorSpec& spec) const {
    return static_cast<double>(total_accesses * spec.element_bytes()) /
           (1024.0 * 1024.0);
  }
};

/// Plans tenants `a` and `b` interleaved on one GLB under `objective`.
/// Shorter tenants finish early; remaining layers run solo.  Throws
/// std::runtime_error when some step cannot fit both working sets even
/// with the most frugal policies.
[[nodiscard]] MultiTenantPlan plan_multi_tenant(const model::Network& a,
                                                const model::Network& b,
                                                const arch::AcceleratorSpec& spec,
                                                Objective objective,
                                                const AnalyzerOptions& options = {});

}  // namespace rainbow::core
