// Lightweight per-layer estimation models (Figure 4's "Estimator" stage):
// for a (layer, policy) pair, closed-form on-chip memory requirement,
// off-chip access count, and latency.  These are the quantities Algorithm 1
// compares; the tile-level execution engine (src/engine) reproduces them by
// discrete simulation, and the test suite pins the two against each other.
//
// Latency model.  Per layer, compute needs C = MACs / (OPs/2) cycles and the
// DRAM channel needs T = traffic / bandwidth cycles.
//  * without prefetching, loads, compute, and stores serialize:
//        L = C + T
//  * with prefetching (double-buffered tiles), steady-state transfers hide
//    behind compute and only the first working set (init) and the last
//    drain (final) are exposed:
//        L = init/bw + max(C, (T - init - final)/bw) + final/bw
#pragma once

#include <optional>

#include "arch/accelerator.hpp"
#include "core/footprint.hpp"
#include "core/policy.hpp"
#include "model/layer.hpp"

namespace rainbow::core {

struct EstimatorOptions {
  /// Count ifmap padding in off-chip traffic (the paper does; its SCALE-Sim
  /// baseline does not — Section 5.1).  Disable for the fairness ablation.
  bool padded_traffic = true;

  /// Inference batch size.  The paper evaluates batch 1 (Section 4);
  /// larger batches model the Escher-style tradeoff its related work
  /// discusses: activations stream per image (ifmap reads and ofmap writes
  /// scale with the batch), while policies whose filter working set stays
  /// resident across the sweep — intra-layer, P1, P4 — load each filter
  /// once for the whole batch.  Filter-streaming policies (P2/P3/P5 and
  /// the fallback) re-stream per image.  Footprints are unaffected: images
  /// are processed one at a time.
  int batch = 1;
};

/// Off-chip element transfers, split by data type.
struct TrafficBreakdown {
  count_t ifmap_reads = 0;
  count_t filter_reads = 0;
  count_t ofmap_writes = 0;

  [[nodiscard]] count_t total() const {
    return ifmap_reads + filter_reads + ofmap_writes;
  }

  friend bool operator==(const TrafficBreakdown&, const TrafficBreakdown&) = default;
};

/// Result of evaluating one policy choice on one layer.
struct Estimate {
  PolicyChoice choice;
  Footprint footprint;       ///< residency incl. prefetch doubling, elements
  TrafficBreakdown traffic;  ///< off-chip transfers, elements
  double latency_cycles = 0.0;
  double compute_cycles = 0.0;
  bool feasible = false;     ///< footprint fits the GLB

  [[nodiscard]] count_t memory_elems() const { return footprint.total(); }
  [[nodiscard]] count_t accesses() const { return traffic.total(); }

  /// Exact (bitwise on the cycle counts) — the determinism tests compare
  /// cached, uncached, and parallel-planned estimates with this.
  friend bool operator==(const Estimate&, const Estimate&) = default;
};

/// Inter-layer-reuse adjustments applied to an estimate (Section 5.4):
/// the layer's ifmap is already resident in the GLB (produced by the
/// previous layer), and/or its full ofmap must be kept resident for the
/// next layer.
struct InterlayerAdjust {
  bool ifmap_resident = false;  ///< skip the ifmap DRAM reads
  bool keep_ofmap = false;      ///< hold the full ofmap; skip its DRAM writes
};

/// Footprint of `choice` on `layer` including inter-layer residency:
/// a resident ifmap/ofmap replaces the policy's tile term with the full
/// (unpadded) map, and prefetch doubling applies only to streamed terms.
[[nodiscard]] Footprint planned_footprint(const model::Layer& layer,
                                          const PolicyChoice& choice,
                                          const InterlayerAdjust& adjust = {});

class Estimator {
 public:
  Estimator(const arch::AcceleratorSpec& spec, EstimatorOptions options = {});

  [[nodiscard]] const arch::AcceleratorSpec& spec() const { return spec_; }
  [[nodiscard]] const EstimatorOptions& options() const { return options_; }

  /// Evaluates `policy` on `layer`, auto-selecting the best tiling
  /// parameters where the policy has any (largest feasible filter block for
  /// P4/P5; minimum-access (R, n) for the fallback tiler).  The returned
  /// estimate may be infeasible (feasible == false) when the policy cannot
  /// fit the GLB at any parameterisation.
  [[nodiscard]] Estimate estimate(const model::Layer& layer, Policy policy,
                                  bool prefetch,
                                  const InterlayerAdjust& adjust = {}) const;

  /// Evaluates a fully parameterised choice (no auto-tuning).
  [[nodiscard]] Estimate estimate_choice(const model::Layer& layer,
                                         const PolicyChoice& choice,
                                         const InterlayerAdjust& adjust = {}) const;

  /// Off-chip traffic of a fully parameterised choice, in elements.
  [[nodiscard]] TrafficBreakdown traffic(const model::Layer& layer,
                                         const PolicyChoice& choice,
                                         const InterlayerAdjust& adjust = {}) const;

  /// Compute cycles for one layer on this accelerator.
  [[nodiscard]] double compute_cycles(const model::Layer& layer) const;

  /// The ifmap read volume the traffic model charges (padded or not,
  /// depending on options), in elements, before any re-load or batch
  /// multiplier.
  [[nodiscard]] count_t ifmap_read_base(const model::Layer& layer) const;

  /// True when `policy` keeps its filter working set resident across the
  /// activation sweep, so a batch loads each weight only once.
  [[nodiscard]] static bool filters_amortize_over_batch(Policy policy);

 private:
  /// Largest feasible filter block for P4/P5 under the GLB budget, or
  /// nullopt when even n=1 does not fit.
  [[nodiscard]] std::optional<int> max_filter_block(const model::Layer& layer,
                                                    Policy policy,
                                                    bool prefetch,
                                                    const InterlayerAdjust& adjust) const;

  /// Minimum-access fallback tiling (row stripe R, filter block n), or
  /// nullopt when nothing fits.
  [[nodiscard]] std::optional<PolicyChoice> best_fallback(const model::Layer& layer,
                                                          bool prefetch,
                                                          const InterlayerAdjust& adjust) const;

  /// Exposed (non-overlappable) transfer at the start / end of the layer,
  /// used by the prefetch latency model.  In elements.
  struct Exposure {
    count_t init = 0;
    count_t final = 0;
  };
  [[nodiscard]] Exposure exposure(const model::Layer& layer,
                                  const PolicyChoice& choice,
                                  const InterlayerAdjust& adjust) const;

  arch::AcceleratorSpec spec_;
  EstimatorOptions options_;
};

}  // namespace rainbow::core
