// Closed-form on-chip footprints of each policy, broken down per data type
// (used directly by the Figure 3 / Figure 6 memory-breakdown reports).
//
// Footprint conventions calibrated against the paper's Table 3: whole-ifmap
// terms use the unpadded ifmap size; sliding-window tiles span the effective
// padded width (the extent the filter actually sweeps).  Prefetch (Eq. 2)
// doubles every term.
#pragma once

#include "core/policy.hpp"
#include "model/layer.hpp"
#include "util/checked.hpp"

namespace rainbow::core {

/// On-chip residency of one layer under one policy, in elements.
struct Footprint {
  count_t ifmap = 0;
  count_t filter = 0;
  count_t ofmap = 0;

  [[nodiscard]] count_t total() const {
    return util::cadd(util::cadd(ifmap, filter), ofmap);
  }

  /// Eq. 2: double buffering every term for prefetching.
  [[nodiscard]] Footprint doubled() const {
    return {util::cmul(2, ifmap), util::cmul(2, filter), util::cmul(2, ofmap)};
  }

  friend bool operator==(const Footprint&, const Footprint&) = default;
};

/// Footprint of `layer` under `choice.policy` with the choice's tiling
/// parameters (filter_block for P4/P5/fallback, row_stripe for fallback).
/// Includes the prefetch doubling when choice.prefetch is set.
/// Throws std::invalid_argument for out-of-range tiling parameters.
[[nodiscard]] Footprint policy_footprint(const model::Layer& layer,
                                         const PolicyChoice& choice);

/// Same, without the prefetch doubling (single working copy) — what the
/// breakdown figures plot.
[[nodiscard]] Footprint working_footprint(const model::Layer& layer,
                                          const PolicyChoice& choice);

}  // namespace rainbow::core
