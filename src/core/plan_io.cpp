#include "core/plan_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/line_reader.hpp"

namespace rainbow::core {

std::string serialize_plan(const ExecutionPlan& plan) {
  std::ostringstream out;
  out << "# rainbow plan: index, policy, prefetch, filter_block, row_stripe, "
         "ifmap_from_glb, ofmap_stays\n";
  out << "plan, " << plan.model() << ", " << plan.spec().glb_bytes << ", "
      << plan.spec().data_width_bits << ", " << to_string(plan.objective())
      << '\n';
  for (const LayerAssignment& a : plan.assignments()) {
    const PolicyChoice& c = a.estimate.choice;
    out << a.layer_index << ", " << short_label(c.policy, false) << ", "
        << (c.prefetch ? 1 : 0) << ", " << c.filter_block << ", "
        << c.row_stripe << ", " << (a.ifmap_from_glb ? 1 : 0) << ", "
        << (a.ofmap_stays_in_glb ? 1 : 0) << '\n';
  }
  return out.str();
}

namespace {

int parse_int(const std::string& field, std::size_t line_no) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(field, &consumed);
    if (consumed != field.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("plan parse error at line " +
                             std::to_string(line_no) + ": bad integer '" +
                             field + "'");
  }
}

}  // namespace

ExecutionPlan parse_plan(const std::string& text,
                         const model::Network& network,
                         const EstimatorOptions& options) {
  // Plans cross the rainbowd wire too (validate/analyze requests carry a
  // plan body), so they go through the same hardened line reader as model
  // text: CRLF normalization, comment stripping, control-byte rejection.
  util::LineReader reader(text);
  bool saw_header = false;
  std::string model_name;
  arch::AcceleratorSpec spec;
  Objective objective = Objective::kAccesses;
  std::vector<std::vector<std::string>> rows;
  std::optional<util::TextLine> text_line;
  while (true) {
    try {
      text_line = reader.next();
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string("plan parse error at ") + e.what());
    }
    if (!text_line) {
      break;
    }
    const std::size_t line_no = text_line->number;
    const auto fields = util::split_csv_line(text_line->text);
    if (!saw_header) {
      if (fields.size() != 5 || fields[0] != "plan") {
        throw std::runtime_error("plan parse error at line " +
                                 std::to_string(line_no) +
                                 ": expected 'plan, <model>, <glb_bytes>, "
                                 "<width_bits>, <objective>' header");
      }
      model_name = fields[1];
      spec = arch::paper_spec(
          static_cast<count_t>(std::stoull(fields[2])));
      spec.data_width_bits = parse_int(fields[3], line_no);
      spec.validate();
      if (fields[4] == "accesses") {
        objective = Objective::kAccesses;
      } else if (fields[4] == "latency") {
        objective = Objective::kLatency;
      } else {
        throw std::runtime_error("plan parse error at line " +
                                 std::to_string(line_no) +
                                 ": unknown objective '" + fields[4] + "'");
      }
      saw_header = true;
      continue;
    }
    if (fields.size() != 7) {
      throw std::runtime_error("plan parse error at line " +
                               std::to_string(line_no) +
                               ": expected 7 fields");
    }
    rows.push_back(fields);
  }
  if (!saw_header) {
    throw std::runtime_error("plan parse error: missing 'plan' header");
  }
  if (model_name != network.name()) {
    throw std::runtime_error("plan parse error: plan is for model '" +
                             model_name + "', network is '" +
                             network.name() + "'");
  }
  if (rows.size() != network.size()) {
    throw std::runtime_error(
        "plan parse error: " + std::to_string(rows.size()) +
        " decisions for a " + std::to_string(network.size()) +
        "-layer network");
  }

  const Estimator estimator(spec, options);
  ExecutionPlan plan("loaded", model_name, spec, objective);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& f = rows[i];
    const std::size_t index = static_cast<std::size_t>(parse_int(f[0], i + 2));
    if (index != i) {
      throw std::runtime_error("plan parse error: decisions out of order at "
                               "index " + std::to_string(index));
    }
    LayerAssignment a;
    a.layer_index = index;
    PolicyChoice choice;
    choice.policy = policy_from_short_label(f[1]);
    choice.prefetch = parse_int(f[2], i + 2) != 0;
    choice.filter_block = parse_int(f[3], i + 2);
    choice.row_stripe = parse_int(f[4], i + 2);
    a.ifmap_from_glb = parse_int(f[5], i + 2) != 0;
    a.ofmap_stays_in_glb = parse_int(f[6], i + 2) != 0;
    const InterlayerAdjust adjust{.ifmap_resident = a.ifmap_from_glb,
                                  .keep_ofmap = a.ofmap_stays_in_glb};
    a.estimate =
        estimator.estimate_choice(network.layer(index), choice, adjust);
    if (!a.estimate.feasible) {
      throw std::runtime_error("plan validation error: layer " +
                               std::to_string(index) + " ('" +
                               network.layer(index).name() +
                               "') does not fit the " +
                               std::to_string(spec.glb_bytes / 1024) +
                               " kB GLB under the stored decision");
    }
    plan.add(std::move(a));
  }
  return plan;
}

void save_plan(const ExecutionPlan& plan, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_plan: cannot create " + path.string());
  }
  out << serialize_plan(plan);
}

ExecutionPlan load_plan(const std::filesystem::path& path,
                        const model::Network& network,
                        const EstimatorOptions& options) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_plan: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_plan(buffer.str(), network, options);
}

}  // namespace rainbow::core
