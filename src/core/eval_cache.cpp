#include "core/eval_cache.hpp"

#include <bit>
#include <stdexcept>

#include "core/analyzer.hpp"
#include "util/hash.hpp"

namespace rainbow::core {

namespace {

// Fixed-width little-endian field encoders.  Every field is written at a
// fixed size so distinct field sequences can never alias (no separator
// ambiguity), and the encoding is identical on every platform we build on.
void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

}  // namespace

std::uint64_t EvalKey::fnv1a(const std::string& bytes) {
  return util::fnv1a(bytes);
}

EvalKey make_eval_key(const model::Layer& layer,
                      const arch::AcceleratorSpec& spec, Objective objective,
                      const AnalyzerOptions& options,
                      const InterlayerAdjust& adjust) {
  std::string bytes;
  bytes.reserve(160);
  put_u8(bytes, 1);  // signature version; bump on any encoding change

  // Layer hyperparameters (Table 1).  The name is excluded on purpose:
  // repeated identical shapes are the whole point of memoization.
  put_u8(bytes, static_cast<std::uint8_t>(layer.kind()));
  put_i64(bytes, layer.ifmap_h());
  put_i64(bytes, layer.ifmap_w());
  put_i64(bytes, layer.channels());
  put_i64(bytes, layer.filter_h());
  put_i64(bytes, layer.filter_w());
  put_i64(bytes, layer.filters());
  put_i64(bytes, layer.stride());
  put_i64(bytes, layer.padding());

  // Accelerator specification, every field.
  put_i64(bytes, spec.pe_rows);
  put_i64(bytes, spec.pe_cols);
  put_i64(bytes, spec.ops_per_cycle);
  put_i64(bytes, spec.data_width_bits);
  put_u64(bytes, spec.glb_bytes);
  put_f64(bytes, spec.dram_bytes_per_cycle);
  put_f64(bytes, spec.sram_bytes_per_cycle);

  put_u8(bytes, static_cast<std::uint8_t>(objective));

  // Analyzer options that steer Algorithm 1.  The candidate-policy list is
  // encoded in order: the tie-break winner is the first candidate
  // considered, so order changes the result.
  put_u8(bytes, options.allow_prefetch ? 1 : 0);
  put_u64(bytes, options.policies.size());
  for (Policy policy : options.policies) {
    put_u8(bytes, static_cast<std::uint8_t>(policy));
  }
  put_u8(bytes, options.estimator.padded_traffic ? 1 : 0);
  put_i64(bytes, options.estimator.batch);

  put_u8(bytes, adjust.ifmap_resident ? 1 : 0);
  put_u8(bytes, adjust.keep_ofmap ? 1 : 0);

  return EvalKey(std::move(bytes));
}

EvalCache::EvalCache(std::size_t max_entries)
    : per_shard_capacity_((max_entries + kShardCount - 1) / kShardCount) {
  if (max_entries == 0) {
    throw std::invalid_argument("EvalCache: zero capacity");
  }
}

std::optional<Estimate> EvalCache::lookup(const EvalKey& key) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    ++shard.hits;
    return it->second;
  }
  ++shard.misses;
  return std::nullopt;
}

void EvalCache::insert(const EvalKey& key, const Estimate& estimate) {
  Shard& shard = shard_for(key);
  std::lock_guard lock(shard.mutex);
  auto [it, inserted] = shard.map.try_emplace(key, estimate);
  if (!inserted) {
    return;  // first writer won a concurrent duplicate computation
  }
  shard.insertion_order.push_back(key);
  shard.key_bytes += key.bytes().size();
  ++shard.inserts;
  if (shard.map.size() > per_shard_capacity_) {
    const EvalKey& oldest = shard.insertion_order.front();
    shard.key_bytes -= oldest.bytes().size();
    shard.map.erase(oldest);
    shard.insertion_order.pop_front();
    ++shard.evictions;
  }
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  // One pass, one lock acquisition per shard: every per-shard counter pair
  // (hits/misses, inserts/evictions, entries) is read under the same lock
  // hold, so the cross-shard sums keep the stats invariants exactly.
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.inserts += shard.inserts;
    s.evictions += shard.evictions;
    s.entries += shard.map.size();
    s.approx_bytes += 2 * shard.key_bytes +
                      shard.map.size() * (sizeof(Estimate) + kPerEntryOverhead);
  }
  s.lookups = s.hits + s.misses;
  s.capacity = per_shard_capacity_ * kShardCount;
  return s;
}

std::uint64_t EvalCache::approx_bytes() const {
  std::uint64_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    // Key bytes are resident twice (map key + FIFO copy); each entry also
    // carries its Estimate and fixed node/queue overhead.
    total += 2 * shard.key_bytes +
             shard.map.size() * (sizeof(Estimate) + kPerEntryOverhead);
  }
  return total;
}

std::size_t EvalCache::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    total += shard.map.size();
  }
  return total;
}

void EvalCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.map.clear();
    shard.insertion_order.clear();
    shard.key_bytes = 0;
  }
}

}  // namespace rainbow::core
