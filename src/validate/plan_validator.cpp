#include "validate/plan_validator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/footprint.hpp"
#include "core/policy.hpp"
#include "scalesim/systolic.hpp"
#include "util/checked.hpp"
#include "util/units.hpp"

namespace rainbow::validate {

namespace {

using core::Estimator;
using core::Footprint;
using core::Policy;
using core::PolicyChoice;
using core::TrafficBreakdown;
using model::Layer;
using util::ceil_div;
using util::checked_add;
using util::checked_mul;

std::string fmt(count_t v) { return std::to_string(v); }

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// All per-layer closed forms the validator re-derives, computed from the
/// raw integer hyperparameters with always-checked multiplication so wrapped
/// intermediates surface as OverflowError instead of bogus agreement.
struct LayerForms {
  count_t fh, fw, ci, nf, co, oh, ow, ph, pw, s;
  count_t ifmap_elems;
  count_t padded_ifmap_elems;
  count_t filter_elems;
  count_t single_filter_elems;
  count_t ofmap_elems;
  count_t macs;
  bool depthwise;

  explicit LayerForms(const Layer& layer)
      : fh(static_cast<count_t>(layer.filter_h())),
        fw(static_cast<count_t>(layer.filter_w())),
        ci(static_cast<count_t>(layer.channels())),
        nf(static_cast<count_t>(layer.filters())),
        co(static_cast<count_t>(layer.ofmap_channels())),
        oh(static_cast<count_t>(layer.ofmap_h())),
        ow(static_cast<count_t>(layer.ofmap_w())),
        ph(static_cast<count_t>(layer.padded_ifmap_h())),
        pw(static_cast<count_t>(layer.padded_ifmap_w())),
        s(static_cast<count_t>(layer.stride())),
        depthwise(layer.is_depthwise()) {
    const count_t ih = static_cast<count_t>(layer.ifmap_h());
    const count_t iw = static_cast<count_t>(layer.ifmap_w());
    ifmap_elems = checked_mul(checked_mul(ih, iw), ci);
    padded_ifmap_elems = checked_mul(checked_mul(ph, pw), ci);
    single_filter_elems =
        depthwise ? checked_mul(fh, fw) : checked_mul(checked_mul(fh, fw), ci);
    filter_elems = depthwise ? checked_mul(single_filter_elems, ci)
                             : checked_mul(single_filter_elems, nf);
    ofmap_elems = checked_mul(checked_mul(oh, ow), co);
    macs = checked_mul(ofmap_elems,
                       checked_mul(checked_mul(fh, fw), depthwise ? 1 : ci));
  }

  [[nodiscard]] count_t filter_units() const { return depthwise ? ci : nf; }
};

/// Checked mirror of core::working_footprint (Table 3 closed forms).
Footprint derive_working(const LayerForms& f, const PolicyChoice& choice) {
  const count_t n = static_cast<count_t>(choice.filter_block);
  switch (choice.policy) {
    case Policy::kIntraLayer:
      return {f.ifmap_elems, f.filter_elems, f.ofmap_elems};
    case Policy::kIfmapReuse:
      return {checked_mul(checked_mul(f.fh, f.pw), f.ci), f.filter_elems,
              checked_mul(f.ow, f.co)};
    case Policy::kFilterReuse:
      return {f.ifmap_elems, f.single_filter_elems, checked_mul(f.oh, f.ow)};
    case Policy::kPerChannel:
      if (f.depthwise) {
        return {checked_mul(f.fh, f.pw), checked_mul(f.fh, f.fw),
                checked_mul(f.oh, f.ow)};
      }
      return {checked_mul(f.fh, f.pw),
              checked_mul(checked_mul(f.fh, f.fw), f.nf), f.ofmap_elems};
    case Policy::kPartialIfmap:
      if (f.depthwise) {
        return {checked_mul(checked_mul(f.fh, f.pw), n),
                checked_mul(checked_mul(f.fh, f.fw), n), checked_mul(f.ow, n)};
      }
      return {checked_mul(checked_mul(f.fh, f.pw), f.ci),
              checked_mul(checked_mul(checked_mul(f.fh, f.fw), f.ci), n),
              checked_mul(f.ow, n)};
    case Policy::kPartialPerChannel:
      return {checked_mul(f.fh, f.pw),
              checked_mul(checked_mul(f.fh, f.fw), n),
              checked_mul(checked_mul(f.oh, f.ow), n)};
    case Policy::kFallbackTiled: {
      const count_t r = static_cast<count_t>(choice.row_stripe);
      const count_t stripe_rows = checked_add(checked_mul(r - 1, f.s), f.fh);
      return {checked_mul(stripe_rows, f.pw),
              checked_mul(checked_mul(f.fh, f.fw), n),
              checked_mul(checked_mul(r, f.ow), n)};
    }
  }
  throw std::logic_error("derive_working: invalid Policy");
}

/// Checked mirror of core::planned_footprint (inter-layer residency + Eq. 2).
Footprint derive_planned(const LayerForms& f, const PolicyChoice& choice,
                         const core::InterlayerAdjust& adjust) {
  Footprint fp = derive_working(f, choice);
  if (adjust.ifmap_resident) {
    fp.ifmap = f.ifmap_elems;
  }
  if (adjust.keep_ofmap) {
    fp.ofmap = f.ofmap_elems;
  }
  if (choice.prefetch) {
    Footprint doubled{checked_mul(2, fp.ifmap), checked_mul(2, fp.filter),
                      checked_mul(2, fp.ofmap)};
    if (adjust.ifmap_resident) {
      doubled.ifmap = fp.ifmap;
    }
    if (adjust.keep_ofmap) {
      doubled.ofmap = fp.ofmap;
    }
    return doubled;
  }
  return fp;
}

count_t checked_total(const Footprint& fp) {
  return checked_add(checked_add(fp.ifmap, fp.filter), fp.ofmap);
}

/// Checked mirror of Estimator::traffic (Section 3.1 access closed forms).
TrafficBreakdown derive_traffic(const LayerForms& f, const PolicyChoice& choice,
                                const core::EstimatorOptions& options,
                                const core::InterlayerAdjust& adjust) {
  TrafficBreakdown t;
  const count_t if_base =
      options.padded_traffic ? f.padded_ifmap_elems : f.ifmap_elems;
  switch (choice.policy) {
    case Policy::kIntraLayer:
    case Policy::kIfmapReuse:
    case Policy::kFilterReuse:
    case Policy::kPerChannel:
      t.ifmap_reads = if_base;
      t.filter_reads = f.filter_elems;
      break;
    case Policy::kPartialIfmap:
    case Policy::kPartialPerChannel: {
      const count_t reloads =
          f.depthwise
              ? 1
              : ceil_div(f.nf, static_cast<count_t>(choice.filter_block));
      t.ifmap_reads = checked_mul(if_base, reloads);
      t.filter_reads = f.filter_elems;
      break;
    }
    case Policy::kFallbackTiled: {
      const count_t r = static_cast<count_t>(choice.row_stripe);
      const count_t stripes = ceil_div(f.oh, r);
      const count_t reloads =
          f.depthwise
              ? 1
              : ceil_div(f.nf, static_cast<count_t>(choice.filter_block));
      count_t rows = 0;
      for (count_t first = 0; first < f.oh; first += r) {
        const count_t out_rows = std::min<count_t>(r, f.oh - first);
        rows = checked_add(rows,
                           checked_add(checked_mul(out_rows - 1, f.s), f.fh));
      }
      if (!options.padded_traffic) {
        rows = checked_mul(rows, f.ifmap_elems) / f.padded_ifmap_elems;
      }
      t.ifmap_reads =
          checked_mul(checked_mul(checked_mul(rows, f.pw), f.ci), reloads);
      t.filter_reads = checked_mul(f.filter_elems, stripes);
      break;
    }
  }
  t.ofmap_writes = f.ofmap_elems;

  const count_t batch = static_cast<count_t>(options.batch);
  t.ifmap_reads = checked_mul(t.ifmap_reads, batch);
  t.ofmap_writes = checked_mul(t.ofmap_writes, batch);
  if (!Estimator::filters_amortize_over_batch(choice.policy)) {
    t.filter_reads = checked_mul(t.filter_reads, batch);
  }

  if (adjust.ifmap_resident) {
    t.ifmap_reads = 0;
  }
  if (adjust.keep_ofmap) {
    t.ofmap_writes = 0;
  }
  return t;
}

struct Exposure {
  count_t init = 0;
  count_t final = 0;
};

/// Checked mirror of Estimator::exposure (first/last non-hideable transfer).
Exposure derive_exposure(const LayerForms& f, const PolicyChoice& choice,
                         const core::EstimatorOptions& options,
                         const core::InterlayerAdjust& adjust) {
  const count_t n = static_cast<count_t>(choice.filter_block);
  const count_t if_base =
      options.padded_traffic ? f.padded_ifmap_elems : f.ifmap_elems;
  Exposure e;
  switch (choice.policy) {
    case Policy::kIntraLayer:
      e.init = checked_add(if_base, f.filter_elems);
      e.final = f.ofmap_elems;
      break;
    case Policy::kIfmapReuse:
      e.init = checked_add(f.filter_elems,
                           checked_mul(checked_mul(f.fh, f.pw), f.ci));
      e.final = checked_mul(f.ow, f.co);
      break;
    case Policy::kFilterReuse:
      e.init = checked_add(if_base, f.single_filter_elems);
      e.final = checked_mul(f.oh, f.ow);
      break;
    case Policy::kPerChannel:
      if (f.depthwise) {
        e.init = checked_add(checked_mul(f.fh, f.fw), checked_mul(f.fh, f.pw));
        e.final = checked_mul(f.oh, f.ow);
      } else {
        e.init = checked_add(checked_mul(checked_mul(f.fh, f.fw), f.nf),
                             checked_mul(f.fh, f.pw));
        e.final = f.ofmap_elems;
      }
      break;
    case Policy::kPartialIfmap:
      e.init = checked_add(
          checked_mul(checked_mul(f.fh, f.fw),
                      f.depthwise ? n : checked_mul(f.ci, n)),
          checked_mul(checked_mul(f.fh, f.pw), f.depthwise ? n : f.ci));
      e.final = checked_mul(f.ow, n);
      break;
    case Policy::kPartialPerChannel:
      e.init = checked_add(checked_mul(checked_mul(f.fh, f.fw), n),
                           checked_mul(f.fh, f.pw));
      e.final = checked_mul(checked_mul(f.oh, f.ow), n);
      break;
    case Policy::kFallbackTiled: {
      const count_t r = static_cast<count_t>(choice.row_stripe);
      const count_t stripe_rows = checked_add(checked_mul(r - 1, f.s), f.fh);
      e.init = checked_add(checked_mul(checked_mul(f.fh, f.fw), n),
                           checked_mul(stripe_rows, f.pw));
      e.final = checked_mul(checked_mul(r, f.ow), n);
      break;
    }
  }
  if (adjust.ifmap_resident) {
    e.init = std::min(e.init, f.filter_elems);
  }
  if (adjust.keep_ofmap) {
    e.final = 0;
  }
  return e;
}

bool cycles_match(double a, double b, double tolerance) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tolerance * scale;
}

Diagnostic make(Code code, Severity severity, std::size_t layer,
                const std::string& context, std::string expected,
                std::string actual, std::string detail) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.layer = layer;
  d.context = context;
  d.expected = std::move(expected);
  d.actual = std::move(actual);
  d.detail = std::move(detail);
  return d;
}

}  // namespace

PlanValidator::PlanValidator(ValidatorOptions options)
    : options_(options) {}

ValidatorOptions PlanValidator::structural_only() {
  ValidatorOptions options;
  options.check_traffic = false;
  options.check_latency = false;
  return options;
}

ValidationReport PlanValidator::validate(const core::ExecutionPlan& plan,
                                         const model::Network& network) const {
  ValidationReport report;

  try {
    plan.spec().validate();
  } catch (const std::invalid_argument& e) {
    Diagnostic d;
    d.code = Code::kSpecInvalid;
    d.context = "accelerator spec";
    d.detail = e.what();
    report.add(std::move(d));
    return report;  // glb_elems() etc. are meaningless past this point
  }

  if (plan.size() != network.size()) {
    Diagnostic d;
    d.code = Code::kLayerIndexMismatch;
    d.context = network.name();
    d.expected = fmt(static_cast<count_t>(network.size())) + " assignments";
    d.actual = fmt(static_cast<count_t>(plan.size()));
    d.detail = "plan covers a different number of layers than the network";
    report.add(std::move(d));
    return report;
  }

  for (std::size_t i = 0; i < plan.size(); ++i) {
    validate_layer(plan, network, i, report);
  }
  validate_interlayer(plan, network, report);
  return report;
}

void PlanValidator::validate_layer(const core::ExecutionPlan& plan,
                                   const model::Network& network,
                                   std::size_t index,
                                   ValidationReport& report) const {
  const core::LayerAssignment& a = plan.assignment(index);
  const Layer& layer = network.layer(index);
  const std::string& name = layer.name();
  const PolicyChoice& choice = a.estimate.choice;

  if (a.layer_index != index) {
    report.add(make(Code::kLayerIndexMismatch, Severity::kError, index, name,
                    fmt(static_cast<count_t>(index)),
                    fmt(static_cast<count_t>(a.layer_index)),
                    "assignment is out of order"));
  }

  try {
    const LayerForms f(layer);
    const count_t units = f.filter_units();
    const bool blocked = choice.policy == Policy::kPartialIfmap ||
                         choice.policy == Policy::kPartialPerChannel ||
                         choice.policy == Policy::kFallbackTiled;

    // V003: tiling parameters within the layer's bounds.
    if (blocked) {
      const count_t n = static_cast<count_t>(choice.filter_block);
      if (choice.filter_block < 1 || n > units) {
        report.add(make(Code::kTileOutOfRange, Severity::kError, index, name,
                        "filter block in [1, " + fmt(units) + "]",
                        std::to_string(choice.filter_block),
                        "filter block outside the layer's filter-unit range"));
        return;  // footprint/traffic forms are undefined for this choice
      }
      if (n == units && choice.policy != Policy::kFallbackTiled) {
        report.add(make(Code::kTileOutOfRange, Severity::kWarning, index, name,
                        "filter block < " + fmt(units),
                        std::to_string(choice.filter_block),
                        "full-size filter block degenerates to the "
                        "non-partial policy"));
      }
    } else if (choice.filter_block != 1) {
      report.add(make(Code::kTileOutOfRange, Severity::kWarning, index, name,
                      "1", std::to_string(choice.filter_block),
                      "filter block is ignored by this policy"));
    }
    if (choice.policy == Policy::kFallbackTiled) {
      const count_t r = static_cast<count_t>(choice.row_stripe);
      if (choice.row_stripe < 1 || r > f.oh) {
        report.add(make(Code::kTileOutOfRange, Severity::kError, index, name,
                        "row stripe in [1, " + fmt(f.oh) + "]",
                        std::to_string(choice.row_stripe),
                        "row stripe outside the layer's ofmap height"));
        return;
      }
    } else if (choice.row_stripe != 0) {
      report.add(make(Code::kTileOutOfRange, Severity::kWarning, index, name,
                      "0", std::to_string(choice.row_stripe),
                      "row stripe is ignored by this policy"));
    }

    const core::InterlayerAdjust adjust{.ifmap_resident = a.ifmap_from_glb,
                                        .keep_ofmap = a.ofmap_stays_in_glb};
    const Footprint working = derive_working(f, choice);
    const Footprint planned = derive_planned(f, choice, adjust);
    const Footprint& stored = a.estimate.footprint;

    // V004 / V005: the stored footprint must equal the re-derived closed
    // form.  When the prefetch flag is set and the stored footprint instead
    // matches the *single-buffered* form, the specific invariant broken is
    // Eq. 2's doubling.
    if (stored != planned) {
      Footprint working_resident = working;
      if (adjust.ifmap_resident) {
        working_resident.ifmap = f.ifmap_elems;
      }
      if (adjust.keep_ofmap) {
        working_resident.ofmap = f.ofmap_elems;
      }
      if (choice.prefetch && stored == working_resident) {
        report.add(make(Code::kPrefetchDoubling, Severity::kError, index, name,
                        fmt(checked_total(planned)),
                        fmt(checked_total(stored)),
                        "prefetch footprint is single-buffered; Eq. 2 "
                        "requires every streamed term doubled"));
      } else {
        report.add(make(
            Code::kFootprintMismatch, Severity::kError, index, name,
            fmt(planned.ifmap) + "/" + fmt(planned.filter) + "/" +
                fmt(planned.ofmap),
            fmt(stored.ifmap) + "/" + fmt(stored.filter) + "/" +
                fmt(stored.ofmap),
            "stored ifmap/filter/ofmap footprint differs from the policy "
            "closed form"));
      }
    }

    // V006: the re-derived footprint must fit the GLB.
    const count_t glb = plan.spec().glb_elems();
    const count_t planned_total = checked_total(planned);
    if (planned_total > glb) {
      report.add(make(Code::kGlbOverflow, Severity::kError, index, name,
                      "<= " + fmt(glb), fmt(planned_total),
                      "planned footprint exceeds the GLB capacity"));
    }

    // V007: plans must store feasible estimates.
    if (!a.estimate.feasible) {
      report.add(make(Code::kFeasibilityFlag, Severity::kError, index, name,
                      "feasible", "infeasible",
                      "plan stores an estimate marked infeasible"));
    }

    if (options_.check_traffic) {
      const TrafficBreakdown derived =
          derive_traffic(f, choice, options_.estimator, adjust);
      const TrafficBreakdown& t = a.estimate.traffic;
      if (t.ifmap_reads != derived.ifmap_reads) {
        // The partial policies' ifmap term is (base volume) x ceil(F#/n);
        // a wrong term there is a fold-count error, the paper's Section 3.2
        // re-load invariant.
        const bool fold_form = !f.depthwise &&
                               (choice.policy == Policy::kPartialIfmap ||
                                choice.policy == Policy::kPartialPerChannel);
        if (fold_form) {
          const count_t reloads =
              ceil_div(f.nf, static_cast<count_t>(choice.filter_block));
          report.add(make(Code::kFoldCountMismatch, Severity::kError, index,
                          name,
                          fmt(derived.ifmap_reads) + " (ceil(F#/n) = " +
                              fmt(reloads) + " re-loads)",
                          fmt(t.ifmap_reads),
                          "ifmap re-load volume disagrees with ceil(F#/n)"));
        } else {
          report.add(make(Code::kTrafficMismatch, Severity::kError, index,
                          name, fmt(derived.ifmap_reads), fmt(t.ifmap_reads),
                          "ifmap read volume differs from the closed form"));
        }
      }
      if (t.filter_reads != derived.filter_reads) {
        if (choice.policy == Policy::kFallbackTiled) {
          const count_t stripes =
              ceil_div(f.oh, static_cast<count_t>(choice.row_stripe));
          report.add(make(Code::kFoldCountMismatch, Severity::kError, index,
                          name,
                          fmt(derived.filter_reads) + " (ceil(OH/R) = " +
                              fmt(stripes) + " stripes)",
                          fmt(t.filter_reads),
                          "filter re-stream volume disagrees with "
                          "ceil(OH/R)"));
        } else {
          report.add(make(Code::kTrafficMismatch, Severity::kError, index,
                          name, fmt(derived.filter_reads), fmt(t.filter_reads),
                          "filter read volume differs from the closed form"));
        }
      }
      if (t.ofmap_writes != derived.ofmap_writes) {
        report.add(make(Code::kTrafficMismatch, Severity::kError, index, name,
                        fmt(derived.ofmap_writes), fmt(t.ofmap_writes),
                        "ofmap write volume differs from the closed form"));
      }
    }

    if (options_.check_latency) {
      const double bw = plan.spec().elements_per_cycle();
      const double compute = static_cast<double>(f.macs) *
                             options_.estimator.batch /
                             plan.spec().effective_macs_per_cycle();
      if (!cycles_match(a.estimate.compute_cycles, compute,
                        options_.cycle_tolerance)) {
        report.add(make(Code::kLatencyMismatch, Severity::kError, index, name,
                        fmt(compute), fmt(a.estimate.compute_cycles),
                        "compute cycles differ from MACs / (OPs/2)"));
      }
      const TrafficBreakdown derived =
          derive_traffic(f, choice, options_.estimator, adjust);
      const count_t total = checked_add(
          checked_add(derived.ifmap_reads, derived.filter_reads),
          derived.ofmap_writes);
      double latency = 0.0;
      if (choice.prefetch) {
        const Exposure e = derive_exposure(f, choice, options_.estimator,
                                           adjust);
        const count_t exposed =
            std::min(checked_add(e.init, e.final), total);
        const double hidden = static_cast<double>(total - exposed) / bw;
        latency = static_cast<double>(exposed) / bw +
                  std::max(compute, hidden);
      } else {
        latency = compute + static_cast<double>(total) / bw;
      }
      if (!cycles_match(a.estimate.latency_cycles, latency,
                        options_.cycle_tolerance)) {
        report.add(make(Code::kLatencyMismatch, Severity::kError, index, name,
                        fmt(latency), fmt(a.estimate.latency_cycles),
                        "latency cycles differ from the Section 3.1 model"));
      }
    }

    if (options_.check_fold_geometry) {
      const count_t pe_rows = static_cast<count_t>(plan.spec().pe_rows);
      const count_t pe_cols = static_cast<count_t>(plan.spec().pe_cols);
      const count_t out_rows = checked_mul(f.oh, f.ow);
      const count_t out_cols = f.depthwise ? 1 : f.nf;
      const count_t reduction = f.depthwise
                                    ? checked_mul(f.fh, f.fw)
                                    : checked_mul(checked_mul(f.fh, f.fw),
                                                  f.ci);
      const count_t groups = f.depthwise ? f.ci : 1;
      const count_t folds = checked_mul(
          checked_mul(ceil_div(out_rows, pe_rows), ceil_div(out_cols, pe_cols)),
          groups);
      const count_t span = checked_add(reduction, 2 * pe_rows - 2);
      const count_t cycles = checked_mul(folds, span);

      const scalesim::FoldGeometry g =
          scalesim::fold_geometry(layer, plan.spec());
      if (g.folds() != folds ||
          scalesim::fold_cycle_span(g, plan.spec()) != span ||
          scalesim::compute_cycles(layer, plan.spec()) != cycles) {
        report.add(make(
            Code::kFoldGeometryMismatch, Severity::kError, index, name,
            fmt(folds) + " folds x " + fmt(span) + " cycles",
            fmt(g.folds()) + " folds x " +
                fmt(scalesim::fold_cycle_span(g, plan.spec())) + " cycles",
            "systolic fold geometry differs from its ceiling-division "
            "forms"));
      }
    }
  } catch (const util::OverflowError& e) {
    report.add(make(Code::kArithmeticOverflow, Severity::kError, index, name,
                    "closed forms within uint64", "overflow", e.what()));
  }
}

void PlanValidator::validate_interlayer(const core::ExecutionPlan& plan,
                                        const model::Network& network,
                                        ValidationReport& report) const {
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const core::LayerAssignment& a = plan.assignment(i);
    const std::string& name = network.layer(i).name();

    if (a.ifmap_from_glb) {
      const bool linked = i > 0 && network.is_sequential_boundary(i - 1) &&
                          plan.assignment(i - 1).ofmap_stays_in_glb;
      if (!linked) {
        report.add(make(Code::kInterlayerBroken, Severity::kError, i, name,
                        "producer at layer " +
                            (i > 0 ? fmt(static_cast<count_t>(i - 1)) : "-") +
                            " keeps its ofmap resident",
                        "no resident producer",
                        "ifmap_from_glb set without a matching producer "
                        "across a sequential boundary"));
      }
    }
    if (a.ofmap_stays_in_glb) {
      const bool linked = i + 1 < plan.size() &&
                          network.is_sequential_boundary(i) &&
                          plan.assignment(i + 1).ifmap_from_glb;
      if (!linked) {
        report.add(make(Code::kInterlayerBroken, Severity::kError, i, name,
                        "consumer at layer " + fmt(static_cast<count_t>(i + 1)) +
                            " reads its ifmap from the GLB",
                        "no resident consumer",
                        "ofmap_stays_in_glb set without a matching consumer "
                        "across a sequential boundary"));
      } else {
        // V012 (warning): the resident window handed over should match the
        // consumer's ifmap volume.  Zoo models legitimately shrink the map
        // between trunk layers (implicit pooling), so this is advisory.
        try {
          const LayerForms producer(network.layer(i));
          const LayerForms consumer(network.layer(i + 1));
          if (producer.ofmap_elems != consumer.ifmap_elems) {
            report.add(make(Code::kInterlayerWindow, Severity::kWarning, i,
                            name, fmt(consumer.ifmap_elems),
                            fmt(producer.ofmap_elems),
                            "resident ofmap window differs from the "
                            "consumer's ifmap volume (implicit resize "
                            "between layers)"));
          }
        } catch (const util::OverflowError& e) {
          report.add(make(Code::kArithmeticOverflow, Severity::kError, i, name,
                          "closed forms within uint64", "overflow", e.what()));
        }
      }
    }
  }
}

}  // namespace rainbow::validate
