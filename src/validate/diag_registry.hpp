// Single source of truth for every diagnostic code the validation stack can
// emit.  The table below generates, via X-macro expansion:
//   - the `validate::Code` enumerators               (diagnostics.hpp)
//   - the stable short strings ("V006", "R003")      (diagnostics.cpp)
//   - the one-line rule descriptions                 (diagnostics.cpp)
//   - the registry iteration used by tests and docs  (kCodeRegistry below)
// Adding a code means adding exactly one line here (plus a docs-catalog row;
// diag_registry_test cross-checks that the docs stay in sync).
//
// Families:
//   V0xx  plan invariants re-derived from the paper's closed forms
//   L0xx  static lint rules over model files, plan files, and specs
//   S0xx  stream hazards from the linear stream analyzer (src/analysis)
//   R0xx  concurrency findings from the happens-before dependence graph
//         (src/analysis/depgraph, docs/static_analysis.md)
//   O0xx  translation-validation failures from the certified stream
//         optimizer (src/analysis/streamopt): an optimized stream that is
//         not provably equivalent to its original is rejected with one of
//         these, never emitted
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

// X(enum_name, "CODE", "one-line description")
#define RAINBOW_DIAG_REGISTRY(X)                                               \
  /* Plan validator. */                                                        \
  X(kSpecInvalid, "V001", "accelerator spec fails validation")                 \
  X(kLayerIndexMismatch, "V002",                                               \
    "plan assignments disagree with the network's layer order")                \
  X(kTileOutOfRange, "V003", "tiling parameter outside the layer's bounds")    \
  X(kFootprintMismatch, "V004",                                                \
    "stored footprint differs from the policy closed form")                    \
  X(kPrefetchDoubling, "V005",                                                 \
    "prefetch footprint violates Eq. 2 double buffering")                      \
  X(kGlbOverflow, "V006", "on-chip footprint exceeds the GLB capacity")        \
  X(kFeasibilityFlag, "V007", "plan stores an estimate marked infeasible")     \
  X(kFoldCountMismatch, "V008",                                                \
    "reload/stripe count differs from its ceiling-division form")              \
  X(kTrafficMismatch, "V009",                                                  \
    "off-chip traffic differs from the policy closed form")                    \
  X(kLatencyMismatch, "V010",                                                  \
    "latency or compute cycles differ from the closed form")                   \
  X(kInterlayerBroken, "V011", "inter-layer reuse link flags are inconsistent") \
  X(kInterlayerWindow, "V012",                                                 \
    "resident reuse window differs from the consumer's ifmap")                 \
  X(kFoldGeometryMismatch, "V013",                                             \
    "systolic fold geometry differs from its ceiling forms")                   \
  X(kArithmeticOverflow, "V014", "closed form overflows 64-bit arithmetic")    \
  /* Linter. */                                                                \
  X(kModelParse, "L001", "model file is malformed")                            \
  X(kModelShape, "L002", "layer shape is non-positive or inconsistent")        \
  X(kModelDivisibility, "L003", "layer dims leave partial systolic folds")     \
  X(kModelTrunkMismatch, "L004", "trunk boundary dimensions are discontinuous") \
  X(kModelOverflow, "L005", "layer shape overflows 64-bit closed forms")       \
  X(kPlanParse, "L006", "plan file is malformed")                              \
  X(kPlanRange, "L007", "plan decision out of range for its layer")            \
  X(kSpecSanity, "L008", "accelerator configuration invalid or suspicious")    \
  /* Stream analyzer. */                                                       \
  X(kStreamDeadRegion, "S001",                                                 \
    "transfer targets an unallocated or freed region")                         \
  X(kStreamDoubleAlloc, "S002", "region id allocated while already live")      \
  X(kStreamBadFree, "S003", "free of a region that is not live (double-free)") \
  X(kStreamRegionLeak, "S004",                                                 \
    "region outlives its inter-layer hand-off window")                         \
  X(kStreamOverCommit, "S005",                                                 \
    "live regions exceed the GLB capacity at a program point")                 \
  X(kStreamUseBeforeLoad, "S006",                                              \
    "compute consumes an input region with no data loaded")                    \
  X(kStreamStoreBeforeCompute, "S007",                                         \
    "store drains data no compute has produced")                              \
  X(kStreamMissingBarrier, "S008",                                             \
    "prefetch layer ends with in-flight DMA or compute")                       \
  X(kStreamUnterminatedLayer, "S009",                                          \
    "serial layer stream is not barrier-terminated")                           \
  X(kStreamDeadLoad, "S010", "region loaded but never computed-on or stored")  \
  X(kStreamMalformed, "S011",                                                  \
    "malformed command (size, region id, or kind misuse)")                     \
  X(kStreamTransferOverflow, "S012",                                           \
    "transfer overflows its region or the scratchpad")                         \
  X(kStreamPlacementFailure, "S013",                                           \
    "first-fit allocator cannot place a stream that fits")                     \
  X(kStreamFootprintMismatch, "S014",                                          \
    "stream allocations differ from the plan's footprint")                     \
  X(kStreamScheduleMismatch, "S015",                                           \
    "command sums differ from the schedule's totals")                          \
  X(kStreamCriticalPathMismatch, "S016",                                       \
    "dependence-graph critical path differs from the overlap latency model")   \
  /* Happens-before race detector. */                                          \
  X(kRaceRefill, "R001",                                                       \
    "DMA refill races a concurrent compute's read of the same region phase")   \
  X(kRaceDrain, "R002",                                                        \
    "ofmap drain races the compute writing the same region phase")             \
  X(kRaceUnorderedWrites, "R003",                                              \
    "two unordered writes target the same region phase")                       \
  X(kRaceFreeInFlight, "R004",                                                 \
    "region freed while DMA or compute may still be in flight")                \
  X(kRacePhaseAlias, "R005",                                                   \
    "double-buffer refill reuses a phase before any compute consumed it")      \
  X(kRaceGraphCycle, "R006",                                                   \
    "dependence graph contains a cycle (schedule can deadlock)")               \
  X(kRaceReorderViolation, "R007",                                             \
    "reordered stream violates a happens-before dependence")                   \
  X(kRaceRedundantBarrier, "R008",                                             \
    "barrier drains nothing (no async work since the last sync point)")        \
  /* Stream-optimizer translation validation. */                               \
  X(kOptReorderViolation, "O001",                                              \
    "optimized stream is not a certified reorder of the original")             \
  X(kOptRaceIntroduced, "O002",                                                \
    "optimized stream has a race the original did not")                        \
  X(kOptStreamRegression, "O003",                                              \
    "optimized stream fails the S-code stream analyzer")                       \
  X(kOptSemanticsDiverged, "O004",                                             \
    "optimized stream interprets to a different final state")                  \
  X(kOptLatencyRegressed, "O005",                                              \
    "optimized stream's critical path exceeds the original's")                 \
  X(kOptStructuralViolation, "O006",                                           \
    "optimizer pass produced a structurally invalid rewrite")

namespace rainbow::validate {

/// One registry row, exposed so tests and docs tooling can iterate the
/// full code table without re-listing it.
struct CodeInfo {
  std::string_view code;         ///< stable short string, e.g. "V006"
  std::string_view description;  ///< one-line rule description
};

namespace detail {
#define RAINBOW_DIAG_COUNT(name, code, desc) +1
inline constexpr std::size_t kCodeCount = 0 RAINBOW_DIAG_REGISTRY(RAINBOW_DIAG_COUNT);
#undef RAINBOW_DIAG_COUNT
}  // namespace detail

#define RAINBOW_DIAG_INFO(name, code, desc) CodeInfo{code, desc},
inline constexpr std::array<CodeInfo, detail::kCodeCount> kCodeRegistry = {
    {RAINBOW_DIAG_REGISTRY(RAINBOW_DIAG_INFO)}};
#undef RAINBOW_DIAG_INFO

}  // namespace rainbow::validate
