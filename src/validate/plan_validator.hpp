// PlanValidator: re-derives every paper invariant from a plan + accelerator
// + network and reports structured diagnostics (see diagnostics.hpp for the
// catalog).  The validator is deliberately independent of the estimator: it
// recomputes each closed form from the raw layer hyperparameters with
// always-checked 64-bit arithmetic (util::checked_mul / checked_add), so a
// plan whose numbers silently wrapped is reported as V014 instead of
// "matching" equally-wrapped re-derivations.
//
// Invariants checked (docs/validation.md has the full catalog):
//  * V001  accelerator spec self-validation
//  * V002  assignment count and layer_index order match the network
//  * V003  filter_block in [1, F#] (P4/P5/fallback), row_stripe in [1, O_H]
//  * V004  stored footprint == policy closed form (Table 3)
//  * V005  prefetch variants double every streamed term (Eq. 2)
//  * V006  planned footprint <= GLB capacity
//  * V007  the stored estimate is marked feasible
//  * V008  ifmap re-load count == ceil(F#/n) (P4/P5); filter re-stream
//          count == ceil(O_H/R) (fallback)
//  * V009  off-chip traffic == policy closed form, per data type
//  * V010  latency / compute cycles == the Section 3.1 latency model
//  * V011  inter-layer reuse flags pair up across sequential boundaries
//  * V012  (warning) resident window == consumer ifmap volume
//  * V013  systolic fold geometry == its ceiling-division forms
//  * V014  any re-derived closed form overflows uint64
#pragma once

#include "core/estimator.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"
#include "validate/diagnostics.hpp"

namespace rainbow::validate {

struct ValidatorOptions {
  /// Estimator knobs the plan was produced under (batch size, padded
  /// traffic accounting).  Traffic and latency re-derivations depend on
  /// these; structural checks do not.
  core::EstimatorOptions estimator;
  bool check_traffic = true;
  bool check_latency = true;
  bool check_fold_geometry = true;
  /// Relative tolerance for cycle-count (double) comparisons.
  double cycle_tolerance = 1e-9;
};

class PlanValidator {
 public:
  explicit PlanValidator(ValidatorOptions options = {});

  /// Options for callers that do not know the EstimatorOptions a plan was
  /// produced under (engine replay, simulator entry points): footprint /
  /// tiling / GLB / inter-layer structure only, no traffic or latency
  /// re-derivation.
  [[nodiscard]] static ValidatorOptions structural_only();

  [[nodiscard]] const ValidatorOptions& options() const { return options_; }

  /// Re-derives every invariant of `plan` against `network`.  Never throws
  /// on invalid plans — all findings (including arithmetic overflow in a
  /// closed form) come back as diagnostics.
  [[nodiscard]] ValidationReport validate(const core::ExecutionPlan& plan,
                                          const model::Network& network) const;

 private:
  void validate_layer(const core::ExecutionPlan& plan,
                      const model::Network& network, std::size_t index,
                      ValidationReport& report) const;
  void validate_interlayer(const core::ExecutionPlan& plan,
                           const model::Network& network,
                           ValidationReport& report) const;

  ValidatorOptions options_;
};

}  // namespace rainbow::validate
