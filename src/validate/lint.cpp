#include "validate/lint.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "util/checked.hpp"
#include "util/csv.hpp"

namespace rainbow::validate {

namespace {

using util::checked_mul;

Diagnostic line_diag(Code code, Severity severity, std::size_t line_no,
                     std::string context, std::string expected,
                     std::string actual, std::string detail) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.layer = line_no;
  d.context = std::move(context);
  d.expected = std::move(expected);
  d.actual = std::move(actual);
  d.detail = std::move(detail);
  return d;
}

std::optional<long long> parse_integer(const std::string& field) {
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(field, &consumed);
    if (consumed != field.size()) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Iterates the content lines of a file (comments stripped, blanks
/// skipped), calling fn(line_no, fields).
template <typename Fn>
void for_each_row(const std::string& text, Fn&& fn) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) {
      continue;
    }
    fn(line_no, util::split_csv_line(line));
  }
}

std::string read_file(const std::filesystem::path& path, const char* what) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error(std::string(what) + ": cannot open " +
                             path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Output dims of one linted model row, kept so later rows can check trunk
/// continuity; nullopt when the row was too broken to derive them.
struct RowDims {
  long long ofmap_h = 0;
  long long ofmap_w = 0;
  long long ofmap_c = 0;
};

}  // namespace

ValidationReport lint_model_text(const std::string& text,
                                 const LintOptions& options) {
  ValidationReport report;
  bool saw_header = false;
  std::vector<std::optional<RowDims>> outputs;  // one per layer row

  for_each_row(text, [&](std::size_t line_no,
                         const std::vector<std::string>& fields) {
    if (!saw_header) {
      saw_header = true;
      if (fields.size() != 2 || fields[0] != "network") {
        report.add(line_diag(Code::kModelParse, Severity::kError, line_no,
                             "header", "network, <name>",
                             fields.empty() ? "" : fields[0],
                             "model files start with a 'network' header"));
      }
      return;
    }
    outputs.emplace_back();  // filled in below when the row checks out
    if (fields.size() != 10 && fields.size() != 11) {
      report.add(line_diag(Code::kModelParse, Severity::kError, line_no,
                           "field count", "10 or 11",
                           std::to_string(fields.size()),
                           "layer rows are kind, name, I_H, I_W, C_I, F_H, "
                           "F_W, F#, S, P [, producer]"));
      return;
    }

    bool kind_ok = true;
    model::LayerKind kind = model::LayerKind::kConv;
    try {
      kind = model::layer_kind_from_string(fields[0]);
    } catch (const std::exception&) {
      kind_ok = false;
      report.add(line_diag(Code::kModelParse, Severity::kError, line_no,
                           "kind", "CV/DW/PW/FC/PL", fields[0],
                           "unknown layer kind"));
    }

    static constexpr const char* kInts[] = {"I_H", "I_W", "C_I", "F_H",
                                            "F_W", "F#",  "S",   "P"};
    long long v[8] = {};
    bool ints_ok = true;
    for (std::size_t i = 0; i < 8; ++i) {
      const auto parsed = parse_integer(fields[i + 2]);
      if (!parsed) {
        ints_ok = false;
        report.add(line_diag(Code::kModelParse, Severity::kError, line_no,
                             kInts[i], "integer", fields[i + 2],
                             "non-integer field"));
      } else {
        v[i] = *parsed;
      }
    }
    if (!ints_ok || !kind_ok) {
      return;
    }
    const long long ih = v[0], iw = v[1], ci = v[2], fh = v[3], fw = v[4],
                    nf = v[5], s = v[6], p = v[7];
    const std::string& name = fields[1];

    bool shape_ok = true;
    auto shape_error = [&](std::string expected, std::string actual,
                           std::string detail) {
      shape_ok = false;
      report.add(line_diag(Code::kModelShape, Severity::kError, line_no, name,
                           std::move(expected), std::move(actual),
                           std::move(detail)));
    };
    static constexpr const char* kPositive[] = {"I_H", "I_W", "C_I", "F_H",
                                                "F_W", "F#",  "S"};
    for (std::size_t i = 0; i < 7; ++i) {
      if (v[i] <= 0) {
        shape_error("> 0", std::to_string(v[i]),
                    std::string(kPositive[i]) + " must be positive");
      }
    }
    if (p < 0) {
      shape_error(">= 0", std::to_string(p), "P must be non-negative");
    }
    if (shape_ok && kind == model::LayerKind::kDepthwise && nf != ci) {
      shape_error("F# == C_I (" + std::to_string(ci) + ")",
                  std::to_string(nf),
                  "depthwise layers require filters == channels");
    }
    if (shape_ok &&
        (kind == model::LayerKind::kPointwise ||
         kind == model::LayerKind::kProjection ||
         kind == model::LayerKind::kFullyConnected) &&
        (fh != 1 || fw != 1)) {
      shape_error("1x1", std::to_string(fh) + "x" + std::to_string(fw),
                  "PW/PL/FC layers require a 1x1 filter");
    }
    if (shape_ok && (ih + 2 * p < fh || iw + 2 * p < fw)) {
      shape_error("filter within padded input",
                  std::to_string(fh) + "x" + std::to_string(fw) + " on " +
                      std::to_string(ih + 2 * p) + "x" +
                      std::to_string(iw + 2 * p),
                  "filter exceeds the padded input extent");
    }
    if (fields.size() == 11) {
      const auto producer = parse_integer(fields[10]);
      if (!producer) {
        report.add(line_diag(Code::kModelParse, Severity::kError, line_no,
                             "producer", "integer", fields[10],
                             "non-integer producer index"));
      } else if (*producer < 0 ||
                 static_cast<std::size_t>(*producer) + 1 >= outputs.size()) {
        shape_error("earlier layer index", fields[10],
                    "producer must reference an earlier layer");
      }
    }
    if (!shape_ok) {
      return;
    }

    const long long oh = (ih + 2 * p - fh) / s + 1;
    const long long ow = (iw + 2 * p - fw) / s + 1;
    const long long co = kind == model::LayerKind::kDepthwise ? ci : nf;
    outputs.back() = RowDims{oh, ow, co};

    // L005: the closed forms every estimator path computes must stay within
    // uint64.  Mirror the Layer accessors with checked multiplication.
    try {
      const count_t uoh = static_cast<count_t>(oh);
      const count_t uow = static_cast<count_t>(ow);
      const count_t ufh = static_cast<count_t>(fh);
      const count_t ufw = static_cast<count_t>(fw);
      const count_t uci = static_cast<count_t>(ci);
      (void)checked_mul(checked_mul(static_cast<count_t>(ih),
                                    static_cast<count_t>(iw)),
                        uci);
      const count_t per_filter = checked_mul(ufh, ufw);
      (void)(kind == model::LayerKind::kDepthwise
                 ? checked_mul(per_filter, uci)
                 : checked_mul(checked_mul(per_filter, uci),
                               static_cast<count_t>(nf)));
      const count_t ofmap = checked_mul(checked_mul(uoh, uow),
                                        static_cast<count_t>(co));
      (void)checked_mul(
          ofmap, checked_mul(per_filter,
                             kind == model::LayerKind::kDepthwise ? 1 : uci));
    } catch (const util::OverflowError& e) {
      report.add(line_diag(Code::kModelOverflow, Severity::kError, line_no,
                           name, "volumes within uint64", "overflow",
                           e.what()));
      return;
    }

    // L003 (advisory): partial systolic folds.  The array processes
    // pe_rows x pe_cols tiles of the im2col GEMM; a remainder fold under
    // half occupancy wastes cycles (depthwise's single-column mapping is
    // structural, not a model bug, so only its row dimension is checked).
    const long long pe_rows = options.spec.pe_rows;
    const long long pe_cols = options.spec.pe_cols;
    const long long out_rows = oh * ow;
    const long long row_rem = out_rows % pe_rows;
    if (row_rem != 0 && row_rem < (pe_rows + 1) / 2) {
      report.add(line_diag(Code::kModelDivisibility, Severity::kWarning,
                           line_no, name,
                           "O_H*O_W a multiple of " + std::to_string(pe_rows),
                           std::to_string(out_rows),
                           "last row fold uses " + std::to_string(row_rem) +
                               " of " + std::to_string(pe_rows) +
                               " array rows"));
    }
    if (kind != model::LayerKind::kDepthwise) {
      const long long col_rem = nf % pe_cols;
      if (col_rem != 0 && col_rem < (pe_cols + 1) / 2) {
        report.add(line_diag(Code::kModelDivisibility, Severity::kWarning,
                             line_no, name,
                             "F# a multiple of " + std::to_string(pe_cols),
                             std::to_string(nf),
                             "last column fold uses " +
                                 std::to_string(col_rem) + " of " +
                                 std::to_string(pe_cols) +
                                 " array columns"));
      }
    }

    // L004 (advisory): trunk continuity.  The consumed input should match
    // the producer's output; a mismatch usually marks an implicit pooling /
    // resize step that the estimators never see.
    std::optional<RowDims> producer_dims;
    if (fields.size() == 11) {
      const auto producer = parse_integer(fields[10]);
      if (producer && *producer >= 0 &&
          static_cast<std::size_t>(*producer) + 1 < outputs.size()) {
        producer_dims = outputs[static_cast<std::size_t>(*producer)];
      }
    } else if (outputs.size() >= 2) {
      producer_dims = outputs[outputs.size() - 2];
    }
    if (producer_dims &&
        (producer_dims->ofmap_h != ih || producer_dims->ofmap_w != iw ||
         producer_dims->ofmap_c != ci)) {
      report.add(line_diag(
          Code::kModelTrunkMismatch, Severity::kWarning, line_no, name,
          std::to_string(producer_dims->ofmap_h) + "x" +
              std::to_string(producer_dims->ofmap_w) + "x" +
              std::to_string(producer_dims->ofmap_c),
          std::to_string(ih) + "x" + std::to_string(iw) + "x" +
              std::to_string(ci),
          "ifmap differs from the producer's ofmap (implicit pooling or "
          "resize between layers)"));
    }
  });

  if (!saw_header) {
    Diagnostic d;
    d.code = Code::kModelParse;
    d.context = "header";
    d.expected = "network, <name>";
    d.detail = "file has no content lines";
    report.add(std::move(d));
  }
  return report;
}

ValidationReport lint_model_file(const std::filesystem::path& path,
                                 const LintOptions& options) {
  return lint_model_text(read_file(path, "lint_model_file"), options);
}

ValidationReport lint_plan_text(const std::string& text,
                                const model::Network* network,
                                const LintOptions& options) {
  ValidationReport report;
  bool saw_header = false;
  std::size_t rows = 0;
  long long expected_index = 0;

  for_each_row(text, [&](std::size_t line_no,
                         const std::vector<std::string>& fields) {
    if (!saw_header) {
      saw_header = true;
      if (fields.size() != 5 || fields[0] != "plan") {
        report.add(line_diag(Code::kPlanParse, Severity::kError, line_no,
                             "header",
                             "plan, <model>, <glb_bytes>, <width_bits>, "
                             "<objective>",
                             fields.empty() ? "" : fields[0],
                             "plan files start with a 'plan' header"));
        return;
      }
      const auto glb = parse_integer(fields[2]);
      const auto width = parse_integer(fields[3]);
      if (!glb || *glb <= 0) {
        report.add(line_diag(Code::kPlanParse, Severity::kError, line_no,
                             "glb_bytes", "positive integer", fields[2],
                             "bad GLB size"));
      }
      if (!width || *width <= 0) {
        report.add(line_diag(Code::kPlanParse, Severity::kError, line_no,
                             "width_bits", "positive integer", fields[3],
                             "bad data width"));
      }
      if (fields[4] != "accesses" && fields[4] != "latency") {
        report.add(line_diag(Code::kPlanParse, Severity::kError, line_no,
                             "objective", "accesses | latency", fields[4],
                             "unknown objective"));
      }
      if (glb && *glb > 0 && width && *width > 0) {
        arch::AcceleratorSpec spec = options.spec;
        spec.glb_bytes = static_cast<count_t>(*glb);
        spec.data_width_bits = static_cast<int>(*width);
        report.merge(lint_spec(spec));
      }
      if (network && fields[1] != network->name()) {
        report.add(line_diag(Code::kPlanRange, Severity::kError, line_no,
                             "model", network->name(), fields[1],
                             "plan is for a different model"));
      }
      return;
    }

    ++rows;
    if (fields.size() != 7) {
      report.add(line_diag(Code::kPlanParse, Severity::kError, line_no,
                           "field count", "7", std::to_string(fields.size()),
                           "decision rows are index, policy, prefetch, "
                           "filter_block, row_stripe, ifmap_from_glb, "
                           "ofmap_stays"));
      return;
    }

    bool policy_ok = true;
    core::Policy policy = core::Policy::kIntraLayer;
    try {
      policy = core::policy_from_short_label(fields[1]);
    } catch (const std::exception&) {
      policy_ok = false;
      report.add(line_diag(Code::kPlanParse, Severity::kError, line_no,
                           "policy", "intra/p1..p5/tiled", fields[1],
                           "unknown policy label"));
    }

    static constexpr const char* kCols[] = {"index", nullptr, "prefetch",
                                            "filter_block", "row_stripe",
                                            "ifmap_from_glb", "ofmap_stays"};
    long long v[7] = {};
    bool ints_ok = true;
    for (std::size_t i = 0; i < 7; ++i) {
      if (i == 1) {
        continue;
      }
      const auto parsed = parse_integer(fields[i]);
      if (!parsed) {
        ints_ok = false;
        report.add(line_diag(Code::kPlanParse, Severity::kError, line_no,
                             kCols[i], "integer", fields[i],
                             "non-integer field"));
      } else {
        v[i] = *parsed;
      }
    }
    if (!ints_ok || !policy_ok) {
      return;
    }

    if (v[0] != expected_index) {
      report.add(line_diag(Code::kPlanRange, Severity::kError, line_no,
                           "index", std::to_string(expected_index),
                           std::to_string(v[0]),
                           "decisions must be in layer order"));
    }
    expected_index = v[0] + 1;

    for (std::size_t i : {std::size_t{2}, std::size_t{5}, std::size_t{6}}) {
      if (v[i] != 0 && v[i] != 1) {
        report.add(line_diag(Code::kPlanRange, Severity::kWarning, line_no,
                             kCols[i], "0 or 1", std::to_string(v[i]),
                             "flag treated as boolean"));
      }
    }
    if (v[3] < 1) {
      report.add(line_diag(Code::kPlanRange, Severity::kError, line_no,
                           "filter_block", ">= 1", std::to_string(v[3]),
                           "filter block must be positive"));
    }
    const bool tiled = policy == core::Policy::kFallbackTiled;
    if (v[4] < (tiled ? 1 : 0)) {
      report.add(line_diag(Code::kPlanRange, Severity::kError, line_no,
                           "row_stripe", tiled ? ">= 1" : ">= 0",
                           std::to_string(v[4]),
                           "row stripe out of range"));
    }

    if (network && v[0] >= 0 &&
        static_cast<std::size_t>(v[0]) < network->size()) {
      const model::Layer& layer =
          network->layer(static_cast<std::size_t>(v[0]));
      const long long units =
          layer.is_depthwise() ? layer.channels() : layer.filters();
      const bool blocked = policy == core::Policy::kPartialIfmap ||
                           policy == core::Policy::kPartialPerChannel ||
                           tiled;
      if (blocked && v[3] > units) {
        report.add(line_diag(Code::kPlanRange, Severity::kError, line_no,
                             layer.name(), "<= " + std::to_string(units),
                             std::to_string(v[3]),
                             "filter block exceeds the layer's filter "
                             "units"));
      }
      if (tiled && v[4] > layer.ofmap_h()) {
        report.add(line_diag(Code::kPlanRange, Severity::kError, line_no,
                             layer.name(),
                             "<= " + std::to_string(layer.ofmap_h()),
                             std::to_string(v[4]),
                             "row stripe exceeds the layer's ofmap "
                             "height"));
      }
    } else if (network && v[0] >= 0) {
      report.add(line_diag(Code::kPlanRange, Severity::kError, line_no,
                           "index",
                           "< " + std::to_string(network->size()),
                           std::to_string(v[0]),
                           "decision references a layer the network does "
                           "not have"));
    }
  });

  if (!saw_header) {
    Diagnostic d;
    d.code = Code::kPlanParse;
    d.context = "header";
    d.expected = "plan, <model>, <glb_bytes>, <width_bits>, <objective>";
    d.detail = "file has no content lines";
    report.add(std::move(d));
  } else if (network && rows != network->size()) {
    Diagnostic d;
    d.code = Code::kPlanRange;
    d.context = network->name();
    d.expected = std::to_string(network->size()) + " decisions";
    d.actual = std::to_string(rows);
    d.detail = "plan covers a different number of layers than the network";
    report.add(std::move(d));
  }
  return report;
}

ValidationReport lint_plan_file(const std::filesystem::path& path,
                                const model::Network* network,
                                const LintOptions& options) {
  return lint_plan_text(read_file(path, "lint_plan_file"), network, options);
}

ValidationReport lint_spec(const arch::AcceleratorSpec& spec) {
  ValidationReport report;
  try {
    spec.validate();
  } catch (const std::invalid_argument& e) {
    Diagnostic d;
    d.code = Code::kSpecSanity;
    d.context = "accelerator spec";
    d.detail = e.what();
    report.add(std::move(d));
    return report;
  }
  auto warn = [&](std::string context, std::string expected,
                  std::string actual, std::string detail) {
    Diagnostic d;
    d.code = Code::kSpecSanity;
    d.severity = Severity::kWarning;
    d.context = std::move(context);
    d.expected = std::move(expected);
    d.actual = std::move(actual);
    d.detail = std::move(detail);
    report.add(std::move(d));
  };
  if (spec.sram_bytes_per_cycle < 0.0) {
    Diagnostic d;
    d.code = Code::kSpecSanity;
    d.context = "sram_bytes_per_cycle";
    d.expected = ">= 0";
    d.actual = std::to_string(spec.sram_bytes_per_cycle);
    d.detail = "negative on-chip bandwidth";
    report.add(std::move(d));
  }
  if (spec.glb_bytes % spec.element_bytes() != 0) {
    warn("glb_bytes",
         "multiple of " + std::to_string(spec.element_bytes()) + " bytes",
         std::to_string(spec.glb_bytes),
         "capacity truncates to whole elements");
  }
  if (spec.glb_bytes < util::kib(64) || spec.glb_bytes > util::kib(1024)) {
    warn("glb_bytes", "64 kB .. 1024 kB (the paper's swept range)",
         std::to_string(spec.glb_bytes), "GLB outside the evaluated range");
  }
  if (spec.data_width_bits != 8 && spec.data_width_bits != 16 &&
      spec.data_width_bits != 32) {
    warn("data_width_bits", "8, 16, or 32",
         std::to_string(spec.data_width_bits), "unusual element width");
  }
  return report;
}

}  // namespace rainbow::validate
