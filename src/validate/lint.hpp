// Static lint for the repository's on-disk artifacts: model zoo files, plan
// files, and accelerator configurations.  Unlike PlanValidator, nothing here
// runs the planner or estimator — every check is a raw scan of the text (so
// a malformed file yields *all* of its findings, line-numbered, instead of
// the first parse exception) plus cheap closed-form sanity on the values.
//
// Rules (L0xx in diagnostics.hpp; docs/validation.md has the catalog):
//  * L001  model file malformed (header / field count / integer / kind)
//  * L002  layer shape invalid (non-positive dims, DW filters != channels,
//          PW/PL/FC filter not 1x1, filter exceeds padded input, bad
//          producer index)
//  * L003  (warning) shapes that underfill the systolic array (partial or
//          permanently idle folds)
//  * L004  (warning) trunk boundary dims discontinuous (consumer ifmap !=
//          producer ofmap — usually an implicit pooling layer, worth eyes)
//  * L005  layer closed forms (ifmap/filter/ofmap volumes, MACs) overflow
//          uint64
//  * L006  plan file malformed (header / field count / integer / label)
//  * L007  plan decision out of range (bad index order, filter_block or
//          row_stripe outside the layer's bounds, non-boolean flags)
//  * L008  accelerator config invalid or suspicious
#pragma once

#include <filesystem>
#include <string>

#include "arch/accelerator.hpp"
#include "model/network.hpp"
#include "validate/diagnostics.hpp"

namespace rainbow::validate {

struct LintOptions {
  /// Context for array-utilization (L003) and spec-dependent plan checks.
  arch::AcceleratorSpec spec;
};

/// Lints model text (the src/model/parser.hpp format).  Diagnostics carry
/// the 1-based line number in `layer`.
[[nodiscard]] ValidationReport lint_model_text(const std::string& text,
                                               const LintOptions& options = {});
[[nodiscard]] ValidationReport lint_model_file(
    const std::filesystem::path& path, const LintOptions& options = {});

/// Lints plan text (the src/core/plan_io.hpp format) without re-running the
/// estimator.  When `network` is non-null, per-layer decisions are
/// range-checked against the layer bounds (filter units, ofmap height).
[[nodiscard]] ValidationReport lint_plan_text(
    const std::string& text, const model::Network* network = nullptr,
    const LintOptions& options = {});
[[nodiscard]] ValidationReport lint_plan_file(
    const std::filesystem::path& path, const model::Network* network = nullptr,
    const LintOptions& options = {});

/// Lints an accelerator configuration: hard validity (spec.validate()) plus
/// advisory sanity (GLB not a whole number of elements, GLB outside the
/// paper's swept range, PE array smaller than a fold).
[[nodiscard]] ValidationReport lint_spec(const arch::AcceleratorSpec& spec);

}  // namespace rainbow::validate
