#include "validate/diagnostics.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rainbow::validate {

std::string_view code_string(Code code) {
  switch (code) {
    case Code::kSpecInvalid:          return "V001";
    case Code::kLayerIndexMismatch:   return "V002";
    case Code::kTileOutOfRange:       return "V003";
    case Code::kFootprintMismatch:    return "V004";
    case Code::kPrefetchDoubling:     return "V005";
    case Code::kGlbOverflow:          return "V006";
    case Code::kFeasibilityFlag:      return "V007";
    case Code::kFoldCountMismatch:    return "V008";
    case Code::kTrafficMismatch:      return "V009";
    case Code::kLatencyMismatch:      return "V010";
    case Code::kInterlayerBroken:     return "V011";
    case Code::kInterlayerWindow:     return "V012";
    case Code::kFoldGeometryMismatch: return "V013";
    case Code::kArithmeticOverflow:   return "V014";
    case Code::kModelParse:           return "L001";
    case Code::kModelShape:           return "L002";
    case Code::kModelDivisibility:    return "L003";
    case Code::kModelTrunkMismatch:   return "L004";
    case Code::kModelOverflow:        return "L005";
    case Code::kPlanParse:            return "L006";
    case Code::kPlanRange:            return "L007";
    case Code::kSpecSanity:           return "L008";
    case Code::kStreamDeadRegion:          return "S001";
    case Code::kStreamDoubleAlloc:         return "S002";
    case Code::kStreamBadFree:             return "S003";
    case Code::kStreamRegionLeak:          return "S004";
    case Code::kStreamOverCommit:          return "S005";
    case Code::kStreamUseBeforeLoad:       return "S006";
    case Code::kStreamStoreBeforeCompute:  return "S007";
    case Code::kStreamMissingBarrier:      return "S008";
    case Code::kStreamUnterminatedLayer:   return "S009";
    case Code::kStreamDeadLoad:            return "S010";
    case Code::kStreamMalformed:           return "S011";
    case Code::kStreamTransferOverflow:    return "S012";
    case Code::kStreamPlacementFailure:    return "S013";
    case Code::kStreamFootprintMismatch:   return "S014";
    case Code::kStreamScheduleMismatch:    return "S015";
  }
  throw std::logic_error("code_string: invalid Code");
}

std::string_view code_description(Code code) {
  switch (code) {
    case Code::kSpecInvalid:
      return "accelerator spec fails validation";
    case Code::kLayerIndexMismatch:
      return "plan assignments disagree with the network's layer order";
    case Code::kTileOutOfRange:
      return "tiling parameter outside the layer's bounds";
    case Code::kFootprintMismatch:
      return "stored footprint differs from the policy closed form";
    case Code::kPrefetchDoubling:
      return "prefetch footprint violates Eq. 2 double buffering";
    case Code::kGlbOverflow:
      return "on-chip footprint exceeds the GLB capacity";
    case Code::kFeasibilityFlag:
      return "plan stores an estimate marked infeasible";
    case Code::kFoldCountMismatch:
      return "reload/stripe count differs from its ceiling-division form";
    case Code::kTrafficMismatch:
      return "off-chip traffic differs from the policy closed form";
    case Code::kLatencyMismatch:
      return "latency or compute cycles differ from the closed form";
    case Code::kInterlayerBroken:
      return "inter-layer reuse link flags are inconsistent";
    case Code::kInterlayerWindow:
      return "resident reuse window differs from the consumer's ifmap";
    case Code::kFoldGeometryMismatch:
      return "systolic fold geometry differs from its ceiling forms";
    case Code::kArithmeticOverflow:
      return "closed form overflows 64-bit arithmetic";
    case Code::kModelParse:
      return "model file is malformed";
    case Code::kModelShape:
      return "layer shape is non-positive or inconsistent";
    case Code::kModelDivisibility:
      return "layer dims leave partial systolic folds";
    case Code::kModelTrunkMismatch:
      return "trunk boundary dimensions are discontinuous";
    case Code::kModelOverflow:
      return "layer shape overflows 64-bit closed forms";
    case Code::kPlanParse:
      return "plan file is malformed";
    case Code::kPlanRange:
      return "plan decision out of range for its layer";
    case Code::kSpecSanity:
      return "accelerator configuration invalid or suspicious";
    case Code::kStreamDeadRegion:
      return "transfer targets an unallocated or freed region";
    case Code::kStreamDoubleAlloc:
      return "region id allocated while already live";
    case Code::kStreamBadFree:
      return "free of a region that is not live (double-free)";
    case Code::kStreamRegionLeak:
      return "region outlives its inter-layer hand-off window";
    case Code::kStreamOverCommit:
      return "live regions exceed the GLB capacity at a program point";
    case Code::kStreamUseBeforeLoad:
      return "compute consumes an input region with no data loaded";
    case Code::kStreamStoreBeforeCompute:
      return "store drains data no compute has produced";
    case Code::kStreamMissingBarrier:
      return "prefetch layer ends with in-flight DMA or compute";
    case Code::kStreamUnterminatedLayer:
      return "serial layer stream is not barrier-terminated";
    case Code::kStreamDeadLoad:
      return "region loaded but never computed-on or stored";
    case Code::kStreamMalformed:
      return "malformed command (size, region id, or kind misuse)";
    case Code::kStreamTransferOverflow:
      return "transfer overflows its region or the scratchpad";
    case Code::kStreamPlacementFailure:
      return "first-fit allocator cannot place a stream that fits";
    case Code::kStreamFootprintMismatch:
      return "stream allocations differ from the plan's footprint";
    case Code::kStreamScheduleMismatch:
      return "command sums differ from the schedule's totals";
  }
  throw std::logic_error("code_description: invalid Code");
}

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
  }
  throw std::logic_error("to_string: invalid Severity");
}

std::string Diagnostic::message() const {
  std::ostringstream os;
  os << '[' << code_string(code) << "][" << to_string(severity) << ']';
  if (layer) {
    os << " layer " << *layer;
  }
  if (!context.empty()) {
    os << (layer ? " (" : " ") << context << (layer ? ")" : "");
  }
  os << ": " << (detail.empty() ? code_description(code) : detail);
  if (!expected.empty() || !actual.empty()) {
    os << " (expected " << (expected.empty() ? "-" : expected) << ", actual "
       << (actual.empty() ? "-" : actual) << ')';
  }
  return os.str();
}

void ValidationReport::add(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) {
    ++errors_;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

bool ValidationReport::has(Code code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) {
      return true;
    }
  }
  return false;
}

std::size_t ValidationReport::count(Code code) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) {
      ++n;
    }
  }
  return n;
}

void ValidationReport::merge(const ValidationReport& other) {
  for (const Diagnostic& d : other.diagnostics_) {
    add(d);
  }
}

std::string ValidationReport::summary() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) {
    os << d.message() << '\n';
  }
  os << error_count() << " error(s), " << warning_count() << " warning(s)";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ValidationReport& report) {
  return os << report.summary();
}

}  // namespace rainbow::validate
