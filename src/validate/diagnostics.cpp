#include "validate/diagnostics.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace rainbow::validate {

// Both lookup tables index kCodeRegistry (validate/diag_registry.hpp) by the
// enumerator's ordinal — the enum is generated from the same table, so the
// ordering matches by construction.
std::string_view code_string(Code code) {
  const auto index = static_cast<std::size_t>(code);
  if (index >= kCodeRegistry.size()) {
    throw std::logic_error("code_string: invalid Code");
  }
  return kCodeRegistry[index].code;
}

std::string_view code_description(Code code) {
  const auto index = static_cast<std::size_t>(code);
  if (index >= kCodeRegistry.size()) {
    throw std::logic_error("code_description: invalid Code");
  }
  return kCodeRegistry[index].description;
}

std::string_view to_string(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kAdvisory:
      return "advisory";
  }
  throw std::logic_error("to_string: invalid Severity");
}

std::string Diagnostic::message() const {
  std::ostringstream os;
  os << '[' << code_string(code) << "][" << to_string(severity) << ']';
  if (layer) {
    os << " layer " << *layer;
  }
  if (!context.empty()) {
    os << (layer ? " (" : " ") << context << (layer ? ")" : "");
  }
  os << ": " << (detail.empty() ? code_description(code) : detail);
  if (!expected.empty() || !actual.empty()) {
    os << " (expected " << (expected.empty() ? "-" : expected) << ", actual "
       << (actual.empty() ? "-" : actual) << ')';
  }
  return os.str();
}

void ValidationReport::add(Diagnostic diagnostic) {
  if (diagnostic.severity == Severity::kError) {
    ++errors_;
  } else if (diagnostic.severity == Severity::kWarning) {
    ++warnings_;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

bool ValidationReport::has(Code code) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) {
      return true;
    }
  }
  return false;
}

std::size_t ValidationReport::count(Code code) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics_) {
    if (d.code == code) {
      ++n;
    }
  }
  return n;
}

void ValidationReport::merge(const ValidationReport& other) {
  for (const Diagnostic& d : other.diagnostics_) {
    add(d);
  }
}

std::string ValidationReport::summary() const {
  std::ostringstream os;
  for (const Diagnostic& d : diagnostics_) {
    os << d.message() << '\n';
  }
  os << error_count() << " error(s), " << warning_count() << " warning(s)";
  if (advisory_count() > 0) {
    os << ", " << advisory_count() << " advisory(ies)";
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ValidationReport& report) {
  return os << report.summary();
}

int strict_exit_code(const ValidationReport& report, bool strict) {
  if (report.error_count() > 0) {
    return 1;
  }
  return strict && report.warning_count() > 0 ? 1 : 0;
}

}  // namespace rainbow::validate
