// Structured diagnostics for the invariant-checking layer (PlanValidator)
// and the static linter (rainbow_lint).  A diagnostic carries a stable code
// ("V006", "L002"), a severity, the layer (or input line) it anchors to,
// and the expected-vs-actual values, so callers and tests can assert on the
// precise invariant that failed instead of parsing prose.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rainbow::validate {

/// Every invariant / lint rule the validation layer can report.
/// V0xx: plan invariants re-derived from the paper's closed forms.
/// L0xx: static lint rules over model files, plan files, and specs.
/// S0xx: stream hazards found by the static analyzer over lowered
///       command streams (src/analysis, docs/static_analysis.md).
enum class Code {
  // Plan validator.
  kSpecInvalid,          ///< V001: accelerator spec fails its own validation
  kLayerIndexMismatch,   ///< V002: assignment order / count disagrees with net
  kTileOutOfRange,       ///< V003: filter block / row stripe outside bounds
  kFootprintMismatch,    ///< V004: stored footprint != re-derived closed form
  kPrefetchDoubling,     ///< V005: Eq. 2 double-buffering violated
  kGlbOverflow,          ///< V006: footprint exceeds the GLB capacity
  kFeasibilityFlag,      ///< V007: plan stores an infeasible estimate
  kFoldCountMismatch,    ///< V008: reload/stripe count != ceil(F#/n), ceil(OH/R)
  kTrafficMismatch,      ///< V009: off-chip traffic != policy closed form
  kLatencyMismatch,      ///< V010: latency/compute cycles != closed form
  kInterlayerBroken,     ///< V011: reuse link flags structurally inconsistent
  kInterlayerWindow,     ///< V012: resident window != consumer ifmap volume
  kFoldGeometryMismatch, ///< V013: systolic fold counts != ceil-division forms
  kArithmeticOverflow,   ///< V014: a closed form wraps 64-bit arithmetic
  // Linter.
  kModelParse,           ///< L001: model file malformed (CSV / integer / header)
  kModelShape,           ///< L002: non-positive or inconsistent layer shape
  kModelDivisibility,    ///< L003: dims leave partial systolic folds (waste)
  kModelTrunkMismatch,   ///< L004: trunk boundary dims discontinuous
  kModelOverflow,        ///< L005: layer shape overflows 64-bit closed forms
  kPlanParse,            ///< L006: plan file malformed
  kPlanRange,            ///< L007: plan decision out of range for its layer
  kSpecSanity,           ///< L008: accelerator config invalid or suspicious
  // Stream analyzer.
  kStreamDeadRegion,     ///< S001: transfer targets an unallocated/freed region
  kStreamDoubleAlloc,    ///< S002: region id allocated while already live
  kStreamBadFree,        ///< S003: free of a region that is not live
  kStreamRegionLeak,     ///< S004: region outlives its hand-off window
  kStreamOverCommit,     ///< S005: live regions exceed the GLB capacity
  kStreamUseBeforeLoad,  ///< S006: compute consumes an input region with no data
  kStreamStoreBeforeCompute, ///< S007: store precedes the layer's first compute
  kStreamMissingBarrier, ///< S008: prefetch layer ends with in-flight DMA/compute
  kStreamUnterminatedLayer,  ///< S009: serial layer not barrier-terminated
  kStreamDeadLoad,       ///< S010: region loaded, never computed-on or stored
  kStreamMalformed,      ///< S011: malformed command (size/id/kind misuse)
  kStreamTransferOverflow,   ///< S012: transfer overflows its region / the GLB
  kStreamPlacementFailure,   ///< S013: first-fit cannot place a fitting stream
  kStreamFootprintMismatch,  ///< S014: allocs/peak differ from the plan footprint
  kStreamScheduleMismatch,   ///< S015: command sums differ from schedule totals
};

/// Stable short code ("V006") used in output and asserted on by tests.
[[nodiscard]] std::string_view code_string(Code code);

/// One-line human description of the rule behind a code.
[[nodiscard]] std::string_view code_description(Code code);

enum class Severity { kError, kWarning };

[[nodiscard]] std::string_view to_string(Severity severity);

struct Diagnostic {
  Code code = Code::kSpecInvalid;
  Severity severity = Severity::kError;
  /// Layer index (validator) or 1-based input line (linter), when anchored.
  std::optional<std::size_t> layer;
  std::string context;   ///< layer name, file, or field the finding is about
  std::string expected;  ///< value the invariant requires (may be empty)
  std::string actual;    ///< value observed (may be empty)
  std::string detail;    ///< one-sentence explanation

  /// "[V006][error] layer 3 (conv2_1): footprint exceeds GLB
  ///  (expected <= 65536, actual 131072)"
  [[nodiscard]] std::string message() const;
};

/// Ordered collection of diagnostics with error/warning accounting.
class ValidationReport {
 public:
  void add(Diagnostic diagnostic);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] std::size_t error_count() const { return errors_; }
  [[nodiscard]] std::size_t warning_count() const {
    return diagnostics_.size() - errors_;
  }
  /// True when no *errors* were recorded (warnings allowed).
  [[nodiscard]] bool ok() const { return errors_ == 0; }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }

  /// True when any diagnostic (of either severity) carries `code`.
  [[nodiscard]] bool has(Code code) const;
  /// Number of diagnostics carrying `code`.
  [[nodiscard]] std::size_t count(Code code) const;

  /// Appends another report's diagnostics (used by multi-input lint runs).
  void merge(const ValidationReport& other);

  /// All messages, one per line, followed by an error/warning tally.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
};

std::ostream& operator<<(std::ostream& os, const ValidationReport& report);

}  // namespace rainbow::validate
