// Structured diagnostics for the invariant-checking layer (PlanValidator)
// and the static linter (rainbow_lint).  A diagnostic carries a stable code
// ("V006", "L002"), a severity, the layer (or input line) it anchors to,
// and the expected-vs-actual values, so callers and tests can assert on the
// precise invariant that failed instead of parsing prose.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "validate/diag_registry.hpp"

namespace rainbow::validate {

/// Every invariant / lint / analysis rule the validation layer can report.
/// The enumerators, short strings, and descriptions are all generated from
/// the single table in validate/diag_registry.hpp:
///   V0xx: plan invariants re-derived from the paper's closed forms.
///   L0xx: static lint rules over model files, plan files, and specs.
///   S0xx: stream hazards found by the static analyzer over lowered
///         command streams (src/analysis, docs/static_analysis.md).
///   R0xx: concurrency findings from the happens-before dependence graph
///         (src/analysis/depgraph, src/analysis/race).
#define RAINBOW_DIAG_ENUM(name, code, desc) name,
enum class Code { RAINBOW_DIAG_REGISTRY(RAINBOW_DIAG_ENUM) };
#undef RAINBOW_DIAG_ENUM

/// Number of distinct diagnostic codes (enum values are 0..kCodeCount-1).
inline constexpr std::size_t kCodeCount = detail::kCodeCount;

/// Stable short code ("V006") used in output and asserted on by tests.
[[nodiscard]] std::string_view code_string(Code code);

/// One-line human description of the rule behind a code.
[[nodiscard]] std::string_view code_description(Code code);

/// kError fails the run outright.  kWarning is suspicious-but-tolerable and
/// flips exit codes only under --strict.  kAdvisory is informational (e.g.
/// R008 redundant barrier: an optimization opportunity, not a defect) and
/// never flips an exit code, strict or not — the severity mapping is shared
/// by every CLI through strict_exit_code().
enum class Severity { kError, kWarning, kAdvisory };

[[nodiscard]] std::string_view to_string(Severity severity);

struct Diagnostic {
  Code code = Code::kSpecInvalid;
  Severity severity = Severity::kError;
  /// Layer index (validator) or 1-based input line (linter), when anchored.
  std::optional<std::size_t> layer;
  std::string context;   ///< layer name, file, or field the finding is about
  std::string expected;  ///< value the invariant requires (may be empty)
  std::string actual;    ///< value observed (may be empty)
  std::string detail;    ///< one-sentence explanation

  /// "[V006][error] layer 3 (conv2_1): footprint exceeds GLB
  ///  (expected <= 65536, actual 131072)"
  [[nodiscard]] std::string message() const;
};

/// Ordered collection of diagnostics with error/warning accounting.
class ValidationReport {
 public:
  void add(Diagnostic diagnostic);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] std::size_t error_count() const { return errors_; }
  [[nodiscard]] std::size_t warning_count() const { return warnings_; }
  [[nodiscard]] std::size_t advisory_count() const {
    return diagnostics_.size() - errors_ - warnings_;
  }
  /// True when no *errors* were recorded (warnings/advisories allowed).
  [[nodiscard]] bool ok() const { return errors_ == 0; }
  [[nodiscard]] bool empty() const { return diagnostics_.empty(); }

  /// True when any diagnostic (of either severity) carries `code`.
  [[nodiscard]] bool has(Code code) const;
  /// Number of diagnostics carrying `code`.
  [[nodiscard]] std::size_t count(Code code) const;

  /// Appends another report's diagnostics (used by multi-input lint runs).
  void merge(const ValidationReport& other);

  /// All messages, one per line, followed by an error/warning tally.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Diagnostic> diagnostics_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

std::ostream& operator<<(std::ostream& os, const ValidationReport& report);

/// The one severity-to-exit-code policy every CLI shares: errors always
/// fail; warnings fail only under --strict; advisories never fail.  Returns
/// 0 (clean) or 1 (findings the mode treats as fatal).
[[nodiscard]] int strict_exit_code(const ValidationReport& report, bool strict);

}  // namespace rainbow::validate
