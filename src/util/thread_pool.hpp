// Fixed-size worker pool for the design-space sweeps.  The Figure-5/7/8
// benches evaluate (model x GLB size x data width) grids whose cells are
// independent; `parallel_for_each` fans them out across hardware threads.
//
// Exceptions thrown by tasks are captured and rethrown on the caller's
// thread (first one wins), so a failing sweep cell fails the bench loudly
// instead of producing a half-filled table.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rainbow::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  Rethrows the first
  /// task exception, if any.
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Applies `fn(item)` to every element of `items`, distributing across a
/// private pool.  Blocks until all complete; rethrows the first exception.
template <typename Container, typename Fn>
void parallel_for_each(Container& items, Fn fn, std::size_t threads = 0) {
  ThreadPool pool(threads);
  for (auto& item : items) {
    pool.submit([&fn, &item] { fn(item); });
  }
  pool.wait();
}

}  // namespace rainbow::util
