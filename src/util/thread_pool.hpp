// Fixed-size worker pool for the design-space sweeps.  The Figure-5/7/8
// benches evaluate (model x GLB size x data width) grids whose cells are
// independent; `parallel_for_each` fans them out across hardware threads.
//
// Exceptions thrown by tasks are captured and rethrown on the caller's
// thread (first one wins), so a failing sweep cell fails the bench loudly
// instead of producing a half-filled table.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rainbow::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.  Rethrows the first
  /// task exception, if any.
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Applies `fn(item)` to every element of `items`, distributing across a
/// private pool.  Blocks until all complete; rethrows the first exception.
template <typename Container, typename Fn>
void parallel_for_each(Container& items, Fn fn, std::size_t threads = 0) {
  ThreadPool pool(threads);
  for (auto& item : items) {
    pool.submit([&fn, &item] { fn(item); });
  }
  pool.wait();
}

/// Resolves a thread-count request (0 = hardware concurrency, negative
/// clamps to 1) against the amount of work on offer.  The returned worker
/// count guarantees at least `min_items_per_worker` items per worker, so a
/// tiny run resolves to 1 and stays inline instead of paying pool spawn
/// latency that dwarfs the work itself (the engine-replay regression:
/// 0.43 ms serial became 0.65 ms on a two-worker pool).
[[nodiscard]] std::size_t resolve_workers(int threads, std::size_t items,
                                          std::size_t min_items_per_worker = 1);

/// Number of contiguous chunks `parallel_for_chunked` splits [0, n) into
/// for a given grain.  A pure function of (n, grain) — never of the thread
/// count — so per-chunk results can be combined position-keyed with values
/// identical for every worker count.
[[nodiscard]] constexpr std::size_t chunk_count(std::size_t n,
                                               std::size_t grain) {
  if (grain == 0) {
    grain = 1;
  }
  return (n + grain - 1) / grain;
}

/// Grain-size-aware chunked parallel loop: splits [0, n) into contiguous
/// chunks of at most `grain` indices and runs fn(chunk_index, begin, end)
/// for each.  Chunk boundaries depend only on (n, grain); `threads` (0 =
/// hardware concurrency) only decides who executes which chunk, and a run
/// that resolves to a single worker — or a single chunk — executes inline
/// on the caller's thread.  fn must only touch per-chunk state (e.g. slot
/// chunk_index of a results vector); chunks are claimed from the shared
/// queue in submission order but may complete in any order.
template <typename Fn>
void parallel_for_chunked(std::size_t n, std::size_t grain, int threads,
                          Fn fn) {
  if (grain == 0) {
    grain = 1;
  }
  const std::size_t chunks = chunk_count(n, grain);
  const std::size_t workers = resolve_workers(threads, chunks);
  if (workers <= 1 || chunks <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) {
      fn(c, c * grain, std::min(n, (c + 1) * grain));
    }
    return;
  }
  ThreadPool pool(workers);
  for (std::size_t c = 0; c < chunks; ++c) {
    pool.submit([&fn, c, grain, n] {
      fn(c, c * grain, std::min(n, (c + 1) * grain));
    });
  }
  pool.wait();
}

}  // namespace rainbow::util
