#include "util/csv.hpp"

#include <fstream>
#include <stdexcept>

namespace rainbow::util {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) {
    return {};
  }
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

}  // namespace

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  for (char ch : line) {
    if (ch == ',') {
      fields.push_back(trim(current));
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  fields.push_back(trim(current));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_csv: cannot open " + path.string());
  }
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') {
      continue;
    }
    rows.push_back(split_csv_line(trimmed));
  }
  return rows;
}

void write_csv(const std::filesystem::path& path,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_csv: cannot create " + path.string());
  }
  for (const auto& row : rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << ',';
      }
    }
    out << '\n';
  }
}

}  // namespace rainbow::util
