// Bump-pointer arena for per-request serving state (docs/serving.md).
// rainbowd's warm path allocates the same short-lived buffers for every
// request — the staged request payload and the encoded response frame —
// and paying malloc/free (plus the allocator's internal locking) per
// request is measurable at tens of thousands of plans/sec.  An Arena
// hands out memory by bumping a pointer through geometrically grown
// blocks; reset() recycles every byte in O(blocks) without returning
// anything to the system allocator, so a connection's steady state does
// zero heap allocation.
//
// Arenas are deliberately NOT thread-safe: one arena belongs to one
// request (or one single-threaded owner) at a time.  ArenaPool hands
// arenas across threads safely — acquire/release are mutex-protected and
// an arena is only ever touched by the thread that currently holds it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace rainbow::util {

class Arena {
 public:
  /// First block size; later blocks double until kMaxBlockBytes.
  explicit Arena(std::size_t initial_block_bytes = 16 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` bytes aligned to `align` (a power of two).  Never
  /// returns nullptr: a request larger than the current block gets a
  /// dedicated block of at least its own size.  size == 0 returns a
  /// valid one-past pointer that must not be dereferenced.
  [[nodiscard]] char* allocate(std::size_t size,
                               std::size_t align = alignof(std::max_align_t));

  /// Grows the most recent allocation in place from `old_size` to
  /// `new_size` bytes when it is the arena's last allocation and the
  /// current block has room.  Returns false (arena untouched) otherwise —
  /// the caller then allocates a fresh region and copies.  This is what
  /// lets ArenaBuffer grow a response frame without copying in the
  /// common case.
  [[nodiscard]] bool try_extend(const char* ptr, std::size_t old_size,
                                std::size_t new_size);

  /// Recycles every allocation but keeps the blocks, so the next request
  /// on this arena allocates without touching the heap.  Blocks beyond
  /// the first are coalesced lazily: when a reset() finds more than one
  /// block, it replaces them with a single block sized to the high-water
  /// mark, so a connection converges to exactly one right-sized block.
  void reset();

  [[nodiscard]] std::size_t used() const { return used_; }
  [[nodiscard]] std::size_t reserved() const { return reserved_; }
  [[nodiscard]] std::size_t high_water() const { return high_water_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
    std::size_t fill = 0;
  };

  Block& grow(std::size_t min_bytes);

  std::vector<Block> blocks_;
  std::size_t initial_block_bytes_;
  /// Bytes consumed since the last reset as if laid out in one contiguous
  /// block (alignment padding included) — the exact size reset() needs for
  /// its coalesced replacement block.
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;    ///< total bytes owned across blocks
  std::size_t high_water_ = 0;  ///< max used_ ever observed
  char* last_alloc_ = nullptr;  ///< most recent allocation, for try_extend
};

/// Append-only byte buffer carved from an Arena: the sink the response
/// encoder writes wire frames into.  Grows geometrically; when the buffer
/// is the arena's most recent allocation it extends in place, otherwise
/// it relocates within the arena (the arena reclaims nothing until
/// reset(), so relocation cost is one memcpy, no free).
class ArenaBuffer {
 public:
  explicit ArenaBuffer(Arena& arena) : arena_(arena) {}

  void append(const void* bytes, std::size_t size);
  void append(std::string_view text) { append(text.data(), text.size()); }
  void push_back(char ch) { append(&ch, 1); }

  /// Skips `size` bytes and returns a pointer to them, for headers whose
  /// contents (e.g. a length field) are patched after the body is known.
  [[nodiscard]] char* reserve_prefix(std::size_t size);

  [[nodiscard]] const char* data() const { return data_; }
  [[nodiscard]] char* data() { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::string_view view() const { return {data_, size_}; }

 private:
  void ensure(std::size_t extra);

  Arena& arena_;
  char* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

/// Free list of arenas shared by the serving workers: one arena travels
/// with one request from decode to response flush, then comes back reset
/// and warm.  Bounded — a burst beyond `max_pooled` arenas allocates
/// extras that are simply dropped on release, so an attack-sized spike
/// cannot pin its peak memory forever.
class ArenaPool {
 public:
  explicit ArenaPool(std::size_t max_pooled = 64,
                     std::size_t initial_block_bytes = 16 * 1024);

  [[nodiscard]] std::shared_ptr<Arena> acquire();
  void release(std::shared_ptr<Arena> arena);

  [[nodiscard]] std::size_t pooled() const;
  [[nodiscard]] std::uint64_t created() const { return created_; }

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Arena>> free_;
  std::size_t max_pooled_;
  std::size_t initial_block_bytes_;
  std::uint64_t created_ = 0;
};

}  // namespace rainbow::util
