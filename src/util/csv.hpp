// Minimal CSV writer/reader used by the model text format and the bench
// binaries' machine-readable output (`--csv <path>`).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace rainbow::util {

/// Splits one CSV line on commas, trimming surrounding whitespace from each
/// field.  Quoting is intentionally unsupported: every format in this
/// repository is numeric/identifier-only.
std::vector<std::string> split_csv_line(const std::string& line);

/// Reads all non-empty, non-comment ('#'-prefixed) lines of a CSV file.
/// Throws std::runtime_error when the file cannot be opened.
std::vector<std::vector<std::string>> read_csv(const std::filesystem::path& path);

/// Writes rows as CSV.  Throws std::runtime_error when the file cannot be
/// created.
void write_csv(const std::filesystem::path& path,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace rainbow::util
