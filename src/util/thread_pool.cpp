#include "util/thread_pool.hpp"

#include <algorithm>

namespace rainbow::util {

std::size_t resolve_workers(int threads, std::size_t items,
                            std::size_t min_items_per_worker) {
  std::size_t workers =
      threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                   : static_cast<std::size_t>(std::max(threads, 1));
  if (min_items_per_worker == 0) {
    min_items_per_worker = 1;
  }
  workers = std::min(workers, items / min_items_per_worker);
  return std::max<std::size_t>(workers, 1);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock lock(mutex_);
    queue_.push(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock lock(mutex_);
      if (!first_error_) {
        first_error_ = std::current_exception();
      }
    }
    {
      std::unique_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace rainbow::util
