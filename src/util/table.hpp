// Plain-text table rendering for the benchmark binaries.  Every bench prints
// the rows/series of one paper table or figure; this keeps the formatting in
// one place so all reports line up the same way.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace rainbow::util {

/// Column-aligned ASCII table.  Cells are strings; numeric callers format
/// first (so each bench controls its own precision).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row.  Throws if the arity does not match the header.
  void add_row(std::vector<std::string> row);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return header_.size(); }

  /// Renders with a header underline and two-space column gutters.
  void print(std::ostream& os) const;

  /// Renders as comma-separated values (header + rows).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.3").
std::string fmt(double value, int precision = 1);

/// Thousands-grouped integer formatting ("1,234,567") for cycle counts.
std::string fmt_count(unsigned long long value);

}  // namespace rainbow::util
