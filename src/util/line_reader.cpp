#include "util/line_reader.hpp"

#include <stdexcept>

namespace rainbow::util {

namespace {

bool is_blank(std::string_view s) {
  return s.find_first_not_of(" \t") == std::string_view::npos;
}

}  // namespace

LineReader::LineReader(std::string_view text, Options options)
    : text_(text), options_(options) {}

std::optional<TextLine> LineReader::next() {
  while (pos_ < text_.size()) {
    ++line_number_;
    // Find the terminator: '\n', "\r\n", or a lone '\r'.
    std::size_t end = pos_;
    while (end < text_.size() && text_[end] != '\n' && text_[end] != '\r') {
      ++end;
    }
    std::string line(text_.substr(pos_, end - pos_));
    if (end < text_.size()) {
      if (text_[end] == '\r' && end + 1 < text_.size() &&
          text_[end + 1] == '\n') {
        pos_ = end + 2;  // CRLF
      } else {
        pos_ = end + 1;  // LF or lone CR
      }
    } else {
      pos_ = end;  // last line without a terminator
    }
    if (options_.reject_control) {
      for (char ch : line) {
        const auto byte = static_cast<unsigned char>(ch);
        if (byte < 0x20 && ch != '\t') {
          throw std::runtime_error(
              "line " + std::to_string(line_number_) +
              ": control byte 0x" +
              std::string{"0123456789abcdef"[byte >> 4],
                          "0123456789abcdef"[byte & 0xf]} +
              " in text input");
        }
      }
    }
    if (options_.strip_comments) {
      if (const auto hash = line.find('#'); hash != std::string::npos) {
        line.erase(hash);
      }
    }
    if (options_.skip_blank && is_blank(line)) {
      continue;
    }
    return TextLine{line_number_, std::move(line)};
  }
  return std::nullopt;
}

}  // namespace rainbow::util
