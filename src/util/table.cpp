#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "util/units.hpp"

namespace rainbow::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("Table: empty header");
  }
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity " + std::to_string(row.size()) +
                                " != header arity " + std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) {
        os << "  ";
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w;
  }
  total += 2 * (widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << ',';
      }
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

std::string fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string fmt_count(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int since_group = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_group == 3) {
      out.push_back(',');
      since_group = 0;
    }
    out.push_back(*it);
    ++since_group;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string format_bytes(double bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1);
  if (bytes >= 1024.0 * 1024.0) {
    os << bytes / (1024.0 * 1024.0) << " MB";
  } else if (bytes >= 1024.0) {
    os << bytes / 1024.0 << " kB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

}  // namespace rainbow::util
