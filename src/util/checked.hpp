// Overflow-checked integer arithmetic and bounds-checked element access.
//
// Two tiers share one vocabulary:
//  * checked_mul / checked_add always detect u64 wraparound and throw
//    OverflowError — the validator's cold-path re-derivations use these so a
//    plan whose closed forms wrap reports a diagnostic instead of a bogus
//    number.
//  * cmul / cadd / at are checked only in RAINBOW_CHECKED builds and compile
//    to the plain operation otherwise — the footprint / estimator / systolic
//    hot paths use these, so unchecked builds are bit-identical to the seed
//    while checked builds trap wraparound and out-of-range access at the
//    faulting site.
//
// The runtime side of the mode: runtime_checked() is true in RAINBOW_CHECKED
// builds and when the RAINBOW_CHECKED environment variable is set to a
// truthy value.  Entry points (engine plan replay, traced simulation) gate
// their invariant re-validation on it.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace rainbow::util {

#ifdef RAINBOW_CHECKED
inline constexpr bool kCheckedBuild = true;
#else
inline constexpr bool kCheckedBuild = false;
#endif

/// Thrown when a checked operation would wrap a 64-bit counter.
class OverflowError : public std::overflow_error {
 public:
  using std::overflow_error::overflow_error;
};

[[noreturn]] void throw_overflow(const char* op, count_t a, count_t b);

/// a * b, throwing OverflowError on u64 wraparound.  Always checked.
[[nodiscard]] constexpr count_t checked_mul(count_t a, count_t b) {
  count_t result = 0;
  if (__builtin_mul_overflow(a, b, &result)) {
    throw_overflow("multiply", a, b);
  }
  return result;
}

/// a + b, throwing OverflowError on u64 wraparound.  Always checked.
[[nodiscard]] constexpr count_t checked_add(count_t a, count_t b) {
  count_t result = 0;
  if (__builtin_add_overflow(a, b, &result)) {
    throw_overflow("add", a, b);
  }
  return result;
}

/// Hot-path multiply: checked in RAINBOW_CHECKED builds, plain otherwise.
[[nodiscard]] constexpr count_t cmul(count_t a, count_t b) {
  if constexpr (kCheckedBuild) {
    return checked_mul(a, b);
  } else {
    return a * b;
  }
}

/// Hot-path add: checked in RAINBOW_CHECKED builds, plain otherwise.
[[nodiscard]] constexpr count_t cadd(count_t a, count_t b) {
  if constexpr (kCheckedBuild) {
    return checked_add(a, b);
  } else {
    return a + b;
  }
}

/// Element access: bounds-checked in RAINBOW_CHECKED builds (throwing
/// std::out_of_range with the offending index), operator[] otherwise.
template <typename Container>
[[nodiscard]] inline decltype(auto) at(Container&& container, std::size_t i) {
  if constexpr (kCheckedBuild) {
    if (i >= container.size()) {
      throw std::out_of_range("checked access: index " + std::to_string(i) +
                              " past size " +
                              std::to_string(container.size()));
    }
  }
  return container[i];
}

/// Parses a RAINBOW_CHECKED-style environment value: unset/empty/"0"/"off"/
/// "false"/"no" disable, anything else enables.  Exposed for tests.
[[nodiscard]] bool checked_env_enabled(const char* value);

/// True when invariant re-validation should run at entry points: compiled
/// with RAINBOW_CHECKED, or RAINBOW_CHECKED=1 in the environment (read
/// once).
[[nodiscard]] bool runtime_checked();

}  // namespace rainbow::util
