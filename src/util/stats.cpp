#include "util/stats.hpp"

#include <cmath>
#include <limits>

namespace rainbow::util {

double geomean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("geomean: empty input");
  }
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) {
      throw std::invalid_argument("geomean: non-positive value");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(std::span<const double> values) {
  if (values.empty()) {
    throw std::invalid_argument("mean: empty input");
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double benefit_percent(double reference, double candidate) {
  if (reference == 0.0) {
    throw std::invalid_argument("benefit_percent: zero reference");
  }
  return 100.0 * (reference - candidate) / reference;
}

void RunningStats::add(double v) {
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++count_;
}

double RunningStats::min() const {
  if (empty()) {
    throw std::logic_error("RunningStats::min on empty tracker");
  }
  return min_;
}

double RunningStats::max() const {
  if (empty()) {
    throw std::logic_error("RunningStats::max on empty tracker");
  }
  return max_;
}

double RunningStats::mean() const {
  if (empty()) {
    throw std::logic_error("RunningStats::mean on empty tracker");
  }
  return sum_ / static_cast<double>(count_);
}

}  // namespace rainbow::util
