// Wire-hardened line reader shared by every text parser that can see
// untrusted bytes (model uploads over the rainbowd socket, plan files,
// spec files).  Centralizes the input-normalization rules so each parser
// gets identical behaviour:
//
//   * "\n", "\r\n", and lone "\r" all terminate a line (uploads arrive
//     from Windows clients and hand-rolled scripts alike);
//   * '#' starts a comment (optional);
//   * blank / whitespace-only lines are skipped (optional);
//   * NUL bytes and C0 control characters other than '\t' are rejected
//     with the line number — binary garbage spliced into an upload fails
//     loudly instead of parsing as a surprising field value.
//
// Line numbers are 1-based and count *physical* lines, including the
// skipped ones, so parser diagnostics point at the real input.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace rainbow::util {

/// One logical line: its text (terminator and comment stripped) and its
/// 1-based physical line number.
struct TextLine {
  std::size_t number = 0;
  std::string text;
};

class LineReader {
 public:
  struct Options {
    bool strip_comments = true;  ///< erase from the first '#'
    bool skip_blank = true;      ///< drop whitespace-only lines
    /// Reject NUL and C0 control characters (except '\t'); '\r'/'\n' are
    /// consumed as terminators before the check.  Always keep this on for
    /// wire-delivered input.
    bool reject_control = true;
  };

  /// The reader borrows `text`; it must outlive the reader.
  explicit LineReader(std::string_view text) : LineReader(text, Options()) {}
  LineReader(std::string_view text, Options options);

  /// Next logical line, or nullopt at end of input.  Throws
  /// std::runtime_error naming the line number on a rejected byte.
  [[nodiscard]] std::optional<TextLine> next();

  /// Physical line number of the most recently returned line (0 before the
  /// first call).
  [[nodiscard]] std::size_t line_number() const { return line_number_; }

 private:
  std::string_view text_;
  Options options_;
  std::size_t pos_ = 0;
  std::size_t line_number_ = 0;
};

}  // namespace rainbow::util
