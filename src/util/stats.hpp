// Small statistics helpers used by the benchmark harnesses (geometric means
// over models, percentage benefits, min/max trackers).
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

namespace rainbow::util {

/// Geometric mean of strictly positive values.  Throws on empty input or any
/// non-positive value: a zero would silently collapse the mean to zero and
/// hide a broken measurement.
double geomean(std::span<const double> values);

/// Arithmetic mean.  Throws on empty input.
double mean(std::span<const double> values);

/// Relative benefit of `candidate` over `reference` in percent:
/// 100 * (reference - candidate) / reference.  Positive means `candidate`
/// improved (reduced) the metric.  Throws if `reference` is zero.
double benefit_percent(double reference, double candidate);

/// Running min/max/sum tracker for streaming sweeps.
class RunningStats {
 public:
  void add(double v);
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;

 private:
  std::size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace rainbow::util
