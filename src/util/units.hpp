// Units and small numeric helpers shared across the library.
//
// All data volumes in the library are expressed in *elements* until the last
// moment, where the accelerator's data width converts them to bytes.  Keeping
// element counts avoids sprinkling `* data_width` through the estimators and
// makes the Figure-7 data-width sweep a one-line change.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rainbow {

/// Unsigned element / byte / cycle counter. 64-bit: a single EfficientNetB0
/// inference already moves ~1e8 elements, and sweeps multiply that.
using count_t = std::uint64_t;

namespace util {

/// Ceiling division for non-negative integers.
constexpr count_t ceil_div(count_t numerator, count_t denominator) {
  if (denominator == 0) {
    throw std::invalid_argument("ceil_div: zero denominator");
  }
  return (numerator + denominator - 1) / denominator;
}

/// Kibibytes to bytes.
constexpr count_t kib(count_t k) { return k * 1024; }

/// Mebibytes to bytes.
constexpr count_t mib(count_t m) { return m * 1024 * 1024; }

/// Bytes rendered as "X.Y kB" / "X.Y MB" for report tables.
std::string format_bytes(double bytes);

inline std::string format_bytes(count_t bytes) {
  return format_bytes(static_cast<double>(bytes));
}

}  // namespace util
}  // namespace rainbow
