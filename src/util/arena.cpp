#include "util/arena.hpp"

#include <algorithm>
#include <cstring>

namespace rainbow::util {

namespace {

constexpr std::size_t kMaxBlockBytes = 8 * 1024 * 1024;

std::size_t align_up(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(std::size_t initial_block_bytes)
    : initial_block_bytes_(std::max<std::size_t>(initial_block_bytes, 64)) {}

Arena::Block& Arena::grow(std::size_t min_bytes) {
  std::size_t next = blocks_.empty()
                         ? initial_block_bytes_
                         : std::min(blocks_.back().size * 2, kMaxBlockBytes);
  next = std::max(next, min_bytes);
  Block block;
  block.data = std::make_unique<char[]>(next);
  block.size = next;
  reserved_ += next;
  blocks_.push_back(std::move(block));
  return blocks_.back();
}

char* Arena::allocate(std::size_t size, std::size_t align) {
  Block* block = blocks_.empty() ? nullptr : &blocks_.back();
  std::size_t offset = block ? align_up(block->fill, align) : 0;
  if (block == nullptr || offset + size > block->size) {
    block = &grow(size + align);
    offset = align_up(block->fill, align);
  }
  char* ptr = block->data.get() + offset;
  block->fill = offset + size;
  // used_ tracks consumption as if every allocation were laid out in one
  // contiguous block (padding included).  That makes high_water_ an exact
  // bound for reset()'s coalesced block: replaying the same allocation
  // sequence into a single block of that size cannot overflow it.
  used_ = align_up(used_, align) + size;
  high_water_ = std::max(high_water_, used_);
  last_alloc_ = ptr;
  return ptr;
}

bool Arena::try_extend(const char* ptr, std::size_t old_size,
                       std::size_t new_size) {
  if (blocks_.empty() || ptr != last_alloc_ || new_size < old_size) {
    return false;
  }
  Block& block = blocks_.back();
  const char* base = block.data.get();
  // `ptr` must be the tail allocation of the current block.
  if (ptr < base || ptr + old_size != base + block.fill) {
    return false;
  }
  const std::size_t extra = new_size - old_size;
  if (block.fill + extra > block.size) {
    return false;
  }
  block.fill += extra;
  used_ += extra;
  high_water_ = std::max(high_water_, used_);
  return true;
}

void Arena::reset() {
  if (blocks_.size() > 1) {
    // Coalesce: one block sized to the high-water mark replaces the
    // chain, so steady state is a single right-sized block.
    blocks_.clear();
    reserved_ = 0;
    grow(high_water_);
  }
  for (Block& block : blocks_) {
    block.fill = 0;
  }
  used_ = 0;
  last_alloc_ = nullptr;
}

void ArenaBuffer::ensure(std::size_t extra) {
  if (size_ + extra <= capacity_) {
    return;
  }
  const std::size_t want =
      std::max(size_ + extra, std::max<std::size_t>(2 * capacity_, 256));
  if (data_ != nullptr && arena_.try_extend(data_, capacity_, want)) {
    capacity_ = want;
    return;
  }
  char* grown = arena_.allocate(want, 1);
  if (size_ > 0) {
    std::memcpy(grown, data_, size_);
  }
  data_ = grown;
  capacity_ = want;
}

void ArenaBuffer::append(const void* bytes, std::size_t size) {
  if (size == 0) {
    return;
  }
  ensure(size);
  std::memcpy(data_ + size_, bytes, size);
  size_ += size;
}

char* ArenaBuffer::reserve_prefix(std::size_t size) {
  ensure(size);
  char* ptr = data_ + size_;
  size_ += size;
  return ptr;
}

ArenaPool::ArenaPool(std::size_t max_pooled, std::size_t initial_block_bytes)
    : max_pooled_(max_pooled), initial_block_bytes_(initial_block_bytes) {}

std::shared_ptr<Arena> ArenaPool::acquire() {
  {
    std::lock_guard lock(mutex_);
    if (!free_.empty()) {
      std::shared_ptr<Arena> arena = std::move(free_.back());
      free_.pop_back();
      return arena;
    }
    ++created_;
  }
  return std::make_shared<Arena>(initial_block_bytes_);
}

void ArenaPool::release(std::shared_ptr<Arena> arena) {
  if (!arena) {
    return;
  }
  arena->reset();
  std::lock_guard lock(mutex_);
  if (free_.size() < max_pooled_) {
    free_.push_back(std::move(arena));
  }
  // else: drop — bursts beyond the bound must not pin peak memory.
}

std::size_t ArenaPool::pooled() const {
  std::lock_guard lock(mutex_);
  return free_.size();
}

}  // namespace rainbow::util
