#include "util/checked.hpp"

#include <cstdlib>
#include <string_view>

namespace rainbow::util {

void throw_overflow(const char* op, count_t a, count_t b) {
  throw OverflowError("u64 " + std::string(op) + " overflow: " +
                      std::to_string(a) + " and " + std::to_string(b));
}

bool checked_env_enabled(const char* value) {
  if (value == nullptr) {
    return false;
  }
  const std::string_view v(value);
  return !(v.empty() || v == "0" || v == "off" || v == "OFF" || v == "no" ||
           v == "false" || v == "FALSE");
}

bool runtime_checked() {
  static const bool enabled =
      kCheckedBuild || checked_env_enabled(std::getenv("RAINBOW_CHECKED"));
  return enabled;
}

}  // namespace rainbow::util
