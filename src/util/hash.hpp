// The one FNV-1a implementation every subsystem shares.  64-bit FNV-1a is
// the repo's canonical byte-string hash: deterministic across processes
// and platforms (unlike std::hash), trivially constexpr, and good enough
// for cache keys and shard selection.  Callers that persist or compare
// digests across runs (EvalCache keys, the serve single-flight shards)
// rely on these exact constants; tests/hash_test.cpp pins them and a set
// of golden digests so an accidental algorithm change cannot slip in.
#pragma once

#include <cstdint>
#include <string_view>

namespace rainbow::util {

/// FNV-1a 64-bit offset basis and prime (the standard parameters).
inline constexpr std::uint64_t kFnv1aOffsetBasis = 14695981039346656037ull;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ull;

/// Folds one byte into a running FNV-1a state.
[[nodiscard]] constexpr std::uint64_t fnv1a_byte(std::uint64_t hash,
                                                 std::uint8_t byte) {
  return (hash ^ byte) * kFnv1aPrime;
}

/// 64-bit FNV-1a over a byte string.  constexpr so compile-time digests
/// (and the pinning static_asserts) work.
[[nodiscard]] constexpr std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = kFnv1aOffsetBasis;
  for (const char c : bytes) {
    hash = fnv1a_byte(hash, static_cast<std::uint8_t>(c));
  }
  return hash;
}

}  // namespace rainbow::util
