// Resident model/spec registry for rainbowd: parsed networks and
// accelerator specs stay in memory across requests, each model paired with
// its own EvalCache shard so (a) warm re-plans hit PR-1's memoization
// without re-parsing anything and (b) evicting a model frees its cache
// share instead of polluting a global LRU.  The DynaPlex
// registrationmanager is the structural exemplar: many dynamically
// registered models behind one uniform facade.
//
// Thread-safety: a shared_mutex guards the maps; entries hand out
// shared_ptrs, so an eviction never invalidates an in-flight request that
// already resolved its model (the plan completes against the old entry and
// the memory is reclaimed when the last request drops it).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "core/eval_cache.hpp"
#include "model/network.hpp"

namespace rainbow::serve {

/// One resident model: the parsed network plus its private eval cache.
struct ModelEntry {
  model::Network network;
  std::shared_ptr<core::EvalCache> cache;
  bool builtin = false;  ///< preloaded from the zoo (uploads are false)
  mutable std::atomic<std::uint64_t> plans_served{0};
};

/// One registered accelerator spec.
struct SpecEntry {
  arch::AcceleratorSpec spec;
};

struct RegistrySnapshotRow {
  std::string name;
  std::size_t layers = 0;
  bool builtin = false;
  std::uint64_t plans_served = 0;
  core::EvalCacheStats cache;
};

class ModelRegistry {
 public:
  /// `cache_entries` bounds each per-model EvalCache.
  explicit ModelRegistry(std::size_t cache_entries = 1 << 20);

  /// Registers `network` under `name`.  Returns false (and leaves the
  /// existing entry untouched) when the name is taken and `replace` is
  /// off; replacing resets the model's cache.  Throws on an empty name.
  bool register_model(const std::string& name, model::Network network,
                      bool builtin = false, bool replace = false);

  /// Preloads every built-in zoo model under its lowercase zoo name.
  void preload_zoo();

  /// nullptr when unknown.  The returned entry stays valid after eviction.
  [[nodiscard]] std::shared_ptr<const ModelEntry> find(
      const std::string& name) const;

  bool evict(const std::string& name);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::vector<RegistrySnapshotRow> snapshot() const;

  /// Sum of the per-model caches' approximate resident bytes.
  [[nodiscard]] std::uint64_t cache_bytes() const;

  // Named accelerator specs (uploaded via the spec text format).
  bool register_spec(const std::string& name, const arch::AcceleratorSpec& spec,
                     bool replace = false);
  [[nodiscard]] std::shared_ptr<const SpecEntry> find_spec(
      const std::string& name) const;
  bool evict_spec(const std::string& name);
  [[nodiscard]] std::vector<std::string> spec_names() const;

 private:
  mutable std::shared_mutex mutex_;
  std::size_t cache_entries_;
  std::vector<std::pair<std::string, std::shared_ptr<ModelEntry>>> models_;
  std::vector<std::pair<std::string, std::shared_ptr<SpecEntry>>> specs_;

  [[nodiscard]] std::shared_ptr<ModelEntry>* locate(const std::string& name);
  [[nodiscard]] std::shared_ptr<SpecEntry>* locate_spec(
      const std::string& name);
};

}  // namespace rainbow::serve
