// Resident model/spec registry for rainbowd: parsed networks and
// accelerator specs stay in memory across requests, each model paired with
// its own EvalCache shard so (a) warm re-plans hit PR-1's memoization
// without re-parsing anything and (b) evicting a model frees its cache
// share instead of polluting a global LRU.  The DynaPlex
// registrationmanager is the structural exemplar: many dynamically
// registered models behind one uniform facade.
//
// Thread-safety — RCU-style snapshots: the registry's entire lookup state
// lives in one immutable RegistrySnapshot published through an
// std::atomic<std::shared_ptr>.  Readers (`plan`/`validate`/`analyze` on
// every request) load the current snapshot and never take the write
// mutex, so the warm serving path has zero lock contention with writers
// or other readers beyond the shared_ptr refcount.  Writers (upload /
// evict — rare) serialize on a plain mutex, copy the current snapshot,
// mutate the copy, and publish it atomically.  A reader therefore sees
// either the old or the new snapshot, never a torn mix (locked down by
// the churn test in serve_stress_test.cpp under TSan), and an eviction
// never invalidates an in-flight request that already resolved its entry
// — the plan completes against the old shared_ptr and the memory is
// reclaimed when the last holder drops it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "core/eval_cache.hpp"
#include "model/network.hpp"

namespace rainbow::serve {

/// One resident model: the parsed network plus its private eval cache.
struct ModelEntry {
  model::Network network;
  std::shared_ptr<core::EvalCache> cache;
  bool builtin = false;  ///< preloaded from the zoo (uploads are false)
  mutable std::atomic<std::uint64_t> plans_served{0};
};

/// One registered accelerator spec.
struct SpecEntry {
  arch::AcceleratorSpec spec;
};

/// The registry's immutable published state: name-sorted entry lists
/// (lookups binary-search).  A snapshot is never mutated after publish —
/// only the entries' interior atomics (plan counters) and their
/// thread-safe EvalCaches move underneath it.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::shared_ptr<ModelEntry>>> models;
  std::vector<std::pair<std::string, std::shared_ptr<SpecEntry>>> specs;

  [[nodiscard]] std::shared_ptr<const ModelEntry> find_model(
      const std::string& lowercase_name) const;
  [[nodiscard]] std::shared_ptr<const SpecEntry> find_spec(
      const std::string& lowercase_name) const;
};

struct RegistrySnapshotRow {
  std::string name;
  std::size_t layers = 0;
  bool builtin = false;
  std::uint64_t plans_served = 0;
  core::EvalCacheStats cache;
};

class ModelRegistry {
 public:
  /// `cache_entries` bounds each per-model EvalCache.
  explicit ModelRegistry(std::size_t cache_entries = 1 << 20);

  /// Registers `network` under `name`.  Returns false (and leaves the
  /// existing entry untouched) when the name is taken and `replace` is
  /// off; replacing resets the model's cache.  Throws on an empty name.
  bool register_model(const std::string& name, model::Network network,
                      bool builtin = false, bool replace = false);

  /// Preloads every built-in zoo model under its lowercase zoo name.
  void preload_zoo();

  /// The current immutable snapshot — a wait-free-ish atomic load, never
  /// the write mutex.  Hold it for the duration of one request to give
  /// every lookup in that request a consistent view.
  [[nodiscard]] std::shared_ptr<const RegistrySnapshot> read() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// nullptr when unknown.  The returned entry stays valid after eviction.
  [[nodiscard]] std::shared_ptr<const ModelEntry> find(
      const std::string& name) const;

  bool evict(const std::string& name);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::vector<RegistrySnapshotRow> rows() const;

  /// Sum of the per-model caches' approximate resident bytes.
  [[nodiscard]] std::uint64_t cache_bytes() const;

  // Named accelerator specs (uploaded via the spec text format).
  bool register_spec(const std::string& name, const arch::AcceleratorSpec& spec,
                     bool replace = false);
  [[nodiscard]] std::shared_ptr<const SpecEntry> find_spec(
      const std::string& name) const;
  bool evict_spec(const std::string& name);
  [[nodiscard]] std::vector<std::string> spec_names() const;

 private:
  /// Writer-side: copy-mutate-publish under write_mutex_.  `mutate` gets
  /// a fresh mutable copy of the current snapshot and returns whether to
  /// publish it (false = no-op, nothing published).
  template <typename Fn>
  bool update(Fn&& mutate);

  std::size_t cache_entries_;
  mutable std::mutex write_mutex_;
  std::atomic<std::shared_ptr<const RegistrySnapshot>> snapshot_;
};

}  // namespace rainbow::serve
