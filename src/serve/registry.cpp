#include "serve/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "model/zoo/zoo.hpp"

namespace rainbow::serve {

namespace {

std::string lowercase(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return name;
}

}  // namespace

ModelRegistry::ModelRegistry(std::size_t cache_entries)
    : cache_entries_(cache_entries) {}

std::shared_ptr<ModelEntry>* ModelRegistry::locate(const std::string& name) {
  for (auto& [key, entry] : models_) {
    if (key == name) {
      return &entry;
    }
  }
  return nullptr;
}

std::shared_ptr<SpecEntry>* ModelRegistry::locate_spec(
    const std::string& name) {
  for (auto& [key, entry] : specs_) {
    if (key == name) {
      return &entry;
    }
  }
  return nullptr;
}

bool ModelRegistry::register_model(const std::string& raw_name,
                                   model::Network network, bool builtin,
                                   bool replace) {
  const std::string name = lowercase(raw_name);
  if (name.empty()) {
    throw std::runtime_error("registry: empty model name");
  }
  auto entry = std::make_shared<ModelEntry>();
  entry->network = std::move(network);
  entry->cache = std::make_shared<core::EvalCache>(cache_entries_);
  entry->builtin = builtin;
  std::unique_lock lock(mutex_);
  if (std::shared_ptr<ModelEntry>* slot = locate(name)) {
    if (!replace) {
      return false;
    }
    *slot = std::move(entry);  // replacing resets the model's cache
    return true;
  }
  models_.emplace_back(name, std::move(entry));
  return true;
}

void ModelRegistry::preload_zoo() {
  for (const std::string& name : model::zoo::model_names()) {
    register_model(name, model::zoo::by_name(name), /*builtin=*/true);
  }
}

std::shared_ptr<const ModelEntry> ModelRegistry::find(
    const std::string& raw_name) const {
  const std::string name = lowercase(raw_name);
  std::shared_lock lock(mutex_);
  for (const auto& [key, entry] : models_) {
    if (key == name) {
      return entry;
    }
  }
  return nullptr;
}

bool ModelRegistry::evict(const std::string& raw_name) {
  const std::string name = lowercase(raw_name);
  std::unique_lock lock(mutex_);
  for (auto it = models_.begin(); it != models_.end(); ++it) {
    if (it->first == name) {
      models_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mutex_);
  return models_.size();
}

std::vector<std::string> ModelRegistry::names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [key, entry] : models_) {
    names.push_back(key);
  }
  return names;
}

std::vector<RegistrySnapshotRow> ModelRegistry::snapshot() const {
  std::shared_lock lock(mutex_);
  std::vector<RegistrySnapshotRow> rows;
  rows.reserve(models_.size());
  for (const auto& [key, entry] : models_) {
    RegistrySnapshotRow row;
    row.name = key;
    row.layers = entry->network.size();
    row.builtin = entry->builtin;
    row.plans_served = entry->plans_served.load(std::memory_order_relaxed);
    row.cache = entry->cache->stats();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::uint64_t ModelRegistry::cache_bytes() const {
  std::shared_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, entry] : models_) {
    total += entry->cache->approx_bytes();
  }
  return total;
}

bool ModelRegistry::register_spec(const std::string& raw_name,
                                  const arch::AcceleratorSpec& spec,
                                  bool replace) {
  const std::string name = lowercase(raw_name);
  if (name.empty()) {
    throw std::runtime_error("registry: empty spec name");
  }
  spec.validate();
  auto entry = std::make_shared<SpecEntry>(SpecEntry{spec});
  std::unique_lock lock(mutex_);
  if (std::shared_ptr<SpecEntry>* slot = locate_spec(name)) {
    if (!replace) {
      return false;
    }
    *slot = std::move(entry);
    return true;
  }
  specs_.emplace_back(name, std::move(entry));
  return true;
}

std::shared_ptr<const SpecEntry> ModelRegistry::find_spec(
    const std::string& raw_name) const {
  const std::string name = lowercase(raw_name);
  std::shared_lock lock(mutex_);
  for (const auto& [key, entry] : specs_) {
    if (key == name) {
      return entry;
    }
  }
  return nullptr;
}

bool ModelRegistry::evict_spec(const std::string& raw_name) {
  const std::string name = lowercase(raw_name);
  std::unique_lock lock(mutex_);
  for (auto it = specs_.begin(); it != specs_.end(); ++it) {
    if (it->first == name) {
      specs_.erase(it);
      return true;
    }
  }
  return false;
}

std::vector<std::string> ModelRegistry::spec_names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> names;
  names.reserve(specs_.size());
  for (const auto& [key, entry] : specs_) {
    names.push_back(key);
  }
  return names;
}

}  // namespace rainbow::serve
