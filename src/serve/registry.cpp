#include "serve/registry.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "model/zoo/zoo.hpp"

namespace rainbow::serve {

namespace {

std::string lowercase(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return name;
}

/// Binary search in a name-sorted entry vector; nullptr when absent.
template <typename Entry>
std::shared_ptr<const Entry> find_sorted(
    const std::vector<std::pair<std::string, std::shared_ptr<Entry>>>& list,
    const std::string& name) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), name,
      [](const auto& pair, const std::string& key) { return pair.first < key; });
  if (it == list.end() || it->first != name) {
    return nullptr;
  }
  return it->second;
}

/// Insert-or-replace into a name-sorted entry vector.  Returns false and
/// leaves the list untouched when the name exists and replace is off.
template <typename Entry>
bool upsert_sorted(
    std::vector<std::pair<std::string, std::shared_ptr<Entry>>>& list,
    const std::string& name, std::shared_ptr<Entry> entry, bool replace) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), name,
      [](const auto& pair, const std::string& key) { return pair.first < key; });
  if (it != list.end() && it->first == name) {
    if (!replace) {
      return false;
    }
    it->second = std::move(entry);
    return true;
  }
  list.emplace(it, name, std::move(entry));
  return true;
}

template <typename Entry>
bool erase_sorted(
    std::vector<std::pair<std::string, std::shared_ptr<Entry>>>& list,
    const std::string& name) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), name,
      [](const auto& pair, const std::string& key) { return pair.first < key; });
  if (it == list.end() || it->first != name) {
    return false;
  }
  list.erase(it);
  return true;
}

}  // namespace

std::shared_ptr<const ModelEntry> RegistrySnapshot::find_model(
    const std::string& lowercase_name) const {
  return find_sorted(models, lowercase_name);
}

std::shared_ptr<const SpecEntry> RegistrySnapshot::find_spec(
    const std::string& lowercase_name) const {
  return find_sorted(specs, lowercase_name);
}

ModelRegistry::ModelRegistry(std::size_t cache_entries)
    : cache_entries_(cache_entries) {
  snapshot_.store(std::make_shared<const RegistrySnapshot>(),
                  std::memory_order_release);
}

template <typename Fn>
bool ModelRegistry::update(Fn&& mutate) {
  std::lock_guard lock(write_mutex_);
  // Writers are serialized by the mutex, so this copy of the current
  // snapshot is the latest; readers keep loading the old one until the
  // store below.
  auto next = std::make_shared<RegistrySnapshot>(
      *snapshot_.load(std::memory_order_acquire));
  if (!mutate(*next)) {
    return false;
  }
  snapshot_.store(std::shared_ptr<const RegistrySnapshot>(std::move(next)),
                  std::memory_order_release);
  return true;
}

bool ModelRegistry::register_model(const std::string& raw_name,
                                   model::Network network, bool builtin,
                                   bool replace) {
  const std::string name = lowercase(raw_name);
  if (name.empty()) {
    throw std::runtime_error("registry: empty model name");
  }
  auto entry = std::make_shared<ModelEntry>();
  entry->network = std::move(network);
  entry->cache = std::make_shared<core::EvalCache>(cache_entries_);
  entry->builtin = builtin;
  return update([&](RegistrySnapshot& next) {
    // Replacing installs the fresh entry built above, which resets the
    // model's cache (the old cache keyed estimates of a different net).
    return upsert_sorted(next.models, name, std::move(entry), replace);
  });
}

void ModelRegistry::preload_zoo() {
  for (const std::string& name : model::zoo::model_names()) {
    register_model(name, model::zoo::by_name(name), /*builtin=*/true);
  }
}

std::shared_ptr<const ModelEntry> ModelRegistry::find(
    const std::string& raw_name) const {
  return read()->find_model(lowercase(raw_name));
}

bool ModelRegistry::evict(const std::string& raw_name) {
  const std::string name = lowercase(raw_name);
  return update(
      [&](RegistrySnapshot& next) { return erase_sorted(next.models, name); });
}

std::size_t ModelRegistry::size() const { return read()->models.size(); }

std::vector<std::string> ModelRegistry::names() const {
  const std::shared_ptr<const RegistrySnapshot> snapshot = read();
  std::vector<std::string> names;
  names.reserve(snapshot->models.size());
  for (const auto& [key, entry] : snapshot->models) {
    names.push_back(key);
  }
  return names;
}

std::vector<RegistrySnapshotRow> ModelRegistry::rows() const {
  const std::shared_ptr<const RegistrySnapshot> snapshot = read();
  std::vector<RegistrySnapshotRow> rows;
  rows.reserve(snapshot->models.size());
  for (const auto& [key, entry] : snapshot->models) {
    RegistrySnapshotRow row;
    row.name = key;
    row.layers = entry->network.size();
    row.builtin = entry->builtin;
    row.plans_served = entry->plans_served.load(std::memory_order_relaxed);
    row.cache = entry->cache->stats();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::uint64_t ModelRegistry::cache_bytes() const {
  const std::shared_ptr<const RegistrySnapshot> snapshot = read();
  std::uint64_t total = 0;
  for (const auto& [key, entry] : snapshot->models) {
    total += entry->cache->approx_bytes();
  }
  return total;
}

bool ModelRegistry::register_spec(const std::string& raw_name,
                                  const arch::AcceleratorSpec& spec,
                                  bool replace) {
  const std::string name = lowercase(raw_name);
  if (name.empty()) {
    throw std::runtime_error("registry: empty spec name");
  }
  spec.validate();
  auto entry = std::make_shared<SpecEntry>(SpecEntry{spec});
  return update([&](RegistrySnapshot& next) {
    return upsert_sorted(next.specs, name, std::move(entry), replace);
  });
}

std::shared_ptr<const SpecEntry> ModelRegistry::find_spec(
    const std::string& raw_name) const {
  return read()->find_spec(lowercase(raw_name));
}

bool ModelRegistry::evict_spec(const std::string& raw_name) {
  const std::string name = lowercase(raw_name);
  return update(
      [&](RegistrySnapshot& next) { return erase_sorted(next.specs, name); });
}

std::vector<std::string> ModelRegistry::spec_names() const {
  const std::shared_ptr<const RegistrySnapshot> snapshot = read();
  std::vector<std::string> names;
  names.reserve(snapshot->specs.size());
  for (const auto& [key, entry] : snapshot->specs) {
    names.push_back(key);
  }
  return names;
}

}  // namespace rainbow::serve
