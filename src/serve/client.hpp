// Blocking client for the rainbowd protocol.  Owns one connection and
// serialises request/response pairs over it; create one Client per thread
// for concurrent load (bench_serve does exactly that).
#pragma once

#include <string>

#include "serve/protocol.hpp"

namespace rainbow::serve {

class Client {
 public:
  /// Connects to a unix-domain socket (throws std::runtime_error on
  /// failure).
  static Client connect_unix(const std::string& path);
  /// Connects to a loopback TCP port.
  static Client connect_tcp(int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request and blocks for its response.  Throws on transport
  /// errors (including server-side disconnect); protocol-level failures
  /// come back as Response{ok=false}.
  Response call(const Request& request);

  /// call() that throws std::runtime_error when the response is an error,
  /// using its `message` header.
  Response call_ok(const Request& request);

  /// Pipelining: send() writes a request frame without waiting, receive()
  /// blocks for the next response.  The server answers in request order,
  /// so after N send()s the next N receive()s pair up positionally.
  /// Throws on transport errors; receive() throws on server disconnect.
  void send(const Request& request);
  Response receive();

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace rainbow::serve
