// rainbowd wire protocol: length-prefixed frames carrying a small text
// message, chosen over HTTP so the daemon has zero dependencies and the
// whole stack stays fuzzable from the repo's own tests.
//
// Frame layout (all on the wire, little-endian):
//
//   +------+------+----------------+
//   | RNBW | u32  |  payload bytes |
//   +------+------+----------------+
//    magic  length
//
// The length counts payload bytes only and is bounded (kMaxFrameBytes) so
// a garbage or hostile peer cannot make the daemon allocate unbounded
// memory.  A short read inside a frame is a hard "truncated frame" error —
// the transport guarantees a parser never sees a partially delivered
// upload (mid-line truncation inside a *complete* frame is the parser's
// job to reject; see util/line_reader.hpp).
//
// Payload layout (requests and responses share it):
//
//   <verb-or-status>\n
//   <key> <value>\n        (zero or more headers)
//   \n
//   <body bytes, verbatim to end of payload>
//
// Verbs, keys, and status tokens are lowercase [a-z0-9_]+; header values
// are single-line free text.  The body is uninterpreted at this layer —
// model text, plan text, spec text, or CSV, depending on the verb.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/arena.hpp"

namespace rainbow::serve {

inline constexpr char kMagic[4] = {'R', 'N', 'B', 'W'};
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024 * 1024;
inline constexpr int kProtocolVersion = 1;

struct Request {
  std::string verb;
  std::map<std::string, std::string> headers;
  std::string body;

  /// Header accessors with defaults; throw std::runtime_error on a present
  /// but malformed numeric value.
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
};

struct Response {
  bool ok = true;
  std::map<std::string, std::string> headers;
  std::string body;

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;

  static Response error(std::string message);
};

/// Payload (de)serialization.  Decoders throw std::runtime_error on any
/// malformed payload: unknown status token, non-token verb/key, missing
/// blank-line separator, header value with an embedded newline.
[[nodiscard]] std::string encode_request(const Request& request);
[[nodiscard]] Request decode_request(std::string_view payload);
[[nodiscard]] std::string encode_response(const Response& response);
[[nodiscard]] Response decode_response(std::string_view payload);

/// Move-aware decoders: when the caller owns the payload string, the body
/// — by far the largest part of a plan response or model upload — is
/// carved out of it in place instead of copied.  `payload` is consumed.
/// (Named, not overloaded: a string literal would be ambiguous between
/// string_view and string&&.)
[[nodiscard]] Request decode_request_owned(std::string&& payload);
[[nodiscard]] Response decode_response_owned(std::string&& payload);

/// Encodes `response` as one complete wire frame (magic + length +
/// payload) appended to an arena-backed buffer: the body is copied
/// exactly once, straight into its final wire position, with no
/// intermediate payload string.  The serving workers use this so a warm
/// response costs zero heap allocations after the arena warms up.
void encode_response_frame(const Response& response, util::ArenaBuffer& out);

/// Appends the 8-byte frame header + payload for `payload` to `out` —
/// the framing counterpart of encode_request for pipelined senders that
/// batch several frames into one write.
void append_frame(std::string& out, std::string_view payload);

/// Incremental frame scan for non-blocking transports.  Examines `in`
/// for one complete frame; returns 0 when more bytes are needed, else
/// sets `payload` to the frame's payload span *inside `in`* and returns
/// the total bytes consumed (header + payload).  Throws on bad magic or
/// a length over `max_bytes` — the connection is unrecoverable.
[[nodiscard]] std::size_t try_parse_frame(std::string_view in,
                                          std::string_view& payload,
                                          std::uint32_t max_bytes);

/// Blocking frame I/O on a connected socket.  write_frame throws on any
/// short write or payload over kMaxFrameBytes.  read_frame returns false
/// on clean EOF at a frame boundary; it throws on bad magic, an oversized
/// length, or EOF mid-frame ("truncated frame").
void write_frame(int fd, std::string_view payload);
[[nodiscard]] bool read_frame(int fd, std::string& payload,
                              std::uint32_t max_bytes = kMaxFrameBytes);

/// True iff `token` is a valid verb/status/header-key token.
[[nodiscard]] bool is_token(std::string_view token);

}  // namespace rainbow::serve
