#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace rainbow::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("client: " + what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("client: unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    fail_errno("socket(AF_UNIX)");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("connect(" + path + ")");
  }
  return Client(fd);
}

Client Client::connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    fail_errno("socket(AF_INET)");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail_errno("connect(port " + std::to_string(port) + ")");
  }
  // Small request frames must leave immediately; Nagle + delayed ACK
  // would add ~40 ms per round-trip otherwise.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Response Client::call(const Request& request) {
  send(request);
  return receive();
}

void Client::send(const Request& request) {
  if (fd_ < 0) {
    throw std::runtime_error("client: not connected");
  }
  write_frame(fd_, encode_request(request));
}

Response Client::receive() {
  if (fd_ < 0) {
    throw std::runtime_error("client: not connected");
  }
  std::string payload;
  if (!read_frame(fd_, payload, kMaxFrameBytes)) {
    throw std::runtime_error("client: server closed the connection");
  }
  // Move decode: the response body — plan text, usually the bulk of the
  // frame — is carved out of the payload instead of copied.
  return decode_response_owned(std::move(payload));
}

Response Client::call_ok(const Request& request) {
  Response response = call(request);
  if (!response.ok) {
    throw std::runtime_error("server error for '" + request.verb +
                             "': " + response.get("message"));
  }
  return response;
}

}  // namespace rainbow::serve
