#include "serve/service.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "analysis/stream_analyzer.hpp"
#include "arch/spec_io.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "core/plan_io.hpp"
#include "dse/sweep.hpp"
#include "model/parser.hpp"
#include "util/hash.hpp"
#include "validate/plan_validator.hpp"

namespace rainbow::serve {

namespace {

std::string lowercase(std::string name) {
  std::transform(name.begin(), name.end(), name.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return name;
}

std::string fmt_f0(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.0f", value);
  return buffer;
}

std::string fmt_f4(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.4f", value);
  return buffer;
}

core::Objective parse_objective(const std::string& name) {
  if (name == "accesses") {
    return core::Objective::kAccesses;
  }
  if (name == "latency") {
    return core::Objective::kLatency;
  }
  throw std::runtime_error("unknown objective '" + name + "'");
}

std::vector<long long> parse_int_list(const std::string& text,
                                      const std::string& key) {
  std::vector<long long> values;
  std::string field;
  std::istringstream in(text);
  while (std::getline(in, field, ',')) {
    try {
      std::size_t consumed = 0;
      values.push_back(std::stoll(field, &consumed));
      if (consumed != field.size()) {
        throw std::invalid_argument("trailing characters");
      }
    } catch (const std::exception&) {
      throw std::runtime_error("bad integer list header '" + key + "': '" +
                               text + "'");
    }
  }
  if (values.empty()) {
    throw std::runtime_error("empty integer list header '" + key + "'");
  }
  return values;
}

/// Planning options shared by the plan / dse paths, derived from request
/// headers exactly the way the rainbow_plan CLI derives them from flags —
/// the byte-identity guarantee depends on this mapping staying aligned.
core::ManagerOptions manager_options_for(const Request& request) {
  core::ManagerOptions options;
  options.analyzer.allow_prefetch = request.get_bool("prefetch", true);
  options.analyzer.estimator.padded_traffic = request.get_bool("padded", true);
  options.analyzer.estimator.batch =
      static_cast<int>(request.get_int("batch", 1));
  options.interlayer_reuse = request.get_bool("interlayer", false);
  return options;
}


void append_cache_headers(Response& response,
                          const core::EvalCacheStats& stats) {
  response.headers["cache_lookups"] = std::to_string(stats.lookups);
  response.headers["cache_hits"] = std::to_string(stats.hits);
  response.headers["cache_hit_rate"] = fmt_f4(stats.hit_rate());
  response.headers["cache_entries"] = std::to_string(stats.entries);
  response.headers["cache_bytes"] = std::to_string(stats.approx_bytes);
}

}  // namespace

PlanningService::PlanningService(ServiceOptions options)
    : registry_(options.cache_entries) {
  if (options.preload_zoo) {
    registry_.preload_zoo();
  }
}

ServiceStats PlanningService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.plan_requests = plan_requests_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

Response PlanningService::handle(const Request& request) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  try {
    if (request.verb == "ping") {
      return do_ping(request);
    }
    if (request.verb == "upload") {
      return do_upload(request);
    }
    if (request.verb == "upload_spec") {
      return do_upload_spec(request);
    }
    if (request.verb == "list") {
      return do_list(request);
    }
    if (request.verb == "evict") {
      return do_evict(request);
    }
    if (request.verb == "stats") {
      return do_stats(request);
    }
    if (request.verb == "plan") {
      return do_plan(request);
    }
    if (request.verb == "dse") {
      return do_dse(request);
    }
    if (request.verb == "validate") {
      return do_validate(request);
    }
    if (request.verb == "analyze") {
      return do_analyze(request);
    }
    if (request.verb == "shutdown") {
      // The transport layer owns process lifetime; acknowledging here keeps
      // the service drivable without a server (tests, future transports).
      Response response;
      response.headers["stopping"] = "1";
      return response;
    }
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Response::error("unknown verb '" + request.verb + "'");
  } catch (const std::exception& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return Response::error(e.what());
  }
}

Response PlanningService::do_ping(const Request&) {
  Response response;
  response.headers["server"] = "rainbowd";
  response.headers["protocol"] = std::to_string(kProtocolVersion);
  return response;
}

Response PlanningService::do_upload(const Request& request) {
  if (request.body.empty()) {
    return Response::error("upload: empty model body");
  }
  const model::Network network = model::parse_network(request.body);
  const std::string name =
      lowercase(request.get("name", network.name()));
  const bool replace = request.get_bool("replace", false);
  if (!registry_.register_model(name, network, /*builtin=*/false, replace)) {
    return Response::error("upload: model '" + name +
                           "' already registered (set 'replace 1')");
  }
  Response response;
  response.headers["model"] = name;
  response.headers["layers"] = std::to_string(network.size());
  return response;
}

Response PlanningService::do_upload_spec(const Request& request) {
  if (request.body.empty()) {
    return Response::error("upload_spec: empty spec body");
  }
  const arch::NamedSpec named = arch::parse_spec(request.body);
  const std::string name = lowercase(request.get("name", named.name));
  const bool replace = request.get_bool("replace", false);
  if (!registry_.register_spec(name, named.spec, replace)) {
    return Response::error("upload_spec: spec '" + name +
                           "' already registered (set 'replace 1')");
  }
  Response response;
  response.headers["spec"] = name;
  return response;
}

Response PlanningService::do_list(const Request&) {
  Response response;
  std::ostringstream body;
  body << "# kind, name, layers, builtin, plans_served\n";
  for (const RegistrySnapshotRow& row : registry_.rows()) {
    body << "model, " << row.name << ", " << row.layers << ", "
         << (row.builtin ? 1 : 0) << ", " << row.plans_served << '\n';
  }
  for (const std::string& name : registry_.spec_names()) {
    body << "spec, " << name << ", 0, 0, 0\n";
  }
  response.headers["models"] = std::to_string(registry_.size());
  response.headers["specs"] =
      std::to_string(registry_.spec_names().size());
  response.body = body.str();
  return response;
}

Response PlanningService::do_evict(const Request& request) {
  const std::string name = request.get("model");
  const std::string spec = request.get("spec");
  if (name.empty() == spec.empty()) {
    return Response::error("evict: set exactly one of 'model' or 'spec'");
  }
  const bool evicted =
      name.empty() ? registry_.evict_spec(spec) : registry_.evict(name);
  if (!evicted) {
    return Response::error("evict: unknown " +
                           std::string(name.empty() ? "spec '" + spec
                                                    : "model '" + name) +
                           "'");
  }
  Response response;
  response.headers["evicted"] = name.empty() ? spec : name;
  return response;
}

Response PlanningService::do_stats(const Request&) {
  Response response;
  const ServiceStats s = stats();
  response.headers["requests"] = std::to_string(s.requests);
  response.headers["plan_requests"] = std::to_string(s.plan_requests);
  response.headers["coalesced"] = std::to_string(s.coalesced);
  response.headers["errors"] = std::to_string(s.errors);
  response.headers["models"] = std::to_string(registry_.size());

  core::EvalCacheStats total;
  std::ostringstream body;
  body << "# model, layers, plans_served, lookups, hits, hit_rate, entries, "
          "approx_bytes\n";
  for (const RegistrySnapshotRow& row : registry_.rows()) {
    total.lookups += row.cache.lookups;
    total.hits += row.cache.hits;
    total.misses += row.cache.misses;
    total.inserts += row.cache.inserts;
    total.evictions += row.cache.evictions;
    total.entries += row.cache.entries;
    total.approx_bytes += row.cache.approx_bytes;
    body << row.name << ", " << row.layers << ", " << row.plans_served << ", "
         << row.cache.lookups << ", " << row.cache.hits << ", "
         << fmt_f4(row.cache.hit_rate()) << ", " << row.cache.entries << ", "
         << row.cache.approx_bytes << '\n';
  }
  append_cache_headers(response, total);
  response.body = body.str();
  return response;
}

arch::AcceleratorSpec PlanningService::spec_for(const Request& request) const {
  arch::AcceleratorSpec spec;
  const std::string spec_name = request.get("spec");
  if (!spec_name.empty()) {
    const std::shared_ptr<const SpecEntry> entry =
        registry_.find_spec(spec_name);
    if (!entry) {
      throw std::runtime_error("unknown spec '" + spec_name + "'");
    }
    spec = entry->spec;
    if (const long long glb_kb = request.get_int("glb_kb", 0); glb_kb > 0) {
      spec.glb_bytes = static_cast<count_t>(glb_kb) * 1024;
    }
  } else {
    spec = arch::paper_spec(
        static_cast<count_t>(request.get_int("glb_kb", 64)) * 1024);
  }
  if (const long long width = request.get_int("width_bits", 0); width > 0) {
    spec.data_width_bits = static_cast<int>(width);
  }
  spec.validate();
  return spec;
}

PlanningService::FlightShard& PlanningService::flight_shard_for(
    const std::string& key) {
  // Only shard selection depends on the hash; FNV-1a spreads distinct
  // keys, which is all that matters here.
  return flight_shards_[util::fnv1a(key) % kFlightShards];
}

Response PlanningService::do_plan(const Request& request) {
  plan_requests_.fetch_add(1, std::memory_order_relaxed);

  // Canonical single-flight key: every header that can influence the plan
  // bytes, plus the resolved spec (a named spec may change under the same
  // name, so the key uses its field values, not its name).  Built by
  // plain string appends — this runs on every plan request, and an
  // ostringstream here showed up in the event-loop profile.
  const arch::AcceleratorSpec spec = spec_for(request);
  std::string key;
  key.reserve(128);
  key += lowercase(request.get("model"));
  key += '\n';
  key += request.get("scheme", "het");
  key += '\n';
  key += request.get("objective", "accesses");
  key += '\n';
  key += request.get_bool("interlayer", false) ? '1' : '0';
  key += request.get_bool("prefetch", true) ? '1' : '0';
  key += request.get_bool("padded", true) ? '1' : '0';
  key += request.get_bool("validate", false) ? '1' : '0';
  key += request.get_bool("analyze", false) ? '1' : '0';
  key += '\n';
  key += std::to_string(request.get_int("batch", 1));
  key += '\n';
  for (const long long field :
       {static_cast<long long>(spec.pe_rows), static_cast<long long>(spec.pe_cols),
        static_cast<long long>(spec.ops_per_cycle),
        static_cast<long long>(spec.data_width_bits),
        static_cast<long long>(spec.glb_bytes),
        static_cast<long long>(spec.dram_bytes_per_cycle),
        static_cast<long long>(spec.sram_bytes_per_cycle)}) {
    key += std::to_string(field);
    key += ' ';
  }

  FlightShard& shard = flight_shard_for(key);
  std::shared_future<Response> flight;
  std::shared_ptr<std::promise<Response>> owner;
  {
    std::lock_guard lock(shard.mutex);
    const auto it = shard.flights.find(key);
    if (it != shard.flights.end()) {
      flight = it->second;
    } else {
      owner = std::make_shared<std::promise<Response>>();
      flight = owner->get_future().share();
      shard.flights.emplace(key, flight);
    }
  }
  if (!owner) {
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    Response shared = flight.get();
    shared.headers["coalesced"] = "1";
    return shared;
  }
  Response response;
  try {
    response = compute_plan(request);
  } catch (const std::exception& e) {
    response = Response::error(e.what());
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard lock(shard.mutex);
    shard.flights.erase(key);
  }
  owner->set_value(response);
  return response;
}

Response PlanningService::compute_plan(const Request& request) {
  const std::string model_name = request.get("model");
  if (model_name.empty()) {
    throw std::runtime_error("plan: missing 'model' header");
  }
  const std::shared_ptr<const ModelEntry> entry = registry_.find(model_name);
  if (!entry) {
    throw std::runtime_error("plan: unknown model '" + model_name +
                             "' (upload or preload it first)");
  }
  const arch::AcceleratorSpec spec = spec_for(request);
  const core::Objective objective =
      parse_objective(request.get("objective", "accesses"));
  const std::string scheme = request.get("scheme", "het");
  if (scheme != "het" && scheme != "hom") {
    throw std::runtime_error("plan: unknown scheme '" + scheme + "'");
  }

  core::ManagerOptions options = manager_options_for(request);
  options.analyzer.eval_cache = entry->cache;
  const core::MemoryManager manager(spec, options);
  const core::ExecutionPlan plan =
      scheme == "hom" ? manager.plan_homogeneous(entry->network, objective)
                      : manager.plan(entry->network, objective);
  entry->plans_served.fetch_add(1, std::memory_order_relaxed);

  if (request.get_bool("validate", false)) {
    validate::ValidatorOptions voptions;
    voptions.estimator = options.analyzer.estimator;
    const validate::ValidationReport report =
        validate::PlanValidator(voptions).validate(plan, entry->network);
    if (!report.ok()) {
      std::string message = "plan failed validation:";
      for (const auto& d : report.diagnostics()) {
        message += ' ' + d.message();
      }
      throw std::runtime_error(message);
    }
  }
  if (request.get_bool("analyze", false)) {
    const codegen::Program program = codegen::lower(plan, entry->network);
    const analysis::AnalysisResult result =
        analysis::analyze_lowering(program, plan, entry->network);
    if (!result.ok()) {
      std::string message = "plan failed stream analysis:";
      for (const auto& d : result.report.diagnostics()) {
        message += ' ' + d.message();
      }
      throw std::runtime_error(message);
    }
  }

  Response response;
  response.headers["model"] = plan.model();
  response.headers["scheme"] = plan.scheme();
  response.headers["objective"] = std::string(core::to_string(objective));
  response.headers["layers"] = std::to_string(plan.size());
  response.headers["accesses"] = std::to_string(plan.total_accesses());
  response.headers["latency_cycles"] = fmt_f0(plan.total_latency_cycles());
  response.headers["feasible"] = plan.feasible() ? "1" : "0";
  response.headers["interlayer_links"] =
      std::to_string(plan.interlayer_links());
  append_cache_headers(response, entry->cache->stats());
  response.body = core::serialize_plan(plan);
  return response;
}

Response PlanningService::do_dse(const Request& request) {
  const std::string model_name = request.get("model");
  if (model_name.empty()) {
    throw std::runtime_error("dse: missing 'model' header");
  }
  const std::shared_ptr<const ModelEntry> entry = registry_.find(model_name);
  if (!entry) {
    throw std::runtime_error("dse: unknown model '" + model_name + "'");
  }

  dse::SweepConfig config;
  for (const long long kb : parse_int_list(request.get("glb_kb", "64"),
                                           "glb_kb")) {
    if (kb <= 0) {
      throw std::runtime_error("dse: glb_kb values must be positive");
    }
    config.glb_bytes.push_back(static_cast<count_t>(kb) * 1024);
  }
  config.data_width_bits.clear();
  for (const long long width : parse_int_list(
           request.get("width_bits", "8"), "width_bits")) {
    config.data_width_bits.push_back(static_cast<int>(width));
  }
  config.batch_sizes.clear();
  for (const long long batch : parse_int_list(request.get("batch", "1"),
                                              "batch")) {
    config.batch_sizes.push_back(static_cast<int>(batch));
  }
  const std::string objective = request.get("objective", "accesses");
  config.objectives =
      objective == "both"
          ? std::vector<core::Objective>{core::Objective::kAccesses,
                                         core::Objective::kLatency}
          : std::vector<core::Objective>{parse_objective(objective)};
  config.with_interlayer = request.get_bool("interlayer", false);
  config.eval_cache = entry->cache;
  config.validate();

  // One worker: the daemon's concurrency axis is requests, not grid points
  // — a wide sweep must not starve latency-sensitive plan requests.
  const std::vector<dse::SweepPoint> points =
      dse::run_sweep(entry->network, config, 1);

  std::ostringstream body;
  body << "# glb_kb, width_bits, batch, objective, interlayer, accesses, "
          "access_mb, latency_cycles, energy_mj\n";
  for (const dse::SweepPoint& p : points) {
    body << (p.glb_bytes / 1024) << ", " << p.data_width_bits << ", "
         << p.batch << ", " << core::to_string(p.objective) << ", "
         << (p.interlayer ? 1 : 0) << ", " << p.accesses << ", "
         << fmt_f4(p.access_mb) << ", " << fmt_f0(p.latency_cycles) << ", "
         << fmt_f4(p.energy_mj) << '\n';
  }
  Response response;
  response.headers["model"] = model_name;
  response.headers["points"] = std::to_string(points.size());
  append_cache_headers(response, entry->cache->stats());
  response.body = body.str();
  return response;
}

Response PlanningService::do_validate(const Request& request) {
  const std::string model_name = request.get("model");
  if (model_name.empty()) {
    throw std::runtime_error("validate: missing 'model' header");
  }
  const std::shared_ptr<const ModelEntry> entry = registry_.find(model_name);
  if (!entry) {
    throw std::runtime_error("validate: unknown model '" + model_name + "'");
  }
  if (request.body.empty()) {
    throw std::runtime_error("validate: empty plan body");
  }
  core::EstimatorOptions estimator;
  estimator.padded_traffic = request.get_bool("padded", true);
  estimator.batch = static_cast<int>(request.get_int("batch", 1));
  const core::ExecutionPlan plan =
      core::parse_plan(request.body, entry->network, estimator);

  validate::ValidatorOptions voptions;
  voptions.estimator = estimator;
  const validate::ValidationReport report =
      validate::PlanValidator(voptions).validate(plan, entry->network);

  Response response;
  response.ok = report.ok();
  response.headers["model"] = model_name;
  response.headers["errors"] = std::to_string(report.error_count());
  response.headers["warnings"] = std::to_string(report.warning_count());
  std::ostringstream body;
  for (const auto& d : report.diagnostics()) {
    body << d.message() << '\n';
  }
  response.body = body.str();
  return response;
}

Response PlanningService::do_analyze(const Request& request) {
  const std::string model_name = request.get("model");
  if (model_name.empty()) {
    throw std::runtime_error("analyze: missing 'model' header");
  }
  const std::shared_ptr<const ModelEntry> entry = registry_.find(model_name);
  if (!entry) {
    throw std::runtime_error("analyze: unknown model '" + model_name + "'");
  }
  if (request.body.empty()) {
    throw std::runtime_error("analyze: empty plan body");
  }
  core::EstimatorOptions estimator;
  estimator.padded_traffic = request.get_bool("padded", true);
  estimator.batch = static_cast<int>(request.get_int("batch", 1));
  const core::ExecutionPlan plan =
      core::parse_plan(request.body, entry->network, estimator);

  const codegen::Program program = codegen::lower(plan, entry->network);
  const analysis::AnalysisResult result =
      analysis::analyze_lowering(program, plan, entry->network);

  Response response;
  response.ok = result.ok();
  response.headers["model"] = model_name;
  response.headers["errors"] = std::to_string(result.report.error_count());
  response.headers["warnings"] =
      std::to_string(result.report.warning_count());
  response.headers["commands"] = std::to_string(result.commands);
  response.headers["regions"] = std::to_string(result.regions);
  response.headers["peak_live_elems"] =
      std::to_string(result.peak_live_elems);
  std::ostringstream body;
  for (const auto& d : result.report.diagnostics()) {
    body << d.message() << '\n';
  }
  response.body = body.str();
  return response;
}

}  // namespace rainbow::serve
