#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <stdexcept>

namespace rainbow::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("server: " + what + ": " + std::strerror(errno));
}

}  // namespace

Server::Server(PlanningService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  if (!config_.unix_path.empty()) {
    if (config_.unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("server: unix socket path too long: " +
                               config_.unix_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      fail_errno("socket(AF_UNIX)");
    }
    ::unlink(config_.unix_path.c_str());  // a stale path from a dead daemon
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail_errno("bind(" + config_.unix_path + ")");
    }
  } else if (config_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      fail_errno("socket(AF_INET)");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail_errno("bind(port " + std::to_string(config_.tcp_port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      fail_errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  } else {
    throw std::runtime_error("server: configure a unix path or a TCP port");
  }
  if (::listen(listen_fd_, 128) != 0) {
    fail_errno("listen");
  }
  pool_ = std::make_unique<util::ThreadPool>(config_.threads);
}

Server::~Server() {
  request_stop();
  if (acceptor_.joinable() || !connections_.empty()) {
    (void)wait();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!config_.unix_path.empty()) {
    ::unlink(config_.unix_path.c_str());
  }
}

void Server::start() {
  if (acceptor_.joinable()) {
    throw std::runtime_error("server: already started");
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

std::uint64_t Server::wait() {
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  // Wake every connection blocked in recv, then join them all.
  std::vector<std::thread> to_join;
  {
    std::lock_guard lock(connections_mutex_);
    for (int fd : connection_fds_) {
      if (fd >= 0) {
        ::shutdown(fd, SHUT_RDWR);
      }
    }
    to_join.swap(connections_);
    connection_fds_.clear();
  }
  for (std::thread& thread : to_join) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  pool_.reset();  // drain the planning queue
  return served_.load();
}

std::uint64_t Server::stop() {
  request_stop();
  return wait();
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    if (ready == 0) {
      continue;  // timeout: re-check the stop flag
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      break;
    }
    if (port_ >= 0) {
      // Request/response over loopback: never trade latency for
      // batching (Nagle would add delayed-ACK stalls to small frames).
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    std::lock_guard lock(connections_mutex_);
    // Reap finished connection threads so a long-lived daemon's thread
    // list stays proportional to *live* connections.  A finished thread
    // marked its fd slot -2.
    for (std::size_t i = 0; i < connections_.size();) {
      if (connection_fds_[i] == -2) {
        connections_[i].join();
        connections_.erase(connections_.begin() +
                           static_cast<std::ptrdiff_t>(i));
        connection_fds_.erase(connection_fds_.begin() +
                              static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    const std::size_t slot = connections_.size();
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd, slot] {
      serve_connection(fd);
      std::lock_guard inner(connections_mutex_);
      if (slot < connection_fds_.size() && connection_fds_[slot] == fd) {
        connection_fds_[slot] = -2;
      }
    });
  }
}

void Server::serve_connection(int fd) {
  std::string payload;
  while (!stopping_.load()) {
    bool got = false;
    try {
      got = read_frame(fd, payload, config_.max_frame_bytes);
    } catch (const std::exception&) {
      break;  // framing is unrecoverable: bad magic / truncated frame
    }
    if (!got) {
      break;  // clean EOF
    }
    Response response;
    bool shutdown_requested = false;
    try {
      const Request request = decode_request(payload);
      shutdown_requested = request.verb == "shutdown";
      // Planning runs on the bounded pool; this thread only does I/O.
      auto task = std::make_shared<std::packaged_task<Response()>>(
          [this, &request] { return service_.handle(request); });
      std::future<Response> result = task->get_future();
      pool_->submit([task] { (*task)(); });
      response = result.get();
    } catch (const std::exception& e) {
      response = Response::error(e.what());
    }
    try {
      write_frame(fd, encode_response(response));
    } catch (const std::exception&) {
      break;  // peer vanished mid-response
    }
    served_.fetch_add(1, std::memory_order_relaxed);
    if (shutdown_requested) {
      request_stop();
      break;
    }
  }
  ::close(fd);
}

}  // namespace rainbow::serve
