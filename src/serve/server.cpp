#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace rainbow::serve {

namespace {

// epoll user-data tags for the two non-connection fds; connection ids
// start above them (next_conn_id_).
constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error("server: " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    fail_errno("fcntl(O_NONBLOCK)");
  }
}

}  // namespace

Server::Server(PlanningService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {
  if (!config_.unix_path.empty()) {
    if (config_.unix_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
      throw std::runtime_error("server: unix socket path too long: " +
                               config_.unix_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      fail_errno("socket(AF_UNIX)");
    }
    ::unlink(config_.unix_path.c_str());  // a stale path from a dead daemon
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail_errno("bind(" + config_.unix_path + ")");
    }
  } else if (config_.tcp_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      fail_errno("socket(AF_INET)");
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      fail_errno("bind(port " + std::to_string(config_.tcp_port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) != 0) {
      fail_errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
  } else {
    throw std::runtime_error("server: configure a unix path or a TCP port");
  }
  if (::listen(listen_fd_, 128) != 0) {
    fail_errno("listen");
  }
  set_nonblocking(listen_fd_);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    fail_errno("epoll_create1");
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    fail_errno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    fail_errno("epoll_ctl(listen)");
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    fail_errno("epoll_ctl(eventfd)");
  }

  pool_ = std::make_unique<util::ThreadPool>(config_.threads);
}

Server::~Server() {
  request_stop();
  if (loop_.joinable() || pool_) {
    (void)wait();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (!config_.unix_path.empty()) {
    ::unlink(config_.unix_path.c_str());
  }
}

void Server::start() {
  if (loop_.joinable()) {
    throw std::runtime_error("server: already started");
  }
  loop_ = std::thread([this] { event_loop(); });
}

void Server::request_stop() noexcept {
  stopping_.store(true);
  wake();
}

void Server::wake() noexcept {
  // write(2) is on the async-signal-safe list; rainbowd's SIGTERM handler
  // reaches here.  A full eventfd counter (impossible in practice) or a
  // pre-start call just drops the wakeup — the loop polls stopping_ too.
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

std::uint64_t Server::wait() {
  if (loop_.joinable()) {
    loop_.join();
  }
  pool_.reset();  // drain the planning queue
  // Workers that finished after the loop exited parked their completions
  // here; nobody will write them now.
  {
    std::lock_guard lock(completions_mutex_);
    for (Completion& done : completions_) {
      arenas_.release(std::move(done.out.arena));
    }
    completions_.clear();
  }
  return served_.load();
}

std::uint64_t Server::stop() {
  request_stop();
  return wait();
}

bool Server::drained(const Connection& conn) {
  return conn.inflight == 0 && conn.ready.empty() && conn.outq.empty();
}

void Server::event_loop() {
  bool stop_seen = false;
  std::chrono::steady_clock::time_point stop_at{};
  epoll_event events[64];

  for (;;) {
    if (stopping_.load() && !stop_seen) {
      stop_seen = true;
      stop_at = std::chrono::steady_clock::now();
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      // Stop parsing everywhere; connections with work in flight stay
      // open until their responses flush (or the drain deadline).
      std::vector<std::uint64_t> ids;
      ids.reserve(connections_.size());
      for (const auto& [id, conn] : connections_) {
        ids.push_back(id);
      }
      for (const std::uint64_t id : ids) {
        const auto it = connections_.find(id);
        if (it == connections_.end()) {
          continue;
        }
        Connection& conn = *it->second;
        conn.read_closed = true;
        conn.in.clear();
        if (drained(conn)) {
          close_connection(conn);
        }
      }
    }
    if (stop_seen) {
      if (connections_.empty()) {
        break;
      }
      if (std::chrono::steady_clock::now() >=
          stop_at + config_.drain_deadline) {
        while (!connections_.empty()) {
          close_connection(*connections_.begin()->second);
        }
        break;
      }
    }

    const int timeout_ms = stop_seen ? 50 : 200;
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenTag) {
        if (!stop_seen) {
          handle_accept();
        }
        continue;
      }
      if (id == kWakeTag) {
        std::uint64_t junk = 0;
        while (::read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;  // completions drain below, every iteration
      }
      const auto it = connections_.find(id);
      if (it == connections_.end()) {
        continue;  // closed earlier in this batch
      }
      Connection& conn = *it->second;
      if ((events[i].events & EPOLLOUT) != 0) {
        flush(conn);
      }
      if (!conn.broken &&
          (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        handle_readable(conn);
      }
      (void)settle(conn);
    }
    drain_completions();
  }
}

void Server::handle_accept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) {
        continue;
      }
      return;  // EAGAIN (no more pending) or a transient accept failure
    }
    if (port_ >= 0) {
      // Request/response over loopback: never trade latency for
      // batching (Nagle would add delayed-ACK stalls to small frames).
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->armed = EPOLLIN;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(conn->id, std::move(conn));
  }
}

void Server::handle_readable(Connection& conn) {
  if (conn.read_closed) {
    return;
  }
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      conn.read_closed = true;  // peer half-closed or closed
      break;
    }
    if (errno == EINTR) {
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    }
    conn.read_closed = true;  // ECONNRESET and friends
    break;
  }
  parse_frames(conn);
  if (conn.read_closed) {
    conn.in.clear();  // bytes after EOF-mid-frame can never complete
  }
}

void Server::parse_frames(Connection& conn) {
  if (stopping_.load() || conn.read_closed) {
    return;
  }
  std::size_t consumed = 0;
  while (conn.inflight < config_.max_inflight_per_connection) {
    const std::string_view rest(conn.in.data() + consumed,
                                conn.in.size() - consumed);
    std::string_view payload;
    std::size_t frame_bytes = 0;
    try {
      frame_bytes = try_parse_frame(rest, payload, config_.max_frame_bytes);
    } catch (const std::exception&) {
      // Bad magic / oversized length: the stream is unrecoverable.  Drop
      // the connection without a reply (matching the blocking server);
      // responses already owed for earlier good frames still flush.
      conn.read_closed = true;
      conn.in.clear();
      return;
    }
    if (frame_bytes == 0) {
      break;  // incomplete frame: wait for more bytes
    }
    submit_request(conn, std::string(payload));
    consumed += frame_bytes;
  }
  if (consumed > 0) {
    conn.in.erase(0, consumed);
  }
}

void Server::submit_request(Connection& conn, std::string payload) {
  const std::uint64_t conn_id = conn.id;
  const std::uint64_t seq = conn.next_seq++;
  ++conn.inflight;
  pool_->submit([this, conn_id, seq, payload = std::move(payload)]() mutable {
    Completion done;
    done.conn_id = conn_id;
    done.seq = seq;
    done.out.arena = arenas_.acquire();
    Response response;
    try {
      const Request request = decode_request_owned(std::move(payload));
      done.out.shutdown_requested = request.verb == "shutdown";
      response = service_.handle(request);
    } catch (const std::exception& e) {
      response = Response::error(e.what());
    }
    util::ArenaBuffer frame(*done.out.arena);
    encode_response_frame(response, frame);
    done.out.data = frame.data();
    done.out.size = frame.size();
    {
      std::lock_guard lock(completions_mutex_);
      completions_.push_back(std::move(done));
    }
    wake();
  });
}

void Server::drain_completions() {
  std::vector<Completion> batch;
  {
    std::lock_guard lock(completions_mutex_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    const auto it = connections_.find(done.conn_id);
    if (it == connections_.end()) {
      arenas_.release(std::move(done.out.arena));  // connection died first
      continue;
    }
    Connection& conn = *it->second;
    --conn.inflight;
    conn.ready.emplace(done.seq, std::move(done.out));
    // Release every response the order contract now allows.
    while (!conn.ready.empty() &&
           conn.ready.begin()->first == conn.next_write) {
      conn.outq.push_back(std::move(conn.ready.begin()->second));
      conn.ready.erase(conn.ready.begin());
      ++conn.next_write;
    }
    // Backpressure relief: buffered frames may be parseable again.
    if (conn.reading_paused && !conn.read_closed &&
        conn.inflight < config_.max_inflight_per_connection) {
      parse_frames(conn);
    }
    flush(conn);
    (void)settle(conn);
  }
}

void Server::flush(Connection& conn) {
  if (conn.broken) {
    return;
  }
  while (!conn.outq.empty()) {
    // Batch adjacent frames into one gathered send — a pipelining client
    // gets its whole response train in as few syscalls as possible.
    iovec iov[8];
    int iovcnt = 0;
    for (const Outgoing& out : conn.outq) {
      if (iovcnt == 8) {
        break;
      }
      const std::size_t off = iovcnt == 0 ? conn.out_off : 0;
      iov[iovcnt].iov_base = const_cast<char*>(out.data) + off;
      iov[iovcnt].iov_len = out.size - off;
      ++iovcnt;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t wrote = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return;  // kernel buffer full; EPOLLOUT re-arms via settle()
      }
      conn.broken = true;  // peer vanished mid-response
      return;
    }
    std::size_t left = static_cast<std::size_t>(wrote);
    while (left > 0) {
      Outgoing& front = conn.outq.front();
      const std::size_t remaining = front.size - conn.out_off;
      if (left < remaining) {
        conn.out_off += left;
        break;
      }
      left -= remaining;
      conn.out_off = 0;
      served_.fetch_add(1, std::memory_order_relaxed);
      if (front.shutdown_requested) {
        // Ack is in the kernel's hands; begin the drain.
        request_stop();
      }
      arenas_.release(std::move(front.arena));
      conn.outq.pop_front();
    }
  }
}

void Server::update_interest(Connection& conn) {
  conn.reading_paused =
      conn.inflight >= config_.max_inflight_per_connection;
  std::uint32_t want = 0;
  if (!conn.read_closed && !conn.reading_paused) {
    want |= EPOLLIN;
  }
  if (!conn.outq.empty()) {
    want |= EPOLLOUT;
  }
  if (want == conn.armed) {
    return;
  }
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) == 0) {
    conn.armed = want;
  }
}

bool Server::settle(Connection& conn) {
  if (conn.broken || (conn.read_closed && drained(conn))) {
    close_connection(conn);
    return true;
  }
  update_interest(conn);
  return false;
}

void Server::close_connection(Connection& conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  for (Outgoing& out : conn.outq) {
    arenas_.release(std::move(out.arena));
  }
  for (auto& [seq, out] : conn.ready) {
    arenas_.release(std::move(out.arena));
  }
  connections_.erase(conn.id);  // `conn` is dead past this line
}

}  // namespace rainbow::serve
