// rainbowd transport: an epoll event loop accepts unix-domain or loopback
// TCP connections, reads length-prefixed frames from non-blocking sockets,
// and dispatches decoded requests onto the shared util::ThreadPool (the
// planning workers).  One loop thread owns every socket; planning work
// never runs on it, so a slow client cannot hold a planning worker and N
// connections contend for at most `threads` concurrent plans — without the
// thread-per-connection model's N stacks and N context switches.
//
// Pipelining: a client may write several frames back-to-back on one
// connection without waiting for responses.  Requests are tagged with a
// per-connection sequence number when parsed; workers complete in any
// order, and the loop releases responses strictly in request order, so
// the wire contract stays "responses arrive in request order".
//
// Memory: each request checks a bump arena out of a shared pool; the
// worker encodes the response frame (header + payload, one copy of the
// body) straight into the arena, and the loop writes those bytes to the
// socket — batching adjacent frames into one sendmsg — before recycling
// the arena.  The warm path does no per-request heap churn.
//
// Shutdown: request_stop() stores an atomic flag and writes the eventfd
// (both async-signal-safe — rainbowd's SIGTERM handler calls it).  The
// loop then stops accepting and parsing, drains in-flight plans, flushes
// their responses under a bounded deadline, and wait() joins everything.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/service.hpp"
#include "util/arena.hpp"
#include "util/thread_pool.hpp"

namespace rainbow::serve {

struct ServerConfig {
  /// Unix-domain socket path; takes precedence over TCP when non-empty.
  std::string unix_path;
  /// TCP port on loopback; 0 picks an ephemeral port (see Server::port()).
  int tcp_port = -1;
  /// Planning workers; 0 = hardware concurrency.
  std::size_t threads = 0;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Decoded-but-unanswered requests allowed per connection before the
  /// loop stops reading from it (backpressure on hostile pipeliners).
  std::size_t max_inflight_per_connection = 256;
  /// How long the loop keeps flushing pending responses after a stop
  /// request before force-closing.
  std::chrono::milliseconds drain_deadline{2000};
};

class Server {
 public:
  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// call start() to begin accepting.
  Server(PlanningService& service, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the event-loop thread.
  void start();

  /// Async-signal-safe stop request: an atomic store plus an eventfd
  /// write, both permitted in signal handlers.
  void request_stop() noexcept;

  /// Blocks until the event loop and the planning pool have exited.
  /// Returns the number of responses fully written over the server's
  /// lifetime.
  std::uint64_t wait();

  /// request_stop() + wait().
  std::uint64_t stop();

  /// Bound TCP port (resolved when the config asked for port 0), or -1 for
  /// unix-domain servers.
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] const std::string& unix_path() const {
    return config_.unix_path;
  }
  [[nodiscard]] bool stopping() const { return stopping_.load(); }

 private:
  /// One encoded response frame, owned by the arena that backs its bytes.
  struct Outgoing {
    std::shared_ptr<util::Arena> arena;
    const char* data = nullptr;
    std::size_t size = 0;
    bool shutdown_requested = false;
  };

  /// A finished request on its way back from a worker to the loop.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t seq = 0;
    Outgoing out;
  };

  struct Connection {
    int fd = -1;
    std::uint64_t id = 0;
    std::string in;                ///< unparsed received bytes
    std::uint64_t next_seq = 0;    ///< seq for the next parsed request
    std::uint64_t next_write = 0;  ///< seq owed to the peer next
    std::map<std::uint64_t, Outgoing> ready;  ///< completed out of order
    std::deque<Outgoing> outq;     ///< in-order frames being written
    std::size_t out_off = 0;       ///< bytes of outq.front() already sent
    std::size_t inflight = 0;      ///< parsed, not yet completed
    bool read_closed = false;      ///< EOF or unrecoverable framing error
    bool broken = false;           ///< hard write error; close regardless
    bool reading_paused = false;   ///< backpressure: EPOLLIN dropped
    std::uint32_t armed = 0;       ///< epoll interest currently registered
  };

  void event_loop();
  void handle_accept();
  void handle_readable(Connection& conn);
  void parse_frames(Connection& conn);
  void submit_request(Connection& conn, std::string payload);
  void drain_completions();
  void flush(Connection& conn);
  void update_interest(Connection& conn);
  void close_connection(Connection& conn);
  /// Post-event bookkeeping: closes a broken or fully-drained-after-EOF
  /// connection, else re-arms its epoll interest.  True when closed —
  /// the reference is dead.
  bool settle(Connection& conn);
  /// True once the connection owes the peer nothing more.
  [[nodiscard]] static bool drained(const Connection& conn);
  void wake() noexcept;

  PlanningService& service_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::unique_ptr<util::ThreadPool> pool_;
  util::ArenaPool arenas_;
  std::thread loop_;

  std::uint64_t next_conn_id_ = 2;  ///< 0/1 tag the listen/wake fds
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> connections_;

  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
};

}  // namespace rainbow::serve
