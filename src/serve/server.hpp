// rainbowd transport: accepts unix-domain or loopback TCP connections,
// reads length-prefixed frames, and dispatches decoded requests onto the
// shared util::ThreadPool (the planning workers).  Connection threads do
// only blocking I/O; all planning work runs on the bounded pool, so a slow
// client cannot hold a planning worker and N connections contend for at
// most `threads` concurrent plans.
//
// Shutdown: request_stop() only sets an atomic flag (async-signal-safe —
// rainbowd's SIGTERM handler calls it).  The acceptor polls the flag,
// stops accepting, wakes every connection (shutdown(2) on the socket),
// lets in-flight requests drain, and wait() joins everything.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "util/thread_pool.hpp"

namespace rainbow::serve {

struct ServerConfig {
  /// Unix-domain socket path; takes precedence over TCP when non-empty.
  std::string unix_path;
  /// TCP port on loopback; 0 picks an ephemeral port (see Server::port()).
  int tcp_port = -1;
  /// Planning workers; 0 = hardware concurrency.
  std::size_t threads = 0;
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

class Server {
 public:
  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// call start() to begin accepting.
  Server(PlanningService& service, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the acceptor thread.
  void start();

  /// Async-signal-safe stop request: sets the flag the acceptor polls.
  void request_stop() noexcept { stopping_.store(true); }

  /// Blocks until the acceptor and every connection thread have exited.
  /// Returns the number of requests served over the server's lifetime.
  std::uint64_t wait();

  /// request_stop() + wait().
  std::uint64_t stop();

  /// Bound TCP port (resolved when the config asked for port 0), or -1 for
  /// unix-domain servers.
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] const std::string& unix_path() const {
    return config_.unix_path;
  }
  [[nodiscard]] bool stopping() const { return stopping_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);

  PlanningService& service_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> served_{0};
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread acceptor_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;
};

}  // namespace rainbow::serve
