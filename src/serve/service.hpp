// PlanningService: the transport-independent brain of rainbowd.  Maps one
// decoded protocol::Request to one Response — upload / list / evict
// models and specs, plan, DSE sweeps, plan validation, static stream
// analysis, and statistics — against the resident ModelRegistry.
//
// Reentrancy contract: handle() may be called from any number of threads
// at once.  Handlers keep all per-request state in locals (bounded by the
// frame size cap), the registry hands out shared_ptr snapshots, and the
// per-model EvalCaches are the only shared mutable planning state — they
// are sharded and lock-protected, and their keys cover every input that
// can change a result, so cache sharing never changes plan bytes (the
// serve tests pin daemon output byte-identical to one-shot rainbow_plan).
//
// Single-flight: identical plan requests that arrive while the first one
// is still computing coalesce onto one computation and share its response
// (marked with a `coalesced` header), so a thundering herd of clients
// asking for the same (model, spec, objective) costs one planning pass.
// The flight table is sharded by key hash so unrelated plans registering
// and retiring their flights never serialize on one mutex.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace rainbow::serve {

struct ServiceOptions {
  bool preload_zoo = false;          ///< register the built-in zoo at start
  std::size_t cache_entries = 1 << 20;  ///< per-model EvalCache bound
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t plan_requests = 0;
  std::uint64_t coalesced = 0;  ///< plan requests served by another flight
  std::uint64_t errors = 0;
};

class PlanningService {
 public:
  explicit PlanningService(ServiceOptions options = {});

  /// Thread-safe request dispatch.  Never throws: failures come back as
  /// error responses with a `message` header.
  [[nodiscard]] Response handle(const Request& request);

  [[nodiscard]] ModelRegistry& registry() { return registry_; }
  [[nodiscard]] const ModelRegistry& registry() const { return registry_; }
  [[nodiscard]] ServiceStats stats() const;

 private:
  [[nodiscard]] Response do_ping(const Request& request);
  [[nodiscard]] Response do_upload(const Request& request);
  [[nodiscard]] Response do_upload_spec(const Request& request);
  [[nodiscard]] Response do_list(const Request& request);
  [[nodiscard]] Response do_evict(const Request& request);
  [[nodiscard]] Response do_stats(const Request& request);
  [[nodiscard]] Response do_plan(const Request& request);
  [[nodiscard]] Response do_dse(const Request& request);
  [[nodiscard]] Response do_validate(const Request& request);
  [[nodiscard]] Response do_analyze(const Request& request);

  /// The plan computation proper (no single-flight bookkeeping).
  [[nodiscard]] Response compute_plan(const Request& request);

  /// Resolves the request's accelerator spec: a named registered spec when
  /// the `spec` header is present (error if unknown), the paper spec
  /// otherwise; `glb_kb` / `width_bits` headers override either base.
  [[nodiscard]] arch::AcceleratorSpec spec_for(const Request& request) const;

  /// One shard of the single-flight table.  Padded to a cache line so a
  /// storm of distinct plans touching neighbouring shards doesn't false-
  /// share the shard mutexes.
  struct alignas(64) FlightShard {
    std::mutex mutex;
    std::unordered_map<std::string, std::shared_future<Response>> flights;
  };
  static constexpr std::size_t kFlightShards = 16;

  [[nodiscard]] FlightShard& flight_shard_for(const std::string& key);

  ModelRegistry registry_;
  std::array<FlightShard, kFlightShards> flight_shards_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> plan_requests_{0};
  std::atomic<std::uint64_t> coalesced_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace rainbow::serve
