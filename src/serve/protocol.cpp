#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/uio.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <stdexcept>

namespace rainbow::serve {

namespace {

long long parse_ll(const std::string& value, const std::string& key) {
  long long parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc() || ptr != value.data() + value.size()) {
    throw std::runtime_error("bad integer header '" + key + "': '" + value +
                             "'");
  }
  return parsed;
}

/// Splits one "<token>\n<headers>\n\n<body>" payload.  Shared by request
/// and response decoding; the caller interprets the leading token.
struct RawMessage {
  std::string token;
  std::map<std::string, std::string> headers;
  std::string body;
};

/// Parses token + headers and returns the body's byte offset; the caller
/// materializes the body (copy from a view, or carve from an owned
/// string) so the move-aware decoders can avoid duplicating it.
std::size_t decode_raw_prefix(std::string_view payload, RawMessage& msg) {
  std::size_t pos = payload.find('\n');
  if (pos == std::string_view::npos) {
    throw std::runtime_error("protocol: payload has no verb line");
  }
  msg.token = std::string(payload.substr(0, pos));
  if (!is_token(msg.token)) {
    throw std::runtime_error("protocol: bad verb/status token '" + msg.token +
                             "'");
  }
  ++pos;
  while (true) {
    if (pos >= payload.size()) {
      throw std::runtime_error("protocol: missing blank-line separator");
    }
    if (payload[pos] == '\n') {  // end of headers
      return pos + 1;
    }
    const std::size_t eol = payload.find('\n', pos);
    if (eol == std::string_view::npos) {
      throw std::runtime_error("protocol: unterminated header line");
    }
    const std::string_view line = payload.substr(pos, eol - pos);
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos || space == 0) {
      throw std::runtime_error("protocol: malformed header line '" +
                               std::string(line) + "'");
    }
    std::string key(line.substr(0, space));
    if (!is_token(key)) {
      throw std::runtime_error("protocol: bad header key '" + key + "'");
    }
    if (msg.headers.count(key) != 0) {
      throw std::runtime_error("protocol: duplicate header '" + key + "'");
    }
    msg.headers.emplace(std::move(key), std::string(line.substr(space + 1)));
    pos = eol + 1;
  }
}

RawMessage decode_raw(std::string_view payload) {
  RawMessage msg;
  const std::size_t body_at = decode_raw_prefix(payload, msg);
  msg.body = std::string(payload.substr(body_at));
  return msg;
}

RawMessage decode_raw(std::string&& payload) {
  RawMessage msg;
  const std::size_t body_at = decode_raw_prefix(payload, msg);
  payload.erase(0, body_at);  // body carved in place, no second copy
  msg.body = std::move(payload);
  return msg;
}

/// Shared raw encoder: Sink needs append(string_view) and push_back(char)
/// (std::string and util::ArenaBuffer both qualify).
template <typename Sink>
void encode_raw(Sink& out, const std::string& token,
                const std::map<std::string, std::string>& headers,
                const std::string& body) {
  if (!is_token(token)) {
    throw std::runtime_error("protocol: bad verb/status token '" + token +
                             "'");
  }
  out.append(std::string_view(token));
  out.push_back('\n');
  for (const auto& [key, value] : headers) {
    if (!is_token(key)) {
      throw std::runtime_error("protocol: bad header key '" + key + "'");
    }
    if (value.find('\n') != std::string::npos) {
      throw std::runtime_error("protocol: newline in header value for '" +
                               key + "'");
    }
    out.append(std::string_view(key));
    out.push_back(' ');
    out.append(std::string_view(value));
    out.push_back('\n');
  }
  out.push_back('\n');
  out.append(std::string_view(body));
}

void put_frame_header(char* header, std::uint32_t length) {
  std::memcpy(header, kMagic, 4);
  for (int i = 0; i < 4; ++i) {
    header[4 + i] = static_cast<char>((length >> (8 * i)) & 0xff);
  }
}

/// Returns bytes read; 0 only on EOF before the first byte.  Throws on a
/// socket error; EOF after a partial read returns the short count.
std::size_t read_upto(int fd, char* data, std::size_t size) {
  std::size_t total = 0;
  while (total < size) {
    const ssize_t n = ::recv(fd, data + total, size - total, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("protocol: recv failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      break;  // EOF
    }
    total += static_cast<std::size_t>(n);
  }
  return total;
}

}  // namespace

bool is_token(std::string_view token) {
  if (token.empty() || token.size() > 64) {
    return false;
  }
  for (char ch : token) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
                    ch == '_';
    if (!ok) {
      return false;
    }
  }
  return true;
}

std::string Request::get(const std::string& key,
                         const std::string& fallback) const {
  const auto it = headers.find(key);
  return it == headers.end() ? fallback : it->second;
}

long long Request::get_int(const std::string& key, long long fallback) const {
  const auto it = headers.find(key);
  return it == headers.end() ? fallback : parse_ll(it->second, key);
}

bool Request::get_bool(const std::string& key, bool fallback) const {
  const auto it = headers.find(key);
  if (it == headers.end()) {
    return fallback;
  }
  if (it->second == "0" || it->second == "false") {
    return false;
  }
  if (it->second == "1" || it->second == "true") {
    return true;
  }
  throw std::runtime_error("bad boolean header '" + key + "': '" +
                           it->second + "'");
}

std::string Response::get(const std::string& key,
                          const std::string& fallback) const {
  const auto it = headers.find(key);
  return it == headers.end() ? fallback : it->second;
}

Response Response::error(std::string message) {
  Response response;
  response.ok = false;
  response.headers["message"] = std::move(message);
  return response;
}

std::string encode_request(const Request& request) {
  std::string out;
  out.reserve(64 + request.body.size());
  encode_raw(out, request.verb, request.headers, request.body);
  return out;
}

namespace {

Request request_from(RawMessage&& raw) {
  Request request;
  request.verb = std::move(raw.token);
  request.headers = std::move(raw.headers);
  request.body = std::move(raw.body);
  return request;
}

Response response_from(RawMessage&& raw) {
  Response response;
  if (raw.token == "ok") {
    response.ok = true;
  } else if (raw.token == "error") {
    response.ok = false;
  } else {
    throw std::runtime_error("protocol: unknown status '" + raw.token + "'");
  }
  response.headers = std::move(raw.headers);
  response.body = std::move(raw.body);
  return response;
}

}  // namespace

Request decode_request(std::string_view payload) {
  return request_from(decode_raw(payload));
}

Request decode_request_owned(std::string&& payload) {
  return request_from(decode_raw(std::move(payload)));
}

std::string encode_response(const Response& response) {
  std::string out;
  out.reserve(64 + response.body.size());
  encode_raw(out, response.ok ? "ok" : "error", response.headers,
             response.body);
  return out;
}

Response decode_response(std::string_view payload) {
  return response_from(decode_raw(payload));
}

Response decode_response_owned(std::string&& payload) {
  return response_from(decode_raw(std::move(payload)));
}

void encode_response_frame(const Response& response, util::ArenaBuffer& out) {
  const std::size_t frame_start = out.size();
  char* header = out.reserve_prefix(8);
  encode_raw(out, response.ok ? "ok" : "error", response.headers,
             response.body);
  const std::size_t payload_size = out.size() - frame_start - 8;
  if (payload_size > kMaxFrameBytes) {
    throw std::runtime_error("protocol: frame payload over the " +
                             std::to_string(kMaxFrameBytes) + "-byte bound");
  }
  // The buffer may have relocated while the payload grew; re-resolve the
  // header position before patching the length in.
  header = out.data() + frame_start;
  put_frame_header(header, static_cast<std::uint32_t>(payload_size));
}

void append_frame(std::string& out, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("protocol: frame payload over the " +
                             std::to_string(kMaxFrameBytes) + "-byte bound");
  }
  char header[8];
  put_frame_header(header, static_cast<std::uint32_t>(payload.size()));
  out.append(header, sizeof(header));
  out.append(payload);
}

std::size_t try_parse_frame(std::string_view in, std::string_view& payload,
                            std::uint32_t max_bytes) {
  if (in.size() < 8) {
    return 0;
  }
  if (std::memcmp(in.data(), kMagic, 4) != 0) {
    throw std::runtime_error("protocol: bad frame magic");
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(
                  static_cast<unsigned char>(in[4 + static_cast<std::size_t>(
                                                     i)]))
              << (8 * i);
  }
  if (length > max_bytes) {
    throw std::runtime_error("protocol: frame length " +
                             std::to_string(length) + " over the " +
                             std::to_string(max_bytes) + "-byte bound");
  }
  if (in.size() < 8 + static_cast<std::size_t>(length)) {
    return 0;
  }
  payload = in.substr(8, length);
  return 8 + static_cast<std::size_t>(length);
}

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    throw std::runtime_error("protocol: frame payload over the " +
                             std::to_string(kMaxFrameBytes) + "-byte bound");
  }
  char header[8];
  put_frame_header(header, static_cast<std::uint32_t>(payload.size()));
  // One gathered send, not header-then-payload: two small writes per
  // frame over TCP trip Nagle + delayed-ACK (~40 ms per direction) and
  // turn a 3 ms warm plan into a 90 ms round-trip.  MSG_NOSIGNAL: a peer
  // that vanished mid-response must surface as an error on this
  // connection, not SIGPIPE the whole daemon.
  iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = sizeof(header);
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;
  while (msg.msg_iovlen > 0) {
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw std::runtime_error(std::string("protocol: send failed: ") +
                               std::strerror(errno));
    }
    auto remaining = static_cast<std::size_t>(n);
    while (msg.msg_iovlen > 0 && remaining >= msg.msg_iov[0].iov_len) {
      remaining -= msg.msg_iov[0].iov_len;
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
    if (msg.msg_iovlen > 0) {
      msg.msg_iov[0].iov_base =
          static_cast<char*>(msg.msg_iov[0].iov_base) + remaining;
      msg.msg_iov[0].iov_len -= remaining;
    }
  }
}

bool read_frame(int fd, std::string& payload, std::uint32_t max_bytes) {
  char header[8];
  const std::size_t got = read_upto(fd, header, sizeof(header));
  if (got == 0) {
    return false;  // clean EOF between frames
  }
  if (got < sizeof(header)) {
    throw std::runtime_error("protocol: truncated frame header");
  }
  if (std::memcmp(header, kMagic, 4) != 0) {
    throw std::runtime_error("protocol: bad frame magic");
  }
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(
                  static_cast<unsigned char>(header[4 + i]))
              << (8 * i);
  }
  if (length > max_bytes) {
    throw std::runtime_error("protocol: frame length " +
                             std::to_string(length) + " over the " +
                             std::to_string(max_bytes) + "-byte bound");
  }
  payload.resize(length);
  if (length > 0 && read_upto(fd, payload.data(), length) < length) {
    throw std::runtime_error("protocol: truncated frame payload");
  }
  return true;
}

}  // namespace rainbow::serve
