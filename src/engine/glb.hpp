// Unified scratchpad allocator.  The engine allocates every policy's
// working regions here before executing, so a plan that claims to fit the
// GLB is checked against an actual allocator rather than trusted.
// First-fit with coalescing free list — deliberately simple; allocation
// happens a handful of times per layer, not per element.
#pragma once

#include <string>
#include <vector>

#include "util/units.hpp"

namespace rainbow::engine {

class Glb {
 public:
  explicit Glb(count_t capacity_elems);

  [[nodiscard]] count_t capacity() const { return capacity_; }
  [[nodiscard]] count_t used() const { return used_; }
  [[nodiscard]] count_t peak_used() const { return peak_used_; }
  [[nodiscard]] count_t free_elems() const { return capacity_ - used_; }

  /// Handle to an allocated region.
  struct Region {
    count_t offset = 0;
    count_t size = 0;
    [[nodiscard]] bool valid() const { return size != 0; }
  };

  /// Allocates `elems` contiguous elements.  Throws std::runtime_error
  /// (naming `what`) when no free range is large enough.
  Region allocate(count_t elems, const std::string& what);

  /// Releases a region previously returned by allocate.  Throws
  /// std::invalid_argument for unknown or double-freed regions.
  void release(const Region& region);

  /// Releases everything (end of a layer).
  void reset();

 private:
  struct FreeRange {
    count_t offset;
    count_t size;
  };

  count_t capacity_;
  count_t used_ = 0;
  count_t peak_used_ = 0;
  std::vector<FreeRange> free_list_;
  std::vector<Region> live_;
};

}  // namespace rainbow::engine
