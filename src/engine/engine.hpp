// Tile-level execution engine for the unified-GLB accelerator.  Replays a
// policy's concrete tile schedule against a two-resource timing model (one
// DRAM channel, one PE array), allocating the working regions in an actual
// GLB allocator so "it fits" is demonstrated rather than assumed.
//
// Relationship to the estimator (src/core/estimator.hpp): traffic and MAC
// totals agree exactly; serialized (non-prefetch) latency agrees exactly;
// prefetch latency agrees up to one tile of pipeline skew (the estimator's
// closed form hides everything between init and drain, the engine resolves
// tile-by-tile contention).  The test suite pins all three relations.
#pragma once

#include <vector>

#include "core/plan.hpp"
#include "engine/glb.hpp"
#include "engine/schedule.hpp"
#include "model/network.hpp"

namespace rainbow::engine {

struct LayerExecution {
  core::TrafficBreakdown traffic;  ///< measured DRAM transfers, elements
  double latency_cycles = 0.0;
  double compute_cycles = 0.0;
  count_t macs = 0;
  count_t peak_glb_elems = 0;      ///< high-water mark in the allocator
  std::size_t tiles = 0;
};

struct PlanExecution {
  std::vector<LayerExecution> layers;
  count_t total_accesses = 0;  ///< elements
  double total_latency_cycles = 0.0;
  /// Workers the replay dispatch resolved to (1 = ran inline: replaying a
  /// layer costs a few tens of microseconds, so small plans skip the pool
  /// entirely).  Informational only — results are identical regardless.
  std::size_t workers_used = 1;
};

/// The two-resource overlap timing model, shared by Engine::execute_layer
/// and the dependence-graph critical-path cross-check (src/analysis/race).
/// With `prefetch`, the DRAM channel runs one tile ahead: tile i's loads
/// queue behind everything already on the channel, its compute starts at
/// max(channel drained, PE free), and tile i-1's store drains behind tile
/// i's loads.  Without it, every tile serializes load -> compute -> store.
/// `bw` is DRAM elements/cycle, `mac_rate` effective MACs/cycle.
[[nodiscard]] double schedule_latency(const std::vector<TileOp>& schedule,
                                      double bw, double mac_rate,
                                      bool prefetch);

class Engine {
 public:
  explicit Engine(const arch::AcceleratorSpec& spec);

  [[nodiscard]] const arch::AcceleratorSpec& spec() const { return spec_; }

  /// Executes one layer under `choice`.  Throws std::runtime_error when the
  /// working set does not fit the GLB (the plan lied about feasibility).
  [[nodiscard]] LayerExecution execute_layer(
      const model::Layer& layer, const core::PolicyChoice& choice,
      const core::InterlayerAdjust& adjust = {}) const;

  /// Executes a full plan layer-by-layer.  Each layer replays against its
  /// own Glb allocator, so layers are independent: `threads` > 1 (0 =
  /// hardware concurrency) replays them concurrently on a private pool,
  /// with totals summed in layer order — the result is bit-identical to
  /// the serial replay for every thread count.
  [[nodiscard]] PlanExecution execute_plan(const core::ExecutionPlan& plan,
                                           const model::Network& network,
                                           int threads = 1) const;

 private:
  arch::AcceleratorSpec spec_;
};

}  // namespace rainbow::engine
