#include "engine/glb.hpp"

#include <algorithm>
#include <stdexcept>

namespace rainbow::engine {

Glb::Glb(count_t capacity_elems) : capacity_(capacity_elems) {
  if (capacity_ == 0) {
    throw std::invalid_argument("Glb: zero capacity");
  }
  free_list_.push_back({0, capacity_});
}

Glb::Region Glb::allocate(count_t elems, const std::string& what) {
  if (elems == 0) {
    throw std::invalid_argument("Glb::allocate: zero-size region for " + what);
  }
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    if (free_list_[i].size >= elems) {
      Region region{free_list_[i].offset, elems};
      free_list_[i].offset += elems;
      free_list_[i].size -= elems;
      if (free_list_[i].size == 0) {
        free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      used_ += elems;
      peak_used_ = std::max(peak_used_, used_);
      live_.push_back(region);
      return region;
    }
  }
  // Requested size, total free, and the largest hole distinguish genuine
  // exhaustion (free < requested) from fragmentation (free >= requested
  // but no hole is big enough) straight from the exception text.
  count_t largest_hole = 0;
  for (const FreeRange& range : free_list_) {
    largest_hole = std::max(largest_hole, range.size);
  }
  throw std::runtime_error("Glb: cannot allocate " + std::to_string(elems) +
                           " elements for " + what + " (" +
                           std::to_string(free_elems()) + " free of " +
                           std::to_string(capacity_) + ", largest free hole " +
                           std::to_string(largest_hole) + ")");
}

void Glb::release(const Region& region) {
  const auto it = std::find_if(live_.begin(), live_.end(), [&](const Region& r) {
    return r.offset == region.offset && r.size == region.size;
  });
  if (it == live_.end()) {
    throw std::invalid_argument("Glb::release: unknown region");
  }
  live_.erase(it);
  used_ -= region.size;

  // Insert into the sorted free list and coalesce with neighbours.
  FreeRange range{region.offset, region.size};
  auto pos = std::lower_bound(
      free_list_.begin(), free_list_.end(), range,
      [](const FreeRange& a, const FreeRange& b) { return a.offset < b.offset; });
  pos = free_list_.insert(pos, range);
  if (pos + 1 != free_list_.end() && pos->offset + pos->size == (pos + 1)->offset) {
    pos->size += (pos + 1)->size;
    free_list_.erase(pos + 1);
  }
  if (pos != free_list_.begin()) {
    auto prev = pos - 1;
    if (prev->offset + prev->size == pos->offset) {
      prev->size += pos->size;
      free_list_.erase(pos);
    }
  }
}

void Glb::reset() {
  live_.clear();
  free_list_.clear();
  free_list_.push_back({0, capacity_});
  used_ = 0;
}

}  // namespace rainbow::engine
