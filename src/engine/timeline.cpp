#include "engine/timeline.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "engine/schedule.hpp"

namespace rainbow::engine {

namespace {

/// One resource's busy intervals, replayed with the engine's pipeline
/// rules.
struct Intervals {
  std::vector<std::pair<double, double>> spans;
  double busy = 0.0;

  void add(double start, double end) {
    if (end > start) {
      spans.emplace_back(start, end);
      busy += end - start;
    }
  }
};

struct Replay {
  Intervals dram;
  Intervals compute;
  double total = 0.0;
};

Replay replay(const arch::AcceleratorSpec& spec, const model::Layer& layer,
              const core::PolicyChoice& choice,
              const core::InterlayerAdjust& adjust) {
  const auto schedule = build_schedule(layer, choice, adjust);
  const double bw = spec.elements_per_cycle();
  const double mac_rate = spec.effective_macs_per_cycle();

  Replay r;
  if (choice.prefetch) {
    double dram_free = 0.0;
    double compute_free = 0.0;
    double pending_store = 0.0;
    double pending_ready = 0.0;
    for (const TileOp& op : schedule) {
      const double load = static_cast<double>(op.load_total()) / bw;
      r.dram.add(dram_free, dram_free + load);
      dram_free += load;
      const double comp_start = std::max(dram_free, compute_free);
      if (pending_store > 0.0) {
        const double start = std::max(dram_free, pending_ready);
        r.dram.add(start, start + pending_store);
        dram_free = start + pending_store;
        pending_store = 0.0;
      }
      const double c = static_cast<double>(op.macs) / mac_rate;
      r.compute.add(comp_start, comp_start + c);
      compute_free = comp_start + c;
      if (op.store_ofmap != 0) {
        pending_store = static_cast<double>(op.store_ofmap) / bw;
        pending_ready = compute_free;
      }
    }
    if (pending_store > 0.0) {
      const double start = std::max(dram_free, pending_ready);
      r.dram.add(start, start + pending_store);
      dram_free = start + pending_store;
    }
    r.total = std::max(compute_free, dram_free);
  } else {
    double t = 0.0;
    for (const TileOp& op : schedule) {
      const double load = static_cast<double>(op.load_total()) / bw;
      r.dram.add(t, t + load);
      t += load;
      const double c = static_cast<double>(op.macs) / mac_rate;
      r.compute.add(t, t + c);
      t += c;
      const double store = static_cast<double>(op.store_ofmap) / bw;
      r.dram.add(t, t + store);
      t += store;
    }
    r.total = t;
  }
  return r;
}

std::string render_row(const Intervals& intervals, double total, int width) {
  std::string row(static_cast<std::size_t>(width), '.');
  for (const auto& [start, end] : intervals.spans) {
    const int first = static_cast<int>(start / total * width);
    int last = static_cast<int>(end / total * width);
    last = std::min(last, width - 1);
    for (int i = first; i <= last; ++i) {
      row[static_cast<std::size_t>(i)] = '#';
    }
  }
  return row;
}

}  // namespace

TimelineStats layer_timeline(const arch::AcceleratorSpec& spec,
                             const model::Layer& layer,
                             const core::PolicyChoice& choice,
                             const core::InterlayerAdjust& adjust) {
  const Replay r = replay(spec, layer, choice, adjust);
  TimelineStats stats;
  stats.total_cycles = r.total;
  stats.dram_busy_cycles = r.dram.busy;
  stats.compute_busy_cycles = r.compute.busy;
  return stats;
}

std::string render_timeline(const arch::AcceleratorSpec& spec,
                            const model::Layer& layer,
                            const core::PolicyChoice& choice, int width) {
  const Replay r = replay(spec, layer, choice, {});
  std::ostringstream os;
  std::ostringstream label;
  label << choice;
  os << layer.name() << " [" << label.str() << "], "
     << static_cast<long long>(r.total) << " cycles\n";
  os << "  DRAM    " << render_row(r.dram, r.total, width) << '\n';
  os << "  compute " << render_row(r.compute, r.total, width) << '\n';
  return os.str();
}

}  // namespace rainbow::engine
