// Execution timeline diagnostics: replay a layer's tile schedule through
// the engine's two-resource timing and report where the cycles went —
// DRAM-channel busy time, PE busy time, the exposed (non-overlapped)
// transfer, and an ASCII occupancy chart for eyeballing pipelines.
#pragma once

#include <string>

#include "engine/engine.hpp"

namespace rainbow::engine {

struct TimelineStats {
  double total_cycles = 0.0;
  double dram_busy_cycles = 0.0;
  double compute_busy_cycles = 0.0;

  [[nodiscard]] double dram_utilization() const {
    return total_cycles > 0.0 ? dram_busy_cycles / total_cycles : 0.0;
  }
  [[nodiscard]] double compute_utilization() const {
    return total_cycles > 0.0 ? compute_busy_cycles / total_cycles : 0.0;
  }
  /// Transfer time that could not hide behind compute.
  [[nodiscard]] double exposed_transfer_cycles() const {
    return total_cycles - compute_busy_cycles;
  }
};

/// Timing breakdown of one layer under `choice`.
[[nodiscard]] TimelineStats layer_timeline(const arch::AcceleratorSpec& spec,
                                           const model::Layer& layer,
                                           const core::PolicyChoice& choice,
                                           const core::InterlayerAdjust& adjust = {});

/// Two-row ASCII occupancy chart ('#' busy, '.' idle), `width` columns:
///   DRAM    ####....####
///   compute ....########
[[nodiscard]] std::string render_timeline(const arch::AcceleratorSpec& spec,
                                          const model::Layer& layer,
                                          const core::PolicyChoice& choice,
                                          int width = 64);

}  // namespace rainbow::engine
