#include "engine/schedule.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace rainbow::engine {

namespace {

using core::InterlayerAdjust;
using core::Policy;
using core::PolicyChoice;
using model::Layer;

/// Spreads the layer's MAC count evenly over the tiles (remainder on the
/// last tile) and applies the inter-layer residency adjustments.
void finalize(std::vector<TileOp>& schedule, const Layer& layer,
              const InterlayerAdjust& adjust) {
  if (schedule.empty()) {
    throw std::logic_error("finalize: empty schedule");
  }
  const count_t macs = layer.macs();
  const count_t per_tile = macs / schedule.size();
  count_t assigned = 0;
  for (TileOp& op : schedule) {
    op.macs = per_tile;
    assigned += per_tile;
  }
  schedule.back().macs += macs - assigned;
  if (adjust.ifmap_resident) {
    for (TileOp& op : schedule) {
      op.load_ifmap = 0;
    }
  }
  if (adjust.keep_ofmap) {
    for (TileOp& op : schedule) {
      op.store_ofmap = 0;
    }
  }
}

/// Splits `total` units into blocks of at most `block`; returns block sizes.
std::vector<count_t> blocks_of(count_t total, count_t block) {
  std::vector<count_t> sizes;
  for (count_t done = 0; done < total; done += block) {
    sizes.push_back(std::min(block, total - done));
  }
  return sizes;
}

}  // namespace

std::vector<TileOp> build_schedule(const Layer& layer,
                                   const PolicyChoice& choice,
                                   const InterlayerAdjust& adjust) {
  const count_t fh = static_cast<count_t>(layer.filter_h());
  const count_t fw = static_cast<count_t>(layer.filter_w());
  const count_t ci = static_cast<count_t>(layer.channels());
  const count_t nf = static_cast<count_t>(layer.filters());
  const count_t s = static_cast<count_t>(layer.stride());
  const count_t pw = static_cast<count_t>(layer.padded_ifmap_w());
  const count_t oh = static_cast<count_t>(layer.ofmap_h());
  const count_t ow = static_cast<count_t>(layer.ofmap_w());
  const count_t co = static_cast<count_t>(layer.ofmap_channels());
  const bool dw = layer.is_depthwise();

  std::vector<TileOp> schedule;
  switch (choice.policy) {
    case Policy::kIntraLayer: {
      TileOp op;
      op.load_ifmap = layer.padded_ifmap_elems();
      op.load_filter = layer.filter_elems();
      op.store_ofmap = layer.ofmap_elems();
      schedule.push_back(op);
      break;
    }

    case Policy::kIfmapReuse: {
      // Height-wise sliding window across all channels; all filters loaded
      // up front; one ofmap row emitted per step.
      for (count_t r = 0; r < oh; ++r) {
        TileOp op;
        op.load_ifmap = (r == 0 ? fh : s) * pw * ci;
        op.load_filter = (r == 0) ? layer.filter_elems() : 0;
        op.store_ofmap = ow * co;
        schedule.push_back(op);
      }
      break;
    }

    case Policy::kFilterReuse: {
      // Whole ifmap resident; filters stream one by one, each producing one
      // ofmap channel (per-channel map for depthwise).
      const count_t steps = dw ? ci : nf;
      for (count_t k = 0; k < steps; ++k) {
        TileOp op;
        op.load_ifmap = (k == 0) ? layer.padded_ifmap_elems() : 0;
        op.load_filter = layer.single_filter_elems();
        op.store_ofmap = oh * ow;
        schedule.push_back(op);
      }
      break;
    }

    case Policy::kPerChannel: {
      // Channel-major, height-wise row sweep; one channel of every filter
      // resident per channel phase; ofmap accumulates on-chip and drains at
      // the end (depthwise channels complete independently).
      for (count_t c = 0; c < ci; ++c) {
        for (count_t r = 0; r < oh; ++r) {
          TileOp op;
          op.load_ifmap = (r == 0 ? fh : s) * pw;
          op.load_filter = (r == 0) ? fh * fw * (dw ? 1 : nf) : 0;
          if (dw && r == oh - 1) {
            op.store_ofmap = oh * ow;
          }
          schedule.push_back(op);
        }
      }
      if (!dw) {
        schedule.back().store_ofmap = layer.ofmap_elems();
      }
      break;
    }

    case Policy::kPartialIfmap: {
      if (dw) {
        // Blocks of n channels; each channel meets its one filter once.
        for (count_t nb : blocks_of(ci, choice.filter_block)) {
          for (count_t r = 0; r < oh; ++r) {
            TileOp op;
            op.load_ifmap = (r == 0 ? fh : s) * pw * nb;
            op.load_filter = (r == 0) ? fh * fw * nb : 0;
            op.store_ofmap = ow * nb;
            schedule.push_back(op);
          }
        }
      } else {
        // Blocks of n filters; the full-window ifmap sweep repeats per
        // block.
        for (count_t nb : blocks_of(nf, choice.filter_block)) {
          for (count_t r = 0; r < oh; ++r) {
            TileOp op;
            op.load_ifmap = (r == 0 ? fh : s) * pw * ci;
            op.load_filter = (r == 0) ? fh * fw * ci * nb : 0;
            op.store_ofmap = ow * nb;
            schedule.push_back(op);
          }
        }
      }
      break;
    }

    case Policy::kPartialPerChannel: {
      if (dw) {
        // One channel at a time; blocking over channels does not change the
        // stream — each channel loads its window and single filter once.
        for (count_t c = 0; c < ci; ++c) {
          for (count_t r = 0; r < oh; ++r) {
            TileOp op;
            op.load_ifmap = (r == 0 ? fh : s) * pw;
            op.load_filter = (r == 0) ? fh * fw : 0;
            if (r == oh - 1) {
              op.store_ofmap = oh * ow;
            }
            schedule.push_back(op);
          }
        }
      } else {
        // Blocks of n filter channels; every block re-streams the one-
        // channel ifmap window over all input channels, loading that
        // channel's n filter slices at each channel start.
        for (count_t nb : blocks_of(nf, choice.filter_block)) {
          for (count_t c = 0; c < ci; ++c) {
            for (count_t r = 0; r < oh; ++r) {
              TileOp op;
              op.load_ifmap = (r == 0 ? fh : s) * pw;
              op.load_filter = (r == 0) ? fh * fw * nb : 0;
              schedule.push_back(op);
            }
          }
          schedule.back().store_ofmap += oh * ow * nb;
        }
      }
      break;
    }

    case Policy::kFallbackTiled: {
      const count_t stripe = static_cast<count_t>(choice.row_stripe);
      if (stripe < 1 || stripe > oh) {
        throw std::invalid_argument("build_schedule: bad row stripe");
      }
      const auto filter_blocks =
          blocks_of(dw ? ci : nf, choice.filter_block);
      for (count_t first = 0; first < oh; first += stripe) {
        const count_t out_rows = std::min(stripe, oh - first);
        const count_t in_rows = (out_rows - 1) * s + fh;
        for (count_t nb : filter_blocks) {
          if (dw) {
            for (count_t c = 0; c < nb; ++c) {
              TileOp op;
              op.load_ifmap = in_rows * pw;
              op.load_filter = fh * fw;
              op.store_ofmap = out_rows * ow;
              schedule.push_back(op);
            }
          } else {
            for (count_t c = 0; c < ci; ++c) {
              TileOp op;
              op.load_ifmap = in_rows * pw;
              op.load_filter = fh * fw * nb;
              schedule.push_back(op);
            }
            schedule.back().store_ofmap += out_rows * ow * nb;
          }
        }
      }
      break;
    }
  }
  finalize(schedule, layer, adjust);
  return schedule;
}

ScheduleTotals totals(const std::vector<TileOp>& schedule) {
  ScheduleTotals t;
  for (const TileOp& op : schedule) {
    t.ifmap_loads += op.load_ifmap;
    t.filter_loads += op.load_filter;
    t.ofmap_stores += op.store_ofmap;
    t.macs += op.macs;
  }
  return t;
}

}  // namespace rainbow::engine
