#include "engine/engine.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/checked.hpp"
#include "util/thread_pool.hpp"
#include "validate/plan_validator.hpp"

namespace rainbow::engine {

Engine::Engine(const arch::AcceleratorSpec& spec) : spec_(spec) {
  spec_.validate();
}

double schedule_latency(const std::vector<TileOp>& schedule, double bw,
                        double mac_rate, bool prefetch) {
  if (prefetch) {
    // Double-buffered pipeline: the DRAM channel runs one tile ahead —
    // while tile i computes, the channel loads tile i+1 and only then
    // drains tile i-1's stores (whose compute has long finished).  Both
    // resources are serial; a tile's compute waits for its own load.
    double dram_free = 0.0;
    double compute_free = 0.0;
    double pending_store = 0.0;  // tile i-1's output, ready to drain
    double pending_ready = 0.0;  // when that output was produced
    for (const TileOp& op : schedule) {
      dram_free += static_cast<double>(op.load_total()) / bw;
      const double comp_start = std::max(dram_free, compute_free);
      // The previous tile's store is ready by now; drain it behind this
      // tile's load.
      if (pending_store > 0.0) {
        dram_free = std::max(dram_free, pending_ready) + pending_store;
      }
      compute_free = comp_start + static_cast<double>(op.macs) / mac_rate;
      pending_store = static_cast<double>(op.store_ofmap) / bw;
      pending_ready = compute_free;
    }
    if (pending_store > 0.0) {
      dram_free = std::max(dram_free, pending_ready) + pending_store;
    }
    return std::max(compute_free, dram_free);
  }
  // Serialized: each tile loads, computes, stores with no overlap.
  double t = 0.0;
  for (const TileOp& op : schedule) {
    t += static_cast<double>(op.load_total()) / bw;
    t += static_cast<double>(op.macs) / mac_rate;
    t += static_cast<double>(op.store_ofmap) / bw;
  }
  return t;
}

LayerExecution Engine::execute_layer(const model::Layer& layer,
                                     const core::PolicyChoice& choice,
                                     const core::InterlayerAdjust& adjust) const {
  // Reserve the policy's working regions in a real allocator.  A region per
  // data type (already doubled for prefetch by planned_footprint) — if any
  // allocation fails, the plan was infeasible and we fail loudly.
  Glb glb(spec_.glb_elems());
  const core::Footprint fp = core::planned_footprint(layer, choice, adjust);
  if (fp.ifmap != 0) {
    (void)glb.allocate(fp.ifmap, layer.name() + ".ifmap");
  }
  if (fp.filter != 0) {
    (void)glb.allocate(fp.filter, layer.name() + ".filter");
  }
  if (fp.ofmap != 0) {
    (void)glb.allocate(fp.ofmap, layer.name() + ".ofmap");
  }

  const std::vector<TileOp> schedule = build_schedule(layer, choice, adjust);

  LayerExecution exec;
  exec.tiles = schedule.size();
  exec.peak_glb_elems = glb.peak_used();

  const double bw = spec_.elements_per_cycle();
  const double mac_rate = spec_.effective_macs_per_cycle();

  exec.latency_cycles = schedule_latency(schedule, bw, mac_rate, choice.prefetch);

  const ScheduleTotals sums = totals(schedule);
  exec.traffic.ifmap_reads = sums.ifmap_loads;
  exec.traffic.filter_reads = sums.filter_loads;
  exec.traffic.ofmap_writes = sums.ofmap_stores;
  exec.macs = sums.macs;
  exec.compute_cycles = static_cast<double>(sums.macs) / mac_rate;
  return exec;
}

PlanExecution Engine::execute_plan(const core::ExecutionPlan& plan,
                                   const model::Network& network,
                                   int threads) const {
  if (plan.size() != network.size()) {
    throw std::invalid_argument("Engine::execute_plan: plan/network mismatch");
  }
  if (util::runtime_checked()) {
    // Checked mode: re-derive the plan's structural invariants (footprint
    // closed forms, Eq. 2 doubling, GLB fit, tiling bounds, inter-layer
    // links) before replaying it.  Traffic/latency re-derivation is skipped
    // here because the engine does not know the EstimatorOptions the plan
    // was produced under.
    const validate::PlanValidator validator(
        validate::PlanValidator::structural_only());
    const validate::ValidationReport report = validator.validate(plan, network);
    if (!report.ok()) {
      throw std::runtime_error("Engine::execute_plan: plan fails validation\n" +
                               report.summary());
    }
  }
  PlanExecution result;
  result.layers.resize(plan.size());
  const auto& assignments = plan.assignments();
  const auto replay = [&](std::size_t i) {
    const core::LayerAssignment& a = assignments[i];
    core::InterlayerAdjust adjust{.ifmap_resident = a.ifmap_from_glb,
                                  .keep_ofmap = a.ofmap_stays_in_glb};
    result.layers[i] =
        execute_layer(network.layer(a.layer_index), a.estimate.choice, adjust);
  };
  // A per-layer replay is tens of microseconds; pool spawn costs more than
  // replaying a dozen layers, so small plans stay inline (the bench's
  // engine_replay section regressed 0.43 -> 0.65 ms at 2 threads without
  // this threshold).
  const std::size_t workers =
      util::resolve_workers(threads, plan.size(), /*min_items_per_worker=*/16);
  result.workers_used = workers;
  if (workers <= 1) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      replay(i);
    }
  } else {
    std::vector<std::size_t> indices(plan.size());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    util::parallel_for_each(indices, replay, workers);
  }
  // Totals accumulate in layer order, independent of the replay schedule.
  for (const LayerExecution& exec : result.layers) {
    result.total_accesses += exec.traffic.total();
    result.total_latency_cycles += exec.latency_cycles;
  }
  return result;
}

}  // namespace rainbow::engine
