// Concrete tile schedules.  For a (layer, policy-choice) pair this module
// unrolls the policy's loop nest into the exact sequence of tile operations
// (DRAM loads, MACs, DRAM stores) the accelerator would execute.  The
// engine replays the sequence against a DRAM-channel/compute timing model;
// the sums of the sequence are, by construction, the quantities the
// closed-form estimator predicts — the estimator/engine agreement tests
// pin that.
//
// Schedules always account for ifmap padding (it is what the hardware
// actually streams); compare against an Estimator with padded_traffic on.
#pragma once

#include <vector>

#include "core/estimator.hpp"
#include "core/policy.hpp"
#include "model/layer.hpp"

namespace rainbow::engine {

/// One tile step: load its inputs, compute, emit its outputs.
struct TileOp {
  count_t load_ifmap = 0;   ///< elements fetched from DRAM
  count_t load_filter = 0;
  count_t macs = 0;
  count_t store_ofmap = 0;  ///< elements written to DRAM

  [[nodiscard]] count_t load_total() const { return load_ifmap + load_filter; }
};

/// Unrolls the policy's loop nest.  Throws std::invalid_argument for
/// malformed choices (out-of-range tiling parameters).
[[nodiscard]] std::vector<TileOp> build_schedule(
    const model::Layer& layer, const core::PolicyChoice& choice,
    const core::InterlayerAdjust& adjust = {});

/// Sums of a schedule, for conservation checks.
struct ScheduleTotals {
  count_t ifmap_loads = 0;
  count_t filter_loads = 0;
  count_t ofmap_stores = 0;
  count_t macs = 0;
};

[[nodiscard]] ScheduleTotals totals(const std::vector<TileOp>& schedule);

}  // namespace rainbow::engine
