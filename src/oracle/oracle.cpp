#include "oracle/oracle.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>
#include <vector>

#include "core/estimator.hpp"
#include "core/interlayer.hpp"
#include "engine/glb.hpp"

namespace rainbow::oracle {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Floating-point slack for the bound comparisons.  The latency metric is a
/// double whose DP-bound summation order differs from the leaf accumulation
/// order; a subtree is only kept when its bound undercuts the incumbent by
/// more than this relative tolerance, so an improvement below ULP noise is
/// indistinguishable from a tie and treated as one.  (The accesses metric is
/// integral in a double: sums are exact and real improvements are >= 1, far
/// above the slack.)
double tol(double reference) {
  return 1e-9 * std::max(1.0, std::abs(reference));
}

/// One fully evaluated (policy, prefetch) point of a layer's search space,
/// with its objective-ordered cost split out for the bound arithmetic.
struct Candidate {
  core::Estimate estimate;
  double primary = 0.0;
  double secondary = 0.0;
};

double primary_of(const core::Estimate& est, core::Objective objective) {
  return objective == core::Objective::kAccesses
             ? static_cast<double>(est.accesses())
             : est.latency_cycles;
}

double secondary_of(const core::Estimate& est, core::Objective objective) {
  return objective == core::Objective::kAccesses
             ? est.latency_cycles
             : static_cast<double>(est.accesses());
}

/// Feasible candidates of one layer under one residency state, sorted by
/// (primary, secondary, enumeration order) — the front is the state's
/// lexicographic minimum.
struct StateCandidates {
  std::vector<Candidate> candidates;
};

/// The four residency states of a layer, indexed (in ? 2 : 0) + (out ? 1:0).
/// Disallowed states (boundary not sequential, or interlayer search off)
/// keep empty candidate lists and infinite minima.
struct LayerSpace {
  std::array<StateCandidates, 4> state;
  bool in_allowed = false;   ///< boundary i-1 -> i can hand a window over
  bool out_allowed = false;  ///< boundary i -> i+1 can hand a window over

  [[nodiscard]] const StateCandidates& at(bool in, bool out) const {
    return state[(in ? 2 : 0) + (out ? 1 : 0)];
  }
};

/// One decided layer on the DFS path / in a completed solution.
struct PathNode {
  const Candidate* candidate = nullptr;
  bool in = false;
  bool out = false;
};

struct Incumbent {
  PlanCost cost{kInf, kInf};
  /// Set once the search improves on the seed; empty means the seed
  /// (Algorithm 1's plan) is still the best known solution.
  std::optional<std::vector<PathNode>> path;
};

class Search {
 public:
  Search(const model::Network& network, const arch::AcceleratorSpec& spec,
         const OracleOptions& options, core::Objective objective,
         OracleResult& result)
      : network_(network),
        spec_(spec),
        options_(options),
        objective_(objective),
        result_(result) {}

  void run(const PlanCost& seed_cost) {
    enumerate_candidates();
    build_suffix_bounds();
    incumbent_.cost = seed_cost;
    if (!network_.empty()) {
      engine::Glb glb(spec_.glb_elems());
      path_.reserve(network_.size());
      dfs(0, /*prev_link=*/false, glb, std::nullopt, PlanCost{0.0, 0.0});
    }
    result_.exact = !exhausted_;
    result_.lower_bound = exhausted_ ? root_bound_ : incumbent_.cost.primary;
  }

  [[nodiscard]] const Incumbent& incumbent() const { return incumbent_; }

 private:
  /// Mirrors Analyzer::evaluate_best's candidate set exactly (policies ×
  /// prefetch variants plus the always-considered fallback tiler) so the
  /// heuristic's choice is always one of the oracle's points.
  void enumerate_candidates() {
    const core::Estimator estimator(spec_, options_.analyzer.estimator);
    const std::size_t n = network_.size();
    layers_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      LayerSpace& space = layers_[i];
      space.in_allowed = options_.interlayer && i > 0 &&
                         network_.is_sequential_boundary(i - 1);
      space.out_allowed = options_.interlayer && i + 1 < n &&
                          network_.is_sequential_boundary(i);
      for (int in = 0; in <= (space.in_allowed ? 1 : 0); ++in) {
        for (int out = 0; out <= (space.out_allowed ? 1 : 0); ++out) {
          StateCandidates& sc = space.state[(in ? 2 : 0) + (out ? 1 : 0)];
          const core::InterlayerAdjust adjust{.ifmap_resident = in != 0,
                                              .keep_ofmap = out != 0};
          auto consider = [&](core::Policy policy, bool prefetch) {
            ++result_.candidates_evaluated;
            core::Estimate est =
                estimator.estimate(network_.layer(i), policy, prefetch, adjust);
            if (!est.feasible) {
              return;
            }
            Candidate cand;
            cand.primary = primary_of(est, objective_);
            cand.secondary = secondary_of(est, objective_);
            cand.estimate = std::move(est);
            sc.candidates.push_back(std::move(cand));
          };
          for (core::Policy policy : options_.analyzer.policies) {
            consider(policy, false);
            if (options_.analyzer.allow_prefetch) {
              consider(policy, true);
            }
          }
          consider(core::Policy::kFallbackTiled, false);
          if (options_.analyzer.allow_prefetch) {
            consider(core::Policy::kFallbackTiled, true);
          }
          std::stable_sort(sc.candidates.begin(), sc.candidates.end(),
                           [](const Candidate& a, const Candidate& b) {
                             if (a.primary != b.primary) {
                               return a.primary < b.primary;
                             }
                             return a.secondary < b.secondary;
                           });
        }
      }
      if (space.at(false, false).candidates.empty()) {
        throw std::runtime_error(
            "OraclePlanner: layer '" + network_.layer(i).name() +
            "' cannot execute within a " +
            std::to_string(spec_.glb_bytes / 1024) +
            " kB GLB under any policy or tiling");
      }
    }
  }

  /// Suffix DP over link states, ignoring placement: lb_[i][prev] is the
  /// lexicographic (primary, secondary) optimum of layers i..n-1 in the
  /// placement-free relaxation, given whether boundary i-1 handed a window
  /// over.  Placement only removes completions, so every reachable leaf
  /// costs at least this — an admissible bound that also carries exact
  /// tie-break information (pair addition is monotone under the lex
  /// order), which is what collapses equal-primary plateaus: under the
  /// accesses objective many policies move every element once and tie on
  /// the primary metric, and a primary-only bound would leave those
  /// subtrees unprunable.
  void build_suffix_bounds() {
    const std::size_t n = network_.size();
    lb_.assign(n + 1, {PlanCost{0.0, 0.0}, PlanCost{0.0, 0.0}});
    for (std::size_t i = n; i-- > 0;) {
      const LayerSpace& space = layers_[i];
      for (int prev = 0; prev <= 1; ++prev) {
        PlanCost best{kInf, kInf};
        if (prev == 0 || space.in_allowed) {
          for (int out = 0; out <= (space.out_allowed ? 1 : 0); ++out) {
            const StateCandidates& sc = space.at(prev != 0, out != 0);
            if (sc.candidates.empty()) {
              continue;
            }
            // Candidates are sorted, so the front is the state's lex-min;
            // for a fixed suffix the lex-min composition uses it.
            const Candidate& cand = sc.candidates.front();
            const PlanCost total{cand.primary + lb_[i + 1][out].primary,
                                 cand.secondary + lb_[i + 1][out].secondary};
            if (total.better_than(best)) {
              best = total;
            }
          }
        }
        lb_[i][prev] = best;
      }
    }
    root_bound_ = network_.empty() ? 0.0 : lb_[0][0].primary;
  }

  /// Expands layer i given the link decision at boundary i-1, the current
  /// scratchpad free-list state, and the producer's persisted window.
  void dfs(std::size_t i, bool prev_link, const engine::Glb& glb,
           const std::optional<engine::Glb::Region>& persisted,
           PlanCost partial) {
    if (exhausted_) {
      return;
    }
    if (i == network_.size()) {
      if (partial.better_than(incumbent_.cost)) {
        incumbent_.cost = partial;
        incumbent_.path = path_;
      }
      return;
    }
    const LayerSpace& space = layers_[i];

    // Order the children best-bound-first so the DP optimum is reached on
    // the first descent whenever placement does not bind.
    struct Child {
      double bound1;
      double bound2;
      bool out;
      const Candidate* candidate;
    };
    std::vector<Child> children;
    for (int out = 0; out <= (space.out_allowed ? 1 : 0); ++out) {
      const StateCandidates& sc = space.at(prev_link, out != 0);
      for (const Candidate& cand : sc.candidates) {
        children.push_back(
            {partial.primary + cand.primary + lb_[i + 1][out].primary,
             partial.secondary + cand.secondary + lb_[i + 1][out].secondary,
             out != 0, &cand});
      }
    }
    std::stable_sort(children.begin(), children.end(),
                     [](const Child& a, const Child& b) {
                       if (a.bound1 != b.bound1) {
                         return a.bound1 < b.bound1;
                       }
                       return a.bound2 < b.bound2;
                     });

    for (const Child& child : children) {
      if (exhausted_) {
        return;
      }
      // Admissible prune: the incumbent is an *achieved* cost (seeded with
      // Algorithm 1's plan), so a subtree is worth expanding only when its
      // bound strictly lex-undercuts it.  Ties must be cut too — otherwise
      // the search enumerates every alternative optimum on the equal-cost
      // plateau (MobileNet at 64 kB has thousands) instead of terminating.
      const double inc1 = incumbent_.cost.primary;
      const double inc2 = incumbent_.cost.secondary;
      const bool can_improve =
          child.bound1 < inc1 - tol(inc1) ||
          (child.bound1 <= inc1 + tol(inc1) &&
           child.bound2 < inc2 - tol(inc2));
      if (!can_improve) {
        ++result_.nodes_pruned;
        continue;
      }
      ++result_.nodes_expanded;
      if (options_.node_budget != 0 &&
          result_.nodes_expanded > options_.node_budget) {
        exhausted_ = true;
        return;
      }

      // Replay this layer's region skeleton against the inherited first-fit
      // state — the same order the lowering emits (core/interlayer.cpp).
      const model::Layer& layer = network_.layer(i);
      const core::InterlayerAdjust adjust{.ifmap_resident = prev_link,
                                          .keep_ofmap = child.out};
      const core::Footprint fp = core::planned_footprint(
          layer, child.candidate->estimate.choice, adjust);
      engine::Glb next = glb;
      std::optional<engine::Glb::Region> ifmap;
      std::optional<engine::Glb::Region> filter;
      std::optional<engine::Glb::Region> ofmap;
      try {
        if (prev_link) {
          ifmap = persisted;
        } else if (fp.ifmap != 0) {
          ifmap = next.allocate(fp.ifmap, layer.name());
        }
        if (fp.filter != 0) {
          filter = next.allocate(fp.filter, layer.name());
        }
        if (fp.ofmap != 0) {
          ofmap = next.allocate(fp.ofmap, layer.name());
        }
      } catch (const std::runtime_error&) {
        ++result_.placement_rejections;
        continue;
      }
      if (ifmap) {
        next.release(*ifmap);
      }
      if (filter) {
        next.release(*filter);
      }
      std::optional<engine::Glb::Region> handoff;
      if (ofmap) {
        if (child.out) {
          handoff = ofmap;
        } else {
          next.release(*ofmap);
        }
      }

      path_.push_back({child.candidate, prev_link, child.out});
      dfs(i + 1, child.out, next, handoff,
          PlanCost{partial.primary + child.candidate->primary,
                   partial.secondary + child.candidate->secondary});
      path_.pop_back();
    }
  }

  const model::Network& network_;
  const arch::AcceleratorSpec& spec_;
  const OracleOptions& options_;
  core::Objective objective_;
  OracleResult& result_;

  std::vector<LayerSpace> layers_;
  std::vector<std::array<PlanCost, 2>> lb_;
  double root_bound_ = 0.0;
  Incumbent incumbent_;
  std::vector<PathNode> path_;
  bool exhausted_ = false;
};

core::ExecutionPlan plan_from_path(const std::vector<PathNode>& path,
                                   const model::Network& network,
                                   const arch::AcceleratorSpec& spec,
                                   core::Objective objective) {
  core::ExecutionPlan plan("Oracle", network.name(), spec, objective);
  for (std::size_t i = 0; i < path.size(); ++i) {
    core::LayerAssignment assignment;
    assignment.layer_index = i;
    assignment.estimate = path[i].candidate->estimate;
    assignment.ifmap_from_glb = path[i].in;
    assignment.ofmap_stays_in_glb = path[i].out;
    plan.add(std::move(assignment));
  }
  return plan;
}

core::ExecutionPlan relabel(const core::ExecutionPlan& plan) {
  core::ExecutionPlan copy("Oracle", plan.model(), plan.spec(),
                           plan.objective());
  for (const core::LayerAssignment& a : plan.assignments()) {
    copy.add(a);
  }
  return copy;
}

}  // namespace

PlanCost plan_cost(const core::ExecutionPlan& plan) {
  double accesses = 0.0;
  double latency = 0.0;
  for (const core::LayerAssignment& a : plan.assignments()) {
    accesses += static_cast<double>(a.estimate.accesses());
    latency += a.estimate.latency_cycles;
  }
  if (plan.objective() == core::Objective::kAccesses) {
    return {accesses, latency};
  }
  return {latency, accesses};
}

double optimality_gap(double heuristic_cost, double oracle_cost) {
  if (oracle_cost <= 0.0) {
    return 0.0;
  }
  return (heuristic_cost - oracle_cost) / oracle_cost;
}

OraclePlanner::OraclePlanner(const arch::AcceleratorSpec& spec,
                             OracleOptions options)
    : spec_(spec), options_(std::move(options)) {
  spec_.validate();
  if (options_.analyzer.policies.empty()) {
    throw std::invalid_argument("OraclePlanner: empty candidate policy set");
  }
}

OracleResult OraclePlanner::plan(const model::Network& network,
                                 core::Objective objective) const {
  // Seed the incumbent with Algorithm 1's plan: a finite node budget can
  // then only improve on the heuristic, never regress it, and a search
  // that proves the seed optimal terminates after pruning everything.
  const core::Analyzer analyzer(spec_, options_.analyzer);
  core::ExecutionPlan seed = analyzer.heterogeneous(network, objective);
  if (options_.interlayer) {
    seed = apply_interlayer_reuse(seed, network, analyzer);
  }
  const PlanCost seed_cost = plan_cost(seed);

  OracleResult result{relabel(seed), PlanCost{}, 0.0, false, 0, 0, 0, 0};
  Search search(network, spec_, options_, objective, result);
  search.run(seed_cost);
  if (search.incumbent().path) {
    result.plan = plan_from_path(*search.incumbent().path, network, spec_,
                                 objective);
  }
  result.best_cost = search.incumbent().cost;
  return result;
}

}  // namespace rainbow::oracle
