// Exact planning oracle: branch-and-bound / DP search over the joint space
// of (per-layer policy × prefetch on/off × inter-layer link selection) under
// the GLB capacity bound, including the first-fit placement constraint the
// greedy inter-layer pass enforces (core/interlayer.cpp).  Algorithm 1 is a
// per-layer greedy heuristic followed by a left-to-right link pass; the
// oracle quantifies how far those plans are from optimal (`gap_vs_oracle`)
// and doubles as a differential-testing adversary for the V/L/S gates.
//
// Search-space convention (docs/oracle.md): every candidate keeps the
// paper's auto-tuned tiling parameters (largest feasible filter block for
// P4/P5, minimum-access (R, n) for the fallback tiler) — the same
// parameterisation Algorithm 1 evaluates — so the heuristic's plan is
// always a point of the oracle's space and `oracle cost <= heuristic cost`
// holds unconditionally.
//
// Exactness: with an unlimited node budget the depth-first search, pruned
// only by admissible bounds (a suffix DP over link states that ignores the
// placement constraint), enumerates the whole space — the returned plan is
// provably optimal under the lexicographic objective (primary metric, other
// metric as tie-breaker).  With a finite budget the search is
// bounded-suboptimal: the incumbent is seeded with Algorithm 1's plan, so
// the result never regresses the heuristic, and `lower_bound` reports the
// admissible root bound as the optimality certificate.
#pragma once

#include <cstdint>

#include "core/analyzer.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::oracle {

struct OracleOptions {
  /// Candidate policies / prefetch variants / estimator knobs; identical
  /// semantics to the options Algorithm 1 plans under.  The eval cache is
  /// unused (the oracle enumerates candidates, not per-layer winners).
  core::AnalyzerOptions analyzer;
  /// Search inter-layer link decisions at sequential boundaries.  Off, the
  /// oracle degenerates to the exact per-layer optimum — which equals
  /// Algorithm 1's Het plan by construction (pinned by tests).
  bool interlayer = true;
  /// Maximum branch-and-bound nodes expanded (candidate placements tried);
  /// 0 = unlimited, i.e. exact.  When exhausted the best-found-so-far plan
  /// is returned with `exact == false`.
  std::uint64_t node_budget = 0;
};

/// Lexicographic plan cost under an objective: the primary metric with the
/// other metric as tie-breaker (the same ordering Algorithm 1 uses).
struct PlanCost {
  double primary = 0.0;
  double secondary = 0.0;

  [[nodiscard]] bool better_than(const PlanCost& other) const {
    if (primary != other.primary) {
      return primary < other.primary;
    }
    return secondary < other.secondary;
  }
};

/// Primary/secondary cost of `plan` under its own objective.
[[nodiscard]] PlanCost plan_cost(const core::ExecutionPlan& plan);

/// Relative optimality gap (heuristic - oracle) / oracle; 0 when the oracle
/// cost is zero (both must then be zero for a consistent pair).
[[nodiscard]] double optimality_gap(double heuristic_cost, double oracle_cost);

struct OracleResult {
  core::ExecutionPlan plan;   ///< scheme "Oracle"; passes PlanValidator
  PlanCost best_cost;         ///< cost of `plan` (== plan_cost(plan))
  /// Admissible lower bound on the optimum's primary metric.  Equals
  /// best_cost.primary when `exact`; the placement-free suffix-DP root
  /// bound otherwise.
  double lower_bound = 0.0;
  /// The search ran to completion: `plan` is provably optimal over the
  /// policy × prefetch × link space (lexicographic objective).
  bool exact = false;
  std::uint64_t nodes_expanded = 0;   ///< candidate placements tried
  std::uint64_t nodes_pruned = 0;     ///< subtrees cut by the bounds
  /// Placement attempts rejected by the first-fit replay — the constraint
  /// the suffix DP cannot see.
  std::uint64_t placement_rejections = 0;
  std::uint64_t candidates_evaluated = 0;  ///< estimator calls made
};

class OraclePlanner {
 public:
  explicit OraclePlanner(const arch::AcceleratorSpec& spec,
                         OracleOptions options = {});

  [[nodiscard]] const arch::AcceleratorSpec& spec() const { return spec_; }
  [[nodiscard]] const OracleOptions& options() const { return options_; }

  /// Searches the joint space for `network` under `objective`.  Throws
  /// std::runtime_error when some layer cannot execute within the GLB
  /// under any candidate (the same condition that fails Algorithm 1).
  /// Deterministic: same inputs, same plan, regardless of surrounding
  /// thread count (the search itself is sequential).
  [[nodiscard]] OracleResult plan(const model::Network& network,
                                  core::Objective objective) const;

 private:
  arch::AcceleratorSpec spec_;
  OracleOptions options_;
};

}  // namespace rainbow::oracle
