#include "scalesim/dataflow.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "util/units.hpp"

namespace rainbow::scalesim {

using util::ceil_div;

std::string_view to_string(Dataflow dataflow) {
  switch (dataflow) {
    case Dataflow::kOutputStationary:
      return "OS";
    case Dataflow::kWeightStationary:
      return "WS";
    case Dataflow::kInputStationary:
      return "IS";
  }
  throw std::logic_error("to_string: invalid Dataflow");
}

Dataflow dataflow_from_string(std::string_view code) {
  std::string lower(code);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "os") return Dataflow::kOutputStationary;
  if (lower == "ws") return Dataflow::kWeightStationary;
  if (lower == "is") return Dataflow::kInputStationary;
  throw std::invalid_argument("dataflow_from_string: unknown dataflow '" +
                              std::string(code) + "'");
}

namespace {

/// GEMM extents per channel group: output pixels M, filters N, reduction T.
struct GemmView {
  count_t m = 0;
  count_t n = 0;
  count_t t = 0;
  count_t groups = 1;
};

GemmView gemm_view(const model::Layer& layer) {
  GemmView v;
  v.m = static_cast<count_t>(layer.ofmap_h()) * layer.ofmap_w();
  if (layer.is_depthwise()) {
    v.n = 1;
    v.t = static_cast<count_t>(layer.filter_h()) * layer.filter_w();
    v.groups = static_cast<count_t>(layer.channels());
  } else {
    v.n = static_cast<count_t>(layer.filters());
    v.t = static_cast<count_t>(layer.filter_h()) * layer.filter_w() *
          layer.channels();
  }
  return v;
}

}  // namespace

DataflowFolds dataflow_folds(const model::Layer& layer,
                             const arch::AcceleratorSpec& spec,
                             Dataflow dataflow) {
  const GemmView v = gemm_view(layer);
  const count_t rows = static_cast<count_t>(spec.pe_rows);
  const count_t cols = static_cast<count_t>(spec.pe_cols);
  const count_t fill_drain = rows + cols - 2;

  DataflowFolds f;
  switch (dataflow) {
    case Dataflow::kOutputStationary:
      // Array holds a rows x cols output tile; the reduction streams
      // through.  Outputs accumulate in place: one round.
      f.folds = ceil_div(v.m, rows) * ceil_div(v.n, cols) * v.groups;
      f.cycles_per_fold = v.t + 2 * rows - 2;
      f.psum_rounds = 1;
      break;
    case Dataflow::kWeightStationary:
      // Array pins a rows x cols filter slice (rows of the reduction x
      // cols filters); every output pixel streams past it, contributing a
      // partial sum per reduction slice.
      f.folds = ceil_div(v.t, rows) * ceil_div(v.n, cols) * v.groups;
      f.cycles_per_fold = rows + v.m + fill_drain;
      f.psum_rounds = ceil_div(v.t, rows);
      break;
    case Dataflow::kInputStationary:
      // Array pins a rows x cols ifmap slice (reduction x output pixels);
      // every filter streams past it.
      f.folds = ceil_div(v.t, rows) * ceil_div(v.m, cols) * v.groups;
      f.cycles_per_fold = rows + v.n + fill_drain;
      f.psum_rounds = ceil_div(v.t, rows);
      break;
  }
  return f;
}

count_t dataflow_compute_cycles(const model::Layer& layer,
                                const arch::AcceleratorSpec& spec,
                                Dataflow dataflow) {
  const DataflowFolds f = dataflow_folds(layer, spec, dataflow);
  return f.folds * f.cycles_per_fold;
}

}  // namespace rainbow::scalesim
