#include "scalesim/trace_writer.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "scalesim/systolic.hpp"
#include "util/thread_pool.hpp"

namespace rainbow::scalesim {

namespace {

/// Decimal-formats `value` straight into `out` (std::to_chars produces the
/// same digits operator<< would, without the stream machinery per field).
void append_count(std::string& out, count_t value) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  out.append(buf, res.ptr);
}

/// A decimal counter cell for the row formatter.  Within one fold every
/// field of the trace (cycle and each operand address) advances by exactly
/// +1 per row, so each field is formatted once with std::to_chars and then
/// incremented in place: an emit is a short memcpy and an increment is
/// usually a single digit bump, instead of a full integer-to-decimal
/// conversion per field per row.  Digits are right-aligned so a carry that
/// grows the number (999 -> 1000) just extends the span leftward.
struct DecimalCell {
  char digits[20];
  unsigned start = 20;  ///< index of the most significant digit
};

void cell_init(DecimalCell& cell, count_t value) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  const auto len = static_cast<unsigned>(res.ptr - buf);
  cell.start = 20 - len;
  std::memcpy(cell.digits + cell.start, buf, len);
}

void cell_increment(DecimalCell& cell) {
  unsigned i = 20;
  while (i-- > cell.start) {
    if (cell.digits[i] != '9') {
      ++cell.digits[i];
      return;
    }
    cell.digits[i] = '0';
  }
  cell.digits[--cell.start] = '1';
}

char* cell_emit(char* p, const DecimalCell& cell) {
  const unsigned len = 20 - cell.start;
  std::memcpy(p, cell.digits + cell.start, len);
  return p + len;
}

/// Rows per shard the formatter aims for: big enough that one shard is one
/// large block write, small enough that a windowed pipeline over shards
/// bounds memory to a few MB per worker.
constexpr count_t kShardRowTarget = 8192;

/// Formats the trace rows of folds [fold_begin, fold_end) into `out`,
/// honoring the global data-row cap.  Row j of fold f (j < reduction) is
/// global row f * reduction + j; rows at or past `row_limit` are elided
/// exactly like the naive writer's truncation path.
///
/// The hot loop writes through a raw pointer into worst-case-reserved
/// storage — one capacity check per shard instead of seventy string
/// appends per row — and every field runs as a DecimalCell counter seeded
/// by std::to_chars at the top of each fold, so the per-row cost is a few
/// short copies and digit bumps rather than full decimal conversions.
void format_shard(const FoldGeometry& g, const arch::AcceleratorSpec& spec,
                  const TraceWriterOptions& options, count_t fold_begin,
                  count_t fold_end, count_t row_limit, std::string& out,
                  std::vector<DecimalCell>& cells) {
  const count_t T = g.reduction;
  const count_t rows = static_cast<count_t>(spec.pe_rows);
  const count_t cols = static_cast<count_t>(spec.pe_cols);
  const count_t span = fold_cycle_span(g, spec);
  // Worst case per row: every field a 20-digit count plus its comma, one
  // cycle field, one newline.
  const count_t shard_rows =
      std::min(fold_end * T, row_limit) -
      std::min(std::min(fold_begin * T, row_limit), fold_end * T);
  const std::size_t max_row_bytes =
      static_cast<std::size_t>(1 + rows + cols) * 21 + 2;
  out.resize(static_cast<std::size_t>(shard_rows) * max_row_bytes);
  cells.resize(static_cast<std::size_t>(1 + rows + cols));
  DecimalCell* const cycle_cell = cells.data();
  DecimalCell* const row_cells = cells.data() + 1;
  DecimalCell* const col_cells = cells.data() + 1 + rows;
  char* p = out.data();
  for (count_t f = fold_begin; f < fold_end; ++f) {
    const count_t steps = std::min(T, row_limit - std::min(row_limit, f * T));
    if (steps == 0) {
      break;  // every later fold starts past the cap too
    }
    const FoldCoord coord = fold_at(g, spec, f);
    const count_t group_base = coord.group * g.output_rows * T;
    const count_t ifmap_base = group_base + coord.row_fold * rows * T;
    const count_t filter_base =
        options.filter_base + group_base + coord.col_fold * cols * T;
    cell_init(*cycle_cell, f * span);
    for (count_t r = 0; r < coord.active_rows; ++r) {
      cell_init(row_cells[r], ifmap_base + r * T);
    }
    for (count_t c = 0; c < coord.active_cols; ++c) {
      cell_init(col_cells[c], filter_base + c * T);
    }
    // Idle-lane padding is constant per fold: emit it as one copy per row
    // section instead of a branch per PE lane.
    const std::size_t row_pad = static_cast<std::size_t>(rows - coord.active_rows);
    const std::size_t col_pad = static_cast<std::size_t>(cols - coord.active_cols);
    static constexpr char kPad[] = ",-,-,-,-,-,-,-,-,-,-,-,-,-,-,-,-";
    static_assert(sizeof(kPad) >= 33);
    for (count_t t = 0; t < steps; ++t) {
      p = cell_emit(p, *cycle_cell);
      cell_increment(*cycle_cell);
      for (count_t r = 0; r < coord.active_rows; ++r) {
        *p++ = ',';
        p = cell_emit(p, row_cells[r]);
        cell_increment(row_cells[r]);
      }
      for (std::size_t n = row_pad; n > 0;) {
        const std::size_t take = std::min<std::size_t>(n, 16);
        std::memcpy(p, kPad, take * 2);
        p += take * 2;
        n -= take;
      }
      for (count_t c = 0; c < coord.active_cols; ++c) {
        *p++ = ',';
        p = cell_emit(p, col_cells[c]);
        cell_increment(col_cells[c]);
      }
      for (std::size_t n = col_pad; n > 0;) {
        const std::size_t take = std::min<std::size_t>(n, 16);
        std::memcpy(p, kPad, take * 2);
        p += take * 2;
        n -= take;
      }
      *p++ = '\n';
    }
  }
  out.resize(static_cast<std::size_t>(p - out.data()));
}

}  // namespace

TraceFileInfo write_sram_trace(const model::Layer& layer,
                               const arch::AcceleratorSpec& spec,
                               const std::filesystem::path& path,
                               TraceWriterOptions options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_sram_trace: cannot create " +
                             path.string());
  }
  const FoldGeometry g = fold_geometry(layer, spec);
  const count_t rows = static_cast<count_t>(spec.pe_rows);
  const count_t cols = static_cast<count_t>(spec.pe_cols);
  const count_t folds = g.folds();

  std::string header = "cycle";
  for (count_t r = 0; r < rows; ++r) {
    header += ",ifmap_row";
    append_count(header, r);
  }
  for (count_t c = 0; c < cols; ++c) {
    header += ",filter_col";
    append_count(header, c);
  }
  header.push_back('\n');
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  // Every streaming cycle is one potential row; the cap elides the tail
  // but the cycle count still covers the full walk (like the naive
  // writer's `continue` path, computed closed-form here).
  TraceFileInfo info;
  const count_t total_rows = folds * g.reduction;
  const count_t row_limit =
      options.max_rows == 0 ? total_rows : std::min(total_rows, options.max_rows);
  info.cycles_total = total_rows;
  info.rows_written = row_limit;
  info.truncated = options.max_rows != 0 && total_rows > options.max_rows;
  info.bytes_written = header.size();

  // Shards cover fold ranges; only folds below the row cap format rows.
  const count_t grain_folds =
      std::max<count_t>(1, kShardRowTarget / std::max<count_t>(1, g.reduction));
  const count_t live_folds = util::ceil_div(row_limit, g.reduction);
  const std::size_t shards = util::chunk_count(
      static_cast<std::size_t>(live_folds), static_cast<std::size_t>(grain_folds));
  const std::size_t workers =
      util::resolve_workers(options.threads, shards, /*min_items_per_worker=*/2);
  info.workers_used = workers;

  const auto shard_range = [&](std::size_t s) {
    const count_t begin = static_cast<count_t>(s) * grain_folds;
    const count_t end = std::min(live_folds, begin + grain_folds);
    return std::pair<count_t, count_t>{begin, end};
  };

  if (workers <= 1) {
    // Serial fast path: one reusable buffer, one block write per shard.
    std::string buffer;
    std::vector<DecimalCell> cells;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto [begin, end] = shard_range(s);
      format_shard(g, spec, options, begin, end, row_limit, buffer, cells);
      out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
      info.bytes_written += buffer.size();
    }
    return info;
  }

  // Pipelined path: windows of shards are formatted in parallel into
  // reusable buffers, then concatenated to the stream in shard order —
  // the bytes never depend on who formatted what.
  util::ThreadPool pool(workers);
  const std::size_t window = workers * 2;
  std::vector<std::string> buffers(window);
  std::vector<std::vector<DecimalCell>> cell_scratch(window);
  for (std::size_t base = 0; base < shards; base += window) {
    const std::size_t count = std::min(window, shards - base);
    for (std::size_t i = 0; i < count; ++i) {
      pool.submit([&, i, base] {
        const auto [begin, end] = shard_range(base + i);
        format_shard(g, spec, options, begin, end, row_limit, buffers[i],
                     cell_scratch[i]);
      });
    }
    pool.wait();
    for (std::size_t i = 0; i < count; ++i) {
      out.write(buffers[i].data(),
                static_cast<std::streamsize>(buffers[i].size()));
      info.bytes_written += buffers[i].size();
    }
  }
  return info;
}

}  // namespace rainbow::scalesim
