#include "scalesim/trace_writer.hpp"

#include <fstream>

#include "scalesim/systolic.hpp"

namespace rainbow::scalesim {

TraceFileInfo write_sram_trace(const model::Layer& layer,
                               const arch::AcceleratorSpec& spec,
                               const std::filesystem::path& path,
                               TraceWriterOptions options) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_sram_trace: cannot create " +
                             path.string());
  }
  const FoldGeometry g = fold_geometry(layer, spec);
  const count_t rows = static_cast<count_t>(spec.pe_rows);
  const count_t cols = static_cast<count_t>(spec.pe_cols);

  out << "cycle";
  for (count_t r = 0; r < rows; ++r) {
    out << ",ifmap_row" << r;
  }
  for (count_t c = 0; c < cols; ++c) {
    out << ",filter_col" << c;
  }
  out << '\n';

  TraceFileInfo info;
  count_t cycle = 0;
  for (count_t group = 0; group < g.channel_groups; ++group) {
    const count_t group_base = group * g.output_rows * g.reduction;
    for (count_t rf = 0; rf < g.row_folds; ++rf) {
      const count_t active_rows = std::min(rows, g.output_rows - rf * rows);
      for (count_t cf = 0; cf < g.col_folds; ++cf) {
        const count_t active_cols = std::min(cols, g.output_cols - cf * cols);
        // Streaming portion of the fold (fill/drain cycles carry no new
        // operands and are omitted, like SCALE-Sim's SRAM read trace).
        for (count_t t = 0; t < g.reduction; ++t) {
          info.cycles_total++;
          if (options.max_rows != 0 && info.rows_written >= options.max_rows) {
            info.truncated = true;
            continue;  // keep counting cycles, stop writing
          }
          out << cycle + t;
          for (count_t r = 0; r < rows; ++r) {
            if (r < active_rows) {
              const count_t pixel = rf * rows + r;
              out << ',' << group_base + pixel * g.reduction + t;
            } else {
              out << ",-";
            }
          }
          for (count_t c = 0; c < cols; ++c) {
            if (c < active_cols) {
              const count_t filter = cf * cols + c;
              out << ','
                  << options.filter_base + group_base +
                         filter * g.reduction + t;
            } else {
              out << ",-";
            }
          }
          out << '\n';
          ++info.rows_written;
        }
        cycle += g.reduction + 2 * rows - 2;
      }
    }
  }
  return info;
}

}  // namespace rainbow::scalesim
