// The canonical systolic dataflows of Section 2.3: output stationary (the
// paper's baseline configuration), weight stationary, and input stationary.
// The dataflow decides what stays pinned in the PE array across a fold and
// therefore which operand streams — and, crucially, whether partial sums
// exist: OS accumulates outputs inside the array, while WS/IS must spill
// partial sums to the (4 kB) ofmap buffer and, when that overflows, to
// DRAM.  That spill is exactly why the paper's baseline uses OS.
#pragma once

#include <string>

#include "arch/accelerator.hpp"
#include "model/layer.hpp"

namespace rainbow::scalesim {

enum class Dataflow {
  kOutputStationary,  ///< outputs pinned; ifmap rows and filters stream
  kWeightStationary,  ///< filter slice pinned; ifmap streams, psums move
  kInputStationary,   ///< ifmap slice pinned; filters stream, psums move
};

[[nodiscard]] std::string_view to_string(Dataflow dataflow);

/// Parses "os" / "ws" / "is" (case-insensitive).  Throws
/// std::invalid_argument on anything else.
[[nodiscard]] Dataflow dataflow_from_string(std::string_view code);

/// Fold structure of one layer under one dataflow.
struct DataflowFolds {
  count_t folds = 0;             ///< total array passes
  count_t cycles_per_fold = 0;   ///< fill + stream + drain
  count_t psum_rounds = 1;       ///< accumulation passes over each output
};

[[nodiscard]] DataflowFolds dataflow_folds(const model::Layer& layer,
                                           const arch::AcceleratorSpec& spec,
                                           Dataflow dataflow);

/// Zero-stall compute cycles of one layer under `dataflow`.
[[nodiscard]] count_t dataflow_compute_cycles(const model::Layer& layer,
                                              const arch::AcceleratorSpec& spec,
                                              Dataflow dataflow);

}  // namespace rainbow::scalesim
