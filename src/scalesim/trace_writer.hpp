// SCALE-Sim-style trace files: one CSV row per array cycle listing the
// operand addresses streamed into each PE row and column that cycle.
// Materialising these files is the expensive part of trace-driven
// simulation (the paper's >5-hour baseline runs); this writer exists so
// downstream memory-system tools (DRAM simulators, compression studies)
// can consume the same streams.
//
// Address space: im2col — ifmap operand (pixel, t) at pixel*T + t, filter
// operand (filter, t) at FILTER_BASE + filter*T + t, per channel group.
//
// The writer is pipelined: rows are formatted with std::to_chars into
// reusable fold-range shard buffers (optionally by several workers in
// parallel) and flushed to the stream as large block writes in shard
// order, so the bytes are identical to a naive per-field serial writer
// for every thread count — tests pin this against a golden file.
#pragma once

#include <filesystem>

#include "arch/accelerator.hpp"
#include "model/layer.hpp"

namespace rainbow::scalesim {

struct TraceWriterOptions {
  /// Stop after this many data rows (0 = no cap).  Full-layer traces reach
  /// millions of rows; benchmarks cap them.
  count_t max_rows = 0;
  /// Base address of the filter operand space.
  count_t filter_base = 1u << 30;
  /// Shard-formatting fan-out (0 = hardware concurrency).  Output bytes
  /// are identical for every value; small traces stay inline regardless.
  int threads = 1;
};

struct TraceFileInfo {
  count_t rows_written = 0;   ///< data rows (excluding the header)
  count_t cycles_total = 0;   ///< cycles the full trace would cover
  count_t bytes_written = 0;  ///< file size, header included
  bool truncated = false;
  /// Workers the shard dispatch resolved to (1 = serial fast path).
  /// Informational — the bytes are identical for every value.
  std::size_t workers_used = 1;
};

/// Writes the output-stationary SRAM-read trace of one layer.  Throws
/// std::runtime_error when the file cannot be created.
TraceFileInfo write_sram_trace(const model::Layer& layer,
                               const arch::AcceleratorSpec& spec,
                               const std::filesystem::path& path,
                               TraceWriterOptions options = {});

}  // namespace rainbow::scalesim
