// The baseline accelerator of Section 4: a SCALE-Sim-style systolic array
// with fixed, separately partitioned double-buffered SRAMs.  For every
// layer the simulator evaluates the two canonical fold orders —
// output-rows-outer (filters stream per row fold) and filters-outer (ifmap
// streams per column fold) — with partial-residency accounting, and charges
// the cheaper one, so the baseline is a competent fixed-partition design
// rather than a strawman.
//
// Latency follows the paper's convention for the baseline: zero-stall
// compute cycles, independent of buffer sizes.  DRAM traffic counts the
// unpadded ifmap (the paper notes its own estimates include padding while
// SCALE-Sim's do not).
#pragma once

#include <vector>

#include "model/network.hpp"
#include "scalesim/buffer.hpp"
#include "scalesim/dataflow.hpp"
#include "scalesim/systolic.hpp"

namespace rainbow::scalesim {

struct LayerTraffic {
  count_t ifmap_reads = 0;
  count_t filter_reads = 0;
  count_t ofmap_writes = 0;
  /// WS/IS only: partial sums that overflow the ofmap buffer and round-trip
  /// to DRAM between accumulation passes.
  count_t psum_transfers = 0;

  [[nodiscard]] count_t total() const {
    return ifmap_reads + filter_reads + ofmap_writes + psum_transfers;
  }
};

struct LayerResult {
  LayerTraffic traffic;            ///< DRAM transfers, elements
  count_t compute_cycles = 0;      ///< zero-stall systolic cycles
  double utilization = 0.0;        ///< MAC utilization of the PE array
  bool row_outer_order = true;     ///< which fold order was cheaper
};

struct RunResult {
  std::vector<LayerResult> layers;
  count_t total_accesses = 0;      ///< elements
  count_t total_cycles = 0;

  [[nodiscard]] double access_mb(const arch::AcceleratorSpec& spec) const {
    return static_cast<double>(total_accesses * spec.element_bytes()) /
           (1024.0 * 1024.0);
  }
};

/// Result of the cycle-level traced simulation: the same aggregate traffic
/// and timing as the analytic model, plus the volume of trace events a
/// SCALE-Sim-style run materialises (the reason full simulation is orders
/// of magnitude slower than the analytic estimators — the paper's "one
/// minute vs five hours", Section 4).
struct TraceResult {
  RunResult aggregate;
  count_t sram_read_events = 0;   ///< operand fetches streamed into the array
  count_t sram_write_events = 0;  ///< results drained from the array
  count_t trace_checksum = 0;     ///< fold-ordered address checksum
  /// Workers the fold-chunk dispatch resolved to (1 = ran inline).  Purely
  /// informational — results are identical for every value — but benches
  /// record it so scaling rows on a 1-core host read as degenerate.
  std::size_t workers_used = 1;
};

class Simulator {
 public:
  Simulator(const arch::AcceleratorSpec& spec, BufferPartition partition,
            Dataflow dataflow = Dataflow::kOutputStationary);

  [[nodiscard]] const arch::AcceleratorSpec& spec() const { return spec_; }
  [[nodiscard]] const BufferPartition& partition() const { return partition_; }
  [[nodiscard]] Dataflow dataflow() const { return dataflow_; }

  [[nodiscard]] LayerResult simulate_layer(const model::Layer& layer) const;

  /// Evaluates every layer (layers are independent) and sums totals in
  /// layer order.  `threads` > 1 fans the per-layer evaluations onto a
  /// private pool, 0 means hardware concurrency; results are identical to
  /// the serial walk for every thread count (tests pin this).
  [[nodiscard]] RunResult run(const model::Network& network,
                              int threads = 1) const;

  /// Cycle-level run: enumerates every fold of every layer and accounts
  /// the per-cycle operand streams a SCALE-Sim run would materialise,
  /// cross-checking the fold walk against the analytic timing model.
  /// Aggregate totals equal run()'s exactly; tests pin this.
  ///
  /// Parallelism is fold-granular, not layer-granular: each layer's
  /// group x row_fold x col_fold space is cut into fixed-grain fold-range
  /// chunks and the chunks of *all* layers are scheduled together on one
  /// pool, so one large layer no longer pins the critical path.  Inside a
  /// fold, event counts and address sums are closed-form (the per-cycle
  /// loops of the naive walk collapse), which is where the wall-time goes.
  /// The checksum is a two-level combine — order-dependent mixing over
  /// folds within a chunk, position-keyed across chunks, layer-order
  /// across layers — and chunk boundaries depend only on the geometry,
  /// never on `threads`, so the result is bit-identical for every thread
  /// count (tests pin 1/2/4/8).
  [[nodiscard]] TraceResult run_traced(const model::Network& network,
                                       int threads = 1) const;

 private:
  arch::AcceleratorSpec spec_;
  BufferPartition partition_;
  Dataflow dataflow_;
};

/// The three baseline partitions of the evaluation: sa_25_75, sa_50_50,
/// sa_75_25 (ifmap share _ filter share).
[[nodiscard]] std::vector<BufferPartition> paper_partitions();

}  // namespace rainbow::scalesim
