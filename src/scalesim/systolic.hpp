// Output-stationary systolic-array timing model, SCALE-Sim style.  A layer
// is lowered to an im2col GEMM: output pixels (O_H*O_W) along the array
// rows, filters along the array columns, reduction length T = F_H*F_W*C_I.
// The GEMM is processed in pe_rows x pe_cols "folds"; each fold streams its
// reduction through the array in T + 2*dim - 2 cycles (pipeline fill +
// drain).  Depthwise layers run channel-by-channel with a single column
// active, which is exactly the utilization cliff real systolic arrays hit.
#pragma once

#include "arch/accelerator.hpp"
#include "model/layer.hpp"
#include "util/checked.hpp"

namespace rainbow::scalesim {

/// GEMM view of one layer on the array.
struct FoldGeometry {
  count_t output_rows = 0;   ///< output pixels per channel group
  count_t output_cols = 0;   ///< filters per channel group
  count_t reduction = 0;     ///< T, the dot-product length
  count_t channel_groups = 1;///< 1 for dense layers, C_I for depthwise
  count_t row_folds = 0;
  count_t col_folds = 0;

  [[nodiscard]] count_t folds() const {
    return util::cmul(util::cmul(row_folds, col_folds), channel_groups);
  }
};

[[nodiscard]] FoldGeometry fold_geometry(const model::Layer& layer,
                                         const arch::AcceleratorSpec& spec);

/// One fold of the walk, addressed by its flat index in the canonical
/// group-major order (group outer, row fold, column fold inner) — the
/// order the per-layer loop nest visits and every trace file serializes.
/// Exposing the decode lets the traced simulator and the trace writer
/// start mid-walk, which is what makes fold-range chunking possible.
struct FoldCoord {
  count_t group = 0;
  count_t row_fold = 0;
  count_t col_fold = 0;
  count_t active_rows = 0;  ///< array rows carrying live output pixels
  count_t active_cols = 0;  ///< array columns carrying live filters
};

/// Decodes flat fold index `index` in [0, g.folds()) against `g`.
[[nodiscard]] FoldCoord fold_at(const FoldGeometry& g,
                                const arch::AcceleratorSpec& spec,
                                count_t index);

/// Cycles one fold occupies the array: reduction + pipeline fill/drain.
/// Identical for every fold of a layer, so fold `i` starts at
/// i * fold_cycle_span(...) — the closed form behind chunked walks.
[[nodiscard]] constexpr count_t fold_cycle_span(
    const FoldGeometry& g, const arch::AcceleratorSpec& spec) {
  return util::cadd(g.reduction, 2 * static_cast<count_t>(spec.pe_rows) - 2);
}

/// Zero-stall compute cycles for one layer: folds x (T + 2*dim - 2).
[[nodiscard]] count_t compute_cycles(const model::Layer& layer,
                                     const arch::AcceleratorSpec& spec);

/// MAC-level utilization in [0, 1]: useful MACs / (cycles x PEs x 0.5)
/// (a MAC occupies a PE for two cycles in the paper's accounting).
[[nodiscard]] double utilization(const model::Layer& layer,
                                 const arch::AcceleratorSpec& spec);

}  // namespace rainbow::scalesim
