#include "scalesim/simulator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace rainbow::scalesim {

namespace {

using model::Layer;

/// Fraction of a working set that spills past the usable buffer capacity
/// and must be re-fetched on every re-visit; 0 when it fits.
double spill_fraction(count_t working_set, count_t usable) {
  if (working_set == 0 || working_set <= usable) {
    return 0.0;
  }
  return static_cast<double>(working_set - usable) /
         static_cast<double>(working_set);
}

count_t scaled(count_t base, double factor) {
  return static_cast<count_t>(static_cast<double>(base) * factor + 0.5);
}

/// Runs fn(i) for i in [0, n), inline when a single worker suffices,
/// otherwise on a private pool.  fn must only touch slot i of shared
/// state, which keeps every schedule bit-identical to the serial one.
template <typename Fn>
void for_each_index(std::size_t n, int threads, Fn fn) {
  std::size_t workers = threads == 0
                            ? std::max(1u, std::thread::hardware_concurrency())
                            : static_cast<std::size_t>(std::max(threads, 1));
  workers = std::min(workers, n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  util::parallel_for_each(indices, fn, workers);
}

}  // namespace

Simulator::Simulator(const arch::AcceleratorSpec& spec,
                     BufferPartition partition, Dataflow dataflow)
    : spec_(spec), partition_(partition), dataflow_(dataflow) {
  spec_.validate();
  partition_.validate(spec_);
}

LayerResult Simulator::simulate_layer(const Layer& layer) const {
  const FoldGeometry g = fold_geometry(layer, spec_);
  const count_t usable_if =
      partition_.ifmap_buffer(spec_).usable_elems(spec_);
  const count_t usable_flt =
      partition_.filter_buffer(spec_).usable_elems(spec_);

  const count_t ifmap = layer.ifmap_elems();     // baseline: unpadded
  const count_t filters = layer.filter_elems();
  const count_t ofmap = layer.ofmap_elems();

  // Working sets. Depthwise layers are processed per channel, so the
  // sliding window and the filter tile cover one channel only.
  const count_t window =
      static_cast<count_t>(layer.filter_h()) * layer.ifmap_w() *
      (layer.is_depthwise() ? 1 : layer.channels());
  const count_t filter_tile =
      static_cast<count_t>(spec_.pe_cols) * layer.single_filter_elems();

  // Order A: output row folds outer, filter folds inner.  The ifmap window
  // of the current row fold stays resident across the filter sweep; the
  // filter spill is re-fetched on every row fold.
  count_t if_a;
  if (ifmap <= usable_if || window <= usable_if) {
    if_a = ifmap;  // whole map resident, or streamed once height-wise
  } else {
    // Even one sliding window does not fit: the filter sweep thrashes the
    // spilled part of the window on every column fold.
    const double frac = spill_fraction(window, usable_if);
    if_a = ifmap + scaled(ifmap, frac) * (g.col_folds - 1);
  }
  count_t flt_a = filters;
  if (filters > usable_flt) {
    flt_a += (filters - usable_flt) * (g.row_folds - 1);
  }

  // Order B: filter folds outer, output row folds inner.  One column fold's
  // filters stay resident across the row sweep; the ifmap spill is
  // re-fetched on every column fold.
  count_t if_b = ifmap;
  if (ifmap > usable_if) {
    if_b += (ifmap - usable_if) * (g.col_folds - 1);
  }
  count_t flt_b = filters;
  if (filter_tile > usable_flt) {
    const double frac = spill_fraction(filter_tile, usable_flt);
    flt_b = filters + scaled(filters, frac) * (g.row_folds - 1);
  }

  LayerResult result;
  result.row_outer_order = (if_a + flt_a) <= (if_b + flt_b);
  result.traffic.ifmap_reads = result.row_outer_order ? if_a : if_b;
  result.traffic.filter_reads = result.row_outer_order ? flt_a : flt_b;
  result.traffic.ofmap_writes = ofmap;  // final results written once

  // WS/IS accumulate each output over ceil(T/rows) passes; partial sums
  // that overflow the small ofmap staging buffer round-trip to DRAM
  // between passes (a write plus a read each).  This spill is why the
  // paper's baseline configuration is output stationary.
  const DataflowFolds folds = dataflow_folds(layer, spec_, dataflow_);
  if (folds.psum_rounds > 1) {
    const count_t usable_of =
        partition_.ofmap_buffer().usable_elems(spec_);
    const double spill = spill_fraction(ofmap, usable_of);
    result.traffic.psum_transfers =
        2 * (folds.psum_rounds - 1) * scaled(ofmap, spill);
  }

  result.compute_cycles = dataflow_compute_cycles(layer, spec_, dataflow_);
  const double capacity =
      static_cast<double>(result.compute_cycles) * spec_.macs_per_cycle();
  result.utilization = static_cast<double>(layer.macs()) / capacity;
  return result;
}

RunResult Simulator::run(const model::Network& network, int threads) const {
  RunResult run;
  run.layers.resize(network.size());
  for_each_index(network.size(), threads, [&](std::size_t i) {
    run.layers[i] = simulate_layer(network.layer(i));
  });
  // Totals are summed in layer order regardless of evaluation schedule.
  for (const LayerResult& r : run.layers) {
    run.total_accesses += r.traffic.total();
    run.total_cycles += r.compute_cycles;
  }
  return run;
}

namespace {

/// One layer's traced walk, self-contained: the checksum starts from zero
/// so layers can walk concurrently and combine in order afterwards.
struct LayerWalk {
  LayerResult analytic;
  count_t read_events = 0;
  count_t write_events = 0;
  count_t checksum = 0;
};

}  // namespace

TraceResult Simulator::run_traced(const model::Network& network,
                                  int threads) const {
  if (dataflow_ != Dataflow::kOutputStationary) {
    throw std::invalid_argument(
        "run_traced: trace generation is implemented for the output-"
        "stationary baseline only");
  }
  std::vector<LayerWalk> walks(network.size());
  for_each_index(network.size(), threads, [&](std::size_t index) {
    LayerWalk& walk = walks[index];
    const model::Layer& layer = network.layer(index);
    walk.analytic = simulate_layer(layer);
    const FoldGeometry g = fold_geometry(layer, spec_);
    const count_t rows = static_cast<count_t>(spec_.pe_rows);
    const count_t cols = static_cast<count_t>(spec_.pe_cols);

    // Walk every fold and stream its operand addresses cycle by cycle,
    // exactly the work SCALE-Sim performs to write its trace files.  The
    // address generation is kept live through a checksum so the optimizer
    // cannot elide the walk.
    count_t cycles_walked = 0;
    count_t checksum = 0;
    for (count_t group = 0; group < g.channel_groups; ++group) {
      for (count_t rf = 0; rf < g.row_folds; ++rf) {
        const count_t active_rows =
            std::min(rows, g.output_rows - rf * rows);
        for (count_t cf = 0; cf < g.col_folds; ++cf) {
          const count_t active_cols =
              std::min(cols, g.output_cols - cf * cols);
          for (count_t t = 0; t < g.reduction; ++t) {
            // One im2col element per active array row...
            for (count_t r = 0; r < active_rows; ++r) {
              const count_t pixel = rf * rows + r;
              checksum += group * 0x9e3779b9u + pixel * g.reduction + t;
              ++walk.read_events;
            }
            // ...and one filter element per active array column.
            for (count_t c = 0; c < active_cols; ++c) {
              const count_t filter = cf * cols + c;
              checksum ^= (filter * g.reduction + t) + (checksum << 6) +
                          (checksum >> 2);
              ++walk.read_events;
            }
          }
          walk.write_events += active_rows * active_cols;
          cycles_walked += g.reduction + 2 * rows - 2;
        }
      }
    }
    walk.checksum = checksum;
    // Cross-check: the fold walk must land on the analytic cycle count.
    if (cycles_walked != walk.analytic.compute_cycles) {
      throw std::logic_error(
          "run_traced: fold walk diverged from the analytic timing model");
    }
  });

  // Deterministic combine: layer order, independent of who walked what.
  TraceResult result;
  for (LayerWalk& walk : walks) {
    result.sram_read_events += walk.read_events;
    result.sram_write_events += walk.write_events;
    result.trace_checksum ^= walk.checksum + 0x9e3779b9u +
                             (result.trace_checksum << 6) +
                             (result.trace_checksum >> 2);
    result.aggregate.total_accesses += walk.analytic.traffic.total();
    result.aggregate.total_cycles += walk.analytic.compute_cycles;
    result.aggregate.layers.push_back(std::move(walk.analytic));
  }
  return result;
}

std::vector<BufferPartition> paper_partitions() {
  return {BufferPartition{.ifmap_fraction = 0.25},
          BufferPartition{.ifmap_fraction = 0.50},
          BufferPartition{.ifmap_fraction = 0.75}};
}

}  // namespace rainbow::scalesim
