#include "scalesim/simulator.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/checked.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace rainbow::scalesim {

namespace {

using model::Layer;

/// Fraction of a working set that spills past the usable buffer capacity
/// and must be re-fetched on every re-visit; 0 when it fits.
double spill_fraction(count_t working_set, count_t usable) {
  if (working_set == 0 || working_set <= usable) {
    return 0.0;
  }
  return static_cast<double>(working_set - usable) /
         static_cast<double>(working_set);
}

count_t scaled(count_t base, double factor) {
  return static_cast<count_t>(static_cast<double>(base) * factor + 0.5);
}

/// A layer evaluation is a few microseconds of arithmetic; spawning a pool
/// costs more than re-evaluating dozens of layers.  Runs below this many
/// layers per worker stay inline (the engine-replay regression fix).
constexpr std::size_t kMinLayersPerWorker = 32;

/// Runs fn(i) for i in [0, n), inline when a single worker suffices or the
/// run is too small to amortise pool spawn, otherwise on a private pool.
/// fn must only touch slot i of shared state, which keeps every schedule
/// bit-identical to the serial one.
template <typename Fn>
void for_each_index(std::size_t n, int threads, Fn fn,
                    std::size_t min_items_per_worker = kMinLayersPerWorker) {
  const std::size_t workers =
      util::resolve_workers(threads, n, min_items_per_worker);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  util::parallel_for_each(indices, fn, workers);
}

}  // namespace

Simulator::Simulator(const arch::AcceleratorSpec& spec,
                     BufferPartition partition, Dataflow dataflow)
    : spec_(spec), partition_(partition), dataflow_(dataflow) {
  spec_.validate();
  partition_.validate(spec_);
}

LayerResult Simulator::simulate_layer(const Layer& layer) const {
  const FoldGeometry g = fold_geometry(layer, spec_);
  const count_t usable_if =
      partition_.ifmap_buffer(spec_).usable_elems(spec_);
  const count_t usable_flt =
      partition_.filter_buffer(spec_).usable_elems(spec_);

  const count_t ifmap = layer.ifmap_elems();     // baseline: unpadded
  const count_t filters = layer.filter_elems();
  const count_t ofmap = layer.ofmap_elems();

  // Working sets. Depthwise layers are processed per channel, so the
  // sliding window and the filter tile cover one channel only.
  const count_t window =
      static_cast<count_t>(layer.filter_h()) * layer.ifmap_w() *
      (layer.is_depthwise() ? 1 : layer.channels());
  const count_t filter_tile =
      static_cast<count_t>(spec_.pe_cols) * layer.single_filter_elems();

  // Order A: output row folds outer, filter folds inner.  The ifmap window
  // of the current row fold stays resident across the filter sweep; the
  // filter spill is re-fetched on every row fold.
  count_t if_a;
  if (ifmap <= usable_if || window <= usable_if) {
    if_a = ifmap;  // whole map resident, or streamed once height-wise
  } else {
    // Even one sliding window does not fit: the filter sweep thrashes the
    // spilled part of the window on every column fold.
    const double frac = spill_fraction(window, usable_if);
    if_a = ifmap + scaled(ifmap, frac) * (g.col_folds - 1);
  }
  count_t flt_a = filters;
  if (filters > usable_flt) {
    flt_a += (filters - usable_flt) * (g.row_folds - 1);
  }

  // Order B: filter folds outer, output row folds inner.  One column fold's
  // filters stay resident across the row sweep; the ifmap spill is
  // re-fetched on every column fold.
  count_t if_b = ifmap;
  if (ifmap > usable_if) {
    if_b += (ifmap - usable_if) * (g.col_folds - 1);
  }
  count_t flt_b = filters;
  if (filter_tile > usable_flt) {
    const double frac = spill_fraction(filter_tile, usable_flt);
    flt_b = filters + scaled(filters, frac) * (g.row_folds - 1);
  }

  LayerResult result;
  result.row_outer_order = (if_a + flt_a) <= (if_b + flt_b);
  result.traffic.ifmap_reads = result.row_outer_order ? if_a : if_b;
  result.traffic.filter_reads = result.row_outer_order ? flt_a : flt_b;
  result.traffic.ofmap_writes = ofmap;  // final results written once

  // WS/IS accumulate each output over ceil(T/rows) passes; partial sums
  // that overflow the small ofmap staging buffer round-trip to DRAM
  // between passes (a write plus a read each).  This spill is why the
  // paper's baseline configuration is output stationary.
  const DataflowFolds folds = dataflow_folds(layer, spec_, dataflow_);
  if (folds.psum_rounds > 1) {
    const count_t usable_of =
        partition_.ofmap_buffer().usable_elems(spec_);
    const double spill = spill_fraction(ofmap, usable_of);
    result.traffic.psum_transfers =
        2 * (folds.psum_rounds - 1) * scaled(ofmap, spill);
  }

  result.compute_cycles = dataflow_compute_cycles(layer, spec_, dataflow_);
  const double capacity =
      static_cast<double>(result.compute_cycles) * spec_.macs_per_cycle();
  result.utilization = static_cast<double>(layer.macs()) / capacity;
  return result;
}

RunResult Simulator::run(const model::Network& network, int threads) const {
  RunResult run;
  run.layers.resize(network.size());
  for_each_index(network.size(), threads, [&](std::size_t i) {
    util::at(run.layers, i) = simulate_layer(network.layer(i));
  });
  // Totals are summed in layer order regardless of evaluation schedule.
  for (const LayerResult& r : run.layers) {
    run.total_accesses += r.traffic.total();
    run.total_cycles += r.compute_cycles;
  }
  return run;
}

namespace {

constexpr count_t kGolden64 = 0x9e3779b97f4a7c15ull;

/// splitmix64 finalizer: avalanches a closed-form address sum so the
/// per-fold signature still depends on every address the fold streams.
constexpr count_t mix64(count_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Extends an order-dependent checksum by one value (the seed walk's
/// xor-shift mixing, kept as the within-chunk and cross-level combiner).
constexpr count_t mix_into(count_t acc, count_t value) {
  return acc ^ (value + (acc << 6) + (acc >> 2));
}

/// Sum of the integers in [first, first + n): the closed form behind the
/// per-fold address sums.  Wraps mod 2^64, which is fine — the checksum
/// only needs determinism, not magnitude.
constexpr count_t arith_sum(count_t first, count_t n) {
  return n * first + (n * (n - 1)) / 2;
}

/// Signature of one fold: a hash of the exact operand address multiset the
/// per-cycle walk would stream (ifmap address pixel*T + t per active row,
/// filter address filter*T + t per active column, offset by the channel
/// group), computed in closed form instead of T x (rows + cols) steps.
count_t fold_signature(const FoldGeometry& g, const FoldCoord& f,
                       const arch::AcceleratorSpec& spec) {
  const count_t T = g.reduction;
  const count_t rows = static_cast<count_t>(spec.pe_rows);
  const count_t cols = static_cast<count_t>(spec.pe_cols);
  // sum over r < active_rows, t < T of (pixel * T + t),
  // pixel = row_fold * rows + r.
  const count_t pixel_sum = arith_sum(f.row_fold * rows, f.active_rows);
  const count_t ifmap_sum = T * T * pixel_sum +
                            f.active_rows * arith_sum(0, T) +
                            f.active_rows * T * f.group * kGolden64;
  // sum over c < active_cols, t < T of (filter * T + t),
  // filter = col_fold * cols + c.
  const count_t filter_sum = arith_sum(f.col_fold * cols, f.active_cols);
  const count_t filter_total =
      T * T * filter_sum + f.active_cols * arith_sum(0, T);
  return mix64(ifmap_sum + kGolden64 * filter_total);
}

/// Fold-range chunk grain: small enough that the chunks of one large layer
/// outnumber any sane worker count, large enough (a fold costs ~tens of
/// nanoseconds closed-form) that per-chunk dispatch overhead stays noise.
/// Boundaries are a pure function of the geometry — never of the thread
/// count — so the position-keyed combine is thread-count-invariant.
constexpr count_t kFoldChunkGrain = 256;

/// One fold-range chunk of one layer's walk, self-contained: counters and
/// checksum start from zero so chunks can run concurrently anywhere.
struct FoldChunk {
  std::size_t layer = 0;      ///< index into the network
  std::size_t position = 0;   ///< chunk position within the layer, 0-based
  count_t fold_begin = 0;
  count_t fold_end = 0;
  count_t read_events = 0;
  count_t write_events = 0;
  count_t cycles = 0;
  count_t checksum = 0;
};

}  // namespace

TraceResult Simulator::run_traced(const model::Network& network,
                                  int threads) const {
  if (dataflow_ != Dataflow::kOutputStationary) {
    throw std::invalid_argument(
        "run_traced: trace generation is implemented for the output-"
        "stationary baseline only");
  }

  // Phase 1: analytic model + fold geometry per layer (microseconds each).
  struct LayerMeta {
    LayerResult analytic;
    FoldGeometry g;
  };
  std::vector<LayerMeta> meta(network.size());
  for_each_index(network.size(), threads, [&](std::size_t i) {
    util::at(meta, i).analytic = simulate_layer(network.layer(i));
    util::at(meta, i).g = fold_geometry(network.layer(i), spec_);
  });

  if (util::runtime_checked()) {
    // Checked mode: re-derive every layer's fold geometry from its ceiling
    // forms with always-checked arithmetic before walking fold ranges built
    // on top of it.
    for (std::size_t i = 0; i < meta.size(); ++i) {
      const FoldGeometry& g = meta[i].g;
      const count_t row_folds =
          util::ceil_div(g.output_rows, static_cast<count_t>(spec_.pe_rows));
      const count_t col_folds =
          util::ceil_div(g.output_cols, static_cast<count_t>(spec_.pe_cols));
      const count_t folds = util::checked_mul(
          util::checked_mul(row_folds, col_folds), g.channel_groups);
      if (g.row_folds != row_folds || g.col_folds != col_folds ||
          g.folds() != folds) {
        throw std::logic_error(
            "run_traced: fold geometry of layer " + std::to_string(i) +
            " disagrees with its ceiling-division forms");
      }
    }
  }

  // Phase 2: cut every layer's fold space into fixed-grain chunks and
  // schedule the chunks of all layers together — a layer with thousands of
  // folds spreads across the whole pool instead of pinning one worker.
  std::vector<FoldChunk> chunks;
  for (std::size_t i = 0; i < meta.size(); ++i) {
    const count_t folds = meta[i].g.folds();
    const count_t n_chunks =
        static_cast<count_t>(util::chunk_count(folds, kFoldChunkGrain));
    for (count_t c = 0; c < n_chunks; ++c) {
      FoldChunk chunk;
      chunk.layer = i;
      chunk.position = static_cast<std::size_t>(c);
      chunk.fold_begin = c * kFoldChunkGrain;
      chunk.fold_end = std::min(folds, (c + 1) * kFoldChunkGrain);
      chunks.push_back(chunk);
    }
  }
  const std::size_t workers = util::resolve_workers(
      threads, chunks.size(), /*min_items_per_worker=*/2);
  const auto walk_chunk = [&](FoldChunk& chunk) {
    const FoldGeometry& g = util::at(meta, chunk.layer).g;
    const count_t span = fold_cycle_span(g, spec_);
    for (count_t f = chunk.fold_begin; f < chunk.fold_end; ++f) {
      const FoldCoord coord = fold_at(g, spec_, f);
      // Closed-form event counting: the naive walk streams one ifmap
      // operand per active row and one filter operand per active column
      // on each of the T reduction cycles, and drains one result per
      // active PE — none of which needs the per-cycle loops.
      chunk.read_events +=
          g.reduction * (coord.active_rows + coord.active_cols);
      chunk.write_events += coord.active_rows * coord.active_cols;
      chunk.cycles += span;
      // Order-dependent mixing over the folds of the chunk (level one of
      // the two-level combine).
      chunk.checksum = mix_into(chunk.checksum, fold_signature(g, coord, spec_));
    }
  };
  if (workers <= 1) {
    for (FoldChunk& chunk : chunks) {
      walk_chunk(chunk);
    }
  } else {
    util::parallel_for_each(chunks, walk_chunk, workers);
  }

  // Phase 3: deterministic combine.  Chunk results enter their layer's
  // checksum keyed by chunk position (level two), layers enter the run
  // checksum in layer order (level three) — independent of who ran what.
  struct LayerTotals {
    count_t read_events = 0;
    count_t write_events = 0;
    count_t cycles = 0;
    count_t checksum = 0;
  };
  std::vector<LayerTotals> totals(network.size());
  for (const FoldChunk& chunk : chunks) {
    LayerTotals& t = util::at(totals, chunk.layer);
    t.read_events += chunk.read_events;
    t.write_events += chunk.write_events;
    t.cycles += chunk.cycles;
    t.checksum = mix_into(
        t.checksum,
        mix64(chunk.checksum + kGolden64 * (chunk.position + 1)));
  }

  TraceResult result;
  result.workers_used = workers;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    // Cross-check: the fold walk must land on the analytic cycle count.
    if (totals[i].cycles != meta[i].analytic.compute_cycles) {
      throw std::logic_error(
          "run_traced: fold walk diverged from the analytic timing model");
    }
    result.sram_read_events += totals[i].read_events;
    result.sram_write_events += totals[i].write_events;
    result.trace_checksum ^= totals[i].checksum + 0x9e3779b9u +
                             (result.trace_checksum << 6) +
                             (result.trace_checksum >> 2);
    result.aggregate.total_accesses += meta[i].analytic.traffic.total();
    result.aggregate.total_cycles += meta[i].analytic.compute_cycles;
    result.aggregate.layers.push_back(std::move(meta[i].analytic));
  }
  return result;
}

std::vector<BufferPartition> paper_partitions() {
  return {BufferPartition{.ifmap_fraction = 0.25},
          BufferPartition{.ifmap_fraction = 0.50},
          BufferPartition{.ifmap_fraction = 0.75}};
}

}  // namespace rainbow::scalesim
