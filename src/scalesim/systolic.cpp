#include "scalesim/systolic.hpp"

#include <algorithm>

#include "util/checked.hpp"
#include "util/units.hpp"

namespace rainbow::scalesim {

using util::ceil_div;
using util::cmul;

FoldGeometry fold_geometry(const model::Layer& layer,
                           const arch::AcceleratorSpec& spec) {
  FoldGeometry g;
  g.output_rows =
      cmul(static_cast<count_t>(layer.ofmap_h()), layer.ofmap_w());
  if (layer.is_depthwise()) {
    g.output_cols = 1;
    g.reduction =
        cmul(static_cast<count_t>(layer.filter_h()), layer.filter_w());
    g.channel_groups = static_cast<count_t>(layer.channels());
  } else {
    g.output_cols = static_cast<count_t>(layer.filters());
    g.reduction = cmul(cmul(static_cast<count_t>(layer.filter_h()),
                            layer.filter_w()),
                       layer.channels());
    g.channel_groups = 1;
  }
  g.row_folds = ceil_div(g.output_rows, static_cast<count_t>(spec.pe_rows));
  g.col_folds = ceil_div(g.output_cols, static_cast<count_t>(spec.pe_cols));
  return g;
}

FoldCoord fold_at(const FoldGeometry& g, const arch::AcceleratorSpec& spec,
                  count_t index) {
  FoldCoord f;
  const count_t per_group = g.row_folds * g.col_folds;
  f.group = index / per_group;
  const count_t rem = index % per_group;
  f.row_fold = rem / g.col_folds;
  f.col_fold = rem % g.col_folds;
  const count_t rows = static_cast<count_t>(spec.pe_rows);
  const count_t cols = static_cast<count_t>(spec.pe_cols);
  f.active_rows = std::min(rows, g.output_rows - f.row_fold * rows);
  f.active_cols = std::min(cols, g.output_cols - f.col_fold * cols);
  return f;
}

count_t compute_cycles(const model::Layer& layer,
                       const arch::AcceleratorSpec& spec) {
  const FoldGeometry g = fold_geometry(layer, spec);
  return cmul(g.folds(), fold_cycle_span(g, spec));
}

double utilization(const model::Layer& layer,
                   const arch::AcceleratorSpec& spec) {
  const double cycles = static_cast<double>(compute_cycles(layer, spec));
  const double capacity = cycles * spec.macs_per_cycle();
  return static_cast<double>(layer.macs()) / capacity;
}

}  // namespace rainbow::scalesim
