#include "scalesim/buffer.hpp"

#include <cmath>
#include <string>

namespace rainbow::scalesim {

namespace {

count_t feature_pool(const arch::AcceleratorSpec& spec, count_t ofmap_bytes) {
  if (ofmap_bytes >= spec.glb_bytes) {
    throw std::invalid_argument(
        "BufferPartition: ofmap buffer exceeds on-chip memory");
  }
  return spec.glb_bytes - ofmap_bytes;
}

}  // namespace

DoubleBuffer BufferPartition::ifmap_buffer(const arch::AcceleratorSpec& spec) const {
  validate(spec);
  const count_t pool = feature_pool(spec, ofmap_bytes);
  return DoubleBuffer(
      static_cast<count_t>(std::llround(static_cast<double>(pool) * ifmap_fraction)));
}

DoubleBuffer BufferPartition::filter_buffer(const arch::AcceleratorSpec& spec) const {
  validate(spec);
  const count_t pool = feature_pool(spec, ofmap_bytes);
  const count_t ifmap_bytes =
      static_cast<count_t>(std::llround(static_cast<double>(pool) * ifmap_fraction));
  return DoubleBuffer(pool - ifmap_bytes);
}

DoubleBuffer BufferPartition::ofmap_buffer() const {
  return DoubleBuffer(ofmap_bytes);
}

std::string BufferPartition::label() const {
  const int ifmap_pct = static_cast<int>(std::lround(ifmap_fraction * 100));
  return "sa_" + std::to_string(ifmap_pct) + "_" +
         std::to_string(100 - ifmap_pct);
}

void BufferPartition::validate(const arch::AcceleratorSpec& spec) const {
  if (ifmap_fraction <= 0.0 || ifmap_fraction >= 1.0) {
    throw std::invalid_argument(
        "BufferPartition: ifmap_fraction must lie in (0, 1)");
  }
  feature_pool(spec, ofmap_bytes);  // throws when the carve-out is too big
}

}  // namespace rainbow::scalesim
