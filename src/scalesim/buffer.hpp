// The baseline's separate double-buffered SRAMs (Section 4).  The assigned
// capacity of each buffer is halved: one partition holds the active working
// set while the other prefetches — matching SCALE-Sim's convention of
// carving the double buffer out of the assigned size rather than adding
// space.
#pragma once

#include <stdexcept>

#include "arch/accelerator.hpp"

namespace rainbow::scalesim {

/// One data type's SRAM.
class DoubleBuffer {
 public:
  explicit DoubleBuffer(count_t assigned_bytes)
      : assigned_bytes_(assigned_bytes) {}

  [[nodiscard]] count_t assigned_bytes() const { return assigned_bytes_; }

  /// Capacity usable for the active working set (half the assignment).
  [[nodiscard]] count_t usable_bytes() const { return assigned_bytes_ / 2; }

  [[nodiscard]] count_t usable_elems(const arch::AcceleratorSpec& spec) const {
    return usable_bytes() / spec.element_bytes();
  }

  /// True when a working set of `elems` elements fits the active partition.
  [[nodiscard]] bool fits(count_t elems, const arch::AcceleratorSpec& spec) const {
    return elems <= usable_elems(spec);
  }

 private:
  count_t assigned_bytes_;
};

/// Fixed partition of the on-chip memory into ifmap / filter / ofmap SRAMs.
/// The ofmap buffer is a fixed small staging buffer (4 kB in the paper's
/// output-stationary setup); the remainder splits ifmap : filter by
/// `ifmap_fraction` (0.25 / 0.50 / 0.75 for the three baselines).
struct BufferPartition {
  double ifmap_fraction = 0.5;
  count_t ofmap_bytes = 4 * 1024;

  [[nodiscard]] DoubleBuffer ifmap_buffer(const arch::AcceleratorSpec& spec) const;
  [[nodiscard]] DoubleBuffer filter_buffer(const arch::AcceleratorSpec& spec) const;
  [[nodiscard]] DoubleBuffer ofmap_buffer() const;

  /// Label like "sa_25_75" (ifmap share _ filter share).
  [[nodiscard]] std::string label() const;

  /// Throws std::invalid_argument when the fraction is outside (0, 1) or
  /// the ofmap carve-out exceeds the GLB.
  void validate(const arch::AcceleratorSpec& spec) const;
};

}  // namespace rainbow::scalesim
