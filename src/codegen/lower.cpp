#include "codegen/lower.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/estimator.hpp"
#include "engine/schedule.hpp"

namespace rainbow::codegen {

LayerProgram lower_layer(const model::Layer& layer, std::size_t layer_index,
                         const core::LayerAssignment& assignment,
                         int first_region,
                         std::optional<int> inherited_ifmap_region,
                         count_t glb_capacity_elems) {
  if (assignment.ifmap_from_glb != inherited_ifmap_region.has_value()) {
    throw std::invalid_argument(
        "lower_layer: inter-layer input flag and inherited region disagree "
        "for layer '" + layer.name() + "'");
  }
  LayerProgram program;
  program.layer_index = layer_index;
  program.layer_name = layer.name();
  program.choice = assignment.estimate.choice;

  const core::InterlayerAdjust adjust{
      .ifmap_resident = assignment.ifmap_from_glb,
      .keep_ofmap = assignment.ofmap_stays_in_glb};
  const core::Footprint footprint =
      core::planned_footprint(layer, program.choice, adjust);
  const auto schedule = engine::build_schedule(layer, program.choice, adjust);

  int next_region = first_region;
  const int ifmap_region =
      inherited_ifmap_region ? *inherited_ifmap_region : next_region++;
  const int filter_region = next_region++;
  const int ofmap_region = next_region++;
  if (!inherited_ifmap_region) {
    program.commands.push_back({.op = Command::Op::kAlloc,
                                .region = ifmap_region,
                                .kind = DataKind::kIfmap,
                                .elems = footprint.ifmap});
  }
  program.commands.push_back({.op = Command::Op::kAlloc,
                              .region = filter_region,
                              .kind = DataKind::kFilter,
                              .elems = footprint.filter});
  program.commands.push_back({.op = Command::Op::kAlloc,
                              .region = ofmap_region,
                              .kind = DataKind::kOfmap,
                              .elems = footprint.ofmap});

  // Async commands carry their schedule tile index so the dependence graph
  // can reconstruct the double-buffer phase (tile % 2) and the engine's DMA
  // drain order; alloc/free/barrier stay untagged (tile = -1).
  std::int32_t tile_index = 0;
  for (const engine::TileOp& tile : schedule) {
    if (tile.load_ifmap != 0) {
      // A schedule entry can stream more ifmap data than the scratchpad
      // holds (the window retains only part of what flows through); one
      // DMA command may not, so oversized entries become chains of
      // capacity-sized loads with the same total.
      count_t remaining = tile.load_ifmap;
      const count_t chunk =
          glb_capacity_elems != 0 ? glb_capacity_elems : remaining;
      while (remaining != 0) {
        const count_t elems = std::min(remaining, chunk);
        program.commands.push_back({.op = Command::Op::kLoad,
                                    .region = ifmap_region,
                                    .kind = DataKind::kIfmap,
                                    .elems = elems,
                                    .tile = tile_index});
        remaining -= elems;
      }
    }
    if (tile.load_filter != 0) {
      program.commands.push_back({.op = Command::Op::kLoad,
                                  .region = filter_region,
                                  .kind = DataKind::kFilter,
                                  .elems = tile.load_filter,
                                  .tile = tile_index});
    }
    if (tile.macs != 0) {
      program.commands.push_back(
          {.op = Command::Op::kCompute, .macs = tile.macs, .tile = tile_index});
    }
    if (tile.store_ofmap != 0) {
      program.commands.push_back({.op = Command::Op::kStore,
                                  .region = ofmap_region,
                                  .kind = DataKind::kOfmap,
                                  .elems = tile.store_ofmap,
                                  .tile = tile_index});
    }
    ++tile_index;
  }

  program.commands.push_back({.op = Command::Op::kBarrier});
  // The ifmap region — own or inherited — is dead after the sweep; the
  // ofmap region survives only when the next layer consumes it in place.
  program.commands.push_back({.op = Command::Op::kFree,
                              .region = ifmap_region,
                              .kind = DataKind::kIfmap,
                              .elems = footprint.ifmap});
  program.commands.push_back({.op = Command::Op::kFree,
                              .region = filter_region,
                              .kind = DataKind::kFilter,
                              .elems = footprint.filter});
  if (!assignment.ofmap_stays_in_glb) {
    program.commands.push_back({.op = Command::Op::kFree,
                                .region = ofmap_region,
                                .kind = DataKind::kOfmap,
                                .elems = footprint.ofmap});
  }
  return program;
}

Program lower(const core::ExecutionPlan& plan, const model::Network& network) {
  if (plan.size() != network.size()) {
    throw std::invalid_argument("codegen::lower: plan/network size mismatch");
  }
  Program program;
  program.model = plan.model();
  program.spec = plan.spec();
  int next_region = 0;
  std::optional<int> persisted;  // the previous layer's surviving ofmap
  for (const core::LayerAssignment& assignment : plan.assignments()) {
    if (assignment.ifmap_from_glb && !persisted) {
      throw std::invalid_argument(
          "codegen::lower: layer consumes a resident ifmap but the previous "
          "layer persisted nothing");
    }
    std::optional<int> inherited;
    if (assignment.ifmap_from_glb) {
      inherited = persisted;
    }
    LayerProgram layer_program =
        lower_layer(network.layer(assignment.layer_index),
                    assignment.layer_index, assignment, next_region, inherited,
                    program.spec.glb_elems());
    // Region ids are assigned deterministically: ifmap (unless inherited),
    // filter, ofmap.
    const int consumed = assignment.ifmap_from_glb ? 2 : 3;
    const int ofmap_region = next_region + consumed - 1;
    persisted = assignment.ofmap_stays_in_glb ? std::optional<int>(ofmap_region)
                                              : std::nullopt;
    next_region += consumed;
    program.layers.push_back(std::move(layer_program));
  }
  // Stable program-unique command ids, assigned after all layers exist so
  // the numbering is one dense sequence in issue order.  certify_reorder
  // matches original and permuted streams by these ids; 0 stays reserved
  // for hand-built (untagged) commands.
  std::uint32_t next_id = 1;
  for (LayerProgram& layer_program : program.layers) {
    for (Command& command : layer_program.commands) {
      command.id = next_id++;
    }
  }
  return program;
}

}  // namespace rainbow::codegen
