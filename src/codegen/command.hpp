// Command-stream IR: the hand-off format between the memory manager and an
// accelerator runtime or compiler backend (the paper's Section 6 direction
// of integrating the technique into a DL compiler).  A plan lowers to a
// flat, explicit sequence of scratchpad allocations, DMA transfers, and
// compute launches per layer — everything a code generator needs, nothing
// it has to re-derive.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "core/policy.hpp"
#include "util/units.hpp"

namespace rainbow::codegen {

enum class DataKind { kIfmap, kFilter, kOfmap };

[[nodiscard]] std::string_view to_string(DataKind kind);

/// One instruction of the stream.
struct Command {
  enum class Op {
    kAlloc,    ///< reserve `elems` scratchpad elements as region `region`
    kLoad,     ///< DMA `elems` elements from DRAM into `region`
    kCompute,  ///< run `macs` multiply-accumulates
    kStore,    ///< DMA `elems` elements from `region` to DRAM
    kFree,     ///< release `region`
    kBarrier,  ///< wait for all outstanding DMA and compute
  };

  Op op = Op::kBarrier;
  int region = -1;          ///< region id; -1 for compute/barrier
  DataKind kind = DataKind::kIfmap;  ///< alloc/load/store/free only
  count_t elems = 0;        ///< transfer/allocation size
  count_t macs = 0;         ///< compute only
  /// Stable program-unique id assigned by lower(); 0 means untagged.  The
  /// dependence graph and certify_reorder match commands across permuted
  /// streams by this id (src/analysis/depgraph.hpp).
  std::uint32_t id = 0;
  /// Schedule tile index the command belongs to; -1 for alloc/free/barrier
  /// and for hand-built streams.  Under prefetch double buffering the
  /// region phase a transfer or compute touches is `tile % 2` (Eq. 2).
  std::int32_t tile = -1;

  friend bool operator==(const Command&, const Command&) = default;
};

[[nodiscard]] std::string_view to_string(Command::Op op);

/// The lowered program of one layer.
struct LayerProgram {
  std::size_t layer_index = 0;
  std::string layer_name;
  core::PolicyChoice choice;
  std::vector<Command> commands;
  /// Set by analysis::optimize_program on layers it reordered.  The
  /// dependence graph models such layers in kScheduled mode (issue order is
  /// the DMA drain order, per-tile waits instead of last-issued waits); it
  /// is never inferred from the stream shape, so hand-built or lowered
  /// streams keep the engine's drain-order model.
  bool scheduled = false;
};

/// A whole network's command stream.
struct Program {
  std::string model;
  arch::AcceleratorSpec spec;
  std::vector<LayerProgram> layers;

  [[nodiscard]] std::size_t total_commands() const {
    std::size_t n = 0;
    for (const LayerProgram& l : layers) {
      n += l.commands.size();
    }
    return n;
  }
};

}  // namespace rainbow::codegen
