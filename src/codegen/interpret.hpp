// Command-stream interpreter: validates and "executes" a lowered program
// against the scratchpad allocator and the two-resource timing model.  A
// malformed stream (use-before-alloc, double alloc/free, region overflow,
// scratchpad exhaustion, dangling regions at the end) fails loudly; a
// valid one yields the same traffic and latency the engine measures for
// the originating plan — the codegen tests pin that equivalence.
#pragma once

#include "codegen/command.hpp"
#include "core/estimator.hpp"

namespace rainbow::codegen {

struct LayerRun {
  core::TrafficBreakdown traffic;
  double latency_cycles = 0.0;
  count_t macs = 0;
  count_t peak_glb_elems = 0;
};

struct ProgramRun {
  std::vector<LayerRun> layers;
  count_t total_accesses = 0;
  double total_latency_cycles = 0.0;
  count_t peak_glb_elems = 0;
};

class Interpreter {
 public:
  explicit Interpreter(const arch::AcceleratorSpec& spec);

  /// Executes a whole program.  Throws std::runtime_error with the layer
  /// and command index on any validation failure.
  [[nodiscard]] ProgramRun run(const Program& program) const;

 private:
  arch::AcceleratorSpec spec_;
};

}  // namespace rainbow::codegen
