#include "codegen/interpret.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "engine/glb.hpp"

namespace rainbow::codegen {

Interpreter::Interpreter(const arch::AcceleratorSpec& spec) : spec_(spec) {
  spec_.validate();
}

namespace {

struct LiveRegion {
  engine::Glb::Region storage;
  DataKind kind;
  count_t filled = 0;  ///< high-water mark of data streamed through
};

[[noreturn]] void fail(const LayerProgram& layer, std::size_t index,
                       const std::string& message) {
  throw std::runtime_error("codegen: layer '" + layer.layer_name +
                           "' command " + std::to_string(index) + ": " +
                           message);
}

}  // namespace

ProgramRun Interpreter::run(const Program& program) const {
  ProgramRun result;
  engine::Glb glb(spec_.glb_elems());
  std::map<int, LiveRegion> live;

  const double bw = spec_.elements_per_cycle();
  const double mac_rate = spec_.effective_macs_per_cycle();

  for (const LayerProgram& layer : program.layers) {
    LayerRun run;
    const bool prefetch = layer.choice.prefetch;
    // Two-resource timing, identical to the engine's: with prefetching the
    // DMA queue runs ahead of compute and stores drain one step behind;
    // without it every command serializes.
    double dram_free = 0.0;
    double compute_free = 0.0;
    double serial_clock = 0.0;
    double pending_store = 0.0;
    double pending_ready = 0.0;

    for (std::size_t i = 0; i < layer.commands.size(); ++i) {
      const Command& cmd = layer.commands[i];
      switch (cmd.op) {
        case Command::Op::kAlloc: {
          if (live.count(cmd.region)) {
            fail(layer, i, "region " + std::to_string(cmd.region) +
                               " allocated twice");
          }
          if (cmd.elems == 0) {
            fail(layer, i, "zero-sized allocation");
          }
          LiveRegion region{glb.allocate(cmd.elems, layer.layer_name),
                            cmd.kind, 0};
          live.emplace(cmd.region, region);
          break;
        }
        case Command::Op::kLoad:
        case Command::Op::kStore: {
          const auto it = live.find(cmd.region);
          if (it == live.end()) {
            fail(layer, i, "transfer targets unallocated region " +
                               std::to_string(cmd.region));
          }
          if (cmd.elems == 0) {
            fail(layer, i, "zero-sized transfer");
          }
          // Filter and ofmap transfers are staged 1:1 in their region.
          // Ifmap loads are streams: they may exceed the retained window
          // when the stride outruns the filter (S > F_H discards rows in
          // flight) and they carry the zero-padding charge of the paper's
          // traffic accounting (Section 5.1) without materialising it —
          // so they are bounded by the scratchpad itself, not the window.
          const count_t capacity =
              (cmd.op == Command::Op::kLoad && cmd.kind == DataKind::kIfmap)
                  ? glb.capacity()
                  : it->second.storage.size;
          if (cmd.elems > capacity) {
            fail(layer, i, "transfer of " + std::to_string(cmd.elems) +
                               " elements overflows region of " +
                               std::to_string(it->second.storage.size));
          }
          it->second.filled = std::max(it->second.filled, cmd.elems);
          const double cycles = static_cast<double>(cmd.elems) / bw;
          if (cmd.op == Command::Op::kLoad) {
            run.traffic.ifmap_reads +=
                (cmd.kind == DataKind::kIfmap) ? cmd.elems : 0;
            run.traffic.filter_reads +=
                (cmd.kind == DataKind::kFilter) ? cmd.elems : 0;
            if (prefetch) {
              dram_free += cycles;
            } else {
              serial_clock += cycles;
            }
          } else {
            if (cmd.kind != DataKind::kOfmap) {
              fail(layer, i, "store from a non-ofmap region");
            }
            run.traffic.ofmap_writes += cmd.elems;
            if (prefetch) {
              // Deferred by one tile: the store becomes ready when its
              // tile's compute (which just ran) finished, and drains
              // behind the next tile's launch — mirroring the engine's
              // pipeline.  Any older pending store was drained there.
              pending_store += cycles;
              pending_ready = compute_free;
            } else {
              serial_clock += cycles;
            }
          }
          break;
        }
        case Command::Op::kCompute: {
          if (cmd.macs == 0) {
            fail(layer, i, "zero-MAC compute");
          }
          run.macs += cmd.macs;
          const double cycles = static_cast<double>(cmd.macs) / mac_rate;
          if (prefetch) {
            const double start = std::max(dram_free, compute_free);
            // The previous tile's store (ready since its compute finished)
            // drains behind this tile's loads.
            if (pending_store > 0.0) {
              dram_free = std::max(dram_free, pending_ready) + pending_store;
              pending_store = 0.0;
            }
            compute_free = start + cycles;
          } else {
            serial_clock += cycles;
          }
          break;
        }
        case Command::Op::kBarrier: {
          if (prefetch) {
            if (pending_store > 0.0) {
              dram_free = std::max(dram_free, pending_ready) + pending_store;
              pending_store = 0.0;
            }
            const double done = std::max(compute_free, dram_free);
            dram_free = compute_free = done;
          }
          break;
        }
        case Command::Op::kFree: {
          const auto it = live.find(cmd.region);
          if (it == live.end()) {
            fail(layer, i, "free of unallocated region " +
                               std::to_string(cmd.region));
          }
          glb.release(it->second.storage);
          live.erase(it);
          break;
        }
      }
    }
    run.latency_cycles = prefetch ? std::max(compute_free, dram_free)
                                  : serial_clock;
    run.peak_glb_elems = glb.peak_used();
    result.total_accesses += run.traffic.total();
    result.total_latency_cycles += run.latency_cycles;
    result.layers.push_back(run);
  }
  // Only inter-layer hand-off regions may outlive their layer, and nothing
  // may outlive the program.
  if (!live.empty()) {
    throw std::runtime_error("codegen: " + std::to_string(live.size()) +
                             " region(s) leaked past the end of the program");
  }
  result.peak_glb_elems = glb.peak_used();
  return result;
}

}  // namespace rainbow::codegen
