#include "codegen/print.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/table.hpp"

namespace rainbow::codegen {

std::string_view to_string(DataKind kind) {
  switch (kind) {
    case DataKind::kIfmap:
      return "ifmap";
    case DataKind::kFilter:
      return "filter";
    case DataKind::kOfmap:
      return "ofmap";
  }
  throw std::logic_error("to_string: invalid DataKind");
}

std::string_view to_string(Command::Op op) {
  switch (op) {
    case Command::Op::kAlloc:
      return "alloc";
    case Command::Op::kLoad:
      return "load";
    case Command::Op::kCompute:
      return "compute";
    case Command::Op::kStore:
      return "store";
    case Command::Op::kFree:
      return "free";
    case Command::Op::kBarrier:
      return "barrier";
  }
  throw std::logic_error("to_string: invalid Command::Op");
}

std::string to_string(const Command& command) {
  std::ostringstream os;
  os << to_string(command.op);
  switch (command.op) {
    case Command::Op::kAlloc:
    case Command::Op::kFree:
      os << " %" << command.region << ' ' << to_string(command.kind) << ' '
         << command.elems;
      break;
    case Command::Op::kLoad:
    case Command::Op::kStore:
      os << ' ' << to_string(command.kind) << " %" << command.region << ' '
         << command.elems;
      break;
    case Command::Op::kCompute:
      os << ' ' << command.macs << " macs";
      break;
    case Command::Op::kBarrier:
      break;
  }
  return os.str();
}

namespace {

/// Commands render identically: every field that to_string(Command) prints
/// matches.  The stable id and tile tags are deliberately ignored — two
/// steady-state tiles differ in those but compress to one "xN" group.
bool prints_same(const Command& a, const Command& b) {
  return a.op == b.op && a.region == b.region && a.kind == b.kind &&
         a.elems == b.elems && a.macs == b.macs;
}

/// Longest period p such that commands[i] == commands[i % p] over a prefix;
/// greedily emits "xN { group }" for repeats.
void print_compressed(const std::vector<Command>& commands, std::ostream& os) {
  std::size_t i = 0;
  while (i < commands.size()) {
    // Try group sizes up to 8 commands and find how often the group at i
    // repeats back-to-back.
    std::size_t best_group = 1;
    std::size_t best_repeats = 1;
    for (std::size_t group = 1; group <= 8 && i + group <= commands.size();
         ++group) {
      std::size_t repeats = 1;
      while (i + (repeats + 1) * group <= commands.size()) {
        bool same = true;
        for (std::size_t k = 0; k < group; ++k) {
          if (!prints_same(commands[i + repeats * group + k], commands[i + k])) {
            same = false;
            break;
          }
        }
        if (!same) {
          break;
        }
        ++repeats;
      }
      if (repeats * group > best_repeats * best_group) {
        best_group = group;
        best_repeats = repeats;
      }
    }
    if (best_repeats > 1) {
      os << "  x" << best_repeats << " {";
      for (std::size_t k = 0; k < best_group; ++k) {
        os << ' ' << to_string(commands[i + k]) << ';';
      }
      os << " }\n";
      i += best_group * best_repeats;
    } else {
      os << "  " << to_string(commands[i]) << '\n';
      ++i;
    }
  }
}

}  // namespace

void print(const Program& program, std::ostream& os, PrintOptions options) {
  os << "program " << program.model << " (GLB "
     << program.spec.glb_bytes / 1024 << " kB, "
     << program.total_commands() << " commands)\n";
  std::size_t shown = 0;
  for (const LayerProgram& layer : program.layers) {
    if (options.max_layers != 0 && shown++ >= options.max_layers) {
      os << "... " << program.layers.size() - options.max_layers
         << " more layer(s)\n";
      break;
    }
    std::ostringstream choice;
    choice << layer.choice;
    os << "layer " << layer.layer_index << " \"" << layer.layer_name
       << "\" policy " << choice.str() << " (" << layer.commands.size()
       << " commands)\n";
    if (options.compress_loops) {
      print_compressed(layer.commands, os);
    } else {
      for (const Command& cmd : layer.commands) {
        os << "  " << to_string(cmd) << '\n';
      }
    }
  }
}

std::string to_string(const Program& program, PrintOptions options) {
  std::ostringstream os;
  print(program, os, options);
  return os.str();
}

}  // namespace rainbow::codegen
