// Lowering: execution plan -> command stream.  Each layer becomes: region
// allocations sized by the plan's footprint, the policy's tile loop
// unrolled into load/compute/store triples (from the same schedule builder
// the engine executes), a drain barrier, and region frees.  Inter-layer
// links lower to a region hand-off: the producer's ofmap region is not
// freed and the consumer reads its ifmap from that inherited region
// instead of allocating and loading its own.
#pragma once

#include <optional>

#include "codegen/command.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"

namespace rainbow::codegen {

/// Lowers one layer.  Fresh region ids start at `first_region`; when
/// `inherited_ifmap_region` is set the layer reads its ifmap from that
/// already-resident region (no alloc, no loads) and frees it when done.
/// When `glb_capacity_elems` is nonzero, streaming ifmap loads larger
/// than the scratchpad are split into capacity-sized chunks so every
/// command honours the interpreter's transfer bound (one DMA descriptor
/// can stage at most a scratchpad's worth of data in flight).
[[nodiscard]] LayerProgram lower_layer(
    const model::Layer& layer, std::size_t layer_index,
    const core::LayerAssignment& assignment, int first_region = 0,
    std::optional<int> inherited_ifmap_region = std::nullopt,
    count_t glb_capacity_elems = 0);

/// Lowers a whole plan, threading inter-layer regions between adjacent
/// layers.  Throws std::invalid_argument on plan/network mismatch or on a
/// consumer marked ifmap_from_glb whose producer did not persist a region.
[[nodiscard]] Program lower(const core::ExecutionPlan& plan,
                            const model::Network& network);

}  // namespace rainbow::codegen
