// Human-readable dump of a command stream, with run-length compression of
// the steady-state tile loop so a 100k-command layer prints as a handful
// of annotated lines — what a compiler engineer inspects before wiring the
// stream into a runtime.
#pragma once

#include <iosfwd>
#include <string>

#include "codegen/command.hpp"

namespace rainbow::codegen {

struct PrintOptions {
  /// Collapse maximal repeated command groups ("x112 { ... }").
  bool compress_loops = true;
  /// Print at most this many layers (0 = all).
  std::size_t max_layers = 0;
};

void print(const Program& program, std::ostream& os, PrintOptions options = {});

[[nodiscard]] std::string to_string(const Program& program,
                                    PrintOptions options = {});

[[nodiscard]] std::string to_string(const Command& command);

}  // namespace rainbow::codegen
