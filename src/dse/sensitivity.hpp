// Sensitivity analysis over sweep results: what does the next kilobyte of
// scratchpad buy, and where does the curve stop paying (the knee)?  The
// co-design question behind the paper's buffer-size axis, answered
// quantitatively.
#pragma once

#include "dse/sweep.hpp"

namespace rainbow::dse {

/// Marginal value between two adjacent sweep points (same axes except the
/// GLB size).
struct MarginalPoint {
  count_t from_bytes = 0;
  count_t to_bytes = 0;
  /// Off-chip bytes saved per extra on-chip byte in this interval —
  /// dimensionless; > 1 means the added SRAM pays for itself in DRAM
  /// traffic every single inference.
  double bytes_saved_per_byte = 0.0;
  double latency_saved_cycles = 0.0;
};

/// Marginal utilities of consecutive points of a GLB-only sweep (points
/// must be sorted by glb_bytes and share the other axes).  Throws
/// std::invalid_argument on fewer than two points or unsorted sizes.
[[nodiscard]] std::vector<MarginalPoint> marginal_utility(
    const std::vector<SweepPoint>& points, int data_width_bits = 8);

/// The knee: the smallest GLB size after which every further doubling
/// saves less than `threshold` off-chip bytes per added on-chip byte.
/// Returns the last point's size when the curve never flattens.
[[nodiscard]] count_t knee_glb_bytes(const std::vector<SweepPoint>& points,
                                     double threshold = 1.0,
                                     int data_width_bits = 8);

/// Everything the buffer-sizing question needs in one struct.
struct SensitivityReport {
  std::vector<SweepPoint> points;        ///< ascending GLB size
  std::vector<MarginalPoint> marginals;  ///< between consecutive points
  count_t knee_bytes = 0;
  core::EvalCacheStats cache;            ///< evaluation-cache statistics
};

/// One-call GLB sensitivity: sweeps `glb_bytes` (sorted ascending; other
/// axes at their defaults, `data_width_bits` wide) with a shared
/// evaluation cache — adjacent sizes re-evaluate mostly identical layer
/// signatures, so the cache does the heavy lifting — then derives the
/// marginal utilities and the knee.  Throws like marginal_utility on
/// fewer than two sizes.
[[nodiscard]] SensitivityReport glb_sensitivity(const model::Network& network,
                                                std::vector<count_t> glb_bytes,
                                                int data_width_bits = 8,
                                                double knee_threshold = 1.0,
                                                std::size_t threads = 0);

}  // namespace rainbow::dse
