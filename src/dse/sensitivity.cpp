#include "dse/sensitivity.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

namespace rainbow::dse {

std::vector<MarginalPoint> marginal_utility(
    const std::vector<SweepPoint>& points, int data_width_bits) {
  if (points.size() < 2) {
    throw std::invalid_argument("marginal_utility: need at least two points");
  }
  const double elem_bytes = data_width_bits / 8.0;
  std::vector<MarginalPoint> out;
  out.reserve(points.size() - 1);
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const SweepPoint& a = points[i];
    const SweepPoint& b = points[i + 1];
    if (b.glb_bytes <= a.glb_bytes) {
      throw std::invalid_argument(
          "marginal_utility: points must be sorted by GLB size");
    }
    MarginalPoint m;
    m.from_bytes = a.glb_bytes;
    m.to_bytes = b.glb_bytes;
    const double saved_bytes =
        (static_cast<double>(a.accesses) - static_cast<double>(b.accesses)) *
        elem_bytes;
    m.bytes_saved_per_byte =
        saved_bytes / static_cast<double>(b.glb_bytes - a.glb_bytes);
    m.latency_saved_cycles = a.latency_cycles - b.latency_cycles;
    out.push_back(m);
  }
  return out;
}

count_t knee_glb_bytes(const std::vector<SweepPoint>& points, double threshold,
                       int data_width_bits) {
  const auto marginals = marginal_utility(points, data_width_bits);
  for (const MarginalPoint& m : marginals) {
    if (m.bytes_saved_per_byte < threshold) {
      return m.from_bytes;
    }
  }
  return points.back().glb_bytes;
}

SensitivityReport glb_sensitivity(const model::Network& network,
                                  std::vector<count_t> glb_bytes,
                                  int data_width_bits, double knee_threshold,
                                  std::size_t threads) {
  std::sort(glb_bytes.begin(), glb_bytes.end());
  glb_bytes.erase(std::unique(glb_bytes.begin(), glb_bytes.end()),
                  glb_bytes.end());
  SweepConfig config;
  config.glb_bytes = std::move(glb_bytes);
  config.data_width_bits = {data_width_bits};
  config.eval_cache = std::make_shared<core::EvalCache>();
  SensitivityReport report;
  report.points = run_sweep(network, config, threads);
  report.marginals = marginal_utility(report.points, data_width_bits);
  report.knee_bytes = knee_glb_bytes(report.points, knee_threshold,
                                     data_width_bits);
  report.cache = config.eval_cache->stats();
  return report;
}

}  // namespace rainbow::dse
