#include "dse/pareto.hpp"

#include <algorithm>
#include <limits>

namespace rainbow::dse {

std::vector<std::size_t> pareto_front(
    const std::vector<SweepPoint>& points,
    const std::function<double(const SweepPoint&)>& x,
    const std::function<double(const SweepPoint&)>& y) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size(); ++j) {
      if (i == j) {
        continue;
      }
      const bool no_worse =
          x(points[j]) <= x(points[i]) && y(points[j]) <= y(points[i]);
      const bool better =
          x(points[j]) < x(points[i]) || y(points[j]) < y(points[i]);
      if (no_worse && better) {
        dominated = true;
        break;
      }
    }
    if (!dominated) {
      front.push_back(i);
    }
  }
  return front;
}

std::optional<SweepPoint> smallest_glb_within(
    const std::vector<SweepPoint>& points, double slack) {
  if (points.empty()) {
    return std::nullopt;
  }
  count_t best_accesses = std::numeric_limits<count_t>::max();
  for (const SweepPoint& p : points) {
    best_accesses = std::min(best_accesses, p.accesses);
  }
  std::optional<SweepPoint> best;
  for (const SweepPoint& p : points) {
    if (static_cast<double>(p.accesses) <=
        (1.0 + slack) * static_cast<double>(best_accesses)) {
      if (!best || p.glb_bytes < best->glb_bytes) {
        best = p;
      }
    }
  }
  return best;
}

std::optional<SweepPoint> cheapest_under_latency(
    const std::vector<SweepPoint>& points, double budget_cycles) {
  std::optional<SweepPoint> best;
  for (const SweepPoint& p : points) {
    if (p.latency_cycles <= budget_cycles) {
      if (!best || p.energy_mj < best->energy_mj) {
        best = p;
      }
    }
  }
  return best;
}

}  // namespace rainbow::dse
