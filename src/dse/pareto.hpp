// Pareto analysis and sizing recommendations over sweep results: the
// co-design questions a deployment actually asks — "what is the frontier
// between scratchpad area and DRAM traffic?", "what is the smallest buffer
// within x% of the asymptote?", "cheapest configuration under a latency
// budget?".
#pragma once

#include <optional>
#include <vector>

#include "dse/sweep.hpp"

namespace rainbow::dse {

/// Indices of the points on the Pareto front minimising both `x` and `y`
/// (strict domination: another point no worse in both and better in one
/// removes a candidate).  Stable order: as encountered in `points`.
[[nodiscard]] std::vector<std::size_t> pareto_front(
    const std::vector<SweepPoint>& points,
    const std::function<double(const SweepPoint&)>& x,
    const std::function<double(const SweepPoint&)>& y);

/// The smallest GLB size whose accesses come within `slack` (e.g. 0.05)
/// of the best accesses anywhere in `points`, or nullopt when `points`
/// is empty.  Ignores non-GLB axes: callers pass a single-axis sweep.
[[nodiscard]] std::optional<SweepPoint> smallest_glb_within(
    const std::vector<SweepPoint>& points, double slack);

/// The lowest-energy point whose latency meets `budget_cycles`, or nullopt
/// when nothing qualifies.
[[nodiscard]] std::optional<SweepPoint> cheapest_under_latency(
    const std::vector<SweepPoint>& points, double budget_cycles);

}  // namespace rainbow::dse
