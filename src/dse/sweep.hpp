// Design-space exploration: the multi-dimensional hardware/software
// co-design loop of the authors' RAINBOW tool (ISPASS'23) that the paper's
// memory manager powers.  A sweep evaluates the manager over a grid of
// (GLB size x data width x batch x objective x feature toggles), one plan
// per point, in parallel — cheap enough (milliseconds per point, Section 4)
// that exhaustive grids are practical where classic DSE papers resort to
// pruning.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/energy.hpp"
#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "model/network.hpp"

namespace rainbow::dse {

/// One grid axis configuration.
struct SweepConfig {
  std::vector<count_t> glb_bytes;          ///< required, non-empty
  std::vector<int> data_width_bits{8};
  std::vector<int> batch_sizes{1};
  std::vector<core::Objective> objectives{core::Objective::kAccesses};
  bool with_interlayer = false;            ///< also evaluate Het+inter
  core::EnergyModel energy;

  /// Memoize per-layer evaluations across the whole grid.  Points sharing
  /// a (GLB, width) re-plan the same shapes per batch/objective, and many
  /// layer evaluations coincide even across sizes — sharing one cache
  /// makes warm sweeps measurably faster (bench_plancache) while keeping
  /// every point's plan byte-identical (keys cover all axes).
  bool use_eval_cache = true;
  /// Optional externally shared cache (e.g. across repeated sweeps or the
  /// sensitivity helper).  Null + use_eval_cache → run_sweep creates a
  /// private one per call.
  std::shared_ptr<core::EvalCache> eval_cache;

  /// Simulation mode: additionally replay every point's plan tile by tile
  /// on engine::Engine (the measured cross-check of the analytic numbers)
  /// and fill the sim_* fields of each SweepPoint.  Layer replays within a
  /// point run on `simulate_threads` workers (0 = hardware concurrency;
  /// keep 1 when the sweep itself already saturates the machine).
  bool simulate_execution = false;
  int simulate_threads = 1;

  /// Oracle mode: additionally run the exact branch-and-bound planner
  /// (src/oracle) at every grid point, over the same feature space the
  /// point's plan used (links searched iff the point is an interlayer
  /// point), and fill the oracle_* / gap_vs_oracle fields.  The gap is the
  /// point's headline answer to "how far is Algorithm 1 from optimal
  /// here?".
  bool with_oracle = false;
  /// Branch-and-bound node budget per point; 0 = unlimited (exact).  The
  /// default closes every zoo network exactly in practice while bounding a
  /// pathological point instead of hanging the sweep.
  std::uint64_t oracle_node_budget = 2'000'000;

  /// Throws std::invalid_argument when an axis is empty or a value is
  /// out of range.
  void validate() const;

  [[nodiscard]] std::size_t point_count() const {
    return glb_bytes.size() * data_width_bits.size() * batch_sizes.size() *
           objectives.size() * (with_interlayer ? 2 : 1);
  }
};

/// One evaluated configuration.
struct SweepPoint {
  count_t glb_bytes = 0;
  int data_width_bits = 8;
  int batch = 1;
  core::Objective objective = core::Objective::kAccesses;
  bool interlayer = false;

  // Measurements (per batch; divide by `batch` for per-image numbers).
  count_t accesses = 0;
  double access_mb = 0.0;
  double latency_cycles = 0.0;
  double energy_mj = 0.0;
  double prefetch_coverage = 0.0;
  double interlayer_coverage = 0.0;

  // Filled when SweepConfig::simulate_execution is set: the engine replay
  // of this point's plan (traffic agrees with `accesses` exactly; latency
  // agrees within one tile of pipeline skew per layer).
  bool simulated = false;
  count_t sim_accesses = 0;
  double sim_latency_cycles = 0.0;
  count_t sim_peak_glb_elems = 0;   ///< max over layers

  // Filled when SweepConfig::with_oracle is set: the exact planner's view
  // of this point.  `gap_vs_oracle` is relative — (heuristic − oracle) /
  // oracle on the point's primary metric; 0 means Algorithm 1 was optimal
  // here (provably, when oracle_exact).
  bool oracle_ran = false;
  bool oracle_exact = false;
  double oracle_cost = 0.0;        ///< primary metric of the oracle plan
  double oracle_lower_bound = 0.0; ///< admissible bound (== cost when exact)
  double gap_vs_oracle = 0.0;
  std::uint64_t oracle_nodes = 0;  ///< branch-and-bound nodes expanded

  [[nodiscard]] double access_mb_per_image() const {
    return access_mb / batch;
  }
  [[nodiscard]] double latency_per_image() const {
    return latency_cycles / batch;
  }
};

/// Evaluates the full grid for `network`, fanning points across
/// `threads` workers (0 = hardware concurrency).  Point order is the
/// deterministic row-major grid order regardless of thread count.
[[nodiscard]] std::vector<SweepPoint> run_sweep(const model::Network& network,
                                                const SweepConfig& config,
                                                std::size_t threads = 0);

}  // namespace rainbow::dse
