#include "dse/sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "engine/engine.hpp"
#include "oracle/oracle.hpp"
#include "util/thread_pool.hpp"

namespace rainbow::dse {

void SweepConfig::validate() const {
  if (glb_bytes.empty() || data_width_bits.empty() || batch_sizes.empty() ||
      objectives.empty()) {
    throw std::invalid_argument("SweepConfig: empty axis");
  }
  for (count_t glb : glb_bytes) {
    if (glb == 0) {
      throw std::invalid_argument("SweepConfig: zero GLB size");
    }
  }
  for (int width : data_width_bits) {
    if (width <= 0 || width % 8 != 0) {
      throw std::invalid_argument("SweepConfig: bad data width");
    }
  }
  for (int batch : batch_sizes) {
    if (batch < 1) {
      throw std::invalid_argument("SweepConfig: bad batch size");
    }
  }
  energy.validate();
}

std::vector<SweepPoint> run_sweep(const model::Network& network,
                                  const SweepConfig& config,
                                  std::size_t threads) {
  config.validate();
  std::vector<SweepPoint> points;
  points.reserve(config.point_count());
  for (count_t glb : config.glb_bytes) {
    for (int width : config.data_width_bits) {
      for (int batch : config.batch_sizes) {
        for (core::Objective objective : config.objectives) {
          for (int inter = 0; inter <= (config.with_interlayer ? 1 : 0);
               ++inter) {
            SweepPoint p;
            p.glb_bytes = glb;
            p.data_width_bits = width;
            p.batch = batch;
            p.objective = objective;
            p.interlayer = inter != 0;
            points.push_back(p);
          }
        }
      }
    }
  }

  const std::size_t boundaries = core::sequential_boundaries(network);
  std::shared_ptr<core::EvalCache> cache = config.eval_cache;
  if (!cache && config.use_eval_cache) {
    cache = std::make_shared<core::EvalCache>();
  }
  util::parallel_for_each(
      points,
      [&](SweepPoint& p) {
        arch::AcceleratorSpec spec = arch::paper_spec(p.glb_bytes);
        spec.data_width_bits = p.data_width_bits;
        core::ManagerOptions options;
        options.analyzer.estimator.batch = p.batch;
        options.analyzer.eval_cache = cache;
        options.interlayer_reuse = p.interlayer;
        const core::MemoryManager manager(spec, options);
        const core::ExecutionPlan plan = manager.plan(network, p.objective);
        p.accesses = plan.total_accesses();
        p.access_mb = plan.total_access_mb();
        p.latency_cycles = plan.total_latency_cycles();
        p.energy_mj = core::plan_energy(plan, network, config.energy).total_mj();
        p.prefetch_coverage = plan.prefetch_coverage();
        p.interlayer_coverage = plan.interlayer_coverage(boundaries);
        if (config.simulate_execution) {
          const engine::Engine engine(spec);
          const engine::PlanExecution sim =
              engine.execute_plan(plan, network, config.simulate_threads);
          p.simulated = true;
          p.sim_accesses = sim.total_accesses;
          p.sim_latency_cycles = sim.total_latency_cycles;
          for (const engine::LayerExecution& exec : sim.layers) {
            p.sim_peak_glb_elems =
                std::max(p.sim_peak_glb_elems, exec.peak_glb_elems);
          }
        }
        if (config.with_oracle) {
          oracle::OracleOptions ooptions;
          ooptions.analyzer = options.analyzer;
          ooptions.analyzer.eval_cache = nullptr;  // oracle enumerates
          ooptions.interlayer = p.interlayer;
          ooptions.node_budget = config.oracle_node_budget;
          const oracle::OraclePlanner planner(spec, ooptions);
          const oracle::OracleResult best = planner.plan(network, p.objective);
          p.oracle_ran = true;
          p.oracle_exact = best.exact;
          p.oracle_cost = best.best_cost.primary;
          p.oracle_lower_bound = best.lower_bound;
          p.oracle_nodes = best.nodes_expanded;
          p.gap_vs_oracle = oracle::optimality_gap(
              oracle::plan_cost(plan).primary, best.best_cost.primary);
        }
      },
      threads);
  return points;
}

}  // namespace rainbow::dse
