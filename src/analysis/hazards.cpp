#include "analysis/hazards.hpp"

#include <string>

namespace rainbow::analysis {

using codegen::DataKind;
using validate::Code;
using validate::Diagnostic;
using validate::Severity;
using validate::ValidationReport;

void HazardChecker::begin_layer() {
  dma_in_epoch_ = false;
  compute_in_epoch_ = false;
  layer_computed_ = false;
  store_reported_ = false;
  barrier_reported_ = false;
}

void HazardChecker::on_dma() { dma_in_epoch_ = true; }

void HazardChecker::on_compute(RegionTable& regions, const Site& site,
                               ValidationReport& report) {
  for (auto& [id, state] : regions.live()) {
    // Only this layer's own inputs: an inherited region was filled by its
    // producer (its alloc kind is kOfmap and its birth layer is earlier).
    const bool input = state.kind == DataKind::kIfmap ||
                       state.kind == DataKind::kFilter;
    if (!input || state.birth_layer != site.layer_index) {
      continue;
    }
    if (state.loaded == 0 && !state.use_reported) {
      Diagnostic d =
          stream_diag(Code::kStreamUseBeforeLoad, Severity::kError, site);
      d.detail = "compute runs while input region " + std::to_string(id) +
                 " (" + std::string(codegen::to_string(state.kind)) +
                 ") has received no data";
      report.add(std::move(d));
      state.use_reported = true;
    }
    if (state.loaded > 0) {
      state.computed = true;
    }
  }
  compute_in_epoch_ = true;
  layer_computed_ = true;
}

void HazardChecker::on_store(const Site& site, ValidationReport& report) {
  if (!layer_computed_ && !store_reported_) {
    Diagnostic d =
        stream_diag(Code::kStreamStoreBeforeCompute, Severity::kError, site);
    d.detail = "store issued before this layer's first compute; nothing has "
               "produced the data being drained";
    report.add(std::move(d));
    store_reported_ = true;
  }
  dma_in_epoch_ = true;
}

void HazardChecker::on_free(bool prefetch, const Site& site,
                            ValidationReport& report) {
  if (prefetch && epoch_active() && !barrier_reported_) {
    Diagnostic d =
        stream_diag(Code::kStreamMissingBarrier, Severity::kError, site);
    d.detail = "free issued while the epoch's DMA/compute may still be in "
               "flight; a kBarrier must drain the layer first";
    report.add(std::move(d));
    barrier_reported_ = true;
  }
}

void HazardChecker::on_barrier() {
  dma_in_epoch_ = false;
  compute_in_epoch_ = false;
}

void HazardChecker::end_layer(bool prefetch, std::size_t layer_index,
                              std::string_view layer_name,
                              ValidationReport& report) {
  if (!epoch_active() || barrier_reported_) {
    return;
  }
  if (prefetch) {
    Diagnostic d = layer_diag(Code::kStreamMissingBarrier, Severity::kError,
                              layer_index, layer_name);
    d.detail = "prefetch layer ends with DMA/compute still in flight; no "
               "kBarrier drains the final epoch";
    report.add(std::move(d));
  } else {
    Diagnostic d = layer_diag(Code::kStreamUnterminatedLayer,
                              Severity::kWarning, layer_index, layer_name);
    d.detail = "layer stream is not barrier-terminated (benign under serial "
               "semantics, but every lowering emits a closing kBarrier)";
    report.add(std::move(d));
  }
  barrier_reported_ = true;
}

}  // namespace rainbow::analysis
