// Concurrency checks over the happens-before dependence graph
// (analysis/depgraph.hpp): a vector-clock race detector (R001-R006, R008),
// the stream-reorder certifier certify_reorder (R007) that gates any pass
// permuting a lowered stream, and the critical-path cross-check that
// re-derives the engine's overlap latency from the graph alone (S016 on
// divergence).  Catalog: docs/static_analysis.md.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/depgraph.hpp"
#include "codegen/command.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"
#include "validate/diagnostics.hpp"

namespace rainbow::analysis {

/// Everything one race-detection run produced.
struct RaceReport {
  validate::ValidationReport report;
  std::size_t nodes = 0;
  std::size_t edges = 0;
  bool cyclic = false;

  [[nodiscard]] bool ok() const { return report.ok(); }
  [[nodiscard]] bool clean() const { return report.empty(); }
};

/// Checks every conflicting pair of region accesses (same region,
/// overlapping double-buffer phase, at least one write, different
/// resources) for happens-before coverage; unordered pairs become R001
/// (refill vs read), R002 (drain vs compute write), R003 (write vs write)
/// or R004 (free vs in-flight access).  Also flags double-buffer phase
/// aliasing with no intervening consumer (R005), dependence cycles (R006,
/// detection then stops), and barriers that drain nothing (R008, warning).
/// Diagnostics are deduplicated to one per (region, code).
[[nodiscard]] RaceReport analyze_races(const DepGraph& graph);
[[nodiscard]] RaceReport analyze_races(const codegen::Program& program);

/// Result of certifying a permuted stream against the original's graph.
struct CertifyResult {
  bool ok = false;
  std::size_t violations = 0;  ///< dependence edges the candidate inverts
  validate::ValidationReport report;  ///< R007 diagnostics (first few)
};

/// Proves `candidate` is a legal reordering of `original`: the same
/// commands (matched by stable id, per layer) arranged as a linear
/// extension of the original's semantic dependences (kDep data/lifetime
/// edges and kSync sequencer/barrier edges; kResource channel order and
/// kWait timing are exactly what a reorderer is free to change).  This is
/// the legality gate a DMA-reordering pass must pass before emitting a
/// permuted stream; candidates should additionally be race-checked.  The
/// first overload reuses a graph already built for `original` (the stream
/// optimizer certifies against the graph it scheduled from); the second
/// builds its own.
[[nodiscard]] CertifyResult certify_reorder(const DepGraph& graph,
                                            const codegen::Program& original,
                                            const codegen::Program& candidate);
[[nodiscard]] CertifyResult certify_reorder(const codegen::Program& original,
                                            const codegen::Program& candidate);

/// Critical path vs. the engine's overlap latency model, layer by layer.
struct CriticalPathCheck {
  CriticalPath path;                        ///< graph-side derivation
  std::vector<double> engine_layer_cycles;  ///< engine::schedule_latency side
  double engine_total_cycles = 0.0;
  validate::ValidationReport report;  ///< S016 per diverging layer

  [[nodiscard]] bool match() const { return report.ok(); }
};

/// Re-derives total cycles from the dependence graph's longest weighted
/// path and compares against Engine::execute_layer for every layer of the
/// plan the program was lowered from.  `rel_tol` absorbs the differing
/// summation order of the two derivations (the engine divides tile sums
/// once; the graph divides per command).  The first overload reuses a
/// graph already built for `program` (multi-million-command streams make
/// the rebuild the dominant cost); the second builds its own.
[[nodiscard]] CriticalPathCheck check_critical_path(
    const DepGraph& graph, const codegen::Program& program,
    const core::ExecutionPlan& plan, const model::Network& network,
    double rel_tol = 1e-6);
[[nodiscard]] CriticalPathCheck check_critical_path(
    const codegen::Program& program, const core::ExecutionPlan& plan,
    const model::Network& network, double rel_tol = 1e-6);

}  // namespace rainbow::analysis
