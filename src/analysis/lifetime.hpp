// Region-lifetime tracking: the abstract-state half of the stream
// analyzer.  A RegionTable mirrors what a scratchpad allocator would do —
// alloc, transfer, free — symbolically: it tracks which regions are live,
// how much data each holds, the exact occupancy timeline (whose maximum is
// the interval-graph lower bound on the GLB a stream needs), and replays
// every placement against the real engine::Glb first-fit allocator so
// fragmentation failures surface statically, before any execution.
//
// Diagnostics emitted here: S001 (transfer to a dead region), S002 (double
// alloc), S003 (bad free), S004 (region leak), S005 (capacity over-commit),
// S010 (dead load), S011 (free size/kind misuse), S012 (transfer
// overflow), S013 (first-fit placement failure).  docs/static_analysis.md
// documents the catalog and the abstract semantics behind each rule.
#pragma once

#include <cstddef>
#include <map>
#include <string_view>

#include "codegen/command.hpp"
#include "engine/glb.hpp"
#include "util/units.hpp"
#include "validate/diagnostics.hpp"

namespace rainbow::analysis {

/// Where in the program a diagnostic anchors: the layer and the index of
/// the offending command inside that layer's stream.
struct Site {
  std::size_t layer_index = 0;
  std::string_view layer_name;
  std::size_t command = 0;
};

/// Diagnostic skeleton anchored to one command (context "name cmd k").
[[nodiscard]] validate::Diagnostic stream_diag(validate::Code code,
                                               validate::Severity severity,
                                               const Site& site);

/// Diagnostic skeleton anchored to a whole layer (no command index).
[[nodiscard]] validate::Diagnostic layer_diag(validate::Code code,
                                              validate::Severity severity,
                                              std::size_t layer_index,
                                              std::string_view layer_name);

/// Abstract state of one live scratchpad region.
struct RegionState {
  codegen::DataKind kind = codegen::DataKind::kIfmap;  ///< kind at alloc
  count_t size = 0;           ///< allocated elements
  std::size_t birth_layer = 0;
  count_t loaded = 0;         ///< data known present, saturated at size
  count_t stored = 0;         ///< elements drained to DRAM
  bool computed = false;      ///< a compute consumed it after data arrived
  bool use_reported = false;  ///< S006 already reported for this region
  bool leak_reported = false; ///< S004 already reported for this region
  bool placed = false;        ///< engine::Glb placement succeeded
  engine::Glb::Region slot;   ///< first-fit placement, when placed
};

/// The live-region map plus the symbolic occupancy timeline.  Commands are
/// fed in program order; every rule violation lands in the report instead
/// of throwing, so one walk collects every finding in a stream.
class RegionTable {
 public:
  explicit RegionTable(count_t capacity_elems);

  /// Resets the per-layer occupancy peak (carried regions still count).
  void begin_layer();

  void on_alloc(const codegen::Command& cmd, const Site& site,
                validate::ValidationReport& report);
  void on_load(const codegen::Command& cmd, const Site& site,
               validate::ValidationReport& report);
  void on_store(const codegen::Command& cmd, const Site& site,
                validate::ValidationReport& report);
  void on_free(const codegen::Command& cmd, const Site& site,
               validate::ValidationReport& report);

  /// Leak checks at a layer boundary: anything older than one hand-off
  /// window, more than one survivor, or a survivor that is not an ofmap.
  void end_layer(const Site& site, validate::ValidationReport& report);

  /// Leak check at program end: nothing may remain live.
  void end_program(validate::ValidationReport& report);

  /// Live-region lookup; nullptr when `id` is not live.
  [[nodiscard]] RegionState* find(int id);

  [[nodiscard]] const std::map<int, RegionState>& live() const {
    return live_;
  }
  [[nodiscard]] std::map<int, RegionState>& live() { return live_; }
  [[nodiscard]] count_t capacity() const { return glb_.capacity(); }
  [[nodiscard]] count_t live_elems() const { return live_sum_; }
  /// Interval-graph lower bound: max simultaneous live elements.
  [[nodiscard]] count_t peak_live_elems() const { return peak_live_; }
  /// Same, within the current layer only (reset by begin_layer).
  [[nodiscard]] count_t layer_peak_elems() const { return layer_peak_; }
  /// Peak of the engine::Glb first-fit replay (>= peak_live_elems).
  [[nodiscard]] count_t glb_peak_elems() const { return glb_.peak_used(); }
  [[nodiscard]] std::size_t regions_seen() const { return regions_seen_; }

 private:
  engine::Glb glb_;
  std::map<int, RegionState> live_;  // ordered: deterministic diagnostics
  count_t live_sum_ = 0;
  count_t peak_live_ = 0;
  count_t layer_peak_ = 0;
  std::size_t regions_seen_ = 0;
};

}  // namespace rainbow::analysis
