// Translation-validated optimizer over lowered command streams.  Three
// passes run on a codegen::Program: (a) a dependence-graph-driven list
// scheduler that reorders each prefetch layer's async commands, hoisting
// refills as early as their kDep/kSync predecessors allow (shrinking the
// depgraph critical path), (b) elision of R008-redundant barriers, and
// (c) coalescing of adjacent same-region DMA chunks.  Every emitted stream
// is *certified*: proven a legal reorder of the original (certify_reorder,
// R007), race-free under R001-R006, clean under the S-code stream
// analyzer, differentially interpreted to an identical result, and
// re-costed with a critical path <= the original's.  A candidate that
// fails any gate is rejected with a structured O001-O006 diagnostic and
// the original stream is returned unchanged — an optimizer bug can cost
// performance, never correctness.  Catalog: docs/static_analysis.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "codegen/command.hpp"
#include "core/plan.hpp"
#include "model/network.hpp"
#include "validate/diagnostics.hpp"

namespace rainbow::analysis {

struct StreamOptOptions {
  bool reorder = true;         ///< pass (a): DMA-hoisting list scheduler
  bool elide_barriers = true;  ///< pass (b): drop R008-redundant barriers
  bool coalesce = true;        ///< pass (c): merge adjacent DMA chunks
  /// Relative improvement a reordered layer must show (against its own
  /// critical-path contribution) to be kept; unimproved layers revert to
  /// their original order, so the whole-program path never grows.
  double min_gain_rel = 1e-6;
};

/// Per-layer outcome of the reordering pass.
struct LayerOptStats {
  std::size_t layer_index = 0;
  std::string layer_name;
  bool reordered = false;          ///< candidate order kept
  std::size_t commands_moved = 0;  ///< positions that changed (kept only)
  double original_cycles = 0.0;    ///< layer's critical-path contribution
  double optimized_cycles = 0.0;   ///< same, in the emitted stream
};

struct OptimizeResult {
  /// The certified stream (equal to the input when nothing improved or a
  /// gate rejected the candidate).
  codegen::Program program;
  /// O-code diagnostics from rejected candidates, if any.
  validate::ValidationReport report;
  /// True when the emitted stream passed the full certification stack.
  /// False only when a gate rejected the optimizer's own candidate (the
  /// returned program is then the untouched original).
  bool certified = false;
  std::size_t layers_reordered = 0;
  std::size_t commands_moved = 0;
  std::size_t barriers_elided = 0;
  std::size_t transfers_coalesced = 0;  ///< commands removed by merging
  double original_cycles = 0.0;   ///< depgraph critical path of the input
  double optimized_cycles = 0.0;  ///< same, of the emitted stream
  /// Critical-path cycles not covered by either resource's busy time
  /// (max-per-layer lower bound); the overlap slack the schedule wastes.
  double original_stall_cycles = 0.0;
  double optimized_stall_cycles = 0.0;
  std::vector<LayerOptStats> layers;

  [[nodiscard]] bool ok() const { return report.ok(); }
  [[nodiscard]] bool improved() const {
    return optimized_cycles < original_cycles;
  }
};

/// Optimizes and certifies `program`.  When `plan`/`network` are given the
/// S-code gate runs the full plan cross-checks (S014/S015) on the emitted
/// stream; without them it runs the stream-only rules (S001-S013).  The
/// S016 engine cross-check never runs on an optimized stream — a shorter
/// critical path is the point — its replacement is the O005 gate
/// (optimized path <= original path).
[[nodiscard]] OptimizeResult optimize_program(const codegen::Program& program,
                                              const StreamOptOptions& options = {});
[[nodiscard]] OptimizeResult optimize_program(const codegen::Program& program,
                                              const core::ExecutionPlan& plan,
                                              const model::Network& network,
                                              const StreamOptOptions& options = {});

// --- Stage gates, exposed for the adversarial property tests ------------
// Each returns a report whose errors carry the O-code named; an empty
// report certifies that stage.  optimize_program composes all of them.

/// Gate (a): `candidate` must be a certified per-layer permutation of
/// `original` (O001 wrapping the R007 findings on violation).
[[nodiscard]] validate::ValidationReport check_reorder_stage(
    const codegen::Program& original, const codegen::Program& candidate);

/// Gate (b): `candidate` must equal `original` minus a subset of its
/// redundant barriers — barriers with no async work since the previous
/// sync point (O006 on any other difference or a non-redundant removal).
[[nodiscard]] validate::ValidationReport check_elision_stage(
    const codegen::Program& original, const codegen::Program& candidate);

/// Gate (c): `candidate` must equal `original` with runs of adjacent
/// same-(op, region, kind, tile) transfers merged, sizes conserved and
/// bounded by the region (GLB capacity for streaming ifmap loads), first
/// id kept (O006 on violation).
[[nodiscard]] validate::ValidationReport check_coalesce_stage(
    const codegen::Program& original, const codegen::Program& candidate);

/// End-to-end semantic gates on a fully transformed candidate: race
/// freedom (O002), S-code cleanliness (O003), interpreter differential
/// against the original — traffic, MACs, GLB peaks, leak-free final state
/// (O004) — and the critical-path bound (O005).  `original_cycles` /
/// `optimized_cycles` receive the two depgraph critical paths.
[[nodiscard]] validate::ValidationReport check_semantics(
    const codegen::Program& original, const codegen::Program& candidate,
    const core::ExecutionPlan* plan, const model::Network* network,
    double* original_cycles = nullptr, double* optimized_cycles = nullptr);

}  // namespace rainbow::analysis
