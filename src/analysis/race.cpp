#include "analysis/race.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <unordered_map>

#include "analysis/lifetime.hpp"
#include "engine/engine.hpp"

namespace rainbow::analysis {

using codegen::Command;
using validate::Code;
using validate::Diagnostic;
using validate::Severity;

namespace {

constexpr std::size_t kSlots = 3;  // phase 0, phase 1, wild

std::size_t slot_of(std::int8_t phase) {
  return phase < 0 ? 2 : static_cast<std::size_t>(phase);
}

bool slots_conflict(std::size_t a, std::size_t b) {
  return a == b || a == 2 || b == 2;
}

Site site_of(const DepGraph& graph, const DepNode& node) {
  return Site{graph.layer_index(node.layer), graph.layer_name(node.layer),
              node.command};
}

std::string describe(const DepNode& node) {
  std::string s(codegen::to_string(node.cmd.op));
  if (node.cmd.region >= 0) {
    s += " %" + std::to_string(node.cmd.region);
  }
  s += " (layer " + std::to_string(node.layer) + " cmd " +
       std::to_string(node.command);
  if (node.cmd.tile >= 0) {
    s += ", tile " + std::to_string(node.cmd.tile);
  }
  return s + ")";
}

std::string phase_name(std::size_t slot) {
  return slot == 2 ? "any" : std::to_string(slot);
}

/// Frontier of one region's access history, enough for exact race checks:
/// accesses on one chain are totally ordered, so only the last read and
/// last write per (chain, phase slot) can be the unordered witness — if
/// the latest is ordered with a new access, every earlier one is too.
struct History {
  std::array<std::array<std::int64_t, kSlots>, kDepResourceCount> last_write;
  std::array<std::array<std::int64_t, kSlots>, kDepResourceCount> last_read;
  /// R005 state per real phase slot: last refill node and whether any
  /// compute consumed the slot since.
  std::array<std::int64_t, 2> last_refill{-1, -1};
  std::array<bool, 2> consumed_since{false, false};

  History() {
    for (auto& per_chain : last_write) {
      per_chain.fill(-1);
    }
    for (auto& per_chain : last_read) {
      per_chain.fill(-1);
    }
  }
};

class RaceDetector {
 public:
  explicit RaceDetector(const DepGraph& graph) : graph_(graph) {}

  RaceReport run() {
    RaceReport result;
    result.nodes = graph_.nodes().size();
    result.edges = graph_.edges().size();
    if (graph_.is_cyclic()) {
      result.cyclic = true;
      report_cycle(result.report);
      return result;
    }
    std::size_t asyncs_since_barrier = 0;
    for (const DepNode& node : graph_.nodes()) {
      switch (node.cmd.op) {
        case Command::Op::kLoad:
        case Command::Op::kStore:
        case Command::Op::kCompute:
          ++asyncs_since_barrier;
          break;
        case Command::Op::kBarrier:
          if (asyncs_since_barrier == 0) {
            Diagnostic d = stream_diag(Code::kRaceRedundantBarrier,
                                       Severity::kAdvisory,
                                       site_of(graph_, node));
            d.detail = "barrier at " + describe(node) +
                       " has no DMA or compute to drain since the previous "
                       "sync point";
            result.report.add(std::move(d));
          }
          asyncs_since_barrier = 0;
          break;
        case Command::Op::kAlloc:
        case Command::Op::kFree:
          break;
      }
      visit(node, result.report);
    }
    return result;
  }

 private:
  void report_cycle(validate::ValidationReport& report) {
    // Kahn residue: every node left with positive indegree sits on or
    // behind a cycle; the lowest-id one anchors the diagnostic.
    const std::size_t n = graph_.nodes().size();
    std::vector<std::uint32_t> indegree(n, 0);
    std::vector<std::vector<std::uint32_t>> out(n);
    for (const DepEdge& e : graph_.edges()) {
      out[e.from].push_back(e.to);
      ++indegree[e.to];
    }
    std::vector<std::uint32_t> ready;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (indegree[i] == 0) {
        ready.push_back(i);
      }
    }
    while (!ready.empty()) {
      const std::uint32_t u = ready.back();
      ready.pop_back();
      for (std::uint32_t v : out[u]) {
        if (--indegree[v] == 0) {
          ready.push_back(v);
        }
      }
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      if (indegree[i] != 0) {
        const DepNode& node = graph_.nodes()[i];
        Diagnostic d = stream_diag(Code::kRaceGraphCycle, Severity::kError,
                                   site_of(graph_, node));
        d.detail = "dependence graph has a cycle through " + describe(node) +
                   ": no execution order satisfies every dependence "
                   "(deadlock); race detection aborted";
        report.add(std::move(d));
        return;
      }
    }
  }

  void visit(const DepNode& node, validate::ValidationReport& report) {
    if (node.cmd.op == Command::Op::kAlloc) {
      return;  // births are ordered by the sequencer; S002 owns double allocs
    }
    if (node.cmd.op == Command::Op::kFree) {
      for (const RegionAccess& access : node.accesses) {
        check_free(node, access.region, report);
        history_.erase(access.region);
      }
      return;
    }
    for (const RegionAccess& access : node.accesses) {
      History& h = history_[access.region];
      const std::size_t s = slot_of(access.phase);
      const auto chain = static_cast<std::size_t>(node.resource);
      for (std::size_t co = 0; co < kDepResourceCount; ++co) {
        if (co == chain) {
          continue;  // same serial resource: totally ordered
        }
        for (std::size_t q = 0; q < kSlots; ++q) {
          if (!slots_conflict(s, q)) {
            continue;
          }
          check_pair(h.last_write[co][q], node, access, q, report);
          if (access.write) {
            check_pair(h.last_read[co][q], node, access, q, report);
          }
        }
      }
      // R005: a refill that reuses a phase slot no compute has consumed
      // since the previous refill of that slot.  Chunks of one refill
      // share a tile and are exempt.
      if (node.cmd.op == Command::Op::kLoad && s < 2) {
        const std::int64_t prev = h.last_refill[s];
        if (prev >= 0 &&
            graph_.nodes()[static_cast<std::uint32_t>(prev)].cmd.tile !=
                node.cmd.tile &&
            !h.consumed_since[s]) {
          add_race(Code::kRacePhaseAlias, node, access.region, report,
                   "refill " + describe(node) + " reuses phase " +
                       phase_name(s) + " of region " +
                       std::to_string(access.region) +
                       " before any compute consumed refill " +
                       describe(graph_.nodes()[static_cast<std::uint32_t>(prev)]));
        }
        h.last_refill[s] = node.index;
        h.consumed_since[s] = false;
      }
      if (node.cmd.op == Command::Op::kCompute && !access.write && s < 2) {
        h.consumed_since[s] = true;
      }
      if (access.write) {
        h.last_write[chain][s] = node.index;
      } else {
        h.last_read[chain][s] = node.index;
      }
    }
  }

  void check_pair(std::int64_t other, const DepNode& node,
                  const RegionAccess& access, std::size_t other_slot,
                  validate::ValidationReport& report) {
    if (other < 0) {
      return;
    }
    const DepNode& prior = graph_.nodes()[static_cast<std::uint32_t>(other)];
    if (graph_.happens_before(prior.index, node.index)) {
      return;
    }
    // Classify by the writing side: a DMA refill racing a reader is R001,
    // a compute's output write racing its drain (or another access) R002,
    // two unordered writes R003.
    const bool prior_writes = prior_wrote(prior, access.region, other_slot);
    Code code;
    const DepNode* writer;
    if (access.write && prior_writes) {
      code = Code::kRaceUnorderedWrites;
      writer = &node;
    } else {
      writer = access.write ? &node : &prior;
      code = writer->cmd.op == Command::Op::kLoad ? Code::kRaceRefill
                                                  : Code::kRaceDrain;
    }
    add_race(code, node, access.region, report,
             describe(node) + " is unordered with " + describe(prior) +
                 " on region " + std::to_string(access.region) + " phase " +
                 phase_name(slot_of(access.phase)) +
                 ": the overlap window lets them run concurrently");
  }

  [[nodiscard]] bool prior_wrote(const DepNode& prior, int region,
                                 std::size_t slot) const {
    for (const RegionAccess& a : prior.accesses) {
      if (a.region == region && slot_of(a.phase) == slot) {
        return a.write;
      }
    }
    return false;
  }

  void check_free(const DepNode& node, int region,
                  validate::ValidationReport& report) {
    auto it = history_.find(region);
    if (it == history_.end()) {
      return;
    }
    for (std::size_t chain = 0; chain < kDepResourceCount; ++chain) {
      for (std::size_t q = 0; q < kSlots; ++q) {
        for (std::int64_t other :
             {it->second.last_write[chain][q], it->second.last_read[chain][q]}) {
          if (other < 0) {
            continue;
          }
          const DepNode& prior =
              graph_.nodes()[static_cast<std::uint32_t>(other)];
          if (!graph_.happens_before(prior.index, node.index)) {
            add_race(Code::kRaceFreeInFlight, node, region, report,
                     describe(node) + " releases region " +
                         std::to_string(region) + " while " + describe(prior) +
                         " may still be in flight");
            return;
          }
        }
      }
    }
  }

  void add_race(Code code, const DepNode& node, int region,
                validate::ValidationReport& report, std::string detail) {
    if (!reported_.insert({region, code}).second) {
      return;
    }
    Diagnostic d = stream_diag(code, Severity::kError, site_of(graph_, node));
    d.detail = std::move(detail);
    d.expected = "happens-before ordering";
    d.actual = "concurrent";
    report.add(std::move(d));
  }

  const DepGraph& graph_;
  std::map<int, History> history_;
  std::set<std::pair<int, Code>> reported_;
};

}  // namespace

RaceReport analyze_races(const DepGraph& graph) {
  return RaceDetector(graph).run();
}

RaceReport analyze_races(const codegen::Program& program) {
  return analyze_races(DepGraph::build(program));
}

CertifyResult certify_reorder(const codegen::Program& original,
                              const codegen::Program& candidate) {
  return certify_reorder(DepGraph::build(original), original, candidate);
}

CertifyResult certify_reorder(const DepGraph& graph,
                              const codegen::Program& original,
                              const codegen::Program& candidate) {
  CertifyResult result;
  constexpr std::size_t kMaxDiagnostics = 8;

  const auto fail = [&result](std::string detail) {
    if (result.report.diagnostics().size() < kMaxDiagnostics) {
      Diagnostic d;
      d.code = Code::kRaceReorderViolation;
      d.severity = Severity::kError;
      d.detail = std::move(detail);
      result.report.add(std::move(d));
    }
  };

  if (original.layers.size() != candidate.layers.size()) {
    fail("candidate has " + std::to_string(candidate.layers.size()) +
         " layer(s), original " + std::to_string(original.layers.size()));
    return result;
  }

  // Match commands by stable id: the candidate must be a per-layer
  // permutation with identical command content.
  struct Slot {
    std::size_t layer = 0;
    const Command* cmd = nullptr;
  };
  std::unordered_map<std::uint32_t, Slot> originals;
  std::size_t total = 0;
  for (std::size_t li = 0; li < original.layers.size(); ++li) {
    for (const Command& cmd : original.layers[li].commands) {
      ++total;
      if (cmd.id == 0) {
        fail("original stream is untagged (command with id 0); re-lower "
             "before certifying");
        return result;
      }
      if (!originals.emplace(cmd.id, Slot{li, &cmd}).second) {
        fail("original stream has duplicate command id " +
             std::to_string(cmd.id));
        return result;
      }
    }
  }

  std::unordered_map<std::uint32_t, std::size_t> candidate_pos;
  candidate_pos.reserve(total);
  std::size_t structural = 0;
  std::size_t flat = 0;
  for (std::size_t li = 0; li < candidate.layers.size(); ++li) {
    for (const Command& cmd : candidate.layers[li].commands) {
      const std::size_t pos = flat++;
      auto it = originals.find(cmd.id);
      if (it == originals.end()) {
        fail("candidate command id " + std::to_string(cmd.id) +
             " does not exist in the original stream");
        ++structural;
        continue;
      }
      if (it->second.layer != li) {
        fail("command id " + std::to_string(cmd.id) + " moved from layer " +
             std::to_string(it->second.layer) + " to layer " +
             std::to_string(li));
        ++structural;
      } else if (!(*it->second.cmd == cmd)) {
        fail("command id " + std::to_string(cmd.id) +
             " was altered, not just moved");
        ++structural;
      }
      if (!candidate_pos.emplace(cmd.id, pos).second) {
        fail("candidate repeats command id " + std::to_string(cmd.id));
        ++structural;
      }
    }
  }
  if (candidate_pos.size() != total) {
    fail("candidate drops " + std::to_string(total - candidate_pos.size()) +
         " command(s) of the original stream");
    ++structural;
  }
  if (structural != 0) {
    result.violations = structural;
    return result;
  }

  // The candidate order must linearly extend every semantic dependence of
  // the original: data/lifetime (kDep) and sequencer/barrier (kSync)
  // edges.  Resource-chain and timing edges are exactly the freedom a
  // reorderer exploits, so they are not constraints.
  for (const DepEdge& e : graph.edges()) {
    if (e.kind != DepEdgeKind::kDep && e.kind != DepEdgeKind::kSync) {
      continue;
    }
    const DepNode& from = graph.nodes()[e.from];
    const DepNode& to = graph.nodes()[e.to];
    if (candidate_pos.at(from.cmd.id) >= candidate_pos.at(to.cmd.id)) {
      ++result.violations;
      if (result.report.diagnostics().size() < kMaxDiagnostics) {
        Diagnostic d = stream_diag(Code::kRaceReorderViolation,
                                   Severity::kError, site_of(graph, to));
        d.detail = "candidate places " + describe(to) + " before " +
                   describe(from) + ", inverting a " +
                   std::string(to_string(e.kind)) + " dependence";
        result.report.add(std::move(d));
      }
    }
  }
  result.ok = result.violations == 0 && result.report.ok();
  return result;
}

CriticalPathCheck check_critical_path(const codegen::Program& program,
                                      const core::ExecutionPlan& plan,
                                      const model::Network& network,
                                      double rel_tol) {
  return check_critical_path(DepGraph::build(program), program, plan, network,
                             rel_tol);
}

CriticalPathCheck check_critical_path(const DepGraph& graph,
                                      const codegen::Program& program,
                                      const core::ExecutionPlan& plan,
                                      const model::Network& network,
                                      double rel_tol) {
  CriticalPathCheck check;
  if (graph.is_cyclic()) {
    Diagnostic d;
    d.code = Code::kRaceGraphCycle;
    d.severity = Severity::kError;
    d.detail = "dependence graph is cyclic; critical path undefined";
    check.report.add(std::move(d));
    return check;
  }
  check.path = graph.critical_path();

  const engine::Engine engine(program.spec);
  const auto& assignments = plan.assignments();
  check.engine_layer_cycles.reserve(assignments.size());
  for (const core::LayerAssignment& a : assignments) {
    const core::InterlayerAdjust adjust{.ifmap_resident = a.ifmap_from_glb,
                                        .keep_ofmap = a.ofmap_stays_in_glb};
    const engine::LayerExecution exec = engine.execute_layer(
        network.layer(a.layer_index), a.estimate.choice, adjust);
    check.engine_layer_cycles.push_back(exec.latency_cycles);
    check.engine_total_cycles += exec.latency_cycles;
  }

  const std::size_t layers =
      std::min(check.path.layer_cycles.size(), check.engine_layer_cycles.size());
  if (check.path.layer_cycles.size() != check.engine_layer_cycles.size()) {
    Diagnostic d;
    d.code = Code::kStreamCriticalPathMismatch;
    d.severity = Severity::kError;
    d.context = "layer count";
    d.expected = std::to_string(check.engine_layer_cycles.size());
    d.actual = std::to_string(check.path.layer_cycles.size());
    check.report.add(std::move(d));
  }
  for (std::size_t l = 0; l < layers; ++l) {
    const double g = check.path.layer_cycles[l];
    const double e = check.engine_layer_cycles[l];
    const double tol = rel_tol * std::max({1.0, std::fabs(g), std::fabs(e)});
    if (std::fabs(g - e) > tol) {
      Diagnostic d = layer_diag(Code::kStreamCriticalPathMismatch,
                                Severity::kError, graph.layer_index(l),
                                graph.layer_name(l));
      d.detail = "dependence-graph critical path disagrees with the engine's "
                 "overlap latency model";
      d.expected = std::to_string(e) + " cycles";
      d.actual = std::to_string(g) + " cycles";
      check.report.add(std::move(d));
    }
  }
  return check;
}

}  // namespace rainbow::analysis
