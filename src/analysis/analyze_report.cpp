#include "analysis/analyze_report.hpp"

#include <optional>
#include <ostream>
#include <stdexcept>

#include "analysis/race.hpp"
#include "analysis/streamopt.hpp"
#include "codegen/lower.hpp"

namespace rainbow::analysis {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string combo_label(const AnalyzeCombo& combo) {
  std::string label = combo.model + " @ " + std::to_string(combo.glb_kib) +
                      " kB, " + combo.policy;
  if (combo.policy == "het") {
    label += std::string("/") + std::string(core::to_string(combo.objective));
    if (combo.interlayer) {
      label += "+inter";
    }
  } else if (combo.prefetch) {
    label += "+p";
  }
  return label;
}

ComboOutcome analyze_combo(const model::Network& net,
                           const AnalyzeCombo& combo,
                           const AnalyzeOptions& options,
                           const std::shared_ptr<core::EvalCache>& cache) {
  arch::AcceleratorSpec spec = arch::paper_spec(util::kib(combo.glb_kib));
  spec.data_width_bits = options.width_bits;
  spec.validate();

  core::ManagerOptions moptions;
  moptions.analyzer.eval_cache = cache;
  moptions.interlayer_reuse = combo.interlayer;
  const core::MemoryManager manager(spec, moptions);

  ComboOutcome outcome;
  outcome.combo = combo;
  std::optional<core::ExecutionPlan> plan;
  try {
    plan = combo.policy == "het"
               ? manager.plan(net, combo.objective)
               : manager.plan_with_policy(
                     net, core::policy_from_short_label(combo.policy),
                     combo.prefetch, combo.objective);
  } catch (const std::runtime_error& e) {
    // The forced policy cannot execute this model in this GLB at all;
    // nothing to lower.
    outcome.status = std::string("skipped (") + e.what() + ")";
  }
  if (plan && !plan->feasible()) {
    outcome.status = "skipped (plan infeasible for this GLB)";
    plan.reset();
  }
  if (!plan) {
    return outcome;
  }

  const codegen::Program program = codegen::lower(*plan, net);
  outcome.result = analyze_lowering(program, *plan, net);
  if (options.races || options.critical_path) {
    const DepGraph graph = DepGraph::build(program);
    if (options.races) {
      const RaceReport races = analyze_races(graph);
      outcome.races_run = true;
      outcome.graph_nodes = races.nodes;
      outcome.graph_edges = races.edges;
      outcome.result.report.merge(races.report);
    }
    if (options.critical_path) {
      const CriticalPathCheck check =
          check_critical_path(graph, program, *plan, net);
      outcome.critical_path_run = true;
      outcome.graph_cycles = check.path.total_cycles;
      outcome.engine_cycles = check.engine_total_cycles;
      outcome.result.report.merge(check.report);
    }
  }
  if (options.optimize) {
    const OptimizeResult opt = optimize_program(program, *plan, net);
    outcome.optimize_run = true;
    outcome.opt_certified = opt.certified;
    outcome.opt_layers_reordered = opt.layers_reordered;
    outcome.opt_commands_moved = opt.commands_moved;
    outcome.opt_barriers_elided = opt.barriers_elided;
    outcome.opt_transfers_coalesced = opt.transfers_coalesced;
    outcome.opt_original_cycles = opt.original_cycles;
    outcome.opt_optimized_cycles = opt.optimized_cycles;
    outcome.opt_original_stall_cycles = opt.original_stall_cycles;
    outcome.opt_optimized_stall_cycles = opt.optimized_stall_cycles;
    outcome.result.report.merge(opt.report);
  }
  outcome.status = outcome.result.clean() ? "ok" : "findings";
  return outcome;
}

void write_json(const std::vector<ComboOutcome>& outcomes,
                const AnalyzeOptions& options, std::ostream& os) {
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t advisories = 0;
  std::size_t skipped = 0;
  os << "{\n  \"tool\": \"" << json_escape(options.tool) << "\",\n"
     << "  \"strict\": " << (options.strict ? "true" : "false") << ",\n"
     << "  \"races\": " << (options.races ? "true" : "false") << ",\n"
     << "  \"critical_path\": " << (options.critical_path ? "true" : "false")
     << ",\n"
     << "  \"optimize\": " << (options.optimize ? "true" : "false") << ",\n"
     << "  \"combos\": [\n";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const ComboOutcome& o = outcomes[i];
    errors += o.result.report.error_count();
    warnings += o.result.report.warning_count();
    advisories += o.result.report.advisory_count();
    if (o.status.rfind("skipped", 0) == 0) {
      ++skipped;
    }
    os << "    {\"model\": \"" << json_escape(o.combo.model)
       << "\", \"glb_kib\": " << o.combo.glb_kib << ", \"policy\": \""
       << json_escape(o.combo.policy) << "\", \"prefetch\": "
       << (o.combo.prefetch ? "true" : "false") << ", \"interlayer\": "
       << (o.combo.interlayer ? "true" : "false") << ", \"objective\": \""
       << core::to_string(o.combo.objective) << "\", \"status\": \""
       << json_escape(o.status) << "\", \"errors\": "
       << o.result.report.error_count() << ", \"warnings\": "
       << o.result.report.warning_count() << ", \"advisories\": "
       << o.result.report.advisory_count() << ", \"commands\": "
       << o.result.commands << ", \"regions\": " << o.result.regions
       << ", \"capacity_elems\": " << o.result.capacity_elems
       << ", \"peak_live_elems\": " << o.result.peak_live_elems
       << ", \"glb_peak_elems\": " << o.result.glb_peak_elems;
    if (o.races_run) {
      os << ", \"race\": {\"nodes\": " << o.graph_nodes
         << ", \"edges\": " << o.graph_edges << "}";
    }
    if (o.critical_path_run) {
      os << ", \"critical_path\": {\"graph_cycles\": " << o.graph_cycles
         << ", \"engine_cycles\": " << o.engine_cycles << "}";
    }
    if (o.optimize_run) {
      os << ", \"optimize\": {\"certified\": "
         << (o.opt_certified ? "true" : "false")
         << ", \"layers_reordered\": " << o.opt_layers_reordered
         << ", \"commands_moved\": " << o.opt_commands_moved
         << ", \"barriers_elided\": " << o.opt_barriers_elided
         << ", \"transfers_coalesced\": " << o.opt_transfers_coalesced
         << ", \"original_cycles\": " << o.opt_original_cycles
         << ", \"optimized_cycles\": " << o.opt_optimized_cycles
         << ", \"original_stall_cycles\": " << o.opt_original_stall_cycles
         << ", \"optimized_stall_cycles\": " << o.opt_optimized_stall_cycles
         << "}";
    }
    os << ", \"diagnostics\": [";
    const auto& diags = o.result.report.diagnostics();
    for (std::size_t j = 0; j < diags.size(); ++j) {
      const auto& d = diags[j];
      os << (j == 0 ? "" : ", ") << "{\"code\": \""
         << validate::code_string(d.code) << "\", \"severity\": \""
         << validate::to_string(d.severity) << "\", \"message\": \""
         << json_escape(d.message()) << "\"}";
    }
    os << "]}" << (i + 1 == outcomes.size() ? "" : ",") << '\n';
  }
  os << "  ],\n"
     << "  \"total\": {\"combos\": " << outcomes.size()
     << ", \"skipped\": " << skipped << ", \"errors\": " << errors
     << ", \"warnings\": " << warnings << ", \"advisories\": " << advisories
     << "}\n}\n";
}

}  // namespace rainbow::analysis
