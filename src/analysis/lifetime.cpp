#include "analysis/lifetime.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace rainbow::analysis {

using codegen::Command;
using codegen::DataKind;
using validate::Code;
using validate::Diagnostic;
using validate::Severity;
using validate::ValidationReport;

validate::Diagnostic stream_diag(Code code, Severity severity,
                                 const Site& site) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.layer = site.layer_index;
  d.context =
      std::string(site.layer_name) + " cmd " + std::to_string(site.command);
  return d;
}

validate::Diagnostic layer_diag(Code code, Severity severity,
                                std::size_t layer_index,
                                std::string_view layer_name) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.layer = layer_index;
  d.context = std::string(layer_name);
  return d;
}

RegionTable::RegionTable(count_t capacity_elems) : glb_(capacity_elems) {}

void RegionTable::begin_layer() { layer_peak_ = live_sum_; }

RegionState* RegionTable::find(int id) {
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : &it->second;
}

void RegionTable::on_alloc(const Command& cmd, const Site& site,
                           ValidationReport& report) {
  if (auto it = live_.find(cmd.region); it != live_.end()) {
    Diagnostic d = stream_diag(Code::kStreamDoubleAlloc, Severity::kError, site);
    d.detail = "region " + std::to_string(cmd.region) +
               " allocated while already live (born in layer " +
               std::to_string(it->second.birth_layer) +
               "); re-allocation ignored";
    report.add(std::move(d));
    return;
  }
  RegionState state;
  state.kind = cmd.kind;
  state.size = cmd.elems;
  state.birth_layer = site.layer_index;
  ++regions_seen_;
  live_sum_ += cmd.elems;
  layer_peak_ = std::max(layer_peak_, live_sum_);
  peak_live_ = std::max(peak_live_, live_sum_);
  if (live_sum_ > glb_.capacity()) {
    Diagnostic d = stream_diag(Code::kStreamOverCommit, Severity::kError, site);
    d.expected = "<= " + std::to_string(glb_.capacity());
    d.actual = std::to_string(live_sum_);
    d.detail = "allocating region " + std::to_string(cmd.region) + " (" +
               std::to_string(cmd.elems) +
               " elems) raises live occupancy above the GLB capacity";
    report.add(std::move(d));
  } else {
    // Only replay placements while the abstract occupancy fits: once the
    // stream over-commits (S005) a first-fit failure is implied, not news.
    try {
      state.slot = glb_.allocate(
          cmd.elems, std::string(site.layer_name) + "/" +
                         std::string(codegen::to_string(cmd.kind)));
      state.placed = true;
    } catch (const std::runtime_error& e) {
      Diagnostic d =
          stream_diag(Code::kStreamPlacementFailure, Severity::kError, site);
      d.detail = "stream fits by size (" + std::to_string(live_sum_) + " of " +
                 std::to_string(glb_.capacity()) +
                 " elems live) but first-fit placement failed: " + e.what();
      report.add(std::move(d));
    }
  }
  live_.emplace(cmd.region, state);
}

void RegionTable::on_load(const Command& cmd, const Site& site,
                          ValidationReport& report) {
  RegionState* state = find(cmd.region);
  if (state == nullptr) {
    Diagnostic d = stream_diag(Code::kStreamDeadRegion, Severity::kError, site);
    d.detail = "load targets region " + std::to_string(cmd.region) +
               ", which is not live (never allocated or already freed)";
    report.add(std::move(d));
    return;
  }
  // Streaming-ifmap leniency (mirrors the interpreter): sliding-window
  // ifmap loads may exceed the window when stride > F_H discards rows in
  // flight, so they are bounded by the whole GLB, not the region.
  const bool streaming = cmd.kind == DataKind::kIfmap;
  const count_t bound = streaming ? glb_.capacity() : state->size;
  if (cmd.elems > bound) {
    Diagnostic d =
        stream_diag(Code::kStreamTransferOverflow, Severity::kError, site);
    d.expected = "<= " + std::to_string(bound);
    d.actual = std::to_string(cmd.elems);
    d.detail = "load of " + std::to_string(cmd.elems) + " elems overflows " +
               (streaming ? "the GLB capacity"
                          : "region " + std::to_string(cmd.region) + " (" +
                                std::to_string(state->size) + " elems)");
    report.add(std::move(d));
  }
  state->loaded = std::max(state->loaded, std::min(cmd.elems, state->size));
}

void RegionTable::on_store(const Command& cmd, const Site& site,
                           ValidationReport& report) {
  RegionState* state = find(cmd.region);
  if (state == nullptr) {
    Diagnostic d = stream_diag(Code::kStreamDeadRegion, Severity::kError, site);
    d.detail = "store drains region " + std::to_string(cmd.region) +
               ", which is not live (never allocated or already freed)";
    report.add(std::move(d));
    return;
  }
  if (state->kind != DataKind::kOfmap) {
    Diagnostic d = stream_diag(Code::kStreamMalformed, Severity::kError, site);
    d.detail = "store drains region " + std::to_string(cmd.region) +
               " of kind " + std::string(codegen::to_string(state->kind)) +
               "; only ofmap regions are written back to DRAM";
    report.add(std::move(d));
  }
  if (cmd.elems > state->size) {
    Diagnostic d =
        stream_diag(Code::kStreamTransferOverflow, Severity::kError, site);
    d.expected = "<= " + std::to_string(state->size);
    d.actual = std::to_string(cmd.elems);
    d.detail = "store of " + std::to_string(cmd.elems) +
               " elems overflows region " + std::to_string(cmd.region) + " (" +
               std::to_string(state->size) + " elems)";
    report.add(std::move(d));
  }
  state->stored += cmd.elems;
}

void RegionTable::on_free(const Command& cmd, const Site& site,
                          ValidationReport& report) {
  RegionState* state = find(cmd.region);
  if (state == nullptr) {
    Diagnostic d = stream_diag(Code::kStreamBadFree, Severity::kError, site);
    d.detail = "free of region " + std::to_string(cmd.region) +
               ", which is not live (double free or never allocated)";
    report.add(std::move(d));
    return;
  }
  // One kind change is sanctioned: an ofmap handed to the next layer is
  // freed by its consumer as that layer's ifmap (inter-layer reuse).  A
  // hand-off free names the consumer's ifmap view of the window, which
  // can be smaller or larger than the producer's allocation (zoo trunks
  // resize maps between layers, see V012); the allocator releases the
  // whole region regardless, so no size check applies to hand-offs.
  const bool handoff = state->kind == DataKind::kOfmap &&
                       cmd.kind == DataKind::kIfmap &&
                       state->birth_layer < site.layer_index;
  if (cmd.kind != state->kind && !handoff) {
    Diagnostic d = stream_diag(Code::kStreamMalformed, Severity::kError, site);
    d.expected = std::string(codegen::to_string(state->kind));
    d.actual = std::string(codegen::to_string(cmd.kind));
    d.detail = "free kind disagrees with region " +
               std::to_string(cmd.region) + "'s allocation kind";
    report.add(std::move(d));
  }
  const bool size_ok =
      handoff || cmd.elems == 0 || cmd.elems == state->size;
  if (!size_ok) {
    Diagnostic d = stream_diag(Code::kStreamMalformed, Severity::kError, site);
    d.expected = std::to_string(state->size);
    d.actual = std::to_string(cmd.elems);
    d.detail = "free size disagrees with region " +
               std::to_string(cmd.region) + "'s allocation size";
    report.add(std::move(d));
  }
  if (state->loaded > 0 && !state->computed && state->stored == 0) {
    Diagnostic d =
        stream_diag(Code::kStreamDeadLoad, Severity::kWarning, site);
    d.detail = "region " + std::to_string(cmd.region) + " received " +
               std::to_string(state->loaded) +
               " elems from DRAM but no compute consumed them and nothing "
               "was stored back";
    report.add(std::move(d));
  }
  live_sum_ -= state->size;
  if (state->placed) {
    glb_.release(state->slot);
  }
  live_.erase(cmd.region);
}

void RegionTable::end_layer(const Site& site, ValidationReport& report) {
  std::size_t survivors = 0;
  for (auto& [id, state] : live_) {
    if (state.birth_layer < site.layer_index) {
      // The hand-off window is exactly one layer boundary: a persisted
      // ofmap must be consumed — and freed — by the very next layer.
      if (!state.leak_reported) {
        Diagnostic d = layer_diag(Code::kStreamRegionLeak, Severity::kError,
                                  site.layer_index, site.layer_name);
        d.detail = "region " + std::to_string(id) + " born in layer " +
                   std::to_string(state.birth_layer) +
                   " is still live past its hand-off window";
        report.add(std::move(d));
        state.leak_reported = true;
      }
      continue;
    }
    ++survivors;
    if (state.kind != DataKind::kOfmap && !state.leak_reported) {
      Diagnostic d = layer_diag(Code::kStreamRegionLeak, Severity::kError,
                                site.layer_index, site.layer_name);
      d.detail = "region " + std::to_string(id) + " of kind " +
                 std::string(codegen::to_string(state.kind)) +
                 " outlives its layer; only an ofmap may be handed onward";
      report.add(std::move(d));
      state.leak_reported = true;
    }
  }
  if (survivors > 1) {
    Diagnostic d = layer_diag(Code::kStreamRegionLeak, Severity::kError,
                              site.layer_index, site.layer_name);
    d.expected = "<= 1";
    d.actual = std::to_string(survivors);
    d.detail = "more than one region born in this layer survives it; the "
               "hand-off carries a single ofmap";
    report.add(std::move(d));
  }
}

void RegionTable::end_program(ValidationReport& report) {
  for (const auto& [id, state] : live_) {
    if (state.leak_reported) {
      continue;
    }
    Diagnostic d;
    d.code = Code::kStreamRegionLeak;
    d.severity = Severity::kError;
    d.layer = state.birth_layer;
    d.context = "program end";
    d.detail = "region " + std::to_string(id) + " (" +
               std::to_string(state.size) +
               " elems) is still live at the end of the program";
    report.add(std::move(d));
  }
}

}  // namespace rainbow::analysis
