// DMA <-> compute hazard checking: the concurrency half of the stream
// analyzer.  Commands between two kBarriers form one epoch; under
// prefetching everything in an epoch may be in flight simultaneously (the
// engine's two-resource model starts a compute against all previously
// issued loads and overlaps later DMA with it), so ordering inside an
// epoch is only safe when the data dependencies hold structurally.  This
// is exactly the correctness property Eq. 2's doubled footprint exists to
// buy: the barrier drains the epoch before its regions are freed.
//
// Diagnostics emitted here: S006 (compute consumes a region no load has
// filled), S007 (store precedes the layer's first compute), S008 (prefetch
// layer frees or ends with an undrained epoch), S009 (serial layer not
// barrier-terminated — benign under serial semantics, hence a warning).
#pragma once

#include "analysis/lifetime.hpp"
#include "validate/diagnostics.hpp"

namespace rainbow::analysis {

/// Tracks one layer's barrier-delimited epochs.  Feed commands in program
/// order; call end_layer before moving to the next LayerProgram.
class HazardChecker {
 public:
  /// Resets all per-layer state (epoch flags and once-per-layer latches).
  void begin_layer();

  /// Any DMA transfer (load or store) joins the current epoch.
  void on_dma();

  /// S006: every input region born in this layer must have received data
  /// before the first compute that could consume it.  Marks regions so
  /// each is reported at most once per layer.
  void on_compute(RegionTable& regions, const Site& site,
                  validate::ValidationReport& report);

  /// S007: a store issued before the layer computed anything.
  void on_store(const Site& site, validate::ValidationReport& report);

  /// S008 (prefetch only): freeing a region while the epoch is undrained
  /// races the free against in-flight DMA or compute.
  void on_free(bool prefetch, const Site& site,
               validate::ValidationReport& report);

  /// A barrier drains the epoch.
  void on_barrier();

  /// S008/S009: a layer must not end with an undrained epoch — an error
  /// under prefetch (real hazard), a warning under serial semantics
  /// (structural convention).
  void end_layer(bool prefetch, std::size_t layer_index,
                 std::string_view layer_name,
                 validate::ValidationReport& report);

 private:
  bool dma_in_epoch_ = false;
  bool compute_in_epoch_ = false;
  bool layer_computed_ = false;
  bool store_reported_ = false;
  bool barrier_reported_ = false;

  [[nodiscard]] bool epoch_active() const {
    return dma_in_epoch_ || compute_in_epoch_;
  }
};

}  // namespace rainbow::analysis
