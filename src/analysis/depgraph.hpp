// Happens-before dependence graph over a lowered command stream.  One walk
// turns a codegen::Program into a partial order that models the overlap
// semantics the engine executes: three serial resources (the command
// sequencer, the DRAM channel, the PE array) plus the synchronization the
// hardware actually performs — computes wait for previously issued loads,
// stores wait for their producing compute, barriers join everything, and
// Eq. 2 double buffering lets the in-flight DMA of one phase run genuinely
// concurrent with the compute of the other.  On top of the graph sit the
// vector-clock race detector and reorder certifier (analysis/race.hpp) and
// a critical-path query that independently re-derives the engine's overlap
// latency.  Catalog and diagram: docs/static_analysis.md.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "codegen/command.hpp"

namespace rainbow::analysis {

/// Which serial hardware resource executes a command.  Each resource is a
/// totally ordered chain; the chain decomposition is what makes the
/// 3-wide vector clocks exact (see DepGraph::happens_before).
enum class DepResource : std::uint8_t {
  kControl = 0,  ///< alloc/free/barrier: issued synchronously in order
  kDma = 1,      ///< load/store: the single DRAM channel
  kPe = 2,       ///< compute: the PE array
};

inline constexpr std::size_t kDepResourceCount = 3;

enum class DepEdgeKind : std::uint8_t {
  /// Consecutive commands on the same reorderable serial resource (DMA
  /// channel order, PE order).  Not a semantic dependence: a reorderer may
  /// permute a chain, so certify_reorder ignores these.
  kResource,
  /// Issue-order synchronization the sequencer enforces: control-op chain
  /// order, control op -> later command, async command -> next barrier.
  kSync,
  /// A hardware wait: compute waits the loads issued before it, a store
  /// waits the compute that produced its data, and every command of a
  /// serial (non-prefetch) layer waits its predecessor.
  kWait,
  /// Double-buffer backpressure from Eq. 2: with footprints doubled, the
  /// refill of tile t only streams after the compute of tile t-2 retired
  /// (and a compute only starts after the store of tile t-2 drained).
  /// Ordering-only — the engine's latency model has no credit stalls, so
  /// critical_path() excludes these.
  kCredit,
  /// Region data dependence (RAW/WAR/WAW on the same GLB region and
  /// double-buffer phase).  These are the dependences the race detector
  /// *checks* for happens-before coverage and the constraints a certified
  /// reorder must linearly extend; they do not themselves order anything.
  kDep,
};

[[nodiscard]] std::string_view to_string(DepEdgeKind kind);

/// One region access a command performs, with the double-buffer phase it
/// touches.  phase -1 is "wild": the access conflicts with every phase
/// (control ops, serial layers, resident single-buffer regions).
struct RegionAccess {
  int region = -1;
  std::int8_t phase = -1;  ///< -1 wild, else 0/1 (refill-generation parity)
  bool write = false;
};

struct DepNode {
  std::uint32_t index = 0;   ///< node id == global issue position
  std::size_t layer = 0;     ///< position in Program::layers
  std::size_t command = 0;   ///< index within the layer's stream
  codegen::Command cmd;
  DepResource resource = DepResource::kControl;
  std::uint32_t chain_pos = 0;  ///< 1-based position on its resource chain
  double weight_cycles = 0.0;   ///< service time on its resource
  std::vector<RegionAccess> accesses;
};

struct DepEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  DepEdgeKind kind = DepEdgeKind::kDep;
};

/// Longest weighted path through the timing edges.
struct CriticalPath {
  double total_cycles = 0.0;
  /// Per-layer makespan contribution (indexed by position in
  /// Program::layers); sums to total_cycles.
  std::vector<double> layer_cycles;
  /// Node ids on one longest path, in execution order.
  std::vector<std::uint32_t> nodes;
};

class DepGraph {
 public:
  /// Builds the graph in one walk over the program.  Prefetch layers whose
  /// async commands carry monotone tile tags get the engine's DMA drain
  /// order (tile t's loads, then tile t-1's deferred store) and per-region
  /// refill-generation phases; untagged or irregular layers fall back to
  /// issue order with wild phases.  Serial layers are fully chained.
  /// Layers marked LayerProgram::scheduled (emitted by the certified
  /// stream optimizer) keep refill-generation phases but take the DMA
  /// channel in issue order, with per-tile waits: a compute waits the
  /// loads of the generation it consumes, a store waits its own tile's
  /// compute, and the Eq. 2 credits are keyed by tile.
  [[nodiscard]] static DepGraph build(const codegen::Program& program);

  [[nodiscard]] const std::vector<DepNode>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<DepEdge>& edges() const { return edges_; }

  /// Number of layers the program had; layer_site(l) gives the network
  /// layer index and name used for diagnostics.
  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] std::size_t layer_index(std::size_t layer) const {
    return layers_[layer].index;
  }
  [[nodiscard]] const std::string& layer_name(std::size_t layer) const {
    return layers_[layer].name;
  }

  /// Appends an explicit ordering edge (used by tests and by future passes
  /// that impose extra constraints).  Invalidates cached clocks.
  void add_edge(std::uint32_t from, std::uint32_t to, DepEdgeKind kind);

  /// True when the edge set (all kinds) admits no topological order — the
  /// schedule deadlocks.  Well-formed builds are always acyclic; cycles
  /// arise from add_edge or adversarial inputs.
  [[nodiscard]] bool is_cyclic() const;

  /// Deterministic topological order over all edges (lowest node id
  /// first); empty when cyclic.
  [[nodiscard]] std::vector<std::uint32_t> topological_order() const;

  /// Exact happens-before over the synchronization edges (kResource,
  /// kSync, kWait, kCredit — everything except kDep, which is what gets
  /// checked against this relation).  Implemented with one vector clock
  /// entry per resource chain, so queries are O(1) after an O(V+E)
  /// precompute.  Throws std::logic_error when the graph is cyclic.
  [[nodiscard]] bool happens_before(std::uint32_t a, std::uint32_t b) const;
  [[nodiscard]] bool ordered(std::uint32_t a, std::uint32_t b) const {
    return happens_before(a, b) || happens_before(b, a);
  }

  /// Longest weighted path over the timing edges (kResource, kSync,
  /// kWait).  kCredit and kDep carry no time: the engine's channel never
  /// stalls on credits, and kDep is checked, not enforced.  On a faithful
  /// lowering this reproduces engine::schedule_latency per layer (the
  /// cross-check behind S016).  Throws std::logic_error when cyclic.
  [[nodiscard]] CriticalPath critical_path() const;

 private:
  struct LayerSite {
    std::size_t index = 0;  ///< LayerProgram::layer_index (network layer)
    std::string name;
  };

  void ensure_closure() const;

  std::vector<DepNode> nodes_;
  std::vector<DepEdge> edges_;
  std::vector<LayerSite> layers_;

  // Lazily computed reachability cache: topological order, cyclicity, and
  // per-node chain clocks (max chain_pos reachable per resource, self
  // included).
  mutable bool closure_valid_ = false;
  mutable bool cyclic_ = false;
  mutable std::vector<std::uint32_t> topo_;
  mutable std::vector<std::array<std::uint32_t, kDepResourceCount>> clocks_;
};

}  // namespace rainbow::analysis
