#include "analysis/depgraph.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>

namespace rainbow::analysis {

std::string_view to_string(DepEdgeKind kind) {
  switch (kind) {
    case DepEdgeKind::kResource:
      return "resource";
    case DepEdgeKind::kSync:
      return "sync";
    case DepEdgeKind::kWait:
      return "wait";
    case DepEdgeKind::kCredit:
      return "credit";
    case DepEdgeKind::kDep:
      return "dep";
  }
  throw std::logic_error("to_string: invalid DepEdgeKind");
}

namespace {

using codegen::Command;

constexpr std::int8_t kWild = -1;
constexpr std::size_t kSlots = 3;  // phase 0, phase 1, wild

std::size_t slot_of(std::int8_t phase) {
  return phase < 0 ? 2 : static_cast<std::size_t>(phase);
}

bool slots_conflict(std::size_t a, std::size_t b) {
  return a == b || a == 2 || b == 2;
}

bool is_async(Command::Op op) {
  return op == Command::Op::kLoad || op == Command::Op::kStore ||
         op == Command::Op::kCompute;
}

DepResource resource_of(Command::Op op) {
  switch (op) {
    case Command::Op::kLoad:
    case Command::Op::kStore:
      return DepResource::kDma;
    case Command::Op::kCompute:
      return DepResource::kPe;
    case Command::Op::kAlloc:
    case Command::Op::kFree:
    case Command::Op::kBarrier:
      return DepResource::kControl;
  }
  throw std::logic_error("resource_of: invalid Command::Op");
}

/// How a layer's overlap is modeled.  Tagged needs prefetch plus the
/// lowered shape (monotone tile tags, no async past the barrier): only then
/// can the engine's DMA drain order and refill-generation phases be
/// reconstructed.  Scheduled is the optimizer's contract
/// (LayerProgram::scheduled): the issue order *is* the DMA channel order,
/// tile tags need not be monotone, and waits are per-tile (a compute waits
/// the loads of its own generation, a store waits its own tile's compute)
/// with the Eq. 2 credits keyed by tile.  Irregular prefetch streams
/// degrade to issue order with wild phases (sound: wild conflicts with
/// everything); serial layers are fully chained.
enum class LayerMode { kSerial, kFallback, kTagged, kScheduled };

LayerMode classify_layer(const codegen::LayerProgram& layer) {
  if (!layer.choice.prefetch) {
    return LayerMode::kSerial;
  }
  if (layer.scheduled) {
    // Scheduled streams keep the no-async-past-barrier and fully-tagged
    // requirements but drop monotonicity: a certified reorder hoists loads
    // ahead of earlier tiles' computes and parks stores behind later loads.
    bool barrier_seen = false;
    for (const Command& cmd : layer.commands) {
      if (cmd.op == Command::Op::kBarrier) {
        barrier_seen = true;
        continue;
      }
      if (!is_async(cmd.op)) {
        continue;
      }
      if (barrier_seen || cmd.tile < 0) {
        return LayerMode::kFallback;
      }
    }
    return LayerMode::kScheduled;
  }
  std::int32_t last_tile = 0;
  bool barrier_seen = false;
  for (const Command& cmd : layer.commands) {
    if (cmd.op == Command::Op::kBarrier) {
      barrier_seen = true;
      continue;
    }
    if (!is_async(cmd.op)) {
      continue;
    }
    if (barrier_seen || cmd.tile < 0 || cmd.tile < last_tile) {
      return LayerMode::kFallback;
    }
    last_tile = cmd.tile;
  }
  return LayerMode::kTagged;
}

/// Sorted distinct tile values of one region's loads (or stores) within a
/// layer: each distinct tile is one refill (drain) generation, and the
/// double-buffer phase of generation g is g % 2.  A region with fewer than
/// two generations is single-buffered/resident — its accesses stay wild.
struct TileGroups {
  std::vector<std::int32_t> tiles;

  void insert(std::int32_t tile) {
    auto it = std::lower_bound(tiles.begin(), tiles.end(), tile);
    if (it == tiles.end() || *it != tile) {
      tiles.insert(it, tile);
    }
  }
  [[nodiscard]] bool phased() const { return tiles.size() >= 2; }
  /// Index of the generation at exactly `tile` (must exist).
  [[nodiscard]] std::size_t index_of(std::int32_t tile) const {
    return static_cast<std::size_t>(
        std::lower_bound(tiles.begin(), tiles.end(), tile) - tiles.begin());
  }
  /// Index of the latest generation with tile <= `tile`; -1 when none.
  [[nodiscard]] std::ptrdiff_t latest_at(std::int32_t tile) const {
    return std::upper_bound(tiles.begin(), tiles.end(), tile) -
           tiles.begin() - 1;
  }
  /// Number of generations strictly before `tile`.
  [[nodiscard]] std::size_t count_before(std::int32_t tile) const {
    return static_cast<std::size_t>(
        std::lower_bound(tiles.begin(), tiles.end(), tile) - tiles.begin());
  }
};

/// Live-region facts the access model needs (a lightweight shadow of the
/// RegionTable: the full lifetime rules stay S-code turf).
struct RegionInfo {
  codegen::DataKind kind = codegen::DataKind::kIfmap;
  std::size_t birth_layer = 0;  ///< position in Program::layers
};

/// Per-region memory of the data-dependence builder.  Only the last write
/// per (chain-independent) slot and the reads since it are needed: earlier
/// accesses are ordered transitively through them.
struct DepState {
  std::array<std::int64_t, kSlots> last_write{-1, -1, -1};
  std::array<std::vector<std::uint32_t>, kSlots> reads;
};

}  // namespace

DepGraph DepGraph::build(const codegen::Program& program) {
  DepGraph g;
  const double bw = program.spec.elements_per_cycle();
  const double mac_rate = program.spec.effective_macs_per_cycle();

  // Global serial-chain state.
  std::array<std::int64_t, kDepResourceCount> tail{-1, -1, -1};
  std::array<std::uint32_t, kDepResourceCount> chain_len{0, 0, 0};
  std::int64_t last_ctrl = -1;
  std::int64_t last_pe = -1;
  std::int64_t last_load = -1;
  std::vector<std::uint32_t> asyncs_since_barrier;

  std::map<int, RegionInfo> live;
  std::map<int, DepState> dep;

  const auto add = [&g](std::int64_t from, std::uint32_t to, DepEdgeKind kind) {
    if (from >= 0 && static_cast<std::uint32_t>(from) != to) {
      g.edges_.push_back({static_cast<std::uint32_t>(from), to, kind});
    }
  };

  // Records one region access on `node`: emits the RAW/WAR/WAW kDep edges
  // against the remembered frontier, then advances it.
  const auto touch = [&](DepNode& node, int region, std::int8_t phase,
                         bool write) {
    node.accesses.push_back({region, phase, write});
    DepState& st = dep[region];
    const std::size_t s = slot_of(phase);
    if (write) {
      for (std::size_t q = 0; q < kSlots; ++q) {
        if (!slots_conflict(s, q)) {
          continue;
        }
        add(st.last_write[q], node.index, DepEdgeKind::kDep);  // WAW
        for (std::uint32_t rd : st.reads[q]) {
          add(rd, node.index, DepEdgeKind::kDep);  // WAR
        }
        st.reads[q].clear();
        if (q != s) {
          st.last_write[q] = -1;
        }
      }
      st.last_write[s] = node.index;
    } else {
      for (std::size_t q = 0; q < kSlots; ++q) {
        if (slots_conflict(s, q)) {
          add(st.last_write[q], node.index, DepEdgeKind::kDep);  // RAW
        }
      }
      st.reads[s].push_back(node.index);
    }
  };

  for (std::size_t li = 0; li < program.layers.size(); ++li) {
    const codegen::LayerProgram& layer = program.layers[li];
    g.layers_.push_back({layer.layer_index, layer.layer_name});
    const LayerMode mode = classify_layer(layer);

    // Create the layer's nodes up front (node id == global issue position)
    // so the chain-order pre-pass can reference them.
    const std::uint32_t first = static_cast<std::uint32_t>(g.nodes_.size());
    for (std::size_t ci = 0; ci < layer.commands.size(); ++ci) {
      const Command& cmd = layer.commands[ci];
      DepNode node;
      node.index = static_cast<std::uint32_t>(g.nodes_.size());
      node.layer = li;
      node.command = ci;
      node.cmd = cmd;
      node.resource = resource_of(cmd.op);
      if (node.resource == DepResource::kDma) {
        node.weight_cycles = static_cast<double>(cmd.elems) / bw;
      } else if (node.resource == DepResource::kPe) {
        node.weight_cycles = static_cast<double>(cmd.macs) / mac_rate;
      }
      g.nodes_.push_back(std::move(node));
    }

    // Refill/drain generations per region (tagged mode only).
    std::map<int, TileGroups> load_groups;
    std::map<int, TileGroups> store_groups;
    // Engine drain order of the layer's DMA nodes, and the chain node each
    // compute tile waits on (-1 = layer start).
    std::vector<std::uint32_t> dma_order;
    std::map<std::int32_t, std::int64_t> anchor;
    // Issue-ordered (tile, node) lists for the Eq. 2 credit edges.
    std::vector<std::pair<std::int32_t, std::uint32_t>> pe_by_issue;
    std::vector<std::pair<std::int32_t, std::uint32_t>> store_by_issue;
    // Scheduled-mode running state, keyed by tile (maps, not issue-sorted
    // vectors: a certified reorder may issue computes non-monotonically).
    std::map<int, std::map<std::int32_t, std::uint32_t>> sched_last_load;
    std::map<std::int32_t, std::uint32_t> sched_pe_by_tile;
    std::map<std::int32_t, std::uint32_t> sched_store_by_tile;
    const bool phased_mode =
        mode == LayerMode::kTagged || mode == LayerMode::kScheduled;

    if (mode == LayerMode::kTagged) {
      std::map<std::int32_t, std::vector<std::uint32_t>> loads_by_tile;
      std::map<std::int32_t, std::vector<std::uint32_t>> stores_by_tile;
      std::vector<std::int32_t> tiles;
      for (std::uint32_t n = first; n < g.nodes_.size(); ++n) {
        const Command& cmd = g.nodes_[n].cmd;
        if (!is_async(cmd.op)) {
          continue;
        }
        tiles.push_back(cmd.tile);
        if (cmd.op == Command::Op::kLoad) {
          loads_by_tile[cmd.tile].push_back(n);
          load_groups[cmd.region].insert(cmd.tile);
        } else if (cmd.op == Command::Op::kStore) {
          stores_by_tile[cmd.tile].push_back(n);
          store_groups[cmd.region].insert(cmd.tile);
        }
      }
      std::sort(tiles.begin(), tiles.end());
      tiles.erase(std::unique(tiles.begin(), tiles.end()), tiles.end());
      // Engine schedule step t: (1) the channel streams tile t's loads,
      // (2) the compute launches against the channel state *before* (3)
      // tile t-1's pending store drains behind those loads.
      std::vector<std::uint32_t> pending;
      std::int32_t pending_tile = 0;
      for (std::int32_t t : tiles) {
        if (!pending.empty() && pending_tile <= t - 2) {
          // Drained during an intermediate step with no commands.
          for (std::uint32_t n : pending) {
            dma_order.push_back(n);
          }
          pending.clear();
        }
        if (auto it = loads_by_tile.find(t); it != loads_by_tile.end()) {
          for (std::uint32_t n : it->second) {
            dma_order.push_back(n);
          }
        }
        anchor[t] = dma_order.empty()
                        ? -1
                        : static_cast<std::int64_t>(dma_order.back());
        if (!pending.empty()) {
          for (std::uint32_t n : pending) {
            dma_order.push_back(n);
          }
          pending.clear();
        }
        if (auto it = stores_by_tile.find(t); it != stores_by_tile.end()) {
          pending = it->second;
          pending_tile = t;
        }
      }
      for (std::uint32_t n : pending) {
        dma_order.push_back(n);
      }
    } else {
      // Scheduled and fallback layers take the DMA channel in issue order;
      // scheduled layers additionally keep the refill/drain generations so
      // phases and per-generation waits stay exact.
      for (std::uint32_t n = first; n < g.nodes_.size(); ++n) {
        const Command& cmd = g.nodes_[n].cmd;
        if (g.nodes_[n].resource == DepResource::kDma) {
          dma_order.push_back(n);
        }
        if (mode == LayerMode::kScheduled) {
          if (cmd.op == Command::Op::kLoad) {
            load_groups[cmd.region].insert(cmd.tile);
          } else if (cmd.op == Command::Op::kStore) {
            store_groups[cmd.region].insert(cmd.tile);
          }
        }
      }
    }

    // Thread the layer's DMA nodes onto the global channel chain in drain
    // order (chain_pos follows the chain, not issue order).
    for (std::uint32_t n : dma_order) {
      const auto r = static_cast<std::size_t>(DepResource::kDma);
      g.nodes_[n].chain_pos = ++chain_len[r];
      add(tail[r], n, DepEdgeKind::kResource);
      tail[r] = n;
    }

    // Issue walk: sync/wait/credit edges and the region access model.
    std::int64_t prev_in_layer = -1;
    for (std::uint32_t n = first; n < g.nodes_.size(); ++n) {
      DepNode& node = g.nodes_[n];
      const Command& cmd = node.cmd;
      switch (cmd.op) {
        case Command::Op::kAlloc:
        case Command::Op::kFree:
        case Command::Op::kBarrier: {
          const auto r = static_cast<std::size_t>(DepResource::kControl);
          node.chain_pos = ++chain_len[r];
          add(tail[r], n, DepEdgeKind::kSync);
          tail[r] = n;
          if (cmd.op == Command::Op::kBarrier) {
            for (std::uint32_t a : asyncs_since_barrier) {
              add(a, n, DepEdgeKind::kSync);
            }
            asyncs_since_barrier.clear();
          }
          last_ctrl = n;
          break;
        }
        case Command::Op::kLoad:
        case Command::Op::kStore:
        case Command::Op::kCompute: {
          if (node.resource == DepResource::kPe) {
            const auto r = static_cast<std::size_t>(DepResource::kPe);
            node.chain_pos = ++chain_len[r];
            add(tail[r], n, DepEdgeKind::kResource);
            tail[r] = n;
          }
          add(last_ctrl, n, DepEdgeKind::kSync);
          asyncs_since_barrier.push_back(n);
          if (mode == LayerMode::kTagged) {
            if (cmd.op == Command::Op::kCompute) {
              if (auto it = anchor.find(cmd.tile); it != anchor.end()) {
                add(it->second, n, DepEdgeKind::kWait);
              }
              // Eq. 2: this compute's output buffer was freed when the
              // store two phases back drained.
              auto it = std::upper_bound(
                  store_by_issue.begin(), store_by_issue.end(),
                  std::make_pair(cmd.tile - 2,
                                 std::numeric_limits<std::uint32_t>::max()));
              if (it != store_by_issue.begin()) {
                add(std::prev(it)->second, n, DepEdgeKind::kCredit);
              }
            } else if (cmd.op == Command::Op::kLoad) {
              // Eq. 2: this refill's buffer was released by the compute
              // two phases back.
              auto it = std::upper_bound(
                  pe_by_issue.begin(), pe_by_issue.end(),
                  std::make_pair(cmd.tile - 2,
                                 std::numeric_limits<std::uint32_t>::max()));
              if (it != pe_by_issue.begin()) {
                add(std::prev(it)->second, n, DepEdgeKind::kCredit);
              }
            } else {
              add(last_pe, n, DepEdgeKind::kWait);
            }
          } else if (mode == LayerMode::kScheduled) {
            if (cmd.op == Command::Op::kCompute) {
              // The compute launches once the loads of the generation it
              // consumes have streamed, per input region (not the whole
              // channel prefix: hoisted future refills don't gate it).
              for (const auto& [region, groups] : load_groups) {
                const std::ptrdiff_t gen = groups.latest_at(cmd.tile);
                if (gen < 0) {
                  continue;
                }
                const std::int32_t gt =
                    groups.tiles[static_cast<std::size_t>(gen)];
                if (auto rit = sched_last_load.find(region);
                    rit != sched_last_load.end()) {
                  if (auto tit = rit->second.find(gt);
                      tit != rit->second.end()) {
                    add(tit->second, n, DepEdgeKind::kWait);
                  }
                }
              }
              auto it = sched_store_by_tile.upper_bound(cmd.tile - 2);
              if (it != sched_store_by_tile.begin()) {
                add(std::prev(it)->second, n, DepEdgeKind::kCredit);
              }
            } else if (cmd.op == Command::Op::kLoad) {
              auto it = sched_pe_by_tile.upper_bound(cmd.tile - 2);
              if (it != sched_pe_by_tile.begin()) {
                add(std::prev(it)->second, n, DepEdgeKind::kCredit);
              }
            } else {
              if (auto it = sched_pe_by_tile.find(cmd.tile);
                  it != sched_pe_by_tile.end()) {
                add(it->second, n, DepEdgeKind::kWait);
              }
            }
          } else if (mode == LayerMode::kFallback) {
            if (cmd.op == Command::Op::kCompute) {
              add(last_load, n, DepEdgeKind::kWait);
            } else if (cmd.op == Command::Op::kStore) {
              add(last_pe, n, DepEdgeKind::kWait);
            }
          }
          if (cmd.op == Command::Op::kCompute) {
            last_pe = n;
            pe_by_issue.emplace_back(cmd.tile, n);
            if (mode == LayerMode::kScheduled) {
              sched_pe_by_tile[cmd.tile] = n;
            }
          } else if (cmd.op == Command::Op::kLoad) {
            last_load = n;
            if (mode == LayerMode::kScheduled) {
              sched_last_load[cmd.region][cmd.tile] = n;
            }
          } else {
            store_by_issue.emplace_back(cmd.tile, n);
            if (mode == LayerMode::kScheduled) {
              sched_store_by_tile[cmd.tile] = n;
            }
          }
          break;
        }
      }
      if (mode == LayerMode::kSerial) {
        // No overlap at all: every command waits its predecessor.
        add(prev_in_layer, n, DepEdgeKind::kWait);
        prev_in_layer = n;
      }

      // Region accesses and their phases.
      switch (cmd.op) {
        case Command::Op::kAlloc:
          live[cmd.region] = {cmd.kind, li};
          touch(node, cmd.region, kWild, /*write=*/true);
          break;
        case Command::Op::kFree:
          touch(node, cmd.region, kWild, /*write=*/true);
          live.erase(cmd.region);
          dep.erase(cmd.region);
          break;
        case Command::Op::kLoad: {
          std::int8_t phase = kWild;
          if (phased_mode) {
            if (auto it = load_groups.find(cmd.region);
                it != load_groups.end() && it->second.phased()) {
              phase = static_cast<std::int8_t>(it->second.index_of(cmd.tile) % 2);
            }
          }
          touch(node, cmd.region, phase, /*write=*/true);
          break;
        }
        case Command::Op::kStore: {
          std::int8_t phase = kWild;
          if (phased_mode) {
            if (auto it = store_groups.find(cmd.region);
                it != store_groups.end() && it->second.phased()) {
              phase = static_cast<std::int8_t>(it->second.index_of(cmd.tile) % 2);
            }
          }
          touch(node, cmd.region, phase, /*write=*/false);
          break;
        }
        case Command::Op::kCompute:
          // A compute writes its own layer's ofmap regions and reads every
          // other live region (inputs resident or streamed).
          for (const auto& [region, info] : live) {
            const bool writes =
                info.kind == codegen::DataKind::kOfmap && info.birth_layer == li;
            std::int8_t phase = kWild;
            if (phased_mode) {
              if (writes) {
                if (auto it = store_groups.find(region);
                    it != store_groups.end() && it->second.phased()) {
                  phase = static_cast<std::int8_t>(
                      it->second.count_before(cmd.tile) % 2);
                }
              } else {
                if (auto it = load_groups.find(region);
                    it != load_groups.end() && it->second.phased()) {
                  const std::ptrdiff_t gen = it->second.latest_at(cmd.tile);
                  if (gen >= 0) {
                    phase = static_cast<std::int8_t>(gen % 2);
                  }
                }
              }
            }
            touch(node, region, phase, writes);
          }
          break;
        case Command::Op::kBarrier:
          break;
      }
    }
  }
  return g;
}

void DepGraph::add_edge(std::uint32_t from, std::uint32_t to,
                        DepEdgeKind kind) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    throw std::out_of_range("DepGraph::add_edge: node index out of range");
  }
  edges_.push_back({from, to, kind});
  closure_valid_ = false;
}

void DepGraph::ensure_closure() const {
  if (closure_valid_) {
    return;
  }
  const std::size_t n = nodes_.size();
  topo_.clear();
  topo_.reserve(n);
  clocks_.assign(n, {0, 0, 0});
  cyclic_ = false;

  // Kahn over all edges, lowest node id first: deterministic order and a
  // definitive cycle verdict.
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::vector<std::uint32_t>> out(n);
  for (const DepEdge& e : edges_) {
    out[e.from].push_back(e.to);
    ++indegree[e.to];
  }
  std::priority_queue<std::uint32_t, std::vector<std::uint32_t>,
                      std::greater<>> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push(i);
    }
  }
  while (!ready.empty()) {
    const std::uint32_t u = ready.top();
    ready.pop();
    topo_.push_back(u);
    for (std::uint32_t v : out[u]) {
      if (--indegree[v] == 0) {
        ready.push(v);
      }
    }
  }
  if (topo_.size() != n) {
    cyclic_ = true;
    topo_.clear();
    closure_valid_ = true;
    return;
  }

  // Chain vector clocks over the synchronization edges: clocks_[v][c] is
  // the highest chain-c position known to happen before (or at) v.
  std::vector<std::vector<std::uint32_t>> in(n);
  for (const DepEdge& e : edges_) {
    if (e.kind != DepEdgeKind::kDep) {
      in[e.to].push_back(e.from);
    }
  }
  for (std::uint32_t v : topo_) {
    auto& clock = clocks_[v];
    for (std::uint32_t u : in[v]) {
      for (std::size_t c = 0; c < kDepResourceCount; ++c) {
        clock[c] = std::max(clock[c], clocks_[u][c]);
      }
    }
    const auto c = static_cast<std::size_t>(nodes_[v].resource);
    clock[c] = std::max(clock[c], nodes_[v].chain_pos);
  }
  closure_valid_ = true;
}

bool DepGraph::is_cyclic() const {
  ensure_closure();
  return cyclic_;
}

std::vector<std::uint32_t> DepGraph::topological_order() const {
  ensure_closure();
  return topo_;
}

bool DepGraph::happens_before(std::uint32_t a, std::uint32_t b) const {
  ensure_closure();
  if (cyclic_) {
    throw std::logic_error("DepGraph::happens_before: graph is cyclic");
  }
  if (a == b) {
    return false;
  }
  const auto chain = static_cast<std::size_t>(nodes_[a].resource);
  return clocks_[b][chain] >= nodes_[a].chain_pos;
}

CriticalPath DepGraph::critical_path() const {
  ensure_closure();
  if (cyclic_) {
    throw std::logic_error("DepGraph::critical_path: graph is cyclic");
  }
  const std::size_t n = nodes_.size();
  std::vector<std::vector<std::uint32_t>> in(n);
  for (const DepEdge& e : edges_) {
    if (e.kind == DepEdgeKind::kResource || e.kind == DepEdgeKind::kSync ||
        e.kind == DepEdgeKind::kWait) {
      in[e.to].push_back(e.from);
    }
  }
  std::vector<double> finish(n, 0.0);
  std::vector<std::int64_t> best_pred(n, -1);
  for (std::uint32_t v : topo_) {
    double start = 0.0;
    for (std::uint32_t u : in[v]) {
      if (finish[u] > start) {
        start = finish[u];
        best_pred[v] = u;
      }
    }
    finish[v] = start + nodes_[v].weight_cycles;
  }

  CriticalPath cp;
  cp.layer_cycles.assign(layers_.size(), 0.0);
  std::int64_t end_node = -1;
  // Per-layer makespans fall out of the running maximum of completion
  // times: barriers at layer boundaries make the per-layer maxima
  // monotone, so consecutive differences are each layer's contribution.
  std::vector<double> layer_end(layers_.size(), 0.0);
  for (std::uint32_t v = 0; v < n; ++v) {
    layer_end[nodes_[v].layer] = std::max(layer_end[nodes_[v].layer], finish[v]);
    if (end_node < 0 || finish[v] > finish[static_cast<std::uint32_t>(end_node)]) {
      end_node = v;
    }
  }
  double cum = 0.0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const double end = std::max(cum, layer_end[l]);
    cp.layer_cycles[l] = end - cum;
    cum = end;
  }
  cp.total_cycles = cum;
  for (std::int64_t v = end_node; v >= 0; v = best_pred[static_cast<std::uint32_t>(v)]) {
    cp.nodes.push_back(static_cast<std::uint32_t>(v));
  }
  std::reverse(cp.nodes.begin(), cp.nodes.end());
  return cp;
}

}  // namespace rainbow::analysis
