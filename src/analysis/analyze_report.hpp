// Shared core of the rainbow_analyze tool: one (model, GLB, policy)
// combination planned, lowered, and statically analyzed — stream
// invariants (S-codes), optional race detection over the dependence graph
// (R-codes), and the critical-path cross-check (S016) — plus the JSON
// report writer.  Lives in the library so rainbow_plan --analyze and the
// golden-file schema test drive exactly the code the CLI ships.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stream_analyzer.hpp"
#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "model/network.hpp"

namespace rainbow::analysis {

/// One planning configuration to lower and analyze.
struct AnalyzeCombo {
  std::string model;
  count_t glb_kib = 64;
  std::string policy;  ///< "het" or a short forced-policy label
  bool prefetch = false;
  bool interlayer = false;
  core::Objective objective = core::Objective::kAccesses;
};

/// Which analyses to run and how to report them.
struct AnalyzeOptions {
  int width_bits = 8;
  bool races = false;          ///< dependence-graph race detection (R-codes)
  bool critical_path = false;  ///< critical path vs engine latency (S016)
  bool optimize = false;       ///< certified stream optimizer (O-codes)
  bool strict = false;         ///< warnings also fail
  /// JSON "tool" field ("rainbow_analyze" unless another CLI reuses the
  /// writer, e.g. rainbow_opt).
  std::string tool = "rainbow_analyze";
};

struct ComboOutcome {
  AnalyzeCombo combo;
  std::string status;  ///< "ok", "findings", or "skipped (...)"
  /// Stream analysis result; race and critical-path diagnostics are
  /// merged into its report so one summary covers everything.
  AnalysisResult result;
  bool races_run = false;
  bool critical_path_run = false;
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;
  double graph_cycles = 0.0;   ///< dependence-graph critical path
  double engine_cycles = 0.0;  ///< engine overlap model, same plan
  /// Certified stream-optimizer outcome (--optimize); rejection O-codes
  /// are merged into result.report.
  bool optimize_run = false;
  bool opt_certified = false;
  std::size_t opt_layers_reordered = 0;
  std::size_t opt_commands_moved = 0;
  std::size_t opt_barriers_elided = 0;
  std::size_t opt_transfers_coalesced = 0;
  double opt_original_cycles = 0.0;   ///< depgraph critical path, input
  double opt_optimized_cycles = 0.0;  ///< same, certified output stream
  double opt_original_stall_cycles = 0.0;
  double opt_optimized_stall_cycles = 0.0;
};

[[nodiscard]] std::string combo_label(const AnalyzeCombo& combo);

/// Plans `combo` for `net`, lowers, and runs the requested analyses.
/// Infeasible or unplannable combos come back "skipped (...)" with an
/// empty result.  Thread-safe given a thread-safe cache (EvalCache is).
[[nodiscard]] ComboOutcome analyze_combo(
    const model::Network& net, const AnalyzeCombo& combo,
    const AnalyzeOptions& options,
    const std::shared_ptr<core::EvalCache>& cache);

/// The rainbow_analyze JSON schema (tests/data/analyze_report.json is the
/// golden copy): top-level tool/strict/races/critical_path/optimize, one
/// object per combo with its counts, optional race/critical_path/optimize
/// sub-objects, and diagnostics, then a total summary.
void write_json(const std::vector<ComboOutcome>& outcomes,
                const AnalyzeOptions& options, std::ostream& os);

}  // namespace rainbow::analysis
