#include "analysis/streamopt.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "analysis/depgraph.hpp"
#include "analysis/race.hpp"
#include "analysis/stream_analyzer.hpp"
#include "codegen/interpret.hpp"
#include "engine/engine.hpp"

namespace rainbow::analysis {

using codegen::Command;
using codegen::DataKind;
using validate::Code;
using validate::Diagnostic;
using validate::Severity;
using validate::ValidationReport;

namespace {

constexpr std::size_t kMaxDiagnostics = 8;

bool is_async(Command::Op op) {
  return op == Command::Op::kLoad || op == Command::Op::kStore ||
         op == Command::Op::kCompute;
}

Diagnostic opt_diag(Code code, std::string detail) {
  Diagnostic d;
  d.code = code;
  d.severity = Severity::kError;
  d.detail = std::move(detail);
  return d;
}

void add_capped(ValidationReport& report, Diagnostic d) {
  if (report.diagnostics().size() < kMaxDiagnostics) {
    report.add(std::move(d));
  }
}

/// Critical-path cycles not explained by either resource's busy time: per
/// layer, the makespan minus max(DMA busy, PE busy) — the stalls a better
/// order could in principle recover.
double stall_cycles(const DepGraph& graph, const CriticalPath& cp) {
  std::vector<double> dma(cp.layer_cycles.size(), 0.0);
  std::vector<double> pe(cp.layer_cycles.size(), 0.0);
  for (const DepNode& node : graph.nodes()) {
    if (node.resource == DepResource::kDma) {
      dma[node.layer] += node.weight_cycles;
    } else if (node.resource == DepResource::kPe) {
      pe[node.layer] += node.weight_cycles;
    }
  }
  double stall = 0.0;
  for (std::size_t l = 0; l < cp.layer_cycles.size(); ++l) {
    stall += std::max(0.0, cp.layer_cycles[l] - std::max(dma[l], pe[l]));
  }
  return stall;
}

/// A layer the list scheduler may touch: prefetch, every async tile-tagged
/// and monotone, none past the barrier — the same shape the dependence
/// graph models as kTagged, so the original's edges are trustworthy.
bool reorderable_layer(const codegen::LayerProgram& layer) {
  if (!layer.choice.prefetch || layer.scheduled) {
    return false;
  }
  std::int32_t last_tile = 0;
  bool barrier_seen = false;
  bool any_async = false;
  for (const Command& cmd : layer.commands) {
    if (cmd.op == Command::Op::kBarrier) {
      barrier_seen = true;
      continue;
    }
    if (!is_async(cmd.op)) {
      continue;
    }
    if (barrier_seen || cmd.tile < 0 || cmd.tile < last_tile) {
      return false;
    }
    last_tile = cmd.tile;
    any_async = true;
  }
  return any_async;
}

/// Greedy list scheduling over the layer's intra-layer kDep/kSync
/// constraint DAG (exactly the edge set certify_reorder enforces, so the
/// output is a legal reorder by construction).  Among ready commands,
/// refills go first, then computes, then drains, lowest tile first — the
/// order that hoists tile t+2's loads ahead of tile t's store and keeps
/// the channel streaming.
std::vector<Command> list_schedule(
    const std::vector<Command>& commands,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& constraints,
    std::size_t* moved) {
  const std::size_t n = commands.size();
  std::vector<std::vector<std::uint32_t>> out(n);
  std::vector<std::uint32_t> indegree(n, 0);
  for (const auto& [from, to] : constraints) {
    out[from].push_back(to);
    ++indegree[to];
  }
  const auto rank = [](const Command& cmd) {
    switch (cmd.op) {
      case Command::Op::kAlloc:
      case Command::Op::kFree:
      case Command::Op::kBarrier:
        return 0;  // sequencer ops keep their slots (kSync chains them)
      case Command::Op::kLoad:
        return 1;
      case Command::Op::kCompute:
        return 2;
      case Command::Op::kStore:
        return 3;
    }
    return 4;
  };
  using Key = std::tuple<int, std::int64_t, std::uint32_t>;
  std::priority_queue<Key, std::vector<Key>, std::greater<>> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push({rank(commands[i]), commands[i].tile, i});
    }
  }
  std::vector<Command> scheduled;
  scheduled.reserve(n);
  *moved = 0;
  while (!ready.empty()) {
    const std::uint32_t i = std::get<2>(ready.top());
    ready.pop();
    if (!(commands[scheduled.size()] == commands[i])) {
      ++*moved;
    }
    scheduled.push_back(commands[i]);
    for (std::uint32_t j : out[i]) {
      if (--indegree[j] == 0) {
        ready.push({rank(commands[j]), commands[j].tile, j});
      }
    }
  }
  if (scheduled.size() != n) {
    // Constraint cycle (possible only on an adversarial graph): bail out
    // to the identity order; the caller sees zero movement.
    *moved = 0;
    return commands;
  }
  return scheduled;
}

/// Builds the all-layers-optimized candidate.  `changed[l]` reports which
/// layers actually moved; those get LayerProgram::scheduled set.
codegen::Program reorder_candidate(const codegen::Program& program,
                                   const DepGraph& graph,
                                   std::vector<bool>& changed,
                                   std::vector<std::size_t>& moved) {
  const std::size_t layer_count = program.layers.size();
  changed.assign(layer_count, false);
  moved.assign(layer_count, 0);

  std::vector<bool> eligible(layer_count, false);
  for (std::size_t l = 0; l < layer_count; ++l) {
    eligible[l] = reorderable_layer(program.layers[l]);
  }

  // Intra-layer semantic constraints, in local command indices.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> local(
      layer_count);
  const auto& nodes = graph.nodes();
  for (const DepEdge& e : graph.edges()) {
    if (e.kind != DepEdgeKind::kDep && e.kind != DepEdgeKind::kSync) {
      continue;
    }
    const DepNode& from = nodes[e.from];
    const DepNode& to = nodes[e.to];
    if (from.layer != to.layer || !eligible[from.layer]) {
      continue;
    }
    local[from.layer].emplace_back(static_cast<std::uint32_t>(from.command),
                                   static_cast<std::uint32_t>(to.command));
  }

  codegen::Program candidate = program;
  for (std::size_t l = 0; l < layer_count; ++l) {
    if (!eligible[l]) {
      continue;
    }
    std::size_t layer_moved = 0;
    std::vector<Command> scheduled =
        list_schedule(program.layers[l].commands, local[l], &layer_moved);
    if (layer_moved == 0) {
      continue;
    }
    candidate.layers[l].commands = std::move(scheduled);
    candidate.layers[l].scheduled = true;
    changed[l] = true;
    moved[l] = layer_moved;
  }
  return candidate;
}

/// Pass (b): drops barriers with no async work since the previous sync
/// point (the R008 condition), except a layer's final barrier — serial
/// semantics and the S008/S009 termination rules keep that one.
codegen::Program elide_pass(const codegen::Program& program,
                            std::size_t* elided) {
  codegen::Program out = program;
  std::size_t asyncs = 0;
  for (codegen::LayerProgram& layer : out.layers) {
    std::ptrdiff_t last_barrier = -1;
    for (std::size_t i = 0; i < layer.commands.size(); ++i) {
      if (layer.commands[i].op == Command::Op::kBarrier) {
        last_barrier = static_cast<std::ptrdiff_t>(i);
      }
    }
    std::vector<Command> kept;
    kept.reserve(layer.commands.size());
    for (std::size_t i = 0; i < layer.commands.size(); ++i) {
      const Command& cmd = layer.commands[i];
      if (is_async(cmd.op)) {
        ++asyncs;
      } else if (cmd.op == Command::Op::kBarrier) {
        if (asyncs == 0 && static_cast<std::ptrdiff_t>(i) != last_barrier) {
          ++*elided;
          continue;  // redundant: drains nothing, and not the closer
        }
        asyncs = 0;
      }
      kept.push_back(cmd);
    }
    layer.commands = std::move(kept);
  }
  return out;
}

/// Pass (c): merges runs of adjacent transfers with the same (op, region,
/// kind, tile), keeping the first chunk's id, bounded by what S012 and the
/// interpreter allow (region size; GLB capacity for streaming ifmap
/// loads).  Region sizes are tracked across layers for inherited regions.
codegen::Program coalesce_pass(const codegen::Program& program,
                               std::size_t* merged) {
  codegen::Program out = program;
  const count_t capacity = program.spec.glb_elems();
  std::map<int, count_t> region_size;
  for (codegen::LayerProgram& layer : out.layers) {
    std::vector<Command> kept;
    kept.reserve(layer.commands.size());
    for (const Command& cmd : layer.commands) {
      switch (cmd.op) {
        case Command::Op::kAlloc:
          region_size[cmd.region] = cmd.elems;
          break;
        case Command::Op::kFree:
          region_size.erase(cmd.region);
          break;
        case Command::Op::kLoad:
        case Command::Op::kStore:
          if (!kept.empty()) {
            Command& prev = kept.back();
            const bool mergeable =
                prev.op == cmd.op && prev.region == cmd.region &&
                prev.kind == cmd.kind && prev.tile == cmd.tile;
            if (mergeable) {
              const bool streaming =
                  cmd.op == Command::Op::kLoad && cmd.kind == DataKind::kIfmap;
              const auto it = region_size.find(cmd.region);
              const count_t bound = streaming
                                        ? capacity
                                        : (it == region_size.end()
                                               ? count_t{0}
                                               : it->second);
              if (prev.elems + cmd.elems <= bound) {
                prev.elems += cmd.elems;
                ++*merged;
                continue;
              }
            }
          }
          break;
        case Command::Op::kCompute:
        case Command::Op::kBarrier:
          break;
      }
      kept.push_back(cmd);
    }
    layer.commands = std::move(kept);
  }
  return out;
}

bool layer_headers_match(const codegen::Program& a, const codegen::Program& b,
                         ValidationReport& report) {
  if (a.layers.size() != b.layers.size()) {
    add_capped(report,
               opt_diag(Code::kOptStructuralViolation,
                        "candidate has " + std::to_string(b.layers.size()) +
                            " layer(s), original " +
                            std::to_string(a.layers.size())));
    return false;
  }
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    if (a.layers[l].layer_index != b.layers[l].layer_index ||
        a.layers[l].layer_name != b.layers[l].layer_name) {
      add_capped(report, opt_diag(Code::kOptStructuralViolation,
                                  "layer " + std::to_string(l) +
                                      " metadata differs between original "
                                      "and candidate"));
      return false;
    }
  }
  return true;
}

ValidationReport check_reorder_stage_impl(const DepGraph* graph,
                                          const codegen::Program& original,
                                          const codegen::Program& candidate) {
  ValidationReport report;
  const CertifyResult certified =
      graph != nullptr ? certify_reorder(*graph, original, candidate)
                       : certify_reorder(original, candidate);
  if (certified.ok) {
    return report;
  }
  for (const Diagnostic& d : certified.report.diagnostics()) {
    Diagnostic o = d;
    o.code = Code::kOptReorderViolation;
    o.severity = Severity::kError;
    add_capped(report, std::move(o));
  }
  if (report.empty()) {
    add_capped(report, opt_diag(Code::kOptReorderViolation,
                                "candidate is not a certified reorder (" +
                                    std::to_string(certified.violations) +
                                    " dependence violation(s))"));
  }
  return report;
}

/// Per-layer tile sums, for the engine re-cost: order-independent, so the
/// original and any legal reorder rebuild the identical schedule.
std::vector<engine::TileOp> tile_ops_of(const codegen::LayerProgram& layer) {
  std::map<std::int32_t, engine::TileOp> by_tile;
  for (const Command& cmd : layer.commands) {
    if (cmd.tile < 0) {
      continue;
    }
    engine::TileOp& op = by_tile[cmd.tile];
    switch (cmd.op) {
      case Command::Op::kLoad:
        if (cmd.kind == DataKind::kFilter) {
          op.load_filter += cmd.elems;
        } else {
          op.load_ifmap += cmd.elems;
        }
        break;
      case Command::Op::kStore:
        op.store_ofmap += cmd.elems;
        break;
      case Command::Op::kCompute:
        op.macs += cmd.macs;
        break;
      default:
        break;
    }
  }
  std::vector<engine::TileOp> ops;
  ops.reserve(by_tile.size());
  for (const auto& [tile, op] : by_tile) {
    ops.push_back(op);
  }
  return ops;
}

struct SemanticsOutcome {
  ValidationReport report;
  CriticalPath cp;
  double stall = 0.0;
};

SemanticsOutcome check_semantics_impl(const codegen::Program& original,
                                      const DepGraph& original_graph,
                                      const CriticalPath& original_cp,
                                      const codegen::Program& candidate,
                                      const core::ExecutionPlan* plan,
                                      const model::Network* network) {
  SemanticsOutcome out;

  // O002: the optimized stream must be race-free under its own graph.
  const DepGraph graph = DepGraph::build(candidate);
  const RaceReport races = analyze_races(graph);
  if (!races.ok()) {
    std::size_t shown = 0;
    for (const Diagnostic& d : races.report.diagnostics()) {
      if (d.severity != Severity::kError || shown++ >= kMaxDiagnostics) {
        continue;
      }
      add_capped(out.report,
                 opt_diag(Code::kOptRaceIntroduced,
                          "optimized stream is racy: " + d.message()));
    }
    return out;
  }

  // O003: clean under the stream analyzer (with the plan cross-checks
  // when the caller has the plan).
  const AnalysisResult streams =
      (plan != nullptr && network != nullptr)
          ? analyze_lowering(candidate, *plan, *network)
          : analyze_stream(candidate);
  if (!streams.ok()) {
    std::size_t shown = 0;
    for (const Diagnostic& d : streams.report.diagnostics()) {
      if (d.severity != Severity::kError || shown++ >= kMaxDiagnostics) {
        continue;
      }
      add_capped(out.report,
                 opt_diag(Code::kOptStreamRegression,
                          "optimized stream fails analysis: " + d.message()));
    }
    return out;
  }

  // O004: differential interpretation.  Latency is deliberately excluded
  // (the interpreter replays issue order; a hoisted stream's issue-order
  // latency is not the overlap latency — the graph owns timing).
  const codegen::Interpreter interp(original.spec);
  codegen::ProgramRun before;
  codegen::ProgramRun after;
  try {
    before = interp.run(original);
  } catch (const std::runtime_error& e) {
    add_capped(out.report,
               opt_diag(Code::kOptSemanticsDiverged,
                        std::string("original stream fails to interpret: ") +
                            e.what()));
    return out;
  }
  try {
    after = interp.run(candidate);
  } catch (const std::runtime_error& e) {
    add_capped(out.report,
               opt_diag(Code::kOptSemanticsDiverged,
                        std::string("optimized stream fails to interpret: ") +
                            e.what()));
    return out;
  }
  if (before.layers.size() != after.layers.size() ||
      before.total_accesses != after.total_accesses ||
      before.peak_glb_elems != after.peak_glb_elems) {
    add_capped(out.report,
               opt_diag(Code::kOptSemanticsDiverged,
                        "program totals diverge (accesses " +
                            std::to_string(before.total_accesses) + " -> " +
                            std::to_string(after.total_accesses) +
                            ", GLB peak " +
                            std::to_string(before.peak_glb_elems) + " -> " +
                            std::to_string(after.peak_glb_elems) + ")"));
    return out;
  }
  for (std::size_t l = 0; l < before.layers.size(); ++l) {
    const codegen::LayerRun& a = before.layers[l];
    const codegen::LayerRun& b = after.layers[l];
    if (!(a.traffic == b.traffic) || a.macs != b.macs ||
        a.peak_glb_elems != b.peak_glb_elems) {
      add_capped(out.report,
                 opt_diag(Code::kOptSemanticsDiverged,
                          "layer " + std::to_string(l) +
                              " diverges under interpretation (traffic, "
                              "MACs, or GLB peak)"));
      return out;
    }
  }

  // O005, part 1: re-cost through the engine's own latency model.  Tile
  // sums are order-independent, so a size-conserving rewrite rebuilds the
  // identical schedule; any divergence or regression rejects.
  const double bw = original.spec.elements_per_cycle();
  const double mac_rate = original.spec.effective_macs_per_cycle();
  for (std::size_t l = 0; l < original.layers.size(); ++l) {
    const bool prefetch = original.layers[l].choice.prefetch;
    const double engine_before =
        engine::schedule_latency(tile_ops_of(original.layers[l]), bw,
                                 mac_rate, prefetch);
    const double engine_after =
        engine::schedule_latency(tile_ops_of(candidate.layers[l]), bw,
                                 mac_rate, prefetch);
    if (engine_after > engine_before * (1.0 + 1e-9)) {
      add_capped(out.report,
                 opt_diag(Code::kOptLatencyRegressed,
                          "layer " + std::to_string(l) +
                              " regresses under engine::schedule_latency (" +
                              std::to_string(engine_before) + " -> " +
                              std::to_string(engine_after) + " cycles)"));
      return out;
    }
  }

  // O005, part 2: the dependence-graph critical path must not grow.
  if (graph.is_cyclic()) {
    add_capped(out.report, opt_diag(Code::kOptRaceIntroduced,
                                    "optimized stream's dependence graph is "
                                    "cyclic"));
    return out;
  }
  out.cp = graph.critical_path();
  out.stall = stall_cycles(graph, out.cp);
  if (out.cp.total_cycles > original_cp.total_cycles * (1.0 + 1e-9)) {
    add_capped(out.report,
               opt_diag(Code::kOptLatencyRegressed,
                        "critical path grew from " +
                            std::to_string(original_cp.total_cycles) +
                            " to " + std::to_string(out.cp.total_cycles) +
                            " cycles"));
  }
  (void)original_graph;
  return out;
}

OptimizeResult optimize_impl(const codegen::Program& program,
                             const core::ExecutionPlan* plan,
                             const model::Network* network,
                             const StreamOptOptions& options) {
  OptimizeResult result;
  result.program = program;

  const DepGraph g0 = DepGraph::build(program);
  if (g0.is_cyclic()) {
    result.report.add(opt_diag(Code::kOptStructuralViolation,
                               "input stream's dependence graph is cyclic; "
                               "nothing to optimize soundly"));
    return result;
  }
  const CriticalPath cp0 = g0.critical_path();
  result.original_cycles = cp0.total_cycles;
  result.original_stall_cycles = stall_cycles(g0, cp0);
  result.optimized_cycles = result.original_cycles;
  result.optimized_stall_cycles = result.original_stall_cycles;

  result.layers.resize(program.layers.size());
  for (std::size_t l = 0; l < program.layers.size(); ++l) {
    result.layers[l].layer_index = program.layers[l].layer_index;
    result.layers[l].layer_name = program.layers[l].layer_name;
    result.layers[l].original_cycles = cp0.layer_cycles[l];
    result.layers[l].optimized_cycles = cp0.layer_cycles[l];
  }

  // Reordering needs the stable ids certify_reorder matches by.
  bool tagged = true;
  for (const codegen::LayerProgram& layer : program.layers) {
    for (const Command& cmd : layer.commands) {
      if (cmd.id == 0) {
        tagged = false;
        break;
      }
    }
  }

  codegen::Program current = program;
  bool any_change = false;

  if (options.reorder && tagged) {
    std::vector<bool> changed;
    std::vector<std::size_t> moved;
    codegen::Program candidate =
        reorder_candidate(program, g0, changed, moved);
    const bool any_candidate =
        std::find(changed.begin(), changed.end(), true) != changed.end();
    if (any_candidate) {
      const DepGraph g1 = DepGraph::build(candidate);
      std::vector<bool> keep(changed.size(), false);
      if (!g1.is_cyclic()) {
        // Revert any layer the new model flags racy, then any that did
        // not improve its own critical-path contribution.
        std::vector<bool> racy(changed.size(), false);
        const RaceReport races = analyze_races(g1);
        for (const Diagnostic& d : races.report.diagnostics()) {
          if (d.severity != Severity::kError || !d.layer) {
            continue;
          }
          for (std::size_t l = 0; l < candidate.layers.size(); ++l) {
            if (candidate.layers[l].layer_index == *d.layer) {
              racy[l] = true;
            }
          }
        }
        const CriticalPath cp1 = g1.critical_path();
        for (std::size_t l = 0; l < changed.size(); ++l) {
          if (!changed[l] || racy[l]) {
            continue;
          }
          const double tol =
              options.min_gain_rel * std::max(1.0, cp0.layer_cycles[l]);
          keep[l] = cp1.layer_cycles[l] + tol < cp0.layer_cycles[l];
        }
      }
      for (std::size_t l = 0; l < keep.size(); ++l) {
        if (!keep[l] && changed[l]) {
          candidate.layers[l] = program.layers[l];
          changed[l] = false;
          moved[l] = 0;
        }
      }
      if (std::find(changed.begin(), changed.end(), true) != changed.end()) {
        const ValidationReport gate =
            check_reorder_stage_impl(&g0, program, candidate);
        if (!gate.ok()) {
          result.report.merge(gate);
          return result;  // optimizer bug: reject, return the original
        }
        current = std::move(candidate);
        any_change = true;
        for (std::size_t l = 0; l < changed.size(); ++l) {
          if (changed[l]) {
            ++result.layers_reordered;
            result.commands_moved += moved[l];
            result.layers[l].reordered = true;
            result.layers[l].commands_moved = moved[l];
          }
        }
      }
    }
  }

  if (options.elide_barriers) {
    std::size_t elided = 0;
    codegen::Program next = elide_pass(current, &elided);
    if (elided > 0) {
      const ValidationReport gate = check_elision_stage(current, next);
      if (!gate.ok()) {
        result.report.merge(gate);
        return result;
      }
      current = std::move(next);
      result.barriers_elided = elided;
      any_change = true;
    }
  }

  if (options.coalesce) {
    std::size_t merged = 0;
    codegen::Program next = coalesce_pass(current, &merged);
    if (merged > 0) {
      const ValidationReport gate = check_coalesce_stage(current, next);
      if (!gate.ok()) {
        result.report.merge(gate);
        return result;
      }
      current = std::move(next);
      result.transfers_coalesced = merged;
      any_change = true;
    }
  }

  if (!any_change) {
    result.certified = true;  // identity: trivially equivalent
    return result;
  }

  SemanticsOutcome sem =
      check_semantics_impl(program, g0, cp0, current, plan, network);
  if (!sem.report.ok()) {
    result.report.merge(sem.report);
    result.layers_reordered = 0;
    result.commands_moved = 0;
    result.barriers_elided = 0;
    result.transfers_coalesced = 0;
    for (LayerOptStats& stats : result.layers) {
      stats.reordered = false;
      stats.commands_moved = 0;
    }
    return result;
  }

  result.program = std::move(current);
  result.certified = true;
  result.optimized_cycles = sem.cp.total_cycles;
  result.optimized_stall_cycles = sem.stall;
  for (std::size_t l = 0; l < result.layers.size(); ++l) {
    result.layers[l].optimized_cycles = sem.cp.layer_cycles[l];
  }
  return result;
}

}  // namespace

OptimizeResult optimize_program(const codegen::Program& program,
                                const StreamOptOptions& options) {
  return optimize_impl(program, nullptr, nullptr, options);
}

OptimizeResult optimize_program(const codegen::Program& program,
                                const core::ExecutionPlan& plan,
                                const model::Network& network,
                                const StreamOptOptions& options) {
  return optimize_impl(program, &plan, &network, options);
}

ValidationReport check_reorder_stage(const codegen::Program& original,
                                     const codegen::Program& candidate) {
  return check_reorder_stage_impl(nullptr, original, candidate);
}

ValidationReport check_elision_stage(const codegen::Program& original,
                                     const codegen::Program& candidate) {
  ValidationReport report;
  if (!layer_headers_match(original, candidate, report)) {
    return report;
  }
  std::size_t asyncs = 0;
  for (std::size_t l = 0; l < original.layers.size(); ++l) {
    const auto& orig = original.layers[l].commands;
    const auto& cand = candidate.layers[l].commands;
    std::size_t j = 0;
    for (const Command& cmd : orig) {
      if (j < cand.size() && cand[j] == cmd) {
        ++j;
      } else if (cmd.op != Command::Op::kBarrier) {
        add_capped(report,
                   opt_diag(Code::kOptStructuralViolation,
                            "layer " + std::to_string(l) +
                                " drops a non-barrier command (only "
                                "redundant barriers may be elided)"));
        return report;
      } else if (asyncs != 0) {
        add_capped(report,
                   opt_diag(Code::kOptStructuralViolation,
                            "layer " + std::to_string(l) +
                                " elides a barrier that drains " +
                                std::to_string(asyncs) +
                                " in-flight command(s)"));
        return report;
      }
      if (is_async(cmd.op)) {
        ++asyncs;
      } else if (cmd.op == Command::Op::kBarrier) {
        asyncs = 0;
      }
    }
    if (j != cand.size()) {
      add_capped(report, opt_diag(Code::kOptStructuralViolation,
                                  "layer " + std::to_string(l) + " adds " +
                                      std::to_string(cand.size() - j) +
                                      " command(s) absent in the original"));
      return report;
    }
  }
  return report;
}

ValidationReport check_coalesce_stage(const codegen::Program& original,
                                      const codegen::Program& candidate) {
  ValidationReport report;
  if (!layer_headers_match(original, candidate, report)) {
    return report;
  }
  const count_t capacity = original.spec.glb_elems();
  std::map<int, count_t> region_size;
  for (std::size_t l = 0; l < original.layers.size(); ++l) {
    const auto& orig = original.layers[l].commands;
    const auto& cand = candidate.layers[l].commands;
    std::size_t i = 0;
    for (const Command& cmd : cand) {
      if (i < orig.size() && orig[i] == cmd) {
        if (cmd.op == Command::Op::kAlloc) {
          region_size[cmd.region] = cmd.elems;
        } else if (cmd.op == Command::Op::kFree) {
          region_size.erase(cmd.region);
        }
        ++i;
        continue;
      }
      if (cmd.op != Command::Op::kLoad && cmd.op != Command::Op::kStore) {
        add_capped(report,
                   opt_diag(Code::kOptStructuralViolation,
                            "layer " + std::to_string(l) +
                                " rewrites a non-transfer command (only "
                                "adjacent DMA chunks may be merged)"));
        return report;
      }
      // Must be a merged run of adjacent same-shape chunks starting here.
      count_t sum = 0;
      bool first = true;
      while (i < orig.size() && sum < cmd.elems) {
        const Command& chunk = orig[i];
        if (chunk.op != cmd.op || chunk.region != cmd.region ||
            chunk.kind != cmd.kind || chunk.tile != cmd.tile ||
            (first && chunk.id != cmd.id)) {
          break;
        }
        sum += chunk.elems;
        first = false;
        ++i;
      }
      if (sum != cmd.elems) {
        add_capped(report,
                   opt_diag(Code::kOptStructuralViolation,
                            "layer " + std::to_string(l) +
                                " merged transfer of " +
                                std::to_string(cmd.elems) +
                                " elems does not match a run of adjacent "
                                "chunks (matched " + std::to_string(sum) +
                                ")"));
        return report;
      }
      const bool streaming =
          cmd.op == Command::Op::kLoad && cmd.kind == DataKind::kIfmap;
      const auto it = region_size.find(cmd.region);
      const count_t bound =
          streaming ? capacity
                    : (it == region_size.end() ? count_t{0} : it->second);
      if (cmd.elems > bound) {
        add_capped(report,
                   opt_diag(Code::kOptStructuralViolation,
                            "layer " + std::to_string(l) +
                                " merged transfer of " +
                                std::to_string(cmd.elems) +
                                " elems overflows its bound of " +
                                std::to_string(bound) + " elems"));
        return report;
      }
    }
    if (i != orig.size()) {
      add_capped(report, opt_diag(Code::kOptStructuralViolation,
                                  "layer " + std::to_string(l) + " drops " +
                                      std::to_string(orig.size() - i) +
                                      " command(s) of the original"));
      return report;
    }
  }
  return report;
}

ValidationReport check_semantics(const codegen::Program& original,
                                 const codegen::Program& candidate,
                                 const core::ExecutionPlan* plan,
                                 const model::Network* network,
                                 double* original_cycles,
                                 double* optimized_cycles) {
  const DepGraph g0 = DepGraph::build(original);
  if (g0.is_cyclic()) {
    ValidationReport report;
    report.add(opt_diag(Code::kOptStructuralViolation,
                        "original stream's dependence graph is cyclic"));
    return report;
  }
  const CriticalPath cp0 = g0.critical_path();
  SemanticsOutcome out =
      check_semantics_impl(original, g0, cp0, candidate, plan, network);
  if (original_cycles != nullptr) {
    *original_cycles = cp0.total_cycles;
  }
  if (optimized_cycles != nullptr) {
    *optimized_cycles = out.cp.total_cycles;
  }
  return out.report;
}

}  // namespace rainbow::analysis
