#include "analysis/stream_analyzer.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/hazards.hpp"
#include "analysis/lifetime.hpp"
#include "core/estimator.hpp"

namespace rainbow::analysis {
namespace {

using codegen::Command;
using codegen::DataKind;
using validate::Code;
using validate::Diagnostic;
using validate::Severity;
using validate::ValidationReport;

void add_malformed(const Site& site, std::string detail,
                   ValidationReport& report) {
  Diagnostic d = stream_diag(Code::kStreamMalformed, Severity::kError, site);
  d.detail = std::move(detail);
  report.add(std::move(d));
}

/// True when the command is well-formed enough to feed the region table
/// (a negative region id has nothing to anchor abstract state to).
bool check_shape(const Command& cmd, const Site& site,
                 ValidationReport& report) {
  switch (cmd.op) {
    case Command::Op::kAlloc:
    case Command::Op::kLoad:
    case Command::Op::kStore:
      if (cmd.region < 0) {
        add_malformed(site,
                      std::string(codegen::to_string(cmd.op)) +
                          " carries a negative region id",
                      report);
        return false;
      }
      if (cmd.elems == 0) {
        add_malformed(site,
                      std::string(codegen::to_string(cmd.op)) +
                          " of zero elements (region " +
                          std::to_string(cmd.region) + ")",
                      report);
      }
      return true;
    case Command::Op::kFree:
      if (cmd.region < 0) {
        add_malformed(site, "free carries a negative region id", report);
        return false;
      }
      return true;
    case Command::Op::kCompute:
      if (cmd.macs == 0) {
        add_malformed(site, "compute of zero MACs", report);
      }
      return true;
    case Command::Op::kBarrier:
      return true;
  }
  return true;
}

AnalysisResult walk(const codegen::Program& program) {
  AnalysisResult result;
  result.capacity_elems = program.spec.glb_elems();
  RegionTable regions(result.capacity_elems);
  HazardChecker hazards;

  for (const codegen::LayerProgram& layer : program.layers) {
    regions.begin_layer();
    hazards.begin_layer();
    LayerAnalysis la;
    la.layer_index = layer.layer_index;
    la.layer_name = layer.layer_name;
    la.choice = layer.choice;
    la.commands = layer.commands.size();
    Site site{layer.layer_index, layer.layer_name, 0};
    for (std::size_t i = 0; i < layer.commands.size(); ++i) {
      const Command& cmd = layer.commands[i];
      site.command = i;
      if (!check_shape(cmd, site, result.report)) {
        continue;
      }
      switch (cmd.op) {
        case Command::Op::kAlloc:
          la.allocs.emplace_back(cmd.kind, cmd.elems);
          regions.on_alloc(cmd, site, result.report);
          break;
        case Command::Op::kLoad:
          if (cmd.kind == DataKind::kIfmap) {
            la.sums.ifmap_loads += cmd.elems;
          } else if (cmd.kind == DataKind::kFilter) {
            la.sums.filter_loads += cmd.elems;
          }
          hazards.on_dma();
          regions.on_load(cmd, site, result.report);
          break;
        case Command::Op::kCompute:
          la.sums.macs += cmd.macs;
          hazards.on_compute(regions, site, result.report);
          break;
        case Command::Op::kStore:
          la.sums.ofmap_stores += cmd.elems;
          hazards.on_store(site, result.report);
          regions.on_store(cmd, site, result.report);
          break;
        case Command::Op::kFree:
          hazards.on_free(layer.choice.prefetch, site, result.report);
          regions.on_free(cmd, site, result.report);
          break;
        case Command::Op::kBarrier:
          ++la.barriers;
          hazards.on_barrier();
          break;
      }
    }
    hazards.end_layer(layer.choice.prefetch, layer.layer_index,
                      layer.layer_name, result.report);
    site.command = layer.commands.size();
    regions.end_layer(site, result.report);
    la.peak_live_elems = regions.layer_peak_elems();
    result.layers.push_back(std::move(la));
  }
  regions.end_program(result.report);
  result.peak_live_elems = regions.peak_live_elems();
  result.glb_peak_elems = regions.glb_peak_elems();
  result.regions = regions.regions_seen();
  result.commands = program.total_commands();
  return result;
}

std::string format_allocs(
    const std::vector<std::pair<DataKind, count_t>>& allocs) {
  std::string out;
  for (const auto& [kind, elems] : allocs) {
    if (!out.empty()) {
      out += ", ";
    }
    out += std::string(codegen::to_string(kind)) + ":" + std::to_string(elems);
  }
  return out.empty() ? "none" : out;
}

Diagnostic cross_diag(Code code, const LayerAnalysis& la) {
  return layer_diag(code, Severity::kError, la.layer_index, la.layer_name);
}

core::InterlayerAdjust adjust_of(const core::LayerAssignment& assignment) {
  return {.ifmap_resident = assignment.ifmap_from_glb,
          .keep_ofmap = assignment.ofmap_stays_in_glb};
}

/// S014/S015 for one layer: the stream must realize exactly the footprint
/// and the tile schedule the plan claims for it.  `inherited_elems` is the
/// size of the producer's kept ofmap when this layer reads its ifmap from
/// the GLB (it can exceed the layer's own ifmap term: zoo trunks shrink
/// maps between layers, see V012), nullopt otherwise.
void cross_check_layer(const LayerAnalysis& la,
                       const core::LayerAssignment& assignment,
                       const model::Network& network,
                       std::optional<count_t> inherited_elems,
                       ValidationReport& report) {
  if (la.layer_index != assignment.layer_index ||
      assignment.layer_index >= network.size()) {
    Diagnostic d = cross_diag(Code::kStreamFootprintMismatch, la);
    d.expected = std::to_string(assignment.layer_index);
    d.actual = std::to_string(la.layer_index);
    d.detail = "stream layer order disagrees with the plan's assignments";
    report.add(std::move(d));
    return;
  }
  const core::PolicyChoice& claimed = assignment.estimate.choice;
  if (la.choice != claimed) {
    Diagnostic d = cross_diag(Code::kStreamFootprintMismatch, la);
    d.expected = core::short_label(claimed.policy, claimed.prefetch);
    d.actual = core::short_label(la.choice.policy, la.choice.prefetch);
    d.detail = "stream policy choice differs from the plan's (policy, "
               "prefetch, or tiling parameters)";
    report.add(std::move(d));
  }
  const model::Layer& layer = network.layer(assignment.layer_index);
  const core::InterlayerAdjust adjust = adjust_of(assignment);
  const core::Footprint footprint =
      core::planned_footprint(layer, claimed, adjust);

  std::vector<std::pair<DataKind, count_t>> expected;
  if (!assignment.ifmap_from_glb) {
    expected.emplace_back(DataKind::kIfmap, footprint.ifmap);
  }
  expected.emplace_back(DataKind::kFilter, footprint.filter);
  expected.emplace_back(DataKind::kOfmap, footprint.ofmap);
  if (la.allocs != expected) {
    Diagnostic d = cross_diag(Code::kStreamFootprintMismatch, la);
    d.expected = format_allocs(expected);
    d.actual = format_allocs(la.allocs);
    d.detail = "stream allocations differ from the plan's footprint terms";
    report.add(std::move(d));
  }
  // The peak a faithful lowering realizes: the plan's footprint terms —
  // with the inherited window's true size in place of the ifmap term,
  // since the producer hands over its whole kept ofmap.
  const count_t expected_peak =
      inherited_elems ? *inherited_elems + footprint.filter + footprint.ofmap
                      : footprint.total();
  if (la.peak_live_elems != expected_peak) {
    Diagnostic d = cross_diag(Code::kStreamFootprintMismatch, la);
    d.expected = std::to_string(expected_peak);
    d.actual = std::to_string(la.peak_live_elems);
    d.detail = "peak live occupancy while the layer ran differs from the "
               "plan's claimed footprint total";
    report.add(std::move(d));
  }

  try {
    const engine::ScheduleTotals claimed_sums =
        engine::totals(engine::build_schedule(layer, claimed, adjust));
    const bool match = la.sums.ifmap_loads == claimed_sums.ifmap_loads &&
                       la.sums.filter_loads == claimed_sums.filter_loads &&
                       la.sums.ofmap_stores == claimed_sums.ofmap_stores &&
                       la.sums.macs == claimed_sums.macs;
    if (!match) {
      Diagnostic d = cross_diag(Code::kStreamScheduleMismatch, la);
      d.expected = "ifmap=" + std::to_string(claimed_sums.ifmap_loads) +
                   " filter=" + std::to_string(claimed_sums.filter_loads) +
                   " ofmap=" + std::to_string(claimed_sums.ofmap_stores) +
                   " macs=" + std::to_string(claimed_sums.macs);
      d.actual = "ifmap=" + std::to_string(la.sums.ifmap_loads) +
                 " filter=" + std::to_string(la.sums.filter_loads) +
                 " ofmap=" + std::to_string(la.sums.ofmap_stores) +
                 " macs=" + std::to_string(la.sums.macs);
      d.detail = "per-layer command sums differ from the totals of the "
                 "schedule the plan implies";
      report.add(std::move(d));
    }
  } catch (const std::invalid_argument& e) {
    Diagnostic d = cross_diag(Code::kStreamScheduleMismatch, la);
    d.detail = std::string("the plan's schedule could not be rebuilt for "
                           "comparison: ") +
               e.what();
    report.add(std::move(d));
  }
}

}  // namespace

AnalysisResult analyze_stream(const codegen::Program& program) {
  return walk(program);
}

AnalysisResult analyze_lowering(const codegen::Program& program,
                                const core::ExecutionPlan& plan,
                                const model::Network& network) {
  AnalysisResult result = walk(program);
  if (program.layers.size() != plan.size() ||
      plan.size() != network.size()) {
    Diagnostic d;
    d.code = Code::kStreamFootprintMismatch;
    d.severity = Severity::kError;
    d.context = "program";
    d.expected = std::to_string(plan.size()) + " layers";
    d.actual = std::to_string(program.layers.size()) + " layers";
    d.detail = "stream/plan/network layer counts disagree; per-layer "
               "cross-checks skipped";
    result.report.add(std::move(d));
    return result;
  }
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    const core::LayerAssignment& assignment = plan.assignment(i);
    std::optional<count_t> inherited;
    if (assignment.ifmap_from_glb && i > 0) {
      const core::LayerAssignment& producer = plan.assignment(i - 1);
      if (producer.layer_index < network.size()) {
        inherited = core::planned_footprint(
                        network.layer(producer.layer_index),
                        producer.estimate.choice, adjust_of(producer))
                        .ofmap;
      }
    }
    cross_check_layer(result.layers[i], assignment, network, inherited,
                      result.report);
  }
  return result;
}

}  // namespace rainbow::analysis
