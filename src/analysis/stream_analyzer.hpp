// Static analyzer for lowered command streams: abstractly interprets every
// codegen::LayerProgram without executing it, combining the lifetime state
// machine (analysis/lifetime.hpp) and the epoch hazard checker
// (analysis/hazards.hpp) into one walk, and — when the originating plan is
// available — cross-checking the stream against the plan's claims: the
// footprint the allocs realize (S014) and the schedule the commands sum to
// (S015).  The PlanValidator proves a Plan consistent with the paper's
// closed forms; this module proves the *lowering* of that plan consistent
// with the Plan.  Catalog: docs/static_analysis.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "codegen/command.hpp"
#include "core/plan.hpp"
#include "engine/schedule.hpp"
#include "model/network.hpp"
#include "util/units.hpp"
#include "validate/diagnostics.hpp"

namespace rainbow::analysis {

/// Per-layer facts gathered during the walk (also the inputs to the
/// S014/S015 cross-checks, and to the well-formedness property tests).
struct LayerAnalysis {
  std::size_t layer_index = 0;
  std::string layer_name;
  core::PolicyChoice choice;
  std::size_t commands = 0;
  std::size_t barriers = 0;
  /// Max simultaneous live elements while this layer ran (equals the
  /// plan's claimed footprint total on a faithful lowering).
  count_t peak_live_elems = 0;
  /// What the layer's transfer/compute commands sum to, in the same shape
  /// the engine reports for a schedule.
  engine::ScheduleTotals sums;
  /// (kind, elems) of each kAlloc, in stream order.
  std::vector<std::pair<codegen::DataKind, count_t>> allocs;
};

/// Everything one analysis run produced.
struct AnalysisResult {
  validate::ValidationReport report;
  std::vector<LayerAnalysis> layers;
  count_t capacity_elems = 0;
  /// Interval-graph lower bound on the GLB this stream needs.
  count_t peak_live_elems = 0;
  /// Peak of the engine::Glb first-fit replay (>= peak_live_elems).
  count_t glb_peak_elems = 0;
  std::size_t regions = 0;
  std::size_t commands = 0;

  [[nodiscard]] bool ok() const { return report.ok(); }
  [[nodiscard]] bool clean() const { return report.empty(); }
};

/// Analyzes a stream on its own: lifetimes, occupancy, epochs, structural
/// well-formedness (S001-S013).
[[nodiscard]] AnalysisResult analyze_stream(const codegen::Program& program);

/// Same walk plus the plan cross-checks (S014/S015).  `plan` must be the
/// plan `program` was lowered from and `network` the model it plans.
[[nodiscard]] AnalysisResult analyze_lowering(const codegen::Program& program,
                                              const core::ExecutionPlan& plan,
                                              const model::Network& network);

}  // namespace rainbow::analysis
