// MnasNet-B1 (Tan et al., CVPR 2019), 224x224 input.  53 counted layers:
// stem conv, one depthwise-separable unit, 16 MBConv blocks (3 layers each,
// no squeeze-and-excite in the B1 variant), the 1x1 head convolution, and
// the classifier.
#include "model/zoo/zoo.hpp"

#include "model/zoo/builders.hpp"

namespace rainbow::model::zoo {

Network mnasnet() {
  Network net("MnasNet");
  Cursor cur{224, 224, 3};
  net.add(make_conv("conv1", cur.h, cur.w, cur.c, 3, 3, 32, 2, 1));
  cur = {112, 112, 32};

  append_separable(net, cur, "sepconv", 3, 1, 16);

  // (expansion t, channels c, repeats n, first stride s, kernel k) per the
  // MnasNet-B1 architecture table.
  struct Group {
    int t, c, n, s, k;
  };
  const Group groups[] = {{3, 24, 3, 2, 3},  {3, 40, 3, 2, 5},
                          {6, 80, 3, 2, 5},  {6, 96, 2, 1, 3},
                          {6, 192, 4, 2, 5}, {6, 320, 1, 1, 3}};
  int block_id = 1;
  for (const Group& g : groups) {
    for (int i = 0; i < g.n; ++i) {
      const int stride = (i == 0) ? g.s : 1;
      append_mbconv(net, cur, "block" + std::to_string(block_id++), g.k,
                    stride, g.t, g.c, /*squeeze_excite=*/false);
    }
  }

  net.add(make_pointwise("conv_head", cur.h, cur.w, cur.c, 1280));
  // Global average pool -> classifier.
  net.add(make_fully_connected("fc", 1280, 1000));
  return net;
}

}  // namespace rainbow::model::zoo
