// Shared building blocks for the model zoo: depthwise-separable units,
// MobileNetV2/MnasNet/EfficientNet inverted-residual (MBConv) blocks with
// optional squeeze-and-excite, and GoogLeNet inception modules.  Each helper
// appends the serialized layer sequence the paper's layer-by-layer execution
// model sees and advances a spatial cursor.
#pragma once

#include <string>

#include "model/network.hpp"

namespace rainbow::model::zoo {

/// Tracks the running feature-map shape while a builder appends layers.
struct Cursor {
  int h = 0;
  int w = 0;
  int c = 0;
};

/// MobileNet-v1 style depthwise-separable block: DW kxk + PW 1x1.
void append_separable(Network& net, Cursor& cur, const std::string& name,
                      int kernel, int stride, int out_channels);

/// Inverted residual (MBConv) block: optional PW expansion (expand > 1),
/// DW kxk with `stride`, optional squeeze-and-excite pair (two FC layers on
/// the globally pooled activation, reduction ratio relative to the block
/// input channels), PW projection to `out_channels`.
void append_mbconv(Network& net, Cursor& cur, const std::string& name,
                   int kernel, int stride, int expand, int out_channels,
                   bool squeeze_excite, int se_ratio = 4);

/// GoogLeNet inception module.  Four parallel branches, serialized in order:
/// PW b1; PW reduce3 + CV 3x3 b3; PW reduce5 + CV 5x5 b5; pool-projection PW
/// bp.  All branches consume the module input (recorded via add_branch), and
/// the cursor advances to the concatenated channel count.
void append_inception(Network& net, Cursor& cur, const std::string& name,
                      int b1, int reduce3, int b3, int reduce5, int b5,
                      int bp);

}  // namespace rainbow::model::zoo
