// MobileNetV2 (Sandler et al., CVPR 2018), width 1.0, 224x224 input.
// 53 counted layers: stem conv, 17 inverted-residual blocks (the first with
// expansion 1 contributes 2 layers, the remaining 16 contribute 3 each),
// the 1x1 head convolution, and the classifier.
#include "model/zoo/zoo.hpp"

#include "model/zoo/builders.hpp"

namespace rainbow::model::zoo {

Network mobilenetv2() {
  Network net("MobileNetV2");
  Cursor cur{224, 224, 3};
  net.add(make_conv("conv1", cur.h, cur.w, cur.c, 3, 3, 32, 2, 1));
  cur = {112, 112, 32};

  // (expansion t, output channels c, repeats n, first stride s) per the
  // MobileNetV2 paper, all 3x3 depthwise kernels.
  struct Group {
    int t, c, n, s;
  };
  const Group groups[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
                          {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
                          {6, 320, 1, 1}};
  int block_id = 1;
  for (const Group& g : groups) {
    for (int i = 0; i < g.n; ++i) {
      const int stride = (i == 0) ? g.s : 1;
      append_mbconv(net, cur, "block" + std::to_string(block_id++), 3, stride,
                    g.t, g.c, /*squeeze_excite=*/false);
    }
  }

  net.add(make_pointwise("conv_head", cur.h, cur.w, cur.c, 1280));
  // Global average pool -> classifier.
  net.add(make_fully_connected("fc", 1280, 1000));
  return net;
}

}  // namespace rainbow::model::zoo
