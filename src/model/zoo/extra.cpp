// Extra classic networks beyond the paper's six — useful for users sizing
// buffers for older, weight-heavy workloads.  VGG-16 (Simonyan & Zisserman
// 2015) and single-tower AlexNet (Krizhevsky et al. 2012, without the
// original's grouped convolutions), ImageNet configurations; pooling
// layers are not counted, matching the zoo convention.
#include "model/zoo/zoo.hpp"

namespace rainbow::model::zoo {

Network vgg16() {
  Network net("VGG16");
  auto stage = [&](const char* name, int size, int in_c, int out_c,
                   int convs) {
    for (int i = 0; i < convs; ++i) {
      net.add(make_conv(std::string(name) + "_" + std::to_string(i + 1), size,
                        size, i == 0 ? in_c : out_c, 3, 3, out_c, 1, 1));
    }
    // max-pool 2x2/2 follows each stage (not counted).
  };
  stage("conv1", 224, 3, 64, 2);
  stage("conv2", 112, 64, 128, 2);
  stage("conv3", 56, 128, 256, 3);
  stage("conv4", 28, 256, 512, 3);
  stage("conv5", 14, 512, 512, 3);
  net.add(make_fully_connected("fc6", 7 * 7 * 512, 4096));
  net.add(make_fully_connected("fc7", 4096, 4096));
  net.add(make_fully_connected("fc8", 4096, 1000));
  return net;
}

Network alexnet() {
  Network net("AlexNet");
  net.add(make_conv("conv1", 227, 227, 3, 11, 11, 96, 4, 0));
  // max-pool 3x3/2 -> 27x27x96
  net.add(make_conv("conv2", 27, 27, 96, 5, 5, 256, 1, 2));
  // max-pool 3x3/2 -> 13x13x256
  net.add(make_conv("conv3", 13, 13, 256, 3, 3, 384, 1, 1));
  net.add(make_conv("conv4", 13, 13, 384, 3, 3, 384, 1, 1));
  net.add(make_conv("conv5", 13, 13, 384, 3, 3, 256, 1, 1));
  // max-pool 3x3/2 -> 6x6x256
  net.add(make_fully_connected("fc6", 6 * 6 * 256, 4096));
  net.add(make_fully_connected("fc7", 4096, 4096));
  net.add(make_fully_connected("fc8", 4096, 1000));
  return net;
}

}  // namespace rainbow::model::zoo
