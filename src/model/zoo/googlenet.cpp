// GoogLeNet / Inception-v1 (Szegedy et al., CVPR 2015), 224x224 input.
// 64 counted layers: 3 stem convolutions, 9 inception modules of 6
// convolutions each, the classifier, and the two auxiliary heads (1x1 conv +
// two dense layers each).  Pool layers are not counted.
#include "model/zoo/zoo.hpp"

#include "model/zoo/builders.hpp"

namespace rainbow::model::zoo {

namespace {

// Auxiliary classifier: 5x5/3 average pool to 4x4, 1x1 conv to 128
// channels, dense 2048 -> 1024, dense 1024 -> 1000.  All three counted
// layers branch off `tap` (the inception module the head observes).
void append_aux_head(Network& net, const std::string& name, std::size_t tap,
                     int channels) {
  net.add_branch(make_pointwise(name + "_conv", 4, 4, channels, 128), tap);
  net.add(make_fully_connected(name + "_fc1", 4 * 4 * 128, 1024));
  net.add(make_fully_connected(name + "_fc2", 1024, 1000));
}

}  // namespace

Network googlenet() {
  Network net("GoogLeNet");
  net.add(make_conv("conv1", 224, 224, 3, 7, 7, 64, 2, 3));
  // max-pool 3x3/2 -> 56x56x64
  net.add(make_pointwise("conv2_reduce", 56, 56, 64, 64));
  net.add(make_conv("conv2", 56, 56, 64, 3, 3, 192, 1, 1));
  // max-pool 3x3/2 -> 28x28x192

  Cursor cur{28, 28, 192};
  append_inception(net, cur, "3a", 64, 96, 128, 16, 32, 32);
  append_inception(net, cur, "3b", 128, 128, 192, 32, 96, 64);
  // max-pool 3x3/2 -> 14x14x480
  cur.h = cur.w = 14;
  append_inception(net, cur, "4a", 192, 96, 208, 16, 48, 64);
  const std::size_t aux1_tap = net.size() - 1;
  append_inception(net, cur, "4b", 160, 112, 224, 24, 64, 64);
  append_inception(net, cur, "4c", 128, 128, 256, 24, 64, 64);
  append_inception(net, cur, "4d", 112, 144, 288, 32, 64, 64);
  const std::size_t aux2_tap = net.size() - 1;
  const int aux2_channels = cur.c;
  append_inception(net, cur, "4e", 256, 160, 320, 32, 128, 128);
  // max-pool 3x3/2 -> 7x7x832
  cur.h = cur.w = 7;
  append_inception(net, cur, "5a", 256, 160, 320, 32, 128, 128);
  append_inception(net, cur, "5b", 384, 192, 384, 48, 128, 128);

  // Global average pool -> classifier.
  net.add(make_fully_connected("fc", 1024, 1000));

  append_aux_head(net, "aux1", aux1_tap, 512);
  append_aux_head(net, "aux2", aux2_tap, aux2_channels);
  return net;
}

}  // namespace rainbow::model::zoo
