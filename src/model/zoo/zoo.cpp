#include "model/zoo/zoo.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

namespace rainbow::model::zoo {

std::vector<Network> all_models() {
  std::vector<Network> models;
  models.push_back(efficientnetb0());
  models.push_back(googlenet());
  models.push_back(mnasnet());
  models.push_back(mobilenet());
  models.push_back(mobilenetv2());
  models.push_back(resnet18());
  return models;
}

Network by_name(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "efficientnetb0") return efficientnetb0();
  if (lower == "googlenet") return googlenet();
  if (lower == "mnasnet") return mnasnet();
  if (lower == "mobilenet") return mobilenet();
  if (lower == "mobilenetv2") return mobilenetv2();
  if (lower == "resnet18") return resnet18();
  if (lower == "vgg16") return vgg16();
  if (lower == "alexnet") return alexnet();
  throw std::invalid_argument("zoo::by_name: unknown model '" + name + "'");
}

std::vector<std::string> model_names() {
  return {"EfficientNetB0", "GoogLeNet", "MnasNet",
          "MobileNet",      "MobileNetV2", "ResNet18"};
}

}  // namespace rainbow::model::zoo
