// MobileNet v1 (Howard et al., 2017), width multiplier 1.0, 224x224 input.
// 28 counted layers: the stem convolution, 13 depthwise-separable pairs,
// and the classifier.
#include "model/zoo/zoo.hpp"

#include "model/zoo/builders.hpp"

namespace rainbow::model::zoo {

Network mobilenet() {
  Network net("MobileNet");
  Cursor cur{224, 224, 3};
  net.add(make_conv("conv1", cur.h, cur.w, cur.c, 3, 3, 32, 2, 1));
  cur = {112, 112, 32};

  append_separable(net, cur, "sep1", 3, 1, 64);
  append_separable(net, cur, "sep2", 3, 2, 128);
  append_separable(net, cur, "sep3", 3, 1, 128);
  append_separable(net, cur, "sep4", 3, 2, 256);
  append_separable(net, cur, "sep5", 3, 1, 256);
  append_separable(net, cur, "sep6", 3, 2, 512);
  for (int i = 0; i < 5; ++i) {
    append_separable(net, cur, "sep" + std::to_string(7 + i), 3, 1, 512);
  }
  append_separable(net, cur, "sep12", 3, 2, 1024);
  append_separable(net, cur, "sep13", 3, 1, 1024);

  // Global average pool -> classifier.
  net.add(make_fully_connected("fc", 1024, 1000));
  return net;
}

}  // namespace rainbow::model::zoo
