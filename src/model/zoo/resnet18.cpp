// ResNet-18 (He et al., CVPR 2016), ImageNet configuration, 21 counted
// layers: 17 convolutions (conv1 + 8 basic blocks x 2), 3 projection
// shortcuts at the stage transitions, and the final classifier.  The 3x3/2
// max-pool after conv1 and the global average pool are not counted.
#include "model/zoo/zoo.hpp"

namespace rainbow::model::zoo {

Network resnet18() {
  Network net("ResNet18");
  net.add(make_conv("conv1", 224, 224, 3, 7, 7, 64, 2, 3));
  // max-pool 3x3/2 -> 56x56x64

  // Stage 1: two basic blocks at 56x56, 64 channels.
  net.add(make_conv("conv2_1a", 56, 56, 64, 3, 3, 64, 1, 1));
  net.add(make_conv("conv2_1b", 56, 56, 64, 3, 3, 64, 1, 1));
  net.add(make_conv("conv2_2a", 56, 56, 64, 3, 3, 64, 1, 1));
  net.add(make_conv("conv2_2b", 56, 56, 64, 3, 3, 64, 1, 1));
  const std::size_t stage1_out = net.size() - 1;

  // Stage 2: downsampling block (with 1x1/2 projection shortcut) + one block.
  net.add(make_conv("conv3_1a", 56, 56, 64, 3, 3, 128, 2, 1));
  net.add(make_conv("conv3_1b", 28, 28, 128, 3, 3, 128, 1, 1));
  net.add_branch(make_projection("conv3_proj", 56, 56, 64, 128, 2), stage1_out);
  net.add(make_conv("conv3_2a", 28, 28, 128, 3, 3, 128, 1, 1));
  net.add(make_conv("conv3_2b", 28, 28, 128, 3, 3, 128, 1, 1));
  const std::size_t stage2_out = net.size() - 1;

  // Stage 3.
  net.add(make_conv("conv4_1a", 28, 28, 128, 3, 3, 256, 2, 1));
  net.add(make_conv("conv4_1b", 14, 14, 256, 3, 3, 256, 1, 1));
  net.add_branch(make_projection("conv4_proj", 28, 28, 128, 256, 2), stage2_out);
  net.add(make_conv("conv4_2a", 14, 14, 256, 3, 3, 256, 1, 1));
  net.add(make_conv("conv4_2b", 14, 14, 256, 3, 3, 256, 1, 1));
  const std::size_t stage3_out = net.size() - 1;

  // Stage 4.
  net.add(make_conv("conv5_1a", 14, 14, 256, 3, 3, 512, 2, 1));
  net.add(make_conv("conv5_1b", 7, 7, 512, 3, 3, 512, 1, 1));
  net.add_branch(make_projection("conv5_proj", 14, 14, 256, 512, 2), stage3_out);
  net.add(make_conv("conv5_2a", 7, 7, 512, 3, 3, 512, 1, 1));
  net.add(make_conv("conv5_2b", 7, 7, 512, 3, 3, 512, 1, 1));

  // Global average pool -> classifier.
  net.add(make_fully_connected("fc", 512, 1000));
  return net;
}

}  // namespace rainbow::model::zoo
