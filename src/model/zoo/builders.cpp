#include "model/zoo/builders.hpp"

#include <algorithm>
#include <stdexcept>

namespace rainbow::model::zoo {

void append_separable(Network& net, Cursor& cur, const std::string& name,
                      int kernel, int stride, int out_channels) {
  net.add(make_depthwise(name + "_dw", cur.h, cur.w, cur.c, kernel, kernel,
                         stride, kernel / 2));
  cur.h = net.layers().back().ofmap_h();
  cur.w = net.layers().back().ofmap_w();
  net.add(make_pointwise(name + "_pw", cur.h, cur.w, cur.c, out_channels));
  cur.c = out_channels;
}

void append_mbconv(Network& net, Cursor& cur, const std::string& name,
                   int kernel, int stride, int expand, int out_channels,
                   bool squeeze_excite, int se_ratio) {
  if (expand < 1) {
    throw std::invalid_argument("append_mbconv: expand must be >= 1");
  }
  const int in_channels = cur.c;
  int width = cur.c;
  if (expand > 1) {
    width = cur.c * expand;
    net.add(make_pointwise(name + "_expand", cur.h, cur.w, cur.c, width));
  }
  net.add(make_depthwise(name + "_dw", cur.h, cur.w, width, kernel, kernel,
                         stride, kernel / 2));
  cur.h = net.layers().back().ofmap_h();
  cur.w = net.layers().back().ofmap_w();
  if (squeeze_excite) {
    // SE acts on the globally pooled DW output: two dense layers squeezing
    // to in_channels / se_ratio and exciting back to the expanded width.
    const int squeezed = std::max(1, in_channels / se_ratio);
    net.add(make_fully_connected(name + "_se_squeeze", width, squeezed));
    net.add(make_fully_connected(name + "_se_excite", squeezed, width));
  }
  net.add(make_pointwise(name + "_project", cur.h, cur.w, width, out_channels));
  cur.c = out_channels;
}

void append_inception(Network& net, Cursor& cur, const std::string& name,
                      int b1, int reduce3, int b3, int reduce5, int b5,
                      int bp) {
  // All four branches read the module input.  The first serialized branch
  // follows the trunk directly; the others are recorded as branches so the
  // inter-layer-reuse pass knows they do not consume their predecessor.
  const std::size_t input_index = net.size() - 1;
  net.add(make_pointwise(name + "_1x1", cur.h, cur.w, cur.c, b1));
  net.add_branch(make_pointwise(name + "_3x3_reduce", cur.h, cur.w, cur.c,
                                reduce3),
                 input_index);
  net.add(make_conv(name + "_3x3", cur.h, cur.w, reduce3, 3, 3, b3, 1, 1));
  net.add_branch(make_pointwise(name + "_5x5_reduce", cur.h, cur.w, cur.c,
                                reduce5),
                 input_index);
  net.add(make_conv(name + "_5x5", cur.h, cur.w, reduce5, 5, 5, b5, 1, 2));
  net.add_branch(make_pointwise(name + "_pool_proj", cur.h, cur.w, cur.c, bp),
                 input_index);
  cur.c = b1 + b3 + b5 + bp;
}

}  // namespace rainbow::model::zoo
