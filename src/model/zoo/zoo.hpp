// The six CNNs evaluated in the paper (Table 2), hand-encoded from the
// original architecture papers.  Layer counts match Table 2 exactly:
// EfficientNetB0 82, GoogLeNet 64, MnasNet 53, MobileNet 28, MobileNetV2 53,
// ResNet18 21.  Pooling, activation, and element-wise layers are not counted
// (they move no filter data and the paper's layer tables exclude them);
// residual/branch connections are serialized per Section 4.
#pragma once

#include <string>
#include <vector>

#include "model/network.hpp"

namespace rainbow::model::zoo {

[[nodiscard]] Network resnet18();
[[nodiscard]] Network mobilenet();
[[nodiscard]] Network mobilenetv2();
[[nodiscard]] Network mnasnet();
[[nodiscard]] Network googlenet();
[[nodiscard]] Network efficientnetb0();

/// Extra classics beyond the paper's evaluation (weight-dominated
/// workloads a buffer-sizing user may care about).
[[nodiscard]] Network vgg16();
[[nodiscard]] Network alexnet();

/// All six models in the paper's alphabetical reporting order.
[[nodiscard]] std::vector<Network> all_models();

/// Lookup by case-insensitive name ("resnet18", "MobileNetV2", ...).
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] Network by_name(const std::string& name);

/// Names accepted by by_name, reporting order.
[[nodiscard]] std::vector<std::string> model_names();

}  // namespace rainbow::model::zoo
