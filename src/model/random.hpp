// Seeded random CNN generator for property-based testing and fuzzing the
// planner: produces dimensionally consistent layer chains in the style of
// the evaluated model families (conv stems, depthwise-separable and
// inverted-residual blocks, pooling-style downsampling, dense heads).
// Deterministic for a given seed.
#pragma once

#include <cstdint>

#include "model/network.hpp"

namespace rainbow::model {

struct RandomNetworkOptions {
  int min_layers = 5;
  int max_layers = 40;
  int input_size = 64;       ///< starting H = W
  int input_channels = 3;
  int max_channels = 512;
  bool allow_depthwise = true;
  bool allow_dense_head = true;
};

/// Generates a random, valid network.  Same seed, same network.
[[nodiscard]] Network random_network(std::uint64_t seed,
                                     const RandomNetworkOptions& options = {});

}  // namespace rainbow::model
