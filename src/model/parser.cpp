#include "model/parser.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/line_reader.hpp"

namespace rainbow::model {

namespace {

int parse_int(const std::string& field, std::size_t line_no, const char* what) {
  try {
    std::size_t consumed = 0;
    const int value = std::stoi(field, &consumed);
    if (consumed != field.size()) {
      throw std::invalid_argument("trailing characters");
    }
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("model parse error at line " +
                             std::to_string(line_no) + ": bad " + what + " '" +
                             field + "'");
  }
}

}  // namespace

Network parse_network(const std::string& text) {
  Network network;
  // The line reader normalizes CRLF, strips comments, skips blank lines,
  // and rejects control bytes — model text arrives over the rainbowd wire
  // from untrusted clients, not only from files we wrote ourselves.
  util::LineReader reader(text);
  bool saw_header = false;
  std::optional<util::TextLine> text_line;
  while (true) {
    try {
      text_line = reader.next();
    } catch (const std::exception& e) {
      throw std::runtime_error(std::string("model parse error at ") +
                               e.what());
    }
    if (!text_line) {
      break;
    }
    const std::size_t line_no = text_line->number;
    const auto fields = util::split_csv_line(text_line->text);
    if (!saw_header) {
      // An empty name is what a truncated "network," upload looks like —
      // reject it rather than registering a nameless model.
      if (fields.size() != 2 || fields[0] != "network" || fields[1].empty()) {
        throw std::runtime_error("model parse error at line " +
                                 std::to_string(line_no) +
                                 ": expected 'network, <name>' header");
      }
      network.set_name(fields[1]);
      saw_header = true;
      continue;
    }
    if (fields.size() != 10 && fields.size() != 11) {
      throw std::runtime_error(
          "model parse error at line " + std::to_string(line_no) +
          ": expected 10 or 11 fields, got " + std::to_string(fields.size()));
    }
    Layer::Params params;
    try {
      params.kind = layer_kind_from_string(fields[0]);
    } catch (const std::exception& e) {
      throw std::runtime_error("model parse error at line " +
                               std::to_string(line_no) + ": " + e.what());
    }
    params.name = fields[1];
    params.ifmap_h = parse_int(fields[2], line_no, "I_H");
    params.ifmap_w = parse_int(fields[3], line_no, "I_W");
    params.channels = parse_int(fields[4], line_no, "C_I");
    params.filter_h = parse_int(fields[5], line_no, "F_H");
    params.filter_w = parse_int(fields[6], line_no, "F_W");
    params.filters = parse_int(fields[7], line_no, "F#");
    params.stride = parse_int(fields[8], line_no, "S");
    params.padding = parse_int(fields[9], line_no, "P");
    try {
      Layer layer(params);
      if (fields.size() == 11) {
        const int producer = parse_int(fields[10], line_no, "producer");
        if (producer < 0) {
          throw std::invalid_argument("negative producer index");
        }
        network.add_branch(std::move(layer),
                           static_cast<std::size_t>(producer));
      } else {
        network.add(std::move(layer));
      }
    } catch (const std::exception& e) {
      throw std::runtime_error("model parse error at line " +
                               std::to_string(line_no) + ": " + e.what());
    }
  }
  if (!saw_header) {
    throw std::runtime_error("model parse error: missing 'network' header");
  }
  return network;
}

Network load_network(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_network: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_network(buffer.str());
}

std::string serialize_network(const Network& network) {
  std::ostringstream out;
  out << "network, " << network.name() << '\n';
  for (std::size_t i = 0; i < network.size(); ++i) {
    const Layer& layer = network.layer(i);
    out << to_string(layer.kind()) << ", " << layer.name() << ", "
        << layer.ifmap_h() << ", " << layer.ifmap_w() << ", "
        << layer.channels() << ", " << layer.filter_h() << ", "
        << layer.filter_w() << ", " << layer.filters() << ", "
        << layer.stride() << ", " << layer.padding();
    if (const auto producer = network.producer_of(i)) {
      out << ", " << *producer;
    }
    out << '\n';
  }
  return out.str();
}

void save_network(const Network& network, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_network: cannot create " + path.string());
  }
  out << serialize_network(network);
}

}  // namespace rainbow::model
