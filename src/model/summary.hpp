// Per-network statistics behind the paper's qualitative arguments:
// Figure 3's per-layer breakdown, and Section 5.1's observation that the
// best fixed partition follows the dominant data type — EfficientNetB0 /
// MnasNet / MobileNetV2 are ifmap-dominated (sa_75_25 wins),
// GoogLeNet / MobileNet / ResNet18 filter-dominated (sa_25_75 wins).
#pragma once

#include <string>

#include "model/network.hpp"

namespace rainbow::model {

enum class Dominance { kIfmapDominated, kFilterDominated, kBalanced };

[[nodiscard]] std::string_view to_string(Dominance dominance);

struct NetworkSummary {
  count_t total_macs = 0;
  count_t total_ifmap_elems = 0;   ///< summed over layers
  count_t total_filter_elems = 0;  ///< the parameter count
  count_t total_ofmap_elems = 0;
  count_t peak_layer_elems = 0;    ///< largest single-layer data footprint
  std::size_t peak_layer_index = 0;
  /// MACs per off-chip element at compulsory traffic — the roofline
  /// arithmetic intensity of a perfectly managed buffer.
  double arithmetic_intensity = 0.0;
  Dominance dominance = Dominance::kBalanced;
};

/// `balance_band`: |ifmap - filter| volumes within this fraction of their
/// sum classify as balanced.
[[nodiscard]] NetworkSummary summarize(const Network& network,
                                       double balance_band = 0.1);

/// The baseline ifmap fraction Section 5.1's rule of thumb recommends:
/// 0.75 for ifmap-dominated, 0.25 for filter-dominated, 0.5 otherwise.
[[nodiscard]] double recommended_ifmap_fraction(const NetworkSummary& summary);

}  // namespace rainbow::model
