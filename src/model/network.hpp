// A network is an ordered list of layers executed layer-by-layer, matching
// the paper's execution model (residual/branch connections are serialized,
// Section 4).  Layer i's ofmap feeds layer i+1's ifmap along the trunk; a
// layer can instead be marked as consuming an earlier layer's output
// (`input_layer`), which the inter-layer-reuse pass uses to decide which
// boundaries are genuine producer→consumer edges.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model/layer.hpp"

namespace rainbow::model {

class Network {
 public:
  Network() = default;
  explicit Network(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a layer whose input is the previous layer's output (the trunk).
  void add(Layer layer);

  /// Appends a layer that consumes the output of `producer_index` instead of
  /// the immediately preceding layer (serialized branch, e.g. a ResNet
  /// projection shortcut).  Throws std::out_of_range for invalid producers.
  void add_branch(Layer layer, std::size_t producer_index);

  [[nodiscard]] std::size_t size() const { return layers_.size(); }
  [[nodiscard]] bool empty() const { return layers_.empty(); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return layers_.at(i); }
  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }

  /// Index of the layer whose ofmap this layer reads, if it is not the
  /// immediately preceding one.
  [[nodiscard]] std::optional<std::size_t> producer_of(std::size_t i) const;

  /// True iff layer i+1 consumes layer i's output directly — the condition
  /// for inter-layer reuse at boundary i -> i+1.
  [[nodiscard]] bool is_sequential_boundary(std::size_t i) const;

  /// Totals across all layers (batch size 1).
  [[nodiscard]] count_t total_macs() const;
  [[nodiscard]] count_t total_filter_elems() const;

  /// Count of layers per kind, for Table 2.
  [[nodiscard]] std::size_t count_kind(LayerKind kind) const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
  // producers_[i] set when layer i reads a non-adjacent earlier output.
  std::vector<std::optional<std::size_t>> producers_;
};

}  // namespace rainbow::model
