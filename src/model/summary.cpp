#include "model/summary.hpp"

#include <cmath>
#include <stdexcept>

namespace rainbow::model {

std::string_view to_string(Dominance dominance) {
  switch (dominance) {
    case Dominance::kIfmapDominated:
      return "ifmap-dominated";
    case Dominance::kFilterDominated:
      return "filter-dominated";
    case Dominance::kBalanced:
      return "balanced";
  }
  throw std::logic_error("to_string: invalid Dominance");
}

NetworkSummary summarize(const Network& network, double balance_band) {
  NetworkSummary s;
  for (std::size_t i = 0; i < network.size(); ++i) {
    const Layer& layer = network.layer(i);
    s.total_macs += layer.macs();
    s.total_ifmap_elems += layer.ifmap_elems();
    s.total_filter_elems += layer.filter_elems();
    s.total_ofmap_elems += layer.ofmap_elems();
    const count_t footprint =
        layer.ifmap_elems() + layer.filter_elems() + layer.ofmap_elems();
    if (footprint > s.peak_layer_elems) {
      s.peak_layer_elems = footprint;
      s.peak_layer_index = i;
    }
  }
  const count_t compulsory =
      s.total_ifmap_elems + s.total_filter_elems + s.total_ofmap_elems;
  s.arithmetic_intensity = compulsory > 0
                               ? static_cast<double>(s.total_macs) /
                                     static_cast<double>(compulsory)
                               : 0.0;
  const double ifmap = static_cast<double>(s.total_ifmap_elems);
  const double filter = static_cast<double>(s.total_filter_elems);
  if (std::abs(ifmap - filter) <= balance_band * (ifmap + filter)) {
    s.dominance = Dominance::kBalanced;
  } else {
    s.dominance = ifmap > filter ? Dominance::kIfmapDominated
                                 : Dominance::kFilterDominated;
  }
  return s;
}

double recommended_ifmap_fraction(const NetworkSummary& summary) {
  switch (summary.dominance) {
    case Dominance::kIfmapDominated:
      return 0.75;
    case Dominance::kFilterDominated:
      return 0.25;
    case Dominance::kBalanced:
      return 0.50;
  }
  throw std::logic_error("recommended_ifmap_fraction: invalid Dominance");
}

}  // namespace rainbow::model
