#include "model/layer.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/checked.hpp"

namespace rainbow::model {

using util::cmul;

std::string_view to_string(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv:
      return "CV";
    case LayerKind::kDepthwise:
      return "DW";
    case LayerKind::kPointwise:
      return "PW";
    case LayerKind::kFullyConnected:
      return "FC";
    case LayerKind::kProjection:
      return "PL";
  }
  throw std::logic_error("to_string: invalid LayerKind");
}

LayerKind layer_kind_from_string(std::string_view code) {
  if (code == "CV") return LayerKind::kConv;
  if (code == "DW") return LayerKind::kDepthwise;
  if (code == "PW") return LayerKind::kPointwise;
  if (code == "FC") return LayerKind::kFullyConnected;
  if (code == "PL") return LayerKind::kProjection;
  throw std::invalid_argument("layer_kind_from_string: unknown code '" +
                              std::string(code) + "'");
}

namespace {

int output_dim(int input, int filter, int stride, int padding,
               const std::string& name, const char* axis) {
  const int padded = input + 2 * padding;
  if (padded < filter) {
    throw std::invalid_argument("Layer '" + name + "': filter " +
                                std::string(axis) + " exceeds padded input");
  }
  return (padded - filter) / stride + 1;
}

}  // namespace

Layer::Layer(const Params& params) : params_(params) {
  auto require_positive = [&](int value, const char* what) {
    if (value <= 0) {
      throw std::invalid_argument("Layer '" + params_.name + "': " + what +
                                  " must be positive");
    }
  };
  require_positive(params_.ifmap_h, "ifmap_h");
  require_positive(params_.ifmap_w, "ifmap_w");
  require_positive(params_.channels, "channels");
  require_positive(params_.filter_h, "filter_h");
  require_positive(params_.filter_w, "filter_w");
  require_positive(params_.filters, "filters");
  require_positive(params_.stride, "stride");
  if (params_.padding < 0) {
    throw std::invalid_argument("Layer '" + params_.name +
                                "': padding must be non-negative");
  }
  if (params_.kind == LayerKind::kDepthwise &&
      params_.filters != params_.channels) {
    throw std::invalid_argument(
        "Layer '" + params_.name +
        "': depthwise layers require filters == channels");
  }
  if ((params_.kind == LayerKind::kPointwise ||
       params_.kind == LayerKind::kProjection ||
       params_.kind == LayerKind::kFullyConnected) &&
      (params_.filter_h != 1 || params_.filter_w != 1)) {
    throw std::invalid_argument("Layer '" + params_.name +
                                "': PW/PL/FC layers require a 1x1 filter");
  }
  ofmap_h_ = output_dim(params_.ifmap_h, params_.filter_h, params_.stride,
                        params_.padding, params_.name, "height");
  ofmap_w_ = output_dim(params_.ifmap_w, params_.filter_w, params_.stride,
                        params_.padding, params_.name, "width");
}

int Layer::ofmap_channels() const {
  return is_depthwise() ? params_.channels : params_.filters;
}

int Layer::padded_ifmap_h() const {
  // Effective extent the sliding window consumes.  May exceed I_H (padding)
  // or fall short of it (stride leaves an unused tail); either way it is
  // exactly what the access schedules stream.
  return (ofmap_h_ - 1) * params_.stride + params_.filter_h;
}

int Layer::padded_ifmap_w() const {
  return (ofmap_w_ - 1) * params_.stride + params_.filter_w;
}

count_t Layer::ifmap_elems() const {
  return cmul(cmul(static_cast<count_t>(params_.ifmap_h), params_.ifmap_w),
              params_.channels);
}

count_t Layer::padded_ifmap_elems() const {
  return cmul(cmul(static_cast<count_t>(padded_ifmap_h()), padded_ifmap_w()),
              params_.channels);
}

count_t Layer::filter_elems() const {
  const count_t per_filter =
      cmul(static_cast<count_t>(params_.filter_h), params_.filter_w);
  if (is_depthwise()) {
    return cmul(per_filter, params_.channels);
  }
  return cmul(cmul(per_filter, params_.channels), params_.filters);
}

count_t Layer::single_filter_elems() const {
  const count_t per_filter =
      cmul(static_cast<count_t>(params_.filter_h), params_.filter_w);
  return is_depthwise() ? per_filter : cmul(per_filter, params_.channels);
}

count_t Layer::ofmap_elems() const {
  return cmul(cmul(static_cast<count_t>(ofmap_h_), ofmap_w_),
              ofmap_channels());
}

count_t Layer::macs() const {
  const count_t per_output =
      cmul(cmul(static_cast<count_t>(params_.filter_h), params_.filter_w),
           is_depthwise() ? 1 : params_.channels);
  return cmul(ofmap_elems(), per_output);
}

std::ostream& operator<<(std::ostream& os, const Layer& layer) {
  os << layer.name() << " [" << to_string(layer.kind()) << "] "
     << layer.ifmap_h() << 'x' << layer.ifmap_w() << 'x' << layer.channels()
     << " -> " << layer.ofmap_h() << 'x' << layer.ofmap_w() << 'x'
     << layer.ofmap_channels() << " (f=" << layer.filter_h() << 'x'
     << layer.filter_w() << " n=" << layer.filters() << " s=" << layer.stride()
     << " p=" << layer.padding() << ')';
  return os;
}

Layer make_conv(std::string name, int ifmap_h, int ifmap_w, int channels,
                int filter_h, int filter_w, int filters, int stride,
                int padding) {
  return Layer({.kind = LayerKind::kConv,
                .name = std::move(name),
                .ifmap_h = ifmap_h,
                .ifmap_w = ifmap_w,
                .channels = channels,
                .filter_h = filter_h,
                .filter_w = filter_w,
                .filters = filters,
                .stride = stride,
                .padding = padding});
}

Layer make_depthwise(std::string name, int ifmap_h, int ifmap_w, int channels,
                     int filter_h, int filter_w, int stride, int padding) {
  return Layer({.kind = LayerKind::kDepthwise,
                .name = std::move(name),
                .ifmap_h = ifmap_h,
                .ifmap_w = ifmap_w,
                .channels = channels,
                .filter_h = filter_h,
                .filter_w = filter_w,
                .filters = channels,
                .stride = stride,
                .padding = padding});
}

Layer make_pointwise(std::string name, int ifmap_h, int ifmap_w, int channels,
                     int filters, int stride) {
  return Layer({.kind = LayerKind::kPointwise,
                .name = std::move(name),
                .ifmap_h = ifmap_h,
                .ifmap_w = ifmap_w,
                .channels = channels,
                .filter_h = 1,
                .filter_w = 1,
                .filters = filters,
                .stride = stride,
                .padding = 0});
}

Layer make_fully_connected(std::string name, int inputs, int outputs) {
  return Layer({.kind = LayerKind::kFullyConnected,
                .name = std::move(name),
                .ifmap_h = 1,
                .ifmap_w = 1,
                .channels = inputs,
                .filter_h = 1,
                .filter_w = 1,
                .filters = outputs,
                .stride = 1,
                .padding = 0});
}

Layer make_projection(std::string name, int ifmap_h, int ifmap_w, int channels,
                      int filters, int stride) {
  return Layer({.kind = LayerKind::kProjection,
                .name = std::move(name),
                .ifmap_h = ifmap_h,
                .ifmap_w = ifmap_w,
                .channels = channels,
                .filter_h = 1,
                .filter_w = 1,
                .filters = filters,
                .stride = stride,
                .padding = 0});
}

}  // namespace rainbow::model
