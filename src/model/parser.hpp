// Plain-text model format: the substitution for the paper's TensorFlow /
// PyTorch translation step.  A model file is CSV with '#' comments:
//
//   network, ResNet18
//   CV, conv1, 224, 224, 3, 7, 7, 64, 2, 3
//   PW, fire,  56,  56, 64, 1, 1, 128, 1, 0
//   PL, proj,  56,  56, 64, 1, 1, 128, 2, 0, 4   <- optional producer index
//
// Columns: kind, name, I_H, I_W, C_I, F_H, F_W, F#, S, P [, producer].
// The optional 11th column marks a serialized branch that consumes the
// output of an earlier layer (0-based index) instead of the previous one.
#pragma once

#include <filesystem>
#include <string>

#include "model/network.hpp"

namespace rainbow::model {

/// Parses a network from text.  Throws std::runtime_error with a line number
/// on malformed input.
[[nodiscard]] Network parse_network(const std::string& text);

/// Parses a network from a file on disk.
[[nodiscard]] Network load_network(const std::filesystem::path& path);

/// Serializes a network into the text format (round-trips with
/// parse_network).
[[nodiscard]] std::string serialize_network(const Network& network);

/// Writes a network to a file on disk.
void save_network(const Network& network, const std::filesystem::path& path);

}  // namespace rainbow::model
