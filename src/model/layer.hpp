// One layer of a CNN, described by the hyperparameters of Table 1 of the
// paper (ifmap H/W, filter H/W, channels, #filters, stride, padding) plus a
// layer kind.  Everything the memory-management policies need — data-type
// sizes, MAC counts, padded extents — derives from this struct.
//
// Conventions (calibrated against the paper's Table 3; see DESIGN.md):
//  * On-chip footprints use the *unpadded* ifmap size for whole-ifmap terms.
//  * Sliding-window tiles and off-chip traffic use the *effective padded*
//    extent: the input span actually consumed, (O-1)*S + F per dimension.
//  * Depthwise layers have one single-channel filter per input channel
//    (channel multiplier 1), so C_O = C_I and filter volume is F_H*F_W*C_I.
#pragma once

#include <iosfwd>
#include <string>

#include "util/units.hpp"

namespace rainbow::model {

/// Layer kinds from Table 2 of the paper.
enum class LayerKind {
  kConv,            ///< CV: standard convolution
  kDepthwise,       ///< DW: depthwise convolution (channel multiplier 1)
  kPointwise,       ///< PW: 1x1 convolution
  kFullyConnected,  ///< FC: dense layer (modelled as 1x1 conv on a 1x1 map)
  kProjection,      ///< PL: 1x1 strided projection (ResNet shortcut)
};

[[nodiscard]] std::string_view to_string(LayerKind kind);

/// Parses the two-letter code used in the model text format ("CV", "DW",
/// "PW", "FC", "PL").  Throws std::invalid_argument on anything else.
[[nodiscard]] LayerKind layer_kind_from_string(std::string_view code);

/// A single fully-connected or (depthwise/pointwise/projection) convolution
/// layer.  Immutable after construction; the constructor validates the
/// hyperparameters and precomputes output dims.
class Layer {
 public:
  struct Params {
    LayerKind kind = LayerKind::kConv;
    std::string name;  ///< human-readable label ("conv2_1a")
    int ifmap_h = 0;   ///< I_H
    int ifmap_w = 0;   ///< I_W
    int channels = 0;  ///< C_I (= filter channels for CV/PW/FC/PL)
    int filter_h = 0;  ///< F_H
    int filter_w = 0;  ///< F_W
    int filters = 0;   ///< F# (for DW this must equal C_I)
    int stride = 1;    ///< S
    int padding = 0;   ///< P (symmetric nominal padding)

    friend bool operator==(const Params&, const Params&) = default;
  };

  /// Validates and derives output dimensions.  Throws std::invalid_argument
  /// when dimensions are non-positive, the filter does not fit the padded
  /// input, or a DW layer has filters != channels.
  explicit Layer(const Params& params);

  [[nodiscard]] LayerKind kind() const { return params_.kind; }
  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] int ifmap_h() const { return params_.ifmap_h; }
  [[nodiscard]] int ifmap_w() const { return params_.ifmap_w; }
  [[nodiscard]] int channels() const { return params_.channels; }
  [[nodiscard]] int filter_h() const { return params_.filter_h; }
  [[nodiscard]] int filter_w() const { return params_.filter_w; }
  [[nodiscard]] int filters() const { return params_.filters; }
  [[nodiscard]] int stride() const { return params_.stride; }
  [[nodiscard]] int padding() const { return params_.padding; }

  [[nodiscard]] int ofmap_h() const { return ofmap_h_; }
  [[nodiscard]] int ofmap_w() const { return ofmap_w_; }
  /// C_O: equals F# except for depthwise layers, where it equals C_I.
  [[nodiscard]] int ofmap_channels() const;

  /// Effective padded input extents: the span of (padded) input actually
  /// consumed by the sliding filter, (O-1)*S + F.  Never exceeds I + 2P and
  /// never falls below I when the nominal padding is zero.
  [[nodiscard]] int padded_ifmap_h() const;
  [[nodiscard]] int padded_ifmap_w() const;

  /// Unpadded ifmap volume I_H*I_W*C_I in elements.
  [[nodiscard]] count_t ifmap_elems() const;
  /// Effective padded ifmap volume in elements (used for traffic).
  [[nodiscard]] count_t padded_ifmap_elems() const;
  /// Total filter volume in elements (DW: F_H*F_W*C_I).
  [[nodiscard]] count_t filter_elems() const;
  /// Volume of one complete 3D filter in elements (DW: F_H*F_W).
  [[nodiscard]] count_t single_filter_elems() const;
  /// Ofmap volume O_H*O_W*C_O in elements.
  [[nodiscard]] count_t ofmap_elems() const;

  /// Multiply-accumulate operations for one inference of this layer.
  [[nodiscard]] count_t macs() const;

  /// True when the layer is a depthwise convolution (per-channel filters).
  [[nodiscard]] bool is_depthwise() const {
    return params_.kind == LayerKind::kDepthwise;
  }

  friend bool operator==(const Layer& a, const Layer& b) = default;

 private:
  Params params_;
  int ofmap_h_ = 0;
  int ofmap_w_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Layer& layer);

/// Convenience factories mirroring the model-zoo building blocks.
[[nodiscard]] Layer make_conv(std::string name, int ifmap_h, int ifmap_w,
                              int channels, int filter_h, int filter_w,
                              int filters, int stride, int padding);
[[nodiscard]] Layer make_depthwise(std::string name, int ifmap_h, int ifmap_w,
                                   int channels, int filter_h, int filter_w,
                                   int stride, int padding);
[[nodiscard]] Layer make_pointwise(std::string name, int ifmap_h, int ifmap_w,
                                   int channels, int filters, int stride = 1);
[[nodiscard]] Layer make_fully_connected(std::string name, int inputs,
                                         int outputs);
[[nodiscard]] Layer make_projection(std::string name, int ifmap_h, int ifmap_w,
                                    int channels, int filters, int stride);

}  // namespace rainbow::model
