#include "model/random.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace rainbow::model {

Network random_network(std::uint64_t seed,
                       const RandomNetworkOptions& options) {
  if (options.min_layers < 1 || options.max_layers < options.min_layers) {
    throw std::invalid_argument("random_network: bad layer-count range");
  }
  std::mt19937_64 rng(seed);
  auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  Network net("random-" + std::to_string(seed));
  int h = options.input_size;
  int c = options.input_channels;

  // Stem: a strided convolution, like every evaluated model.
  {
    const int k = pick(0, 1) ? 3 : 7;
    const int filters = 8 << pick(0, 2);
    net.add(make_conv("stem", h, h, c, k, k, filters, 2, k / 2));
    h = net.layers().back().ofmap_h();
    c = filters;
  }

  const int target_layers = pick(options.min_layers, options.max_layers);
  int block = 0;
  while (static_cast<int>(net.size()) < target_layers) {
    const std::string tag = "b" + std::to_string(block++);
    // Stride 2 occasionally, while the map is large enough to halve.
    const int stride = (h >= 8 && pick(0, 3) == 0) ? 2 : 1;
    const int grow = std::min(options.max_channels, c * (pick(0, 2) ? 1 : 2));
    switch (pick(0, 3)) {
      case 0: {  // plain convolution
        const int k = pick(0, 1) ? 3 : 5;
        net.add(make_conv(tag + "_conv", h, h, c, k, k, grow, stride, k / 2));
        break;
      }
      case 1: {  // pointwise
        net.add(make_pointwise(tag + "_pw", h, h, c, grow, stride));
        break;
      }
      case 2: {  // depthwise-separable pair
        if (!options.allow_depthwise) {
          continue;
        }
        const int k = pick(0, 1) ? 3 : 5;
        net.add(make_depthwise(tag + "_dw", h, h, c, k, k, stride, k / 2));
        const int nh = net.layers().back().ofmap_h();
        net.add(make_pointwise(tag + "_sep_pw", nh, nh, c, grow));
        break;
      }
      default: {  // inverted residual (expand / depthwise / project)
        if (!options.allow_depthwise) {
          continue;
        }
        const int expand = std::min(options.max_channels, c * pick(2, 4));
        net.add(make_pointwise(tag + "_expand", h, h, c, expand));
        net.add(make_depthwise(tag + "_mbdw", h, h, expand, 3, 3, stride, 1));
        const int nh = net.layers().back().ofmap_h();
        net.add(make_pointwise(tag + "_project", nh, nh, expand, grow));
        break;
      }
    }
    h = net.layers().back().ofmap_h();
    c = net.layers().back().ofmap_channels();
  }

  if (options.allow_dense_head) {
    // Global average pool, then a classifier.
    net.add(make_fully_connected("head", c, pick(10, 1000)));
  }
  return net;
}

}  // namespace rainbow::model
