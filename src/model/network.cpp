#include "model/network.hpp"

#include <stdexcept>

namespace rainbow::model {

void Network::add(Layer layer) {
  layers_.push_back(std::move(layer));
  producers_.emplace_back(std::nullopt);
}

void Network::add_branch(Layer layer, std::size_t producer_index) {
  if (producer_index >= layers_.size()) {
    throw std::out_of_range("Network::add_branch: producer index " +
                            std::to_string(producer_index) + " out of range");
  }
  layers_.push_back(std::move(layer));
  producers_.emplace_back(producer_index);
}

std::optional<std::size_t> Network::producer_of(std::size_t i) const {
  if (i >= layers_.size()) {
    throw std::out_of_range("Network::producer_of: index out of range");
  }
  return producers_[i];
}

bool Network::is_sequential_boundary(std::size_t i) const {
  if (i + 1 >= layers_.size()) {
    return false;
  }
  // Boundary i -> i+1 is sequential when layer i+1 has no explicit producer
  // (it reads the trunk, i.e. layer i's output).
  return !producers_[i + 1].has_value();
}

count_t Network::total_macs() const {
  count_t total = 0;
  for (const Layer& layer : layers_) {
    total += layer.macs();
  }
  return total;
}

count_t Network::total_filter_elems() const {
  count_t total = 0;
  for (const Layer& layer : layers_) {
    total += layer.filter_elems();
  }
  return total;
}

std::size_t Network::count_kind(LayerKind kind) const {
  std::size_t count = 0;
  for (const Layer& layer : layers_) {
    if (layer.kind() == kind) {
      ++count;
    }
  }
  return count;
}

}  // namespace rainbow::model
