// Execution-backend benchmark: what the blocked im2col GEMM kernel and
// the layer-parallel simulation paths buy over the naive oracles, with
// every timed pair checked bit-exact before a speedup is reported.
//
// Three sections:
//   1. kernel: naive triple-loop matmul vs the cache-blocked kernel on an
//      im2col-shaped product, single thread (the >= 5x claim), plus the
//      blocked kernel's thread scaling,
//   2. conv: the per-element golden reference vs blocked_forward over the
//      distinct conv shapes of the paper's model zoo,
//   3. parallel: scalesim's traced fold walk and the engine's tile replay
//      fanned across 1/2/4/all threads, results pinned identical.
//
//   bench_execbackend [--quick] [--check] [--json <path>] [--csv <path>]
//
// --quick caps the work (CI smoke); --check exits non-zero on any
// naive/blocked mismatch; --json writes the machine-readable report
// committed as BENCH_execbackend.json.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/manager.hpp"
#include "engine/engine.hpp"
#include "model/zoo/zoo.hpp"
#include "ref/blocked_kernel.hpp"
#include "ref/policy_exec.hpp"
#include "scalesim/simulator.hpp"
#include "systolic/gemm.hpp"
#include "util/table.hpp"

namespace {

using namespace rainbow;
using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

struct Options {
  bool quick = false;
  bool check = false;
  std::optional<std::string> json_path;
  std::optional<std::string> csv_path;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quick") {
      opt.quick = true;
    } else if (flag == "--check") {
      opt.check = true;
    } else if (flag == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (flag == "--csv" && i + 1 < argc) {
      opt.csv_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--check] [--json path] [--csv path]\n";
      std::exit(flag == "--help" || flag == "-h" ? 0 : 2);
    }
  }
  return opt;
}

systolic::Matrix random_matrix(int rows, int cols, std::uint64_t seed) {
  systolic::Matrix m(rows, cols);
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ull + 1;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      m.at(r, c) = static_cast<systolic::value_t>((state >> 33) % 17) - 8;
    }
  }
  return m;
}

/// Shape signature for de-duplicating conv layers across the zoo.
std::string shape_key(const model::Layer& layer) {
  std::ostringstream key;
  key << (layer.is_depthwise() ? "DW" : "CV") << ',' << layer.ifmap_h() << ','
      << layer.ifmap_w() << ',' << layer.channels() << ',' << layer.filter_h()
      << ',' << layer.filter_w() << ',' << layer.filters() << ','
      << layer.stride() << ',' << layer.padding();
  return key.str();
}

struct ConvRow {
  std::string model;
  std::size_t shapes = 0;
  count_t macs = 0;
  double naive_ms = 0.0;
  double blocked_ms = 0.0;
  bool exact = true;
};

struct ScalingRow {
  std::string section;
  int threads = 1;            ///< requested fan-out
  std::size_t workers = 1;    ///< workers the dispatch actually resolved to
  double ms = 0.0;
  bool exact = true;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  bool all_exact = true;

  // --- 1. kernel: naive vs blocked matmul, im2col-shaped -----------------
  // M = output pixels, K = channels x taps, N = filters: the product a
  // mid-network ResNet conv lowers to (half-size in --quick mode).
  const int m = opt.quick ? 196 : 784;
  const int k = opt.quick ? 288 : 576;
  const int n = opt.quick ? 64 : 128;
  const systolic::Matrix a = random_matrix(m, k, 11);
  const systolic::Matrix b = random_matrix(k, n, 23);
  const int reps = opt.quick ? 1 : 3;

  double naive_gemm_ms = 1e300;
  systolic::Matrix naive_product;
  for (int i = 0; i < reps; ++i) {
    const auto start = clock_type::now();
    naive_product = systolic::naive_matmul(a, b);
    naive_gemm_ms = std::min(naive_gemm_ms, ms_since(start));
  }
  double blocked_gemm_ms = 1e300;
  systolic::Matrix blocked_product;
  for (int i = 0; i < reps; ++i) {
    const auto start = clock_type::now();
    blocked_product = systolic::blocked_matmul(a, b);
    blocked_gemm_ms = std::min(blocked_gemm_ms, ms_since(start));
  }
  const bool gemm_exact = naive_product == blocked_product;
  all_exact = all_exact && gemm_exact;
  const double gemm_speedup = naive_gemm_ms / blocked_gemm_ms;

  // Thread scaling of the blocked kernel on a larger product.
  std::vector<ScalingRow> gemm_scaling;
  {
    const int sm = opt.quick ? 512 : 2048;
    const int sk = opt.quick ? 256 : 512;
    const int sn = opt.quick ? 128 : 512;
    const systolic::Matrix sa = random_matrix(sm, sk, 31);
    const systolic::Matrix sb = random_matrix(sk, sn, 47);
    const systolic::Matrix reference = systolic::blocked_matmul(sa, sb, 1);
    // Oversubscribed rows still run: the result must stay identical for
    // every thread count, on any machine.
    const std::set<int> thread_counts{1, 2, 4, static_cast<int>(hw)};
    for (int threads : thread_counts) {
      const auto start = clock_type::now();
      const systolic::Matrix out = systolic::blocked_matmul(sa, sb, threads);
      ScalingRow row{"gemm", threads,
                     threads == 0 ? static_cast<std::size_t>(hw)
                                  : static_cast<std::size_t>(threads),
                     ms_since(start), out == reference};
      all_exact = all_exact && row.exact;
      gemm_scaling.push_back(row);
    }
  }

  // --- 2. conv: golden per-element reference vs blocked_forward ----------
  const count_t mac_cap = opt.quick ? 30'000'000ull : ~0ull;
  std::vector<ConvRow> conv_rows;
  std::set<std::string> seen;
  for (const auto& net : model::zoo::all_models()) {
    ConvRow row;
    row.model = net.name();
    for (const model::Layer& layer : net.layers()) {
      if (!seen.insert(shape_key(layer)).second || layer.macs() > mac_cap) {
        continue;
      }
      const auto operands = ref::random_operands(layer, 7);
      const auto start_naive = clock_type::now();
      const auto golden = ref::reference_forward(layer, operands);
      row.naive_ms += ms_since(start_naive);
      const auto start_blocked = clock_type::now();
      const auto fast = ref::blocked_forward(layer, operands, 1);
      row.blocked_ms += ms_since(start_blocked);
      row.exact = row.exact && fast == golden;
      row.macs += layer.macs();
      ++row.shapes;
    }
    all_exact = all_exact && row.exact;
    if (row.shapes > 0) {
      conv_rows.push_back(row);
    }
    if (opt.quick && seen.size() >= 12) {
      break;
    }
  }

  // --- 3. parallel simulation: traced scalesim + engine replay -----------
  std::vector<ScalingRow> sim_scaling;
  {
    const model::Network net =
        model::zoo::by_name(opt.quick ? "mobilenet" : "resnet18");
    const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
    const scalesim::Simulator sim(spec, scalesim::BufferPartition{});
    const scalesim::TraceResult reference = sim.run_traced(net, 1);
    const core::MemoryManager manager(spec);
    const core::ExecutionPlan plan =
        manager.plan(net, core::Objective::kAccesses);
    const engine::Engine engine(spec);
    const engine::PlanExecution engine_ref = engine.execute_plan(plan, net, 1);
    const std::set<int> thread_counts{1, 2, 4, static_cast<int>(hw)};
    for (int threads : thread_counts) {
      auto start = clock_type::now();
      const scalesim::TraceResult traced = sim.run_traced(net, threads);
      ScalingRow traced_row{"scalesim_traced", threads, traced.workers_used,
                            ms_since(start),
                            traced.trace_checksum ==
                                    reference.trace_checksum &&
                                traced.aggregate.total_accesses ==
                                    reference.aggregate.total_accesses &&
                                traced.aggregate.total_cycles ==
                                    reference.aggregate.total_cycles};
      all_exact = all_exact && traced_row.exact;
      sim_scaling.push_back(traced_row);

      start = clock_type::now();
      const engine::PlanExecution exec = engine.execute_plan(plan, net, threads);
      ScalingRow engine_row{"engine_replay", threads, exec.workers_used,
                            ms_since(start),
                            exec.total_accesses == engine_ref.total_accesses &&
                                exec.total_latency_cycles ==
                                    engine_ref.total_latency_cycles};
      all_exact = all_exact && engine_row.exact;
      sim_scaling.push_back(engine_row);
    }
  }

  // --- report -------------------------------------------------------------
  std::cout << "kernel: naive " << util::fmt(naive_gemm_ms, 3)
            << " ms vs blocked " << util::fmt(blocked_gemm_ms, 3) << " ms ("
            << m << "x" << k << "x" << n << "), speedup "
            << util::fmt(gemm_speedup, 1) << "x, "
            << (gemm_exact ? "bit-exact" : "MISMATCH") << '\n';

  util::Table conv_table({"model", "shapes", "MMACs", "naive ms", "blocked ms",
                          "speedup", "exact"});
  for (const ConvRow& row : conv_rows) {
    conv_table.add_row(
        {row.model, std::to_string(row.shapes),
         util::fmt(static_cast<double>(row.macs) / 1e6, 1),
         util::fmt(row.naive_ms, 1), util::fmt(row.blocked_ms, 1),
         util::fmt(row.naive_ms / row.blocked_ms, 1) + "x",
         row.exact ? "yes" : "NO"});
  }
  std::cout << "\nconv forward, distinct zoo shapes (naive reference vs "
               "blocked backend):\n";
  conv_table.print(std::cout);

  util::Table scaling_table({"section", "threads", "workers", "ms", "exact"});
  for (const auto& rows : {gemm_scaling, sim_scaling}) {
    for (const ScalingRow& row : rows) {
      scaling_table.add_row({row.section, std::to_string(row.threads),
                             std::to_string(row.workers), util::fmt(row.ms, 2),
                             row.exact ? "yes" : "NO"});
    }
  }
  std::cout << "\nthread scaling (identical results pinned per row):\n";
  scaling_table.print(std::cout);
  if (hw == 1) {
    std::cout << "note: hardware_concurrency == 1 — scaling rows are "
                 "degenerate (they demonstrate determinism, not speedup).\n";
  }

  if (opt.csv_path) {
    std::ofstream out(*opt.csv_path);
    out << "section,threads,workers,degenerate,ms,exact\n";
    for (const auto& rows : {gemm_scaling, sim_scaling}) {
      for (const ScalingRow& row : rows) {
        out << row.section << ',' << row.threads << ',' << row.workers << ','
            << (hw == 1 ? 1 : 0) << ',' << row.ms << ',' << (row.exact ? 1 : 0)
            << '\n';
      }
    }
  }

  if (opt.json_path) {
    std::ofstream out(*opt.json_path);
    out << "{\n  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
        << "  \"gemm\": {\"m\": " << m << ", \"k\": " << k << ", \"n\": " << n
        << ", \"naive_ms\": " << naive_gemm_ms
        << ", \"blocked_ms\": " << blocked_gemm_ms
        << ", \"speedup\": " << gemm_speedup
        << ", \"exact\": " << (gemm_exact ? "true" : "false") << "},\n"
        << "  \"conv\": [\n";
    for (std::size_t i = 0; i < conv_rows.size(); ++i) {
      const ConvRow& row = conv_rows[i];
      out << "    {\"model\": \"" << row.model
          << "\", \"shapes\": " << row.shapes << ", \"macs\": " << row.macs
          << ", \"naive_ms\": " << row.naive_ms
          << ", \"blocked_ms\": " << row.blocked_ms
          << ", \"speedup\": " << row.naive_ms / row.blocked_ms
          << ", \"exact\": " << (row.exact ? "true" : "false") << "}"
          << (i + 1 < conv_rows.size() ? "," : "") << '\n';
    }
    out << "  ],\n  \"scaling\": [\n";
    std::vector<ScalingRow> all_rows = gemm_scaling;
    all_rows.insert(all_rows.end(), sim_scaling.begin(), sim_scaling.end());
    for (std::size_t i = 0; i < all_rows.size(); ++i) {
      const ScalingRow& row = all_rows[i];
      out << "    {\"section\": \"" << row.section
          << "\", \"threads\": " << row.threads
          << ", \"effective_workers\": " << row.workers
          << ", \"degenerate\": " << (hw == 1 ? "true" : "false")
          << ", \"ms\": " << row.ms
          << ", \"exact\": " << (row.exact ? "true" : "false") << "}"
          << (i + 1 < all_rows.size() ? "," : "") << '\n';
    }
    out << "  ],\n  \"all_exact\": " << (all_exact ? "true" : "false")
        << "\n}\n";
  }

  if (!all_exact) {
    std::cerr << "bench_execbackend: blocked backend diverged from the naive "
                 "oracle\n";
    return 1;
  }
  std::cout << "\nreading: the blocked kernel packs im2col panels once and "
               "streams them through a register-tiled GEMM, so the naive "
               "per-element loops are outrun while every output stays "
               "bit-identical (int32 sums reorder losslessly); layer-level "
               "fan-out scales the traced simulator near-linearly because "
               "layers are independent and totals combine in layer order.\n";
  return opt.check && !all_exact ? 1 : 0;
}
