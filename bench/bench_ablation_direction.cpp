// Ablation (design choice from DESIGN.md / paper Figure 2): the cost of
// tiling the ifmap along each access direction.  Height-wise cuts pay a
// (F_H - S)-row halo per tile, width-wise a (F_W - S)-column halo, and
// depth-wise cuts are free — which is why the fallback tiler shrinks along
// the height first.
#include <iostream>

#include "bench_common.hpp"
#include "core/fallback.hpp"
#include "model/layer.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using core::AccessDirection;
  const auto args = bench::parse_args(argc, argv);

  const model::Layer layers[] = {
      model::make_conv("early_7x7_s2", 224, 224, 3, 7, 7, 64, 2, 3),
      model::make_conv("mid_3x3", 56, 56, 64, 3, 3, 128, 1, 1),
      model::make_conv("late_3x3", 14, 14, 256, 3, 3, 512, 1, 1),
      model::make_conv("big_5x5", 28, 28, 32, 5, 5, 64, 1, 2),
  };

  util::Table table({"layer", "direction", "tiles", "ifmap traffic kB",
                     "overhead vs single pass %"});
  for (const auto& layer : layers) {
    for (AccessDirection dir :
         {AccessDirection::kHeightWise, AccessDirection::kWidthWise,
          AccessDirection::kDepthWise}) {
      const int extent = dir == AccessDirection::kHeightWise ? layer.ofmap_h()
                         : dir == AccessDirection::kWidthWise ? layer.ofmap_w()
                                                              : layer.channels();
      for (int tiles : {2, 4, 8}) {
        if (extent / tiles < 1) {
          continue;
        }
        const int tile = (extent + tiles - 1) / tiles;
        const count_t traffic =
            core::ifmap_traffic_with_reload(layer, dir, tile);
        const double overhead =
            100.0 *
            (static_cast<double>(traffic) /
                 static_cast<double>(layer.padded_ifmap_elems()) -
             1.0);
        table.add_row({layer.name(), std::string(core::to_string(dir)),
                       std::to_string(tiles),
                       util::fmt(static_cast<double>(traffic) / 1024.0),
                       util::fmt(overhead)});
      }
    }
  }
  bench::emit("Ablation: ifmap re-load cost per access direction (Figure 2)",
              table, args);

  std::cout << "reading: depth-wise cuts never re-load; height/width cuts "
               "pay (F - S) halo lines per tile boundary, so large filters "
               "and many tiles multiply the overhead.\n";
  return 0;
}
