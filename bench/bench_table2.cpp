// Table 2: characteristics of the DL models studied — layer counts and
// layer-type mixes, generated from the model zoo.
#include <iostream>

#include "bench_common.hpp"
#include "model/zoo/zoo.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  util::Table table({"Network", "Number of Layers", "Types of Layers",
                     "MACs (M)", "Filter elems (M)"});
  for (const auto& net : model::zoo::all_models()) {
    std::string types;
    for (model::LayerKind kind :
         {model::LayerKind::kConv, model::LayerKind::kDepthwise,
          model::LayerKind::kPointwise, model::LayerKind::kFullyConnected,
          model::LayerKind::kProjection}) {
      if (net.count_kind(kind) > 0) {
        if (!types.empty()) {
          types += ", ";
        }
        types += model::to_string(kind);
      }
    }
    table.add_row({net.name(), std::to_string(net.size()), types,
                   util::fmt(static_cast<double>(net.total_macs()) / 1e6),
                   util::fmt(static_cast<double>(net.total_filter_elems()) / 1e6)});
  }
  bench::emit("Table 2: characteristics of the DL models studied", table, args);

  std::cout << "paper reference: EfficientNetB0 82 (CV,DW,PW,FC) | GoogLeNet 64 "
               "(CV,PW,FC) | MnasNet 53 (CV,DW,PW,FC) | MobileNet 28 "
               "(CV,DW,PW,FC) | MobileNetV2 53 (CV,DW,PW,FC) | ResNet18 21 "
               "(CV,PW,FC,PL)\n";
  return 0;
}
