// Figure 10: accesses and latency benefit of the heterogeneous scheme with
// prefetching enabled versus disabled, for MobileNet across all buffer
// sizes, with the prefetching coverage in parentheses.
#include <iostream>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using core::Objective;
  const auto args = bench::parse_args(argc, argv);

  const auto net = model::zoo::mobilenet();
  util::Table table({"GLB", "accesses benefit %", "latency benefit %",
                     "prefetch coverage %"});
  for (const auto glb : arch::paper_glb_sizes()) {
    const auto spec = arch::paper_spec(glb);
    core::ManagerOptions with;
    with.analyzer.estimator.padded_traffic = !args.no_padding;
    core::ManagerOptions without = with;
    without.analyzer.allow_prefetch = false;

    const auto plan_with =
        core::MemoryManager(spec, with).plan(net, Objective::kLatency);
    const auto plan_without =
        core::MemoryManager(spec, without).plan(net, Objective::kLatency);

    table.add_row(
        {bench::glb_label(glb),
         util::fmt(util::benefit_percent(
             static_cast<double>(plan_without.total_accesses()),
             static_cast<double>(plan_with.total_accesses()))),
         util::fmt(util::benefit_percent(plan_without.total_latency_cycles(),
                                         plan_with.total_latency_cycles())),
         util::fmt(100.0 * plan_with.prefetch_coverage())});
  }
  bench::emit(
      "Figure 10: prefetching enabled vs disabled (Het, latency objective), "
      "MobileNet",
      table, args);

  std::cout << "paper shape: ~15% latency benefit at most sizes; at 64 kB "
               "the benefit costs ~35% extra accesses (space reserved for "
               "prefetching is lost to reuse); coverage 93% at 64 kB and "
               "100% from 256 kB.\n";
  return 0;
}
