// Figure 9: accesses and latency benefit of the heterogeneous scheme
// optimized for latency relative to the heterogeneous scheme optimized for
// accesses — all models, 64 kB buffer.  Negative access benefit = the price
// paid for prefetch space.
#include <iostream>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using core::Objective;
  const auto args = bench::parse_args(argc, argv);

  core::ManagerOptions options;
  options.analyzer.estimator.padded_traffic = !args.no_padding;
  const core::MemoryManager manager(arch::paper_spec(util::kib(64)), options);

  util::Table table({"model", "Het_a MB", "Het_l MB", "access benefit %",
                     "Het_a Mcyc", "Het_l Mcyc", "latency benefit %"});
  for (const auto& net : model::zoo::all_models()) {
    const auto het_a = manager.plan(net, Objective::kAccesses);
    const auto het_l = manager.plan(net, Objective::kLatency);
    table.add_row(
        {net.name(), util::fmt(het_a.total_access_mb(), 2),
         util::fmt(het_l.total_access_mb(), 2),
         util::fmt(util::benefit_percent(het_a.total_access_mb(),
                                         het_l.total_access_mb())),
         bench::mcycles(het_a.total_latency_cycles()),
         bench::mcycles(het_l.total_latency_cycles()),
         util::fmt(util::benefit_percent(het_a.total_latency_cycles(),
                                         het_l.total_latency_cycles()))});
  }
  bench::emit(
      "Figure 9: Het-for-latency vs Het-for-accesses, all models @ 64 kB",
      table, args);

  std::cout << "paper shape: the latency-optimized plan gains up to ~23% "
               "latency (MobileNet) while paying up to ~33% extra accesses — "
               "the space given to prefetching is lost to reuse.\n";
  return 0;
}
