// Ablation of the paper's Section 4 assumption: "the on-chip memory
// bandwidth is assumed to be enough to match the demands of the PEs."
// Feeding 256 MACs/cycle takes 512 operand bytes/cycle at 8-bit; this
// bench sweeps finite scratchpad bandwidths and shows where the assumption
// starts costing latency (and where it is actually safe).
#include <iostream>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  util::Table table({"model", "SRAM B/cyc", "eff. MACs/cyc", "Het_l Mcyc",
                     "slowdown vs unlimited %"});
  for (const char* name : {"ResNet18", "MobileNetV2"}) {
    const auto net = model::zoo::by_name(name);
    double unlimited = 0.0;
    for (double bw : {0.0, 1024.0, 512.0, 256.0, 128.0}) {
      arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
      spec.sram_bytes_per_cycle = bw;
      core::ManagerOptions options;
      options.analyzer.estimator.padded_traffic = !args.no_padding;
      const core::MemoryManager manager(spec, options);
      const auto plan = manager.plan(net, core::Objective::kLatency);
      const double latency = plan.total_latency_cycles();
      if (bw == 0.0) {
        unlimited = latency;
      }
      table.add_row({net.name(), bw == 0.0 ? "inf" : util::fmt(bw, 0),
                     util::fmt(spec.effective_macs_per_cycle(), 0),
                     bench::mcycles(latency),
                     util::fmt(100.0 * (latency - unlimited) / unlimited)});
    }
  }
  bench::emit(
      "Ablation: finite on-chip bandwidth vs the paper's unlimited "
      "assumption (256 kB GLB, latency objective)",
      table, args);

  std::cout << "reading: the 16x16 array needs 512 operand B/cycle at "
               "8-bit; at or above that the paper's assumption is free, "
               "below it compute throttles and every scheme slows equally "
               "— the management conclusions are insensitive to the "
               "assumption, which is why the paper could make it.\n";
  return 0;
}
