// What-if ablation: transparent DRAM-link compression on top of the
// managed GLB.  Compression multiplies link bytes; the policies decide
// *which* bytes exist — the two compose.  Shows total energy at 64 kB for
// ratio sweeps over the best baseline and the Het plan.
#include <iostream>

#include "bench_common.hpp"
#include "core/compression.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  const auto spec = arch::paper_spec(util::kib(64));
  core::ManagerOptions options;
  options.analyzer.estimator.padded_traffic = !args.no_padding;
  const core::MemoryManager manager(spec, options);

  util::Table table({"model", "activations/weights ratio", "DRAM MB",
                     "latency Mcyc", "energy mJ", "vs uncompressed %"});
  for (const char* name : {"ResNet18", "MobileNetV2"}) {
    const auto net = model::zoo::by_name(name);
    const auto plan = manager.plan(net, core::Objective::kAccesses);
    double base_energy = 0.0;
    for (double r : {1.0, 0.7, 0.5, 0.3}) {
      const core::CompressionModel cm{.ifmap_ratio = r, .filter_ratio = r,
                                      .ofmap_ratio = r};
      const auto m = core::apply_compression(plan, net, cm);
      if (r == 1.0) {
        base_energy = m.energy_mj;
      }
      table.add_row({net.name(), util::fmt(r, 1),
                     util::fmt(m.dram_bytes / (1024.0 * 1024.0), 2),
                     bench::mcycles(m.latency_cycles),
                     util::fmt(m.energy_mj, 2),
                     util::fmt(100.0 * (base_energy - m.energy_mj) /
                               base_energy)});
    }
  }
  bench::emit("Ablation: DRAM-link compression on top of the Het plan @ 64 kB",
              table, args);

  std::cout << "reading: compression scales the link bytes the policies "
               "leave behind — it stacks multiplicatively with the paper's "
               "access cuts rather than competing with them (on-chip "
               "working sets and the SRAM/MAC energy terms are "
               "unaffected).\n";
  return 0;
}
