// Certified stream-optimizer benchmark: for every zoo model at 64 and
// 256 kB, with and without prefetch and inter-layer reuse, plan under
// the latency objective, lower, run the translation-validated optimizer,
// and report the dependence-graph critical-path and stall deltas plus
// the pass counters.  Every emitted stream passed the full certification
// stack; the binary exits non-zero if any candidate is rejected or any
// optimized critical path exceeds its original (the O005 invariant,
// re-checked here as a regression tripwire).  The committed
// BENCH_streamopt.json is regenerated from this binary:
//
//   bench_streamopt --json BENCH_streamopt.json
//   bench_streamopt --quick       # CI smoke: two models, 64 kB only
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/streamopt.hpp"
#include "bench_common.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;

  bool quick = false;
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--quick") {
      quick = true;
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--json") {
      json_path = next();
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--csv path] [--json path]\n";
      return flag == "--help" || flag == "-h" ? 0 : 2;
    }
  }

  const std::vector<count_t> glb_kbs =
      quick ? std::vector<count_t>{64} : std::vector<count_t>{64, 256};

  struct Row {
    std::string model;
    count_t glb_kb;
    bool prefetch;
    bool interlayer;
    bool certified;
    std::size_t layers_reordered;
    std::size_t commands_moved;
    std::size_t barriers_elided;
    std::size_t transfers_coalesced;
    double original_cycles;
    double optimized_cycles;
    double original_stall;
    double optimized_stall;
  };
  std::vector<Row> rows;

  util::Table table({"model", "GLB kB", "prefetch", "inter", "certified",
                     "CP before", "CP after", "CP delta %", "stall before",
                     "stall after", "reordered", "moved"});
  std::size_t model_count = 0;
  for (const auto& net : model::zoo::all_models()) {
    if (quick && ++model_count > 2) {
      break;
    }
    for (count_t kb : glb_kbs) {
      const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(kb));
      for (const bool prefetch : {false, true}) {
        for (const bool interlayer : {false, true}) {
          core::ManagerOptions moptions;
          moptions.analyzer.allow_prefetch = prefetch;
          moptions.interlayer_reuse = interlayer;
          const core::MemoryManager manager(spec, moptions);
          const core::ExecutionPlan plan =
              manager.plan(net, core::Objective::kLatency);
          if (!plan.feasible()) {
            continue;
          }
          const codegen::Program program = codegen::lower(plan, net);
          const analysis::OptimizeResult result =
              analysis::optimize_program(program, plan, net);

          if (!result.certified) {
            std::cerr << "CERTIFICATION FAILURE: " << net.name() << " @ "
                      << kb << " kB prefetch=" << prefetch
                      << " interlayer=" << interlayer << "\n"
                      << result.report.summary() << '\n';
            return 1;
          }
          if (result.optimized_cycles >
              result.original_cycles * (1.0 + 1e-9)) {
            std::cerr << "CRITICAL PATH REGRESSION: " << net.name() << " @ "
                      << kb << " kB (" << result.original_cycles << " -> "
                      << result.optimized_cycles << ")\n";
            return 1;
          }

          Row r;
          r.model = net.name();
          r.glb_kb = kb;
          r.prefetch = prefetch;
          r.interlayer = interlayer;
          r.certified = result.certified;
          r.layers_reordered = result.layers_reordered;
          r.commands_moved = result.commands_moved;
          r.barriers_elided = result.barriers_elided;
          r.transfers_coalesced = result.transfers_coalesced;
          r.original_cycles = result.original_cycles;
          r.optimized_cycles = result.optimized_cycles;
          r.original_stall = result.original_stall_cycles;
          r.optimized_stall = result.optimized_stall_cycles;
          rows.push_back(r);

          const double delta =
              r.original_cycles > 0.0
                  ? 100.0 * (r.original_cycles - r.optimized_cycles) /
                        r.original_cycles
                  : 0.0;
          table.add_row({r.model, std::to_string(kb), prefetch ? "y" : "n",
                         interlayer ? "y" : "n", r.certified ? "y" : "NO",
                         util::fmt(r.original_cycles, 0),
                         util::fmt(r.optimized_cycles, 0),
                         util::fmt(delta, 3),
                         util::fmt(r.original_stall, 0),
                         util::fmt(r.optimized_stall, 0),
                         std::to_string(r.layers_reordered),
                         std::to_string(r.commands_moved)});
        }
      }
    }
  }

  std::cout << "Certified stream optimizer: dependence-graph critical path "
               "before/after (latency-objective het plans)\n";
  table.print(std::cout);

  std::set<std::string> improved_models;
  double total_before = 0.0;
  double total_after = 0.0;
  for (const Row& r : rows) {
    total_before += r.original_cycles;
    total_after += r.optimized_cycles;
    if (r.optimized_cycles < r.original_cycles) {
      improved_models.insert(r.model);
    }
  }
  std::cout << "summary: " << rows.size() << " configs, all certified; "
            << improved_models.size()
            << " models strictly improved; aggregate critical path "
            << util::fmt(total_before, 0) << " -> "
            << util::fmt(total_after, 0) << " cycles ("
            << util::fmt(100.0 * (total_before - total_after) /
                             std::max(total_before, 1.0), 3)
            << "% shorter)\n";
  std::cout << "reading: hoisting refills as early as their dependences "
               "allow removes most of the stall cycles double buffering "
               "leaves on the table; the win concentrates in prefetch "
               "configs, and every rewritten stream carries a machine-"
               "checked certificate (reorder legality, race freedom, "
               "stream invariants, differential interpretation, latency "
               "re-cost).\n";

  if (!quick && improved_models.size() < 3) {
    std::cerr << "REGRESSION: expected >= 3 models with a strictly shorter "
                 "critical path, got "
              << improved_models.size() << '\n';
    return 1;
  }

  if (csv_path) {
    std::ofstream out(*csv_path);
    if (!out) {
      std::cerr << "cannot open " << *csv_path << '\n';
      return 1;
    }
    table.print_csv(out);
  }
  if (json_path) {
    std::ofstream out(*json_path);
    if (!out) {
      std::cerr << "cannot open " << *json_path << '\n';
      return 1;
    }
    out.precision(17);
    out << "{\n  \"cases\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"model\": \"" << r.model << "\", \"glb_kb\": " << r.glb_kb
          << ", \"prefetch\": " << (r.prefetch ? "true" : "false")
          << ", \"interlayer\": " << (r.interlayer ? "true" : "false")
          << ", \"certified\": " << (r.certified ? "true" : "false")
          << ", \"layers_reordered\": " << r.layers_reordered
          << ", \"commands_moved\": " << r.commands_moved
          << ", \"barriers_elided\": " << r.barriers_elided
          << ", \"transfers_coalesced\": " << r.transfers_coalesced
          << ", \"critical_path_before\": " << r.original_cycles
          << ", \"critical_path_after\": " << r.optimized_cycles
          << ", \"stall_before\": " << r.original_stall
          << ", \"stall_after\": " << r.optimized_stall << "}"
          << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
  }
  return 0;
}
