// Co-design exploration (the RAINBOW ISPASS'23 use case the paper's
// manager powers): for each model, sweep the scratchpad size and print the
// accesses/latency/energy frontier plus two sizing recommendations —
// smallest buffer within 5% of the access asymptote, and the cheapest
// configuration meeting a 1.2x-of-best latency budget.
#include <iostream>

#include "bench_common.hpp"
#include "dse/pareto.hpp"
#include "model/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  dse::SweepConfig config;
  for (count_t kb = 32; kb <= 2048; kb *= 2) {
    config.glb_bytes.push_back(util::kib(kb));
  }
  config.objectives = {core::Objective::kAccesses, core::Objective::kLatency};
  config.with_interlayer = true;

  util::Table table({"model", "points", "pareto", "min-GLB@5% kB",
                     "budget pick kB", "budget pick scheme"});
  for (const auto& net : model::zoo::all_models()) {
    const auto points = dse::run_sweep(net, config);
    const auto front = dse::pareto_front(
        points, [](const dse::SweepPoint& p) { return p.access_mb; },
        [](const dse::SweepPoint& p) { return p.latency_cycles; });

    const auto min_glb = dse::smallest_glb_within(points, 0.05);
    double best_latency = points.front().latency_cycles;
    for (const auto& p : points) {
      best_latency = std::min(best_latency, p.latency_cycles);
    }
    const auto budget = dse::cheapest_under_latency(points, 1.2 * best_latency);

    table.add_row(
        {net.name(), std::to_string(points.size()),
         std::to_string(front.size()),
         min_glb ? std::to_string(min_glb->glb_bytes / 1024) : "-",
         budget ? std::to_string(budget->glb_bytes / 1024) : "-",
         budget ? std::string(core::to_string(budget->objective)) +
                      (budget->interlayer ? "+inter" : "")
                : "-"});
  }
  bench::emit("Co-design sweep: Pareto fronts and sizing recommendations",
              table, args);

  std::cout << "reading: plan generation is cheap enough (~1 ms/point) that "
               "the whole grid is evaluated exhaustively — the co-design "
               "loop the authors' RAINBOW tool runs on top of this manager.\n";
  return 0;
}
