// Figure 5: volume of off-chip memory accesses (MB) for the three baseline
// partitions and the proposed Hom / Het schemes, for every model and every
// GLB size.  The (model x size) cells are independent and evaluated on a
// thread pool.
#include <iostream>
#include <mutex>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  struct Cell {
    std::string model;
    count_t glb = 0;
    double sa_25_75 = 0, sa_50_50 = 0, sa_75_25 = 0, hom = 0, het = 0;
  };
  std::vector<Cell> cells;
  for (const auto& name : model::zoo::model_names()) {
    for (const auto glb : arch::paper_glb_sizes()) {
      cells.push_back({.model = name, .glb = glb});
    }
  }

  util::parallel_for_each(cells, [&](Cell& cell) {
    const auto net = model::zoo::by_name(cell.model);
    const auto spec = arch::paper_spec(cell.glb);
    double* baselines[3] = {&cell.sa_25_75, &cell.sa_50_50, &cell.sa_75_25};
    int i = 0;
    for (const auto& part : scalesim::paper_partitions()) {
      const scalesim::Simulator sim(spec, part);
      *baselines[i++] = sim.run(net).access_mb(spec);
    }
    core::ManagerOptions options;
    options.analyzer.estimator.padded_traffic = !args.no_padding;
    const core::MemoryManager manager(spec, options);
    cell.hom =
        manager.plan_homogeneous(net, core::Objective::kAccesses).total_access_mb();
    cell.het = manager.plan(net, core::Objective::kAccesses).total_access_mb();
  });

  util::Table table({"model", "GLB", "sa_25_75 MB", "sa_50_50 MB",
                     "sa_75_25 MB", "Hom MB", "Het MB", "Het vs best-sa %"});
  for (const Cell& c : cells) {
    const double best_sa = std::min({c.sa_25_75, c.sa_50_50, c.sa_75_25});
    table.add_row({c.model, bench::glb_label(c.glb), util::fmt(c.sa_25_75, 2),
                   util::fmt(c.sa_50_50, 2), util::fmt(c.sa_75_25, 2),
                   util::fmt(c.hom, 2), util::fmt(c.het, 2),
                   util::fmt(100.0 * (best_sa - c.het) / best_sa)});
  }
  bench::emit("Figure 5: off-chip access volume per scheme, model, GLB size",
              table, args);

  std::cout << "paper shape: Het cuts 43-80% vs the baselines at 64 kB "
               "(ResNet18 up to 79.8%); the gap closes at 512 kB-1 MB where "
               "Het can trail slightly because it counts ifmap padding and "
               "the baseline does not.\n";
  return 0;
}
