// Figure 3: memory breakdown into the different data types for each layer
// of the ResNet18 model (kB at 8-bit).
#include <iostream>

#include "bench_common.hpp"
#include "model/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  const auto net = model::zoo::resnet18();
  util::Table table({"layer", "name", "kind", "ifmap kB", "filter kB",
                     "ofmap kB", "total kB"});
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& l = net.layer(i);
    const double ifmap = static_cast<double>(l.ifmap_elems()) / 1024.0;
    const double filter = static_cast<double>(l.filter_elems()) / 1024.0;
    const double ofmap = static_cast<double>(l.ofmap_elems()) / 1024.0;
    table.add_row({"L" + std::to_string(i + 1), l.name(),
                   std::string(model::to_string(l.kind())), util::fmt(ifmap),
                   util::fmt(filter), util::fmt(ofmap),
                   util::fmt(ifmap + filter + ofmap)});
  }
  bench::emit("Figure 3: per-layer memory breakdown, ResNet18", table, args);

  std::cout << "reading: early layers are ifmap/ofmap-dominated, late layers "
               "filter-dominated — the heterogeneity motivating per-layer "
               "policies (paper Section 3.3).\n";
  return 0;
}
