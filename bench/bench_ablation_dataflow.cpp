// Ablation (Section 2.3 / baseline design choice): why the baseline — and
// most accelerators with small output staging buffers — run output
// stationary.  Compares DRAM traffic and zero-stall cycles of OS / WS / IS
// on every model at the paper's 64 kB configuration, splitting out the
// partial-sum spill WS/IS incur.
#include <iostream>

#include "bench_common.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  const auto spec = arch::paper_spec(util::kib(64));
  const scalesim::BufferPartition part{.ifmap_fraction = 0.5};

  util::Table table({"model", "dataflow", "DRAM MB", "psum spill MB",
                     "cycles Mcyc", "MAC util %"});
  for (const auto& net : model::zoo::all_models()) {
    for (scalesim::Dataflow d : {scalesim::Dataflow::kOutputStationary,
                                 scalesim::Dataflow::kWeightStationary,
                                 scalesim::Dataflow::kInputStationary}) {
      const scalesim::Simulator sim(spec, part, d);
      const auto run = sim.run(net);
      count_t psum = 0;
      double util_sum = 0.0;
      for (const auto& layer : run.layers) {
        psum += layer.traffic.psum_transfers;
        util_sum += layer.utilization;
      }
      table.add_row(
          {net.name(), std::string(to_string(d)),
           util::fmt(run.access_mb(spec), 2),
           util::fmt(static_cast<double>(psum * spec.element_bytes()) /
                         (1024.0 * 1024.0),
                     2),
           bench::mcycles(static_cast<double>(run.total_cycles)),
           util::fmt(100.0 * util_sum /
                     static_cast<double>(run.layers.size()))});
    }
  }
  bench::emit("Ablation: baseline dataflow choice (OS vs WS vs IS) @ 64 kB",
              table, args);

  std::cout << "reading: with a 4 kB output staging buffer, WS/IS round-trip "
               "partial sums through DRAM on every large ofmap; OS "
               "accumulates in the array and avoids the spill — the paper's "
               "baseline configuration.\n";
  return 0;
}
