// Shared plumbing for the per-table/figure benchmark binaries: flag
// parsing (--csv <path>, --no-padding), table emission, and the model /
// buffer-size sweep axes of the paper's evaluation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "arch/accelerator.hpp"
#include "model/network.hpp"
#include "util/table.hpp"

namespace rainbow::bench {

struct BenchArgs {
  std::optional<std::string> csv_path;  ///< also write the table as CSV
  bool no_padding = false;              ///< ablation: exclude ifmap padding
};

/// Parses --csv <path> and --no-padding; exits with a usage message on
/// unknown flags.
[[nodiscard]] BenchArgs parse_args(int argc, char** argv);

/// Prints `title`, the table, and (when requested) writes the CSV file.
void emit(const std::string& title, const util::Table& table,
          const BenchArgs& args);

/// "64kB", "1024kB" labels for the sweep axis.
[[nodiscard]] std::string glb_label(count_t glb_bytes);

/// Cycles rendered in millions with two decimals.
[[nodiscard]] std::string mcycles(double cycles);

}  // namespace rainbow::bench
