#include "bench_common.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

namespace rainbow::bench {

BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--csv" && i + 1 < argc) {
      args.csv_path = argv[++i];
    } else if (flag == "--no-padding") {
      args.no_padding = true;
    } else {
      std::cerr << "usage: " << argv[0] << " [--csv <path>] [--no-padding]\n";
      std::exit(2);
    }
  }
  return args;
}

void emit(const std::string& title, const util::Table& table,
          const BenchArgs& args) {
  std::cout << "== " << title << " ==\n";
  table.print(std::cout);
  std::cout << '\n';
  if (args.csv_path) {
    std::ofstream out(*args.csv_path, std::ios::app);
    if (!out) {
      std::cerr << "cannot open " << *args.csv_path << '\n';
      std::exit(1);
    }
    out << "# " << title << '\n';
    table.print_csv(out);
  }
}

std::string glb_label(count_t glb_bytes) {
  return std::to_string(glb_bytes / 1024) + "kB";
}

std::string mcycles(double cycles) { return util::fmt(cycles / 1e6, 2); }

}  // namespace rainbow::bench
