// Figure 11: accesses and latency benefit of enabling inter-layer reuse
// versus disabling it (Het scheme), for MnasNet across all buffer sizes,
// with the inter-layer coverage in parentheses; plus the paper's geomean
// over all models at 1 MB.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using core::Objective;
  const auto args = bench::parse_args(argc, argv);

  const auto net = model::zoo::mnasnet();
  const std::size_t boundaries = core::sequential_boundaries(net);

  util::Table table({"GLB", "accesses benefit %", "latency benefit %",
                     "inter-layer coverage %"});
  for (const auto glb : arch::paper_glb_sizes()) {
    const auto spec = arch::paper_spec(glb);
    core::ManagerOptions base;
    base.analyzer.estimator.padded_traffic = !args.no_padding;
    core::ManagerOptions inter = base;
    inter.interlayer_reuse = true;

    const auto plan_off =
        core::MemoryManager(spec, base).plan(net, Objective::kAccesses);
    const auto plan_on =
        core::MemoryManager(spec, inter).plan(net, Objective::kAccesses);

    table.add_row(
        {bench::glb_label(glb),
         util::fmt(util::benefit_percent(
             static_cast<double>(plan_off.total_accesses()),
             static_cast<double>(plan_on.total_accesses()))),
         util::fmt(util::benefit_percent(plan_off.total_latency_cycles(),
                                         plan_on.total_latency_cycles())),
         util::fmt(100.0 * plan_on.interlayer_coverage(boundaries))});
  }
  bench::emit("Figure 11: inter-layer reuse enabled vs disabled, MnasNet",
              table, args);

  // Geomean across all models at 1 MB (the paper: 47% accesses, 8% latency).
  std::vector<double> access_ratio, latency_ratio;
  const auto spec = arch::paper_spec(util::kib(1024));
  for (const auto& model_net : model::zoo::all_models()) {
    core::ManagerOptions base;
    base.analyzer.estimator.padded_traffic = !args.no_padding;
    core::ManagerOptions inter = base;
    inter.interlayer_reuse = true;
    const auto off =
        core::MemoryManager(spec, base).plan(model_net, Objective::kAccesses);
    const auto on =
        core::MemoryManager(spec, inter).plan(model_net, Objective::kAccesses);
    access_ratio.push_back(static_cast<double>(on.total_accesses()) /
                           static_cast<double>(off.total_accesses()));
    latency_ratio.push_back(on.total_latency_cycles() /
                            off.total_latency_cycles());
  }
  std::cout << "geomean benefit over all models @ 1 MB: accesses "
            << util::fmt(100.0 * (1.0 - util::geomean(access_ratio)))
            << "%, latency "
            << util::fmt(100.0 * (1.0 - util::geomean(latency_ratio)))
            << "% (paper: 47% / 8%)\n";
  std::cout << "paper shape: no benefit at 64 kB (0% coverage), large "
               "benefit at 512 kB-1 MB (88-98% coverage, ~70% access cut for "
               "MnasNet).\n";
  return 0;
}
