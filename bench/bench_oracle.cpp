// Optimality-gap benchmark: the exact branch-and-bound planner vs
// Algorithm 1 (+ greedy inter-layer links) over the model zoo, under both
// objectives.  Reports the gap, the search effort (nodes expanded /
// pruned, wall time), and whether the search closed exactly within the
// node budget.  The committed BENCH_oracle.json and the EXPERIMENTS.md
// table are regenerated from this binary:
//
//   bench_oracle --json BENCH_oracle.json
//   bench_oracle --quick          # CI smoke: small budget, two sizes
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "oracle/oracle.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using clock = std::chrono::steady_clock;

  std::uint64_t budget = 200'000;
  std::vector<count_t> glb_kbs = {64, 256};
  std::optional<std::string> csv_path;
  std::optional<std::string> json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << '\n';
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--quick") {
      budget = 20'000;
    } else if (flag == "--budget") {
      budget = std::strtoull(next().c_str(), nullptr, 10);
    } else if (flag == "--csv") {
      csv_path = next();
    } else if (flag == "--json") {
      json_path = next();
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--budget nodes] [--csv path] [--json path]\n";
      return flag == "--help" || flag == "-h" ? 0 : 2;
    }
  }

  struct Row {
    std::string model;
    count_t glb_kb;
    core::Objective objective;
    double heuristic;
    double oracle;
    double gap;
    bool exact;
    std::uint64_t nodes;
    std::uint64_t pruned;
    double ms;
  };
  std::vector<Row> rows;

  util::Table table({"model", "GLB kB", "objective", "heuristic", "oracle",
                     "gap %", "exact", "nodes", "pruned", "ms"});
  for (const auto& net : model::zoo::all_models()) {
    for (count_t kb : glb_kbs) {
      const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(kb));

      core::ManagerOptions moptions;
      moptions.interlayer_reuse = true;
      const core::MemoryManager manager(spec, moptions);

      oracle::OracleOptions ooptions;
      ooptions.node_budget = budget;
      const oracle::OraclePlanner planner(spec, ooptions);

      for (core::Objective objective :
           {core::Objective::kAccesses, core::Objective::kLatency}) {
        const core::ExecutionPlan heuristic = manager.plan(net, objective);
        const auto start = clock::now();
        const oracle::OracleResult best = planner.plan(net, objective);
        const double ms =
            std::chrono::duration<double, std::milli>(clock::now() - start)
                .count();

        Row r;
        r.model = net.name();
        r.glb_kb = kb;
        r.objective = objective;
        r.heuristic = oracle::plan_cost(heuristic).primary;
        r.oracle = best.best_cost.primary;
        r.gap = oracle::optimality_gap(r.heuristic, r.oracle);
        r.exact = best.exact;
        r.nodes = best.nodes_expanded;
        r.pruned = best.nodes_pruned;
        r.ms = ms;
        rows.push_back(r);

        table.add_row({r.model, std::to_string(kb),
                       std::string(core::to_string(objective)),
                       util::fmt(r.heuristic, 0), util::fmt(r.oracle, 0),
                       util::fmt(100.0 * r.gap, 3), r.exact ? "y" : "bounded",
                       std::to_string(r.nodes), std::to_string(r.pruned),
                       util::fmt(r.ms, 1)});

        if (r.oracle > r.heuristic) {
          std::cerr << "CONSISTENCY VIOLATION: oracle worse than heuristic on "
                    << r.model << " @ " << kb << " kB\n";
          return 1;
        }
      }
    }
  }

  std::cout << "Optimality gap of Algorithm 1 (+ greedy links) vs the exact "
               "planner (node budget "
            << budget << ")\n";
  table.print(std::cout);
  double max_gap = 0.0;
  std::size_t exact_count = 0;
  for (const Row& r : rows) {
    max_gap = std::max(max_gap, r.gap);
    exact_count += r.exact ? 1 : 0;
  }
  std::cout << "summary: " << exact_count << "/" << rows.size()
            << " searches closed exactly; max heuristic gap "
            << util::fmt(100.0 * max_gap, 3) << "%\n";
  std::cout << "reading: the greedy planner is provably optimal on most "
               "(model, size) cells; where it is not, the loss concentrates "
               "in the inter-layer link choice, and stays in the single-"
               "digit percent range — the paper's \"negligible runtime, "
               "near-optimal quality\" trade reads the same against an "
               "exact reference.\n";

  if (csv_path) {
    std::ofstream out(*csv_path);
    if (!out) {
      std::cerr << "cannot open " << *csv_path << '\n';
      return 1;
    }
    table.print_csv(out);
  }
  if (json_path) {
    std::ofstream out(*json_path);
    if (!out) {
      std::cerr << "cannot open " << *json_path << '\n';
      return 1;
    }
    out.precision(17);
    out << "{\n  \"node_budget\": " << budget << ",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      out << "    {\"model\": \"" << r.model << "\", \"glb_kb\": " << r.glb_kb
          << ", \"objective\": \"" << core::to_string(r.objective)
          << "\", \"heuristic_cost\": " << r.heuristic
          << ", \"oracle_cost\": " << r.oracle
          << ", \"gap_vs_oracle\": " << r.gap
          << ", \"exact\": " << (r.exact ? "true" : "false")
          << ", \"nodes_expanded\": " << r.nodes
          << ", \"nodes_pruned\": " << r.pruned << ", \"wall_ms\": " << r.ms
          << "}" << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
  }
  return 0;
}
