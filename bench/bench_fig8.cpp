// Figure 8: inference latency for the baseline (zero-stall SCALE-Sim
// cycles, independent of buffer sizes) and the proposed schemes optimized
// for accesses (Hom_a, Het_a) and for latency (Hom_l, Het_l), for every
// model and GLB size.
#include <iostream>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using core::Objective;
  const auto args = bench::parse_args(argc, argv);

  struct Cell {
    std::string model;
    count_t glb = 0;
    double baseline = 0, hom_a = 0, het_a = 0, hom_l = 0, het_l = 0;
  };
  std::vector<Cell> cells;
  for (const auto& name : model::zoo::model_names()) {
    for (const auto glb : arch::paper_glb_sizes()) {
      cells.push_back({.model = name, .glb = glb});
    }
  }

  util::parallel_for_each(cells, [&](Cell& cell) {
    const auto net = model::zoo::by_name(cell.model);
    const auto spec = arch::paper_spec(cell.glb);
    const scalesim::Simulator sim(spec,
                                  scalesim::BufferPartition{.ifmap_fraction = 0.5});
    cell.baseline = static_cast<double>(sim.run(net).total_cycles);
    core::ManagerOptions options;
    options.analyzer.estimator.padded_traffic = !args.no_padding;
    const core::MemoryManager manager(spec, options);
    cell.hom_a = manager.plan_homogeneous(net, Objective::kAccesses)
                     .total_latency_cycles();
    cell.het_a = manager.plan(net, Objective::kAccesses).total_latency_cycles();
    cell.hom_l = manager.plan_homogeneous(net, Objective::kLatency)
                     .total_latency_cycles();
    cell.het_l = manager.plan(net, Objective::kLatency).total_latency_cycles();
  });

  util::Table table({"model", "GLB", "baseline Mcyc", "Hom_a Mcyc",
                     "Het_a Mcyc", "Hom_l Mcyc", "Het_l Mcyc",
                     "Het_l vs Het_a %"});
  for (const Cell& c : cells) {
    table.add_row({c.model, bench::glb_label(c.glb), bench::mcycles(c.baseline),
                   bench::mcycles(c.hom_a), bench::mcycles(c.het_a),
                   bench::mcycles(c.hom_l), bench::mcycles(c.het_l),
                   util::fmt(100.0 * (c.het_a - c.het_l) / c.het_a)});
  }
  bench::emit("Figure 8: latency per scheme, model, GLB size", table, args);

  std::cout << "paper shape: the baseline is buffer-size independent "
               "(zero-stall); Hom_l/Het_l beat Hom_a/Het_a (up to ~23%); the "
               "largest latency win over the baseline (~56%, MnasNet) comes "
               "at 1 MB.  GoogLeNet/ResNet18 can trail the baseline because "
               "our estimates pay peak-bandwidth transfers and padding.\n";
  return 0;
}
