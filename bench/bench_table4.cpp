// Table 4: the memory policies the heterogeneous scheme selects for each
// network with a 64 kB GLB (accesses objective).  "(+p)" marks policies
// used both with and without prefetching, "+p" prefetching only.
#include <iostream>
#include <map>
#include <set>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using core::Policy;
  const auto args = bench::parse_args(argc, argv);

  core::ManagerOptions options;
  options.analyzer.estimator.padded_traffic = !args.no_padding;
  const core::MemoryManager manager(arch::paper_spec(util::kib(64)), options);

  util::Table table({"Network", "Memory policies used"});
  for (const auto& net : model::zoo::all_models()) {
    const auto plan = manager.plan(net, core::Objective::kAccesses);
    // policy -> {plain used, prefetch used}
    std::map<Policy, std::pair<bool, bool>> used;
    for (const auto& a : plan.assignments()) {
      auto& flags = used[a.estimate.choice.policy];
      (a.estimate.choice.prefetch ? flags.second : flags.first) = true;
    }
    std::string summary;
    for (const auto& [policy, flags] : used) {
      if (!summary.empty()) {
        summary += ", ";
      }
      summary += core::short_label(policy, false);
      if (flags.first && flags.second) {
        summary += " (+p)";
      } else if (flags.second) {
        summary += " +p";
      }
    }
    table.add_row({net.name(), summary});
  }
  bench::emit("Table 4: memory policies used by Het at 64 kB GLB", table, args);

  std::cout << "paper: EfficientNetB0 {intra(+p), p1(+p), p2+p, p3(+p), p5+p} "
               "| GoogLeNet {intra(+p), p1(+p), p2+p, p3(+p), p4, p5} | "
               "MnasNet {p1(+p), p2+p, p3(+p)} | MobileNet {p1..p5} | "
               "MobileNetV2 {intra, p1, p2, p3} | ResNet18 {p1, p2, p3, p5}\n";
  return 0;
}
