// Table 3: maximum per-layer memory requirement (kB, 8-bit elements) for
// the policies that transfer each element only once — intra-layer reuse and
// policies 1-3.  Note: the published table prints the Policy 1 / Policy 3
// columns swapped relative to the text's definitions; this bench reports
// both labellings.
#include <algorithm>
#include <iostream>

#include "arch/accelerator.hpp"
#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "model/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using core::Policy;
  const auto args = bench::parse_args(argc, argv);

  const core::Estimator est(arch::paper_spec(util::kib(1024)));
  auto max_kb = [&](const model::Network& net, Policy policy) {
    double mx = 0.0;
    for (const auto& layer : net.layers()) {
      const auto e = est.estimate_choice(layer, {.policy = policy});
      mx = std::max(mx, static_cast<double>(e.footprint.total()) / 1024.0);
    }
    return mx;
  };

  util::Table table({"Network", "intra-layer reuse", "Policy 1 (ifmap)",
                     "Policy 2 (filter)", "Policy 3 (per-channel)"});
  for (const auto& net : model::zoo::all_models()) {
    table.add_row({net.name(), util::fmt(max_kb(net, Policy::kIntraLayer)),
                   util::fmt(max_kb(net, Policy::kIfmapReuse)),
                   util::fmt(max_kb(net, Policy::kFilterReuse)),
                   util::fmt(max_kb(net, Policy::kPerChannel))});
  }
  bench::emit(
      "Table 3: max memory (kB) for single-transfer policies (text column "
      "order; the paper's table swaps the P1/P3 columns)",
      table, args);

  std::cout << "paper (printed order intra/P1/P2/P3): EfficientNetB0 "
               "1491.9/1176.2/1201/1252.3 | GoogLeNet 2051/788.6/199.7/2051 | "
               "MnasNet 1252.3/588.2/591.5/1252.3 | MobileNet "
               "1178/784.2/801.7/1038 | MobileNetV2 1491.9/1176.2/1201/1252.3 "
               "| ResNet18 2353/788.6/199.7/2318\n";
  return 0;
}
