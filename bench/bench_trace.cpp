// Traced-simulation + trace-I/O benchmark: what the fold-chunk closed-form
// walk buys over the seed's per-cycle layer-parallel walk, and what the
// pipelined std::to_chars trace writer buys over the seed's per-field
// ofstream writer — with every claim checked before a speedup is reported:
// event counts must match the legacy walk exactly, the fold-chunk checksum
// must be thread-count-invariant, and the fast writer's bytes must equal
// the naive writer's byte for byte.
//
//   bench_trace [--quick] [--check] [--json <path>] [--csv <path>]
//
// --quick caps the work (CI smoke); --check exits non-zero on any
// checksum / event-count / golden-trace divergence; --json writes the
// machine-readable report committed as BENCH_trace.json.
//
// Scaling rows record the worker count each dispatch actually resolved to
// and carry a `degenerate` flag when the host has a single hardware
// thread — there, multi-thread rows demonstrate determinism, not speedup.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"
#include "scalesim/trace_writer.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace rainbow;
using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

/// Best-of-N timing: reruns `fn` and keeps the fastest wall time, so a
/// cold first run (page cache, allocator warm-up) doesn't masquerade as a
/// real cost difference between configurations.
template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < reps; ++i) {
    const auto start = clock_type::now();
    fn();
    best = std::min(best, ms_since(start));
  }
  return best;
}

struct Options {
  bool quick = false;
  bool check = false;
  std::optional<std::string> json_path;
  std::optional<std::string> csv_path;
};

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--quick") {
      opt.quick = true;
    } else if (flag == "--check") {
      opt.check = true;
    } else if (flag == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (flag == "--csv" && i + 1 < argc) {
      opt.csv_path = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--quick] [--check] [--json path] [--csv path]\n";
      std::exit(flag == "--help" || flag == "-h" ? 0 : 2);
    }
  }
  return opt;
}

/// The seed's traced walk, verbatim: per-cycle operand loops inside each
/// fold, parallelism stopping at layer granularity.  Kept here as the
/// timing baseline and as the oracle for the event counts.
struct LegacyWalkTotals {
  count_t read_events = 0;
  count_t write_events = 0;
  count_t total_cycles = 0;
};

LegacyWalkTotals legacy_run_traced(const scalesim::Simulator& sim,
                                   const model::Network& network,
                                   int threads) {
  struct LayerWalk {
    count_t read_events = 0;
    count_t write_events = 0;
    count_t cycles = 0;
    count_t checksum = 0;
  };
  std::vector<LayerWalk> walks(network.size());
  const auto walk_layer = [&](std::size_t index) {
    LayerWalk& walk = walks[index];
    const model::Layer& layer = network.layer(index);
    const scalesim::FoldGeometry g =
        scalesim::fold_geometry(layer, sim.spec());
    const count_t rows = static_cast<count_t>(sim.spec().pe_rows);
    const count_t cols = static_cast<count_t>(sim.spec().pe_cols);
    count_t checksum = 0;
    for (count_t group = 0; group < g.channel_groups; ++group) {
      for (count_t rf = 0; rf < g.row_folds; ++rf) {
        const count_t active_rows = std::min(rows, g.output_rows - rf * rows);
        for (count_t cf = 0; cf < g.col_folds; ++cf) {
          const count_t active_cols =
              std::min(cols, g.output_cols - cf * cols);
          for (count_t t = 0; t < g.reduction; ++t) {
            for (count_t r = 0; r < active_rows; ++r) {
              const count_t pixel = rf * rows + r;
              checksum += group * 0x9e3779b9u + pixel * g.reduction + t;
              ++walk.read_events;
            }
            for (count_t c = 0; c < active_cols; ++c) {
              const count_t filter = cf * cols + c;
              checksum ^= (filter * g.reduction + t) + (checksum << 6) +
                          (checksum >> 2);
              ++walk.read_events;
            }
          }
          walk.write_events += active_rows * active_cols;
          walk.cycles += g.reduction + 2 * rows - 2;
        }
      }
    }
    walk.checksum = checksum;
  };
  const std::size_t workers = std::min<std::size_t>(
      threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                   : static_cast<std::size_t>(std::max(threads, 1)),
      network.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < network.size(); ++i) {
      walk_layer(i);
    }
  } else {
    std::vector<std::size_t> indices(network.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
      indices[i] = i;
    }
    util::parallel_for_each(indices, walk_layer, workers);
  }
  LegacyWalkTotals totals;
  for (const LayerWalk& walk : walks) {
    totals.read_events += walk.read_events;
    totals.write_events += walk.write_events;
    totals.total_cycles += walk.cycles;
  }
  return totals;
}

/// The seed's trace writer, verbatim: per-field operator<< on an ofstream.
/// Baseline for write throughput and the byte-identity oracle.
count_t naive_write_sram_trace(const model::Layer& layer,
                               const arch::AcceleratorSpec& spec,
                               const std::filesystem::path& path,
                               count_t max_rows, count_t filter_base) {
  std::ofstream out(path);
  const scalesim::FoldGeometry g = scalesim::fold_geometry(layer, spec);
  const count_t rows = static_cast<count_t>(spec.pe_rows);
  const count_t cols = static_cast<count_t>(spec.pe_cols);
  out << "cycle";
  for (count_t r = 0; r < rows; ++r) {
    out << ",ifmap_row" << r;
  }
  for (count_t c = 0; c < cols; ++c) {
    out << ",filter_col" << c;
  }
  out << '\n';
  count_t rows_written = 0;
  count_t cycle = 0;
  for (count_t group = 0; group < g.channel_groups; ++group) {
    const count_t group_base = group * g.output_rows * g.reduction;
    for (count_t rf = 0; rf < g.row_folds; ++rf) {
      const count_t active_rows = std::min(rows, g.output_rows - rf * rows);
      for (count_t cf = 0; cf < g.col_folds; ++cf) {
        const count_t active_cols = std::min(cols, g.output_cols - cf * cols);
        for (count_t t = 0; t < g.reduction; ++t) {
          if (max_rows != 0 && rows_written >= max_rows) {
            continue;
          }
          out << cycle + t;
          for (count_t r = 0; r < rows; ++r) {
            if (r < active_rows) {
              const count_t pixel = rf * rows + r;
              out << ',' << group_base + pixel * g.reduction + t;
            } else {
              out << ",-";
            }
          }
          for (count_t c = 0; c < cols; ++c) {
            if (c < active_cols) {
              const count_t filter = cf * cols + c;
              out << ','
                  << filter_base + group_base + filter * g.reduction + t;
            } else {
              out << ",-";
            }
          }
          out << '\n';
          ++rows_written;
        }
        cycle += g.reduction + 2 * rows - 2;
      }
    }
  }
  return rows_written;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), {});
}

struct TracedRow {
  std::string model;
  int threads = 1;
  std::size_t effective_workers = 1;
  double legacy_ms = 0.0;
  double fold_chunk_ms = 0.0;
  bool events_match = true;
  bool checksum_invariant = true;
};

struct WriterRow {
  int threads = 1;
  std::size_t effective_workers = 1;
  double ms = 0.0;
  double mb_s = 0.0;
  bool bytes_identical = true;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const bool degenerate = hw == 1;
  bool all_ok = true;

  // --- 1. traced simulation: legacy layer-parallel vs fold-chunk ---------
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));
  const scalesim::BufferPartition partition{};
  std::vector<std::string> models =
      opt.quick ? std::vector<std::string>{"mobilenet"}
                : std::vector<std::string>{"efficientnetb0", "googlenet",
                                           "mnasnet", "mobilenet",
                                           "mobilenetv2", "resnet18"};
  std::set<int> thread_counts{1, 2, 4};
  if (!opt.quick) {
    thread_counts.insert(static_cast<int>(hw));
  }
  std::vector<TracedRow> traced_rows;
  for (const std::string& name : models) {
    const model::Network net = model::zoo::by_name(name);
    const scalesim::Simulator sim(spec, partition);
    const scalesim::TraceResult reference = sim.run_traced(net, 1);
    const LegacyWalkTotals oracle = legacy_run_traced(sim, net, 1);
    const int reps = opt.quick ? 2 : 3;
    for (int threads : thread_counts) {
      TracedRow row;
      row.model = net.name();
      row.threads = threads;
      LegacyWalkTotals legacy;
      row.legacy_ms =
          best_of(reps, [&] { legacy = legacy_run_traced(sim, net, threads); });
      scalesim::TraceResult traced;
      row.fold_chunk_ms =
          best_of(reps, [&] { traced = sim.run_traced(net, threads); });
      row.effective_workers = traced.workers_used;
      // The closed-form fold walk must account the exact event volume the
      // per-cycle walk materialises, at every thread count.
      row.events_match = traced.sram_read_events == oracle.read_events &&
                         traced.sram_write_events == oracle.write_events &&
                         traced.aggregate.total_cycles == oracle.total_cycles &&
                         legacy.read_events == oracle.read_events &&
                         legacy.write_events == oracle.write_events;
      row.checksum_invariant =
          traced.trace_checksum == reference.trace_checksum &&
          traced.sram_read_events == reference.sram_read_events &&
          traced.sram_write_events == reference.sram_write_events;
      all_ok = all_ok && row.events_match && row.checksum_invariant;
      traced_rows.push_back(row);
    }
  }

  // --- 2. trace writer: naive per-field vs pipelined shards --------------
  // A mid-network ResNet18 conv: T = 576, 784 folds.  The row cap keeps
  // the file benchmark-sized and exercises the truncation path.
  const auto writer_layer =
      model::make_conv("conv2", 56, 56, 64, 3, 3, 64, 1, 1);
  const count_t writer_rows = opt.quick ? 12'000 : 120'000;
  const count_t filter_base = 1u << 30;
  const auto tmp = std::filesystem::temp_directory_path();
  const auto naive_path = tmp / "bench_trace_naive.csv";
  const auto fast_path = tmp / "bench_trace_fast.csv";

  const int writer_reps = opt.quick ? 2 : 3;
  // Untimed warm-up: first touches of the heap and the tmp file pay page
  // faults that would otherwise be billed to whichever row runs first.
  (void)naive_write_sram_trace(writer_layer, spec, naive_path, writer_rows,
                               filter_base);
  (void)scalesim::write_sram_trace(
      writer_layer, spec, fast_path,
      {.max_rows = writer_rows, .filter_base = filter_base, .threads = 1});
  const double naive_ms = best_of(writer_reps, [&] {
    (void)naive_write_sram_trace(writer_layer, spec, naive_path, writer_rows,
                                 filter_base);
  });
  const std::string golden = read_file(naive_path);
  const double trace_mb = static_cast<double>(golden.size()) / (1024.0 * 1024.0);
  const double naive_mb_s = trace_mb / (naive_ms / 1000.0);

  std::vector<WriterRow> writer_rows_out;
  for (int threads : thread_counts) {
    WriterRow row;
    row.threads = threads;
    scalesim::TraceFileInfo info;
    row.ms = best_of(writer_reps, [&] {
      info = scalesim::write_sram_trace(
          writer_layer, spec, fast_path,
          {.max_rows = writer_rows, .filter_base = filter_base,
           .threads = threads});
    });
    row.effective_workers = info.workers_used;
    row.mb_s = trace_mb / (row.ms / 1000.0);
    row.bytes_identical =
        info.bytes_written == golden.size() && read_file(fast_path) == golden;
    all_ok = all_ok && row.bytes_identical;
    writer_rows_out.push_back(row);
  }
  std::filesystem::remove(naive_path);
  std::filesystem::remove(fast_path);

  // --- report -------------------------------------------------------------
  util::Table traced_table({"model", "threads", "workers", "legacy ms",
                            "fold-chunk ms", "speedup", "exact"});
  for (const TracedRow& row : traced_rows) {
    traced_table.add_row(
        {row.model, std::to_string(row.threads),
         std::to_string(row.effective_workers), util::fmt(row.legacy_ms, 2),
         util::fmt(row.fold_chunk_ms, 2),
         util::fmt(row.legacy_ms / row.fold_chunk_ms, 1) + "x",
         row.events_match && row.checksum_invariant ? "yes" : "NO"});
  }
  std::cout << "traced simulation (legacy per-cycle layer-parallel walk vs "
               "closed-form fold-chunk walk):\n";
  traced_table.print(std::cout);
  if (degenerate) {
    std::cout << "note: hardware_concurrency == 1 — multi-thread rows "
                 "demonstrate determinism, not wall-clock scaling.\n";
  }

  util::Table writer_table({"writer", "threads", "workers", "ms", "MB/s",
                            "identical"});
  writer_table.add_row({"naive", "1", "1", util::fmt(naive_ms, 2),
                        util::fmt(naive_mb_s, 1), "oracle"});
  for (const WriterRow& row : writer_rows_out) {
    writer_table.add_row({"pipelined", std::to_string(row.threads),
                          std::to_string(row.effective_workers),
                          util::fmt(row.ms, 2), util::fmt(row.mb_s, 1),
                          row.bytes_identical ? "yes" : "NO"});
  }
  std::cout << "\ntrace writer (" << util::fmt(trace_mb, 1) << " MB, "
            << writer_rows << " rows):\n";
  writer_table.print(std::cout);

  if (opt.csv_path) {
    std::ofstream out(*opt.csv_path);
    out << "section,model,threads,workers,degenerate,baseline_ms,ms,ok\n";
    for (const TracedRow& row : traced_rows) {
      out << "traced," << row.model << ',' << row.threads << ','
          << row.effective_workers << ',' << (degenerate ? 1 : 0) << ','
          << row.legacy_ms << ',' << row.fold_chunk_ms << ','
          << (row.events_match && row.checksum_invariant ? 1 : 0) << '\n';
    }
    for (const WriterRow& row : writer_rows_out) {
      out << "writer,conv2," << row.threads << ',' << row.effective_workers
          << ',' << (degenerate ? 1 : 0) << ',' << naive_ms << ',' << row.ms
          << ',' << (row.bytes_identical ? 1 : 0) << '\n';
    }
  }

  if (opt.json_path) {
    std::ofstream out(*opt.json_path);
    out << "{\n  \"hardware_concurrency\": " << hw << ",\n"
        << "  \"degenerate_scaling\": " << (degenerate ? "true" : "false")
        << ",\n  \"quick\": " << (opt.quick ? "true" : "false") << ",\n"
        << "  \"traced\": [\n";
    for (std::size_t i = 0; i < traced_rows.size(); ++i) {
      const TracedRow& row = traced_rows[i];
      out << "    {\"model\": \"" << row.model
          << "\", \"threads\": " << row.threads
          << ", \"effective_workers\": " << row.effective_workers
          << ", \"degenerate\": " << (degenerate ? "true" : "false")
          << ", \"legacy_ms\": " << row.legacy_ms
          << ", \"fold_chunk_ms\": " << row.fold_chunk_ms
          << ", \"speedup\": " << row.legacy_ms / row.fold_chunk_ms
          << ", \"events_match\": " << (row.events_match ? "true" : "false")
          << ", \"checksum_invariant\": "
          << (row.checksum_invariant ? "true" : "false") << "}"
          << (i + 1 < traced_rows.size() ? "," : "") << '\n';
    }
    out << "  ],\n  \"writer\": {\n"
        << "    \"layer\": \"conv 56x56x64 3x3 -> 64\", \"rows\": "
        << writer_rows << ", \"mb\": " << trace_mb
        << ",\n    \"naive_ms\": " << naive_ms
        << ", \"naive_mb_s\": " << naive_mb_s << ",\n    \"pipelined\": [\n";
    for (std::size_t i = 0; i < writer_rows_out.size(); ++i) {
      const WriterRow& row = writer_rows_out[i];
      out << "      {\"threads\": " << row.threads
          << ", \"effective_workers\": " << row.effective_workers
          << ", \"degenerate\": " << (degenerate ? "true" : "false")
          << ", \"ms\": " << row.ms << ", \"mb_s\": " << row.mb_s
          << ", \"speedup\": " << naive_ms / row.ms
          << ", \"bytes_identical\": "
          << (row.bytes_identical ? "true" : "false") << "}"
          << (i + 1 < writer_rows_out.size() ? "," : "") << '\n';
    }
    out << "    ]\n  },\n  \"all_ok\": " << (all_ok ? "true" : "false")
        << "\n}\n";
  }

  if (!all_ok) {
    std::cerr << "bench_trace: fold-chunk walk or pipelined writer diverged "
                 "from the seed oracles\n";
    return 1;
  }
  std::cout << "\nreading: the fold-chunk walk replaces the per-cycle operand "
               "loops with closed-form per-fold event counts and schedules "
               "fold-range chunks of all layers on one pool, so one large "
               "layer no longer pins the critical path; the writer formats "
               "shards with std::to_chars into reusable buffers and flushes "
               "them as ordered block writes — bytes identical to the naive "
               "writer for every thread count.\n";
  return 0;
}
