// Section 4's runtime claim: generating the management schemes for all
// models takes ~a minute of analytic estimation, while the full baseline
// simulation takes hours.  Here both run in-process: the manager's
// Algorithm 1 sweep versus the baseline simulator sweep, per model and for
// the whole suite.  The gap (analytic plans are cheap, simulation is the
// expensive part) is the reproducible shape; absolute times depend on the
// host.
#include <benchmark/benchmark.h>

#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"

namespace {

using namespace rainbow;

const std::vector<model::Network>& models() {
  static const std::vector<model::Network> kModels = model::zoo::all_models();
  return kModels;
}

void BM_ManagerHetPlan(benchmark::State& state) {
  const auto& net = models()[static_cast<std::size_t>(state.range(0))];
  const core::MemoryManager manager(arch::paper_spec(util::kib(64)));
  for (auto _ : state) {
    auto plan = manager.plan(net, core::Objective::kAccesses);
    benchmark::DoNotOptimize(plan.total_accesses());
  }
  state.SetLabel(net.name());
}
BENCHMARK(BM_ManagerHetPlan)->DenseRange(0, 5);

void BM_ManagerFullSweep(benchmark::State& state) {
  // All six models at all five GLB sizes, both objectives, Hom + Het —
  // the paper's "approximately one minute" workload.
  for (auto _ : state) {
    count_t checksum = 0;
    for (const auto glb : arch::paper_glb_sizes()) {
      const core::MemoryManager manager(arch::paper_spec(glb));
      for (const auto& net : models()) {
        for (core::Objective obj :
             {core::Objective::kAccesses, core::Objective::kLatency}) {
          checksum += manager.plan(net, obj).total_accesses();
          checksum += manager.plan_homogeneous(net, obj).total_accesses();
        }
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_ManagerFullSweep)->Unit(benchmark::kMillisecond);

void BM_BaselineAnalytic(benchmark::State& state) {
  // The analytic traffic model alone — as cheap as the manager's
  // estimators, shown for contrast with the traced run below.
  const auto& net = models()[static_cast<std::size_t>(state.range(0))];
  const scalesim::Simulator sim(arch::paper_spec(util::kib(64)),
                                scalesim::BufferPartition{.ifmap_fraction = 0.5});
  for (auto _ : state) {
    auto run = sim.run(net);
    benchmark::DoNotOptimize(run.total_accesses);
  }
  state.SetLabel(net.name());
}
BENCHMARK(BM_BaselineAnalytic)->DenseRange(0, 5);

void BM_BaselineTracedSimulation(benchmark::State& state) {
  // Full cycle-level fold walk with trace generation — what SCALE-Sim
  // actually does, and the reason the paper reports >5 hours of baseline
  // simulation versus ~a minute of plan generation.
  const auto& net = models()[static_cast<std::size_t>(state.range(0))];
  const scalesim::Simulator sim(arch::paper_spec(util::kib(64)),
                                scalesim::BufferPartition{.ifmap_fraction = 0.5});
  for (auto _ : state) {
    auto run = sim.run_traced(net);
    benchmark::DoNotOptimize(run.trace_checksum);
  }
  state.SetLabel(net.name());
}
BENCHMARK(BM_BaselineTracedSimulation)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace
