// Figure 1 (motivational): two layer cases inspired by ResNet18 — case A
// filter-dominated (a late stage), case B ofmap-dominated (an early stage).
// For each case we show what a separate-buffer setup can keep on-chip
// versus the unified GLB under the access and latency goals.
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/analyzer.hpp"
#include "model/layer.hpp"
#include "scalesim/buffer.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  using core::Objective;
  const auto args = bench::parse_args(argc, argv);

  const auto spec = arch::paper_spec(util::kib(64));
  const core::Analyzer analyzer(spec);
  const scalesim::BufferPartition split{.ifmap_fraction = 0.5};
  const count_t usable_if = split.ifmap_buffer(spec).usable_elems(spec);
  const count_t usable_flt = split.filter_buffer(spec).usable_elems(spec);
  const count_t usable_of = split.ofmap_buffer().usable_elems(spec);

  const model::Layer cases[] = {
      // Case A: large filters (ResNet18 conv5_x shape).
      model::make_conv("case_A", 14, 14, 256, 3, 3, 512, 2, 1),
      // Case B: large ofmap (ResNet18 conv1 shape).
      model::make_conv("case_B", 224, 224, 3, 7, 7, 64, 2, 3),
  };

  util::Table table({"case", "data", "need kB", "separate-buffer kB",
                     "GLB access-goal kB", "GLB latency-goal kB"});
  for (const auto& layer : cases) {
    const auto access_best = analyzer.best_estimate(layer, Objective::kAccesses);
    const auto latency_best = analyzer.best_estimate(layer, Objective::kLatency);
    const count_t need[3] = {layer.ifmap_elems(), layer.filter_elems(),
                             layer.ofmap_elems()};
    const count_t separate[3] = {std::min(need[0], usable_if),
                                 std::min(need[1], usable_flt),
                                 std::min(need[2], usable_of)};
    const count_t glb_a[3] = {access_best.footprint.ifmap,
                              access_best.footprint.filter,
                              access_best.footprint.ofmap};
    const count_t glb_l[3] = {latency_best.footprint.ifmap,
                              latency_best.footprint.filter,
                              latency_best.footprint.ofmap};
    const char* names[3] = {"ifmap", "filter", "ofmap"};
    for (int i = 0; i < 3; ++i) {
      table.add_row({layer.name(), names[i],
                     util::fmt(static_cast<double>(need[i]) / 1024.0),
                     util::fmt(static_cast<double>(separate[i]) / 1024.0),
                     util::fmt(static_cast<double>(glb_a[i]) / 1024.0),
                     util::fmt(static_cast<double>(glb_l[i]) / 1024.0)});
    }
    std::ostringstream policy_a, policy_l;
    policy_a << access_best.choice;
    policy_l << latency_best.choice;
    table.add_row({layer.name(), "policy", "-", "fixed 50/50/4kB",
                   policy_a.str(), policy_l.str()});
  }
  bench::emit(
      "Figure 1: separate buffers vs managed global buffer (64 kB on-chip)",
      table, args);

  std::cout << "reading: the separate setup truncates the dominant data type "
               "at its fixed partition while other partitions sit idle; the "
               "managed GLB reshapes the whole 64 kB around each case "
               "(access goal) or halves working copies to prefetch (latency "
               "goal).\n";
  return 0;
}
