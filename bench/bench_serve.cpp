// bench_serve: load harness for rainbowd (docs/serving.md).  Measures
// daemon planning throughput (plans/sec) and latency (p50/p99) at several
// concurrent-client counts, the evaluation-cache hit rate, and the warm
// re-plan speedup over a cold one-shot plan — the number that justifies
// keeping models resident at all.
//
//   bench_serve                         # in-process daemon, full sweep
//   bench_serve --clients 1,4,16 --requests 400 --json BENCH_serve.json
//   bench_serve --socket /tmp/rainbowd.sock --smoke   # CI smoke driver
//   bench_serve --rate 200              # open-loop at 200 plans/sec
#include <algorithm>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/accelerator.hpp"
#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace rainbow;
using Clock = std::chrono::steady_clock;

struct CliOptions {
  std::string socket_path;  // external daemon; empty = in-process server
  int port = -1;
  std::vector<int> clients = {1, 4, 16};
  int requests = 400;  // per client level, split across clients
  double rate = 0.0;   // open-loop arrival rate in plans/sec; 0 = closed
  bool smoke = false;
  std::optional<std::string> json_path;
  std::optional<std::string> cold_exec;  // rainbow_plan binary for cold ref
  std::size_t threads = 0;               // in-process planning workers
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::ostream& os = code == 0 ? std::cout : std::cerr;
  os << "usage: " << argv0 << " [options]\n"
     << "  --socket <path>     drive an external rainbowd (default:\n"
     << "                      in-process daemon on an ephemeral socket)\n"
     << "  --port <N>          drive an external rainbowd over TCP\n"
     << "  --clients <a,b,..>  concurrent-client sweep (default 1,4,16)\n"
     << "  --requests <N>      plan requests per client level (default 400)\n"
     << "  --rate <R>          open-loop arrival rate, plans/sec across all\n"
     << "                      clients (default 0 = closed loop)\n"
     << "  --threads <N>       in-process planning workers (default: hw)\n"
     << "  --cold-exec <path>  rainbow_plan binary for the cold one-shot\n"
     << "                      reference (includes process startup)\n"
     << "  --json <path>       write results as JSON (BENCH_serve.json)\n"
     << "  --smoke             CI mode: upload the zoo, plan each model\n"
     << "                      twice, assert a warm cache hit rate > 0\n";
  std::exit(code);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (flag == "--socket") {
      opt.socket_path = next("--socket");
    } else if (flag == "--port") {
      opt.port = std::atoi(next("--port").c_str());
    } else if (flag == "--clients") {
      opt.clients.clear();
      std::istringstream in(next("--clients"));
      std::string field;
      while (std::getline(in, field, ',')) {
        opt.clients.push_back(std::atoi(field.c_str()));
      }
    } else if (flag == "--requests") {
      opt.requests = std::atoi(next("--requests").c_str());
    } else if (flag == "--rate") {
      opt.rate = std::atof(next("--rate").c_str());
    } else if (flag == "--threads") {
      opt.threads = std::strtoull(next("--threads").c_str(), nullptr, 10);
    } else if (flag == "--cold-exec") {
      opt.cold_exec = next("--cold-exec");
    } else if (flag == "--json") {
      opt.json_path = next("--json");
    } else if (flag == "--smoke") {
      opt.smoke = true;
    } else if (flag == "--help" || flag == "-h") {
      usage(argv[0], 0);
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      usage(argv[0], 2);
    }
  }
  for (const int n : opt.clients) {
    if (n <= 0) {
      std::cerr << "--clients entries must be positive\n";
      usage(argv[0], 2);
    }
  }
  return opt;
}

/// In-process daemon for self-contained runs: service + server on an
/// ephemeral loopback TCP port (no socket-path bookkeeping needed).
struct InProcessDaemon {
  InProcessDaemon(std::size_t threads) {
    serve::ServiceOptions service_options;
    service_options.preload_zoo = true;
    service = std::make_unique<serve::PlanningService>(service_options);
    serve::ServerConfig config;
    config.tcp_port = 0;
    config.threads = threads;
    server = std::make_unique<serve::Server>(*service, config);
    server->start();
  }
  ~InProcessDaemon() {
    if (server) {
      server->stop();
    }
  }
  std::unique_ptr<serve::PlanningService> service;
  std::unique_ptr<serve::Server> server;
};

struct Target {
  std::string socket_path;
  int port = -1;

  [[nodiscard]] serve::Client connect() const {
    return socket_path.empty() ? serve::Client::connect_tcp(port)
                               : serve::Client::connect_unix(socket_path);
  }
};

/// The request mix: every zoo model on both objectives, round-robin.
struct WorkItem {
  std::string model;
  std::string objective;
};

std::vector<WorkItem> work_mix() {
  std::vector<WorkItem> mix;
  for (const std::string& name : model::zoo::model_names()) {
    mix.push_back({name, "accesses"});
    mix.push_back({name, "latency"});
  }
  return mix;
}

serve::Request plan_request(const WorkItem& item) {
  serve::Request request;
  request.verb = "plan";
  request.headers["model"] = item.model;
  request.headers["objective"] = item.objective;
  return request;
}

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) {
    return 0.0;
  }
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

struct LevelResult {
  int clients = 0;
  int requests = 0;
  double wall_s = 0.0;
  double plans_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_rate = 0.0;
  long long coalesced = 0;
  double scaling_vs_1 = 0.0;  ///< plans/sec relative to the 1-client level
};

LevelResult run_level(const Target& target, int clients, int requests,
                      double rate) {
  const std::vector<WorkItem> mix = work_mix();
  std::vector<double> latencies_ms;
  latencies_ms.reserve(static_cast<std::size_t>(requests));
  std::mutex latencies_mutex;
  long long coalesced = 0;

  const int per_client = std::max(1, requests / clients);
  // Open-loop: each client fires on its own schedule at rate/clients.
  const std::chrono::duration<double> interval(
      rate > 0.0 ? static_cast<double>(clients) / rate : 0.0);

  std::vector<std::thread> threads;
  std::string first_error;
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      try {
        serve::Client client = target.connect();
        std::vector<double> local_ms;
        local_ms.reserve(static_cast<std::size_t>(per_client));
        long long local_coalesced = 0;
        for (int k = 0; k < per_client; ++k) {
          // Stagger clients across the mix so concurrent requests hit
          // different models (plus occasional same-model collisions,
          // which exercise single-flight coalescing).
          const WorkItem& item =
              mix[static_cast<std::size_t>(c + k) % mix.size()];
          Clock::time_point issue = Clock::now();
          if (interval.count() > 0.0) {
            // Open-loop: latency counts from the *scheduled* send time, so
            // queueing delay is not hidden (no coordinated omission).
            const Clock::time_point scheduled =
                start + std::chrono::duration_cast<Clock::duration>(
                            interval * (k + 1));
            std::this_thread::sleep_until(scheduled);
            issue = scheduled;
          }
          const serve::Response response =
              client.call_ok(plan_request(item));
          const std::chrono::duration<double, std::milli> took =
              Clock::now() - issue;
          local_ms.push_back(took.count());
          if (response.get("coalesced") == "1") {
            ++local_coalesced;
          }
        }
        std::lock_guard lock(latencies_mutex);
        latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                            local_ms.end());
        coalesced += local_coalesced;
      } catch (const std::exception& e) {
        std::lock_guard lock(latencies_mutex);
        if (first_error.empty()) {
          first_error = e.what();
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (!first_error.empty()) {
    throw std::runtime_error("client failed: " + first_error);
  }
  const std::chrono::duration<double> wall = Clock::now() - start;

  LevelResult result;
  result.clients = clients;
  result.requests = static_cast<int>(latencies_ms.size());
  result.wall_s = wall.count();
  result.plans_per_sec =
      wall.count() > 0.0 ? static_cast<double>(latencies_ms.size()) /
                               wall.count()
                         : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile(latencies_ms, 0.50);
  result.p99_ms = percentile(latencies_ms, 0.99);
  result.coalesced = coalesced;

  serve::Client stats_client = target.connect();
  serve::Request stats_request;
  stats_request.verb = "stats";
  const serve::Response stats = stats_client.call_ok(stats_request);
  result.cache_hit_rate = std::atof(stats.get("cache_hit_rate").c_str());
  return result;
}

/// Open-loop thundering-herd round: `clients` threads release the
/// *identical* plan request simultaneously (a barrier lines them up), and
/// a fresh glb_kb per round makes every round a cold plan.  This is the
/// collision pattern the staggered closed-loop mix almost never produces,
/// and it is exactly what single-flight coalescing exists for: one thread
/// computes, the rest wait on the shared future and report coalesced=1.
LevelResult run_burst(const Target& target, int clients, int rounds) {
  std::vector<double> latencies_ms;
  std::mutex latencies_mutex;
  long long coalesced = 0;
  std::string first_error;
  std::barrier sync(clients);

  std::vector<std::thread> threads;
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      std::vector<double> local_ms;
      local_ms.reserve(static_cast<std::size_t>(rounds));
      long long local_coalesced = 0;
      try {
        serve::Client client = target.connect();
        for (int r = 0; r < rounds; ++r) {
          serve::Request request = plan_request({"resnet18", "accesses"});
          // Unseen GLB size => cold eval-cache key => the burst actually
          // races on one in-flight computation instead of a warm hit.
          request.headers["glb_kb"] = std::to_string(1024 + r);
          // Validation + analysis stretch the cold computation across
          // several scheduler timeslices, so follower threads reliably
          // arrive while the leader is still planning — even on a
          // one-core box where overlap otherwise depends on preemption
          // luck.
          request.headers["validate"] = "1";
          request.headers["analyze"] = "1";
          sync.arrive_and_wait();
          const Clock::time_point issue = Clock::now();
          const serve::Response response = client.call_ok(request);
          const std::chrono::duration<double, std::milli> took =
              Clock::now() - issue;
          local_ms.push_back(took.count());
          if (response.get("coalesced") == "1") {
            ++local_coalesced;
          }
        }
      } catch (const std::exception& e) {
        std::lock_guard lock(latencies_mutex);
        if (first_error.empty()) {
          first_error = e.what();
        }
        // Keep the barrier from deadlocking the other clients.
        sync.arrive_and_drop();
        return;
      }
      std::lock_guard lock(latencies_mutex);
      latencies_ms.insert(latencies_ms.end(), local_ms.begin(),
                          local_ms.end());
      coalesced += local_coalesced;
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  if (!first_error.empty()) {
    throw std::runtime_error("burst client failed: " + first_error);
  }
  const std::chrono::duration<double> wall = Clock::now() - start;

  LevelResult result;
  result.clients = clients;
  result.requests = static_cast<int>(latencies_ms.size());
  result.wall_s = wall.count();
  result.plans_per_sec =
      wall.count() > 0.0
          ? static_cast<double>(latencies_ms.size()) / wall.count()
          : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile(latencies_ms, 0.50);
  result.p99_ms = percentile(latencies_ms, 0.99);
  result.coalesced = coalesced;
  return result;
}

/// Cold one-shot reference, in-process: parse the model text, build a
/// manager with a fresh cache, plan — everything a cold CLI run does
/// except process startup.
double cold_plan_ms_in_process() {
  double total_ms = 0.0;
  int count = 0;
  for (const std::string& name : model::zoo::model_names()) {
    const std::string text =
        model::serialize_network(model::zoo::by_name(name));
    const Clock::time_point start = Clock::now();
    const model::Network net = model::parse_network(text);
    arch::AcceleratorSpec spec = arch::paper_spec(64 * 1024);
    core::ManagerOptions options;
    options.analyzer.eval_cache = std::make_shared<core::EvalCache>();
    const core::MemoryManager manager(spec, options);
    const core::ExecutionPlan plan =
        manager.plan(net, core::Objective::kAccesses);
    const std::chrono::duration<double, std::milli> took =
        Clock::now() - start;
    if (plan.size() == 0) {
      throw std::runtime_error("cold reference produced an empty plan");
    }
    total_ms += took.count();
    ++count;
  }
  return total_ms / count;
}

/// Cold one-shot reference via the real binary (includes exec + startup).
double cold_plan_ms_exec(const std::string& binary) {
  const std::vector<std::string> models = model::zoo::model_names();
  double total_ms = 0.0;
  for (const std::string& name : models) {
    const std::string command =
        binary + " --model " + name + " --glb 64 > /dev/null 2>&1";
    const Clock::time_point start = Clock::now();
    const int rc = std::system(command.c_str());
    const std::chrono::duration<double, std::milli> took =
        Clock::now() - start;
    if (rc != 0) {
      throw std::runtime_error("--cold-exec command failed: " + command);
    }
    total_ms += took.count();
  }
  return total_ms / static_cast<double>(models.size());
}

int run_smoke(const Target& target) {
  serve::Client client = target.connect();
  serve::Request ping;
  ping.verb = "ping";
  client.call_ok(ping);

  // Upload every zoo model over the wire (replace: the daemon may have
  // preloaded them already) — exercises the full parse-from-socket path.
  for (const std::string& name : model::zoo::model_names()) {
    serve::Request upload;
    upload.verb = "upload";
    upload.headers["name"] = name;
    upload.headers["replace"] = "1";
    upload.body = model::serialize_network(model::zoo::by_name(name));
    client.call_ok(upload);
  }

  // Plan each model twice; the re-plan must be served from a warm cache
  // and must return byte-identical plan text.
  for (const std::string& name : model::zoo::model_names()) {
    const serve::Response cold = client.call_ok(plan_request({name,
                                                              "accesses"}));
    const serve::Response warm = client.call_ok(plan_request({name,
                                                              "accesses"}));
    if (cold.body.empty() || cold.body != warm.body) {
      std::cerr << "bench_serve: warm re-plan of " << name
                << " is not byte-identical\n";
      return 1;
    }
    if (std::atof(warm.get("cache_hit_rate").c_str()) <= 0.0) {
      std::cerr << "bench_serve: no warm cache hits for " << name << "\n";
      return 1;
    }
  }

  serve::Request stats;
  stats.verb = "stats";
  const serve::Response response = client.call_ok(stats);
  if (std::atoll(response.get("cache_hits").c_str()) <= 0) {
    std::cerr << "bench_serve: daemon-wide cache hits are zero\n";
    return 1;
  }

  // Thundering herd: concurrent identical cold plans must collapse onto
  // one in-flight computation.  Eight rounds of eight clients give the
  // scheduler plenty of chances to overlap even on a loaded CI box; zero
  // coalesced responses across all of them means single-flight is broken.
  const LevelResult burst = run_burst(target, /*clients=*/8, /*rounds=*/8);
  if (burst.coalesced <= 0) {
    std::cerr << "bench_serve: burst of identical cold plans never "
                 "coalesced (" << burst.requests << " requests)\n";
    return 1;
  }

  // Scaling: 16 concurrent clients must not plan slower than one.  Short
  // smoke runs on a loaded (or one-core) box are noisy, so the gate takes
  // the best of two attempts; 0.9 absorbs residual timer jitter.  A real
  // concurrency regression — a lock the request path serializes on —
  // fails both attempts by a wide margin.
  double scaling = 0.0;
  for (int attempt = 0; attempt < 2 && scaling < 0.9; ++attempt) {
    const LevelResult one = run_level(target, 1, /*requests=*/240, 0.0);
    const LevelResult many = run_level(target, 16, /*requests=*/240, 0.0);
    if (one.plans_per_sec > 0.0) {
      scaling = std::max(scaling, many.plans_per_sec / one.plans_per_sec);
    }
  }
  if (scaling < 0.9) {
    std::cerr << "bench_serve: throughput regressed under concurrency: "
              << "16 clients reached only " << scaling
              << "x of single-client plans/sec\n";
    return 1;
  }

  std::printf("bench_serve: smoke ok (%zu models, hit rate %s, burst "
              "coalesced %lld/%d, 16-client scaling %.2fx)\n",
              model::zoo::model_names().size(),
              response.get("cache_hit_rate").c_str(), burst.coalesced,
              burst.requests, scaling);
  return 0;
}

void write_json(const std::string& path, const CliOptions& opt,
                const std::vector<LevelResult>& levels,
                const LevelResult& burst, double cold_ms,
                std::optional<double> cold_exec_ms, double warm_p50_ms) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path);
  }
  char buffer[256];
  out << "{\n  \"benchmark\": \"bench_serve\",\n";
  out << "  \"transport\": \""
      << (opt.socket_path.empty() ? "tcp" : "unix") << "\",\n";
  out << "  \"mode\": \"" << (opt.rate > 0.0 ? "open-loop" : "closed-loop")
      << "\",\n";
  out << "  \"models\": " << model::zoo::model_names().size()
      << ",\n  \"objectives\": 2,\n";
  // Scaling numbers only mean something relative to the host: on a single
  // hardware thread the clients, the event loop, and the planning workers
  // all share one core, so level ordering is scheduler noise.
  out << "  \"host_hardware_concurrency\": "
      << std::thread::hardware_concurrency() << ",\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"cold_plan_ms_in_process\": %.3f,\n", cold_ms);
  out << buffer;
  if (cold_exec_ms) {
    std::snprintf(buffer, sizeof(buffer),
                  "  \"cold_plan_ms_exec\": %.3f,\n", *cold_exec_ms);
    out << buffer;
    std::snprintf(buffer, sizeof(buffer),
                  "  \"warm_speedup_vs_cold_exec\": %.1f,\n",
                  warm_p50_ms > 0.0 ? *cold_exec_ms / warm_p50_ms : 0.0);
    out << buffer;
  }
  std::snprintf(buffer, sizeof(buffer),
                "  \"warm_speedup_vs_cold_in_process\": %.1f,\n",
                warm_p50_ms > 0.0 ? cold_ms / warm_p50_ms : 0.0);
  out << buffer;
  out << "  \"levels\": [\n";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& r = levels[i];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"clients\": %d, \"requests\": %d, "
                  "\"plans_per_sec\": %.1f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"cache_hit_rate\": %.4f, "
                  "\"coalesced\": %lld, \"scaling_vs_1\": %.2f}%s\n",
                  r.clients, r.requests, r.plans_per_sec, r.p50_ms, r.p99_ms,
                  r.cache_hit_rate, r.coalesced, r.scaling_vs_1,
                  i + 1 < levels.size() ? "," : "");
    out << buffer;
  }
  out << "  ],\n";
  std::snprintf(buffer, sizeof(buffer),
                "  \"burst\": {\"clients\": %d, \"requests\": %d, "
                "\"plans_per_sec\": %.1f, \"p50_ms\": %.3f, "
                "\"p99_ms\": %.3f, \"coalesced\": %lld}\n",
                burst.clients, burst.requests, burst.plans_per_sec,
                burst.p50_ms, burst.p99_ms, burst.coalesced);
  out << buffer;
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opt = parse(argc, argv);
  try {
    std::unique_ptr<InProcessDaemon> daemon;
    Target target{opt.socket_path, opt.port};
    if (opt.socket_path.empty() && opt.port < 0) {
      // The burst level needs at least two planning workers to overlap
      // (with one worker the herd serializes and nothing ever coalesces),
      // so the in-process default floors hardware_concurrency at 4.
      const std::size_t workers =
          opt.threads != 0
              ? opt.threads
              : std::max<std::size_t>(
                    4, std::thread::hardware_concurrency());
      daemon = std::make_unique<InProcessDaemon>(workers);
      target.port = daemon->server->port();
    }

    if (opt.smoke) {
      return run_smoke(target);
    }

    // Warmup: one pass over the mix fills the per-model caches, so the
    // sweep below measures the daemon's steady (warm) state.
    {
      serve::Client client = target.connect();
      for (const WorkItem& item : work_mix()) {
        client.call_ok(plan_request(item));
      }
    }

    const double cold_ms = cold_plan_ms_in_process();
    std::optional<double> cold_exec_ms;
    if (opt.cold_exec) {
      cold_exec_ms = cold_plan_ms_exec(*opt.cold_exec);
    }

    std::vector<LevelResult> levels;
    double warm_p50_single = 0.0;
    double single_plans_per_sec = 0.0;
    std::cout << "bench_serve: "
              << (opt.socket_path.empty() && opt.port < 0 ? "in-process"
                                                          : "external")
              << " daemon, " << work_mix().size() << "-item mix, "
              << opt.requests << " plans per level\n";
    std::cout << "clients  plans/sec   p50 ms   p99 ms  hit-rate  "
                 "coalesced  scaling\n";
    for (const int clients : opt.clients) {
      LevelResult result =
          run_level(target, clients, opt.requests, opt.rate);
      if (clients == 1) {
        warm_p50_single = result.p50_ms;
        single_plans_per_sec = result.plans_per_sec;
      }
      // Scaling efficiency: throughput relative to the 1-client level of
      // this same sweep.  > 1.0 means added clients added throughput.
      result.scaling_vs_1 = single_plans_per_sec > 0.0
                                ? result.plans_per_sec / single_plans_per_sec
                                : 0.0;
      std::printf("%7d %10.1f %8.3f %8.3f %9.4f %10lld %7.2fx\n",
                  result.clients, result.plans_per_sec, result.p50_ms,
                  result.p99_ms, result.cache_hit_rate, result.coalesced,
                  result.scaling_vs_1);
      levels.push_back(result);
    }
    if (warm_p50_single == 0.0 && !levels.empty()) {
      warm_p50_single = levels.front().p50_ms;
    }

    // Thundering-herd burst: barrier-aligned identical cold plans, the
    // level that exercises single-flight coalescing.
    const LevelResult burst =
        run_burst(target, /*clients=*/16, /*rounds=*/16);
    std::printf("burst: %d clients x 16 rounds, %.1f plans/sec, p99 %.3f "
                "ms, coalesced %lld/%d\n",
                burst.clients, burst.plans_per_sec, burst.p99_ms,
                burst.coalesced, burst.requests);

    std::printf("cold one-shot plan: %.3f ms in-process", cold_ms);
    if (cold_exec_ms) {
      std::printf(", %.3f ms exec", *cold_exec_ms);
    }
    std::printf("; warm p50 %.3f ms (%.1fx vs cold in-process",
                warm_p50_single,
                warm_p50_single > 0.0 ? cold_ms / warm_p50_single : 0.0);
    if (cold_exec_ms && warm_p50_single > 0.0) {
      std::printf(", %.1fx vs cold exec", *cold_exec_ms / warm_p50_single);
    }
    std::printf(")\n");

    if (opt.json_path) {
      write_json(*opt.json_path, opt, levels, burst, cold_ms, cold_exec_ms,
                 warm_p50_single);
    }
  } catch (const std::exception& e) {
    std::cerr << "bench_serve: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
