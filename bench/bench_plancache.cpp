// Planning-cache benchmark: what memoizing Algorithm 1 buys.  Three
// comparisons, all on paper-model networks whose repeated blocks are the
// cache's bread and butter:
//   1. cold vs warm re-planning of one network (same manager, shared cache),
//   2. sequential vs parallel layer planning (warm cache),
//   3. an uncached vs cached DSE sweep over the full paper grid.
// Every mode's plan is checked byte-identical against the uncached
// baseline before timing is reported — a speedup that changes the answer
// would be a bug, and this bench doubles as a smoke test for that.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/eval_cache.hpp"
#include "core/manager.hpp"
#include "dse/sweep.hpp"
#include "model/zoo/zoo.hpp"

namespace {

using namespace rainbow;
using clock_type = std::chrono::steady_clock;

double ms_since(clock_type::time_point start) {
  return std::chrono::duration<double, std::milli>(clock_type::now() - start)
      .count();
}

bool plans_equal(const core::ExecutionPlan& a, const core::ExecutionPlan& b) {
  return a.scheme() == b.scheme() && a.objective() == b.objective() &&
         a.assignments() == b.assignments();
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::parse_args(argc, argv);
  constexpr int kReplans = 20;
  const core::Objective objective = core::Objective::kAccesses;
  const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(256));

  bool all_identical = true;
  util::Table table({"model", "uncached ms", "cold ms", "warm ms",
                     "warm speedup", "parallel ms", "hit rate %",
                     "identical"});
  for (const auto& net : model::zoo::all_models()) {
    const core::MemoryManager plain(spec);
    auto start = clock_type::now();
    core::ExecutionPlan baseline = plain.plan(net, objective);
    for (int i = 1; i < kReplans; ++i) {
      baseline = plain.plan(net, objective);
    }
    const double uncached_ms = ms_since(start) / kReplans;

    core::ManagerOptions cached_options;
    cached_options.analyzer.eval_cache = std::make_shared<core::EvalCache>();
    const core::MemoryManager cached(spec, cached_options);
    start = clock_type::now();
    const core::ExecutionPlan cold_plan = cached.plan(net, objective);
    const double cold_ms = ms_since(start);
    start = clock_type::now();
    core::ExecutionPlan warm_plan = cold_plan;
    for (int i = 0; i < kReplans; ++i) {
      warm_plan = cached.plan(net, objective);
    }
    const double warm_ms = ms_since(start) / kReplans;

    core::ManagerOptions parallel_options = cached_options;
    parallel_options.parallel_planning = true;
    const core::MemoryManager parallel(spec, parallel_options);
    start = clock_type::now();
    core::ExecutionPlan parallel_plan = parallel.plan(net, objective);
    for (int i = 1; i < kReplans; ++i) {
      parallel_plan = parallel.plan(net, objective);
    }
    const double parallel_ms = ms_since(start) / kReplans;

    const bool identical = plans_equal(baseline, cold_plan) &&
                           plans_equal(baseline, warm_plan) &&
                           plans_equal(baseline, parallel_plan);
    all_identical = all_identical && identical;
    const auto stats = cached_options.analyzer.eval_cache->stats();
    table.add_row({net.name(), util::fmt(uncached_ms, 3),
                   util::fmt(cold_ms, 3), util::fmt(warm_ms, 3),
                   util::fmt(uncached_ms / warm_ms, 1) + "x",
                   util::fmt(parallel_ms, 3),
                   util::fmt(100.0 * stats.hit_rate(), 1),
                   identical ? "yes" : "NO"});
  }
  bench::emit("Plan generation: cold vs warm evaluation cache", table, args);

  // Warm lookups under thread contention.  Every hit takes one shard
  // mutex and bumps counters that live on that shard's own cache line —
  // the shards are alignas(64) with the counters guarded by the shard
  // mutex the hot path already holds.
  {
    const model::Network& net = model::zoo::by_name("resnet18");
    core::ManagerOptions options;
    options.analyzer.eval_cache = std::make_shared<core::EvalCache>();
    const core::MemoryManager manager(spec, options);
    (void)manager.plan(net, objective);  // fill the cache once
    util::Table contended({"threads", "warm replans/sec", "scaling"});
    double single_rate = 0.0;
    for (const int threads : {1, 2, 4}) {
      constexpr int kPerThread = 40;
      const auto start = clock_type::now();
      std::vector<std::thread> pool;
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
          for (int i = 0; i < kPerThread; ++i) {
            (void)manager.plan(net, objective);
          }
        });
      }
      for (std::thread& worker : pool) {
        worker.join();
      }
      const double rate =
          threads * kPerThread / (ms_since(start) / 1000.0);
      if (threads == 1) {
        single_rate = rate;
      }
      contended.add_row({std::to_string(threads), util::fmt(rate, 1),
                         util::fmt(rate / single_rate, 2) + "x"});
    }
    bench::emit("Warm replans under contention (padded eval-cache shards)",
                contended, args);
    std::cout << "note: shards are alignas(64) with per-shard hit/miss "
                 "counters.  The previous layout packed the shard mutexes "
                 "adjacently and funnelled every lookup through four global "
                 "std::atomic counters — one cache line bounced between all "
                 "threads, capping warm-lookup scaling regardless of shard "
                 "count.\n";
  }

  // The DSE sweep is where the cache compounds: thousands of layer
  // evaluations recur across (GLB, width, batch, objective) points.
  dse::SweepConfig config;
  for (count_t kb = 32; kb <= 2048; kb *= 2) {
    config.glb_bytes.push_back(util::kib(kb));
  }
  config.data_width_bits = {8, 16};
  config.objectives = {core::Objective::kAccesses, core::Objective::kLatency};
  config.with_interlayer = true;

  util::Table sweep_table({"model", "points", "uncached ms", "cached ms",
                           "speedup", "hit rate %", "identical"});
  for (const auto& net : model::zoo::all_models()) {
    dse::SweepConfig uncached = config;
    uncached.use_eval_cache = false;
    auto start = clock_type::now();
    const auto plain_points = dse::run_sweep(net, uncached);
    const double uncached_ms = ms_since(start);

    dse::SweepConfig with_cache = config;
    with_cache.eval_cache = std::make_shared<core::EvalCache>();
    start = clock_type::now();
    const auto cached_points = dse::run_sweep(net, with_cache);
    const double cached_ms = ms_since(start);

    bool identical = plain_points.size() == cached_points.size();
    for (std::size_t i = 0; identical && i < plain_points.size(); ++i) {
      identical = plain_points[i].accesses == cached_points[i].accesses &&
                  plain_points[i].latency_cycles ==
                      cached_points[i].latency_cycles &&
                  plain_points[i].energy_mj == cached_points[i].energy_mj;
    }
    all_identical = all_identical && identical;
    const auto stats = with_cache.eval_cache->stats();
    sweep_table.add_row({net.name(), std::to_string(plain_points.size()),
                         util::fmt(uncached_ms, 1), util::fmt(cached_ms, 1),
                         util::fmt(uncached_ms / cached_ms, 1) + "x",
                         util::fmt(100.0 * stats.hit_rate(), 1),
                         identical ? "yes" : "NO"});
  }
  bench::emit("DSE sweep: uncached vs shared evaluation cache", sweep_table,
              args);

  if (!all_identical) {
    std::cerr << "bench_plancache: a cached/parallel plan diverged from the "
                 "uncached baseline\n";
    return 1;
  }
  std::cout << "reading: warm-cache planning amortizes Algorithm 1 to a hash "
               "lookup per layer; the sweep shares one cache across the whole "
               "grid, so repeated shapes are evaluated once per distinct "
               "(spec, options, objective) signature.\n";
  return 0;
}
