// Extension ablation: layer fusion vs Section 5.4 inter-layer reuse.
// Inter-layer reuse needs the FULL intermediate resident, so it only pays
// on large buffers (Figure 11); fusion streams a rolling window of it, so
// it elides intermediates even at 64 kB.  One table per mechanism across
// buffer sizes, MobileNet (whose early intermediates are far larger than
// the small buffers).
#include <iostream>

#include "bench_common.hpp"
#include "core/fusion.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  const auto net = model::zoo::mobilenet();
  util::Table table({"GLB", "Het MB", "+inter MB (benefit %)",
                     "+fusion MB (benefit %)", "fused pairs"});
  for (const auto glb : arch::paper_glb_sizes()) {
    const auto spec = arch::paper_spec(glb);
    core::ManagerOptions base;
    base.analyzer.estimator.padded_traffic = !args.no_padding;
    core::ManagerOptions inter = base;
    inter.interlayer_reuse = true;

    const auto plan =
        core::MemoryManager(spec, base).plan(net, core::Objective::kAccesses);
    const auto plan_inter =
        core::MemoryManager(spec, inter).plan(net, core::Objective::kAccesses);

    const core::Estimator estimator(spec, base.analyzer.estimator);
    const auto fusions =
        core::select_fusions(core::fusion_candidates(net, plan, estimator));
    const count_t fused = core::fused_total_accesses(plan, fusions);

    const double het_mb = plan.total_access_mb();
    const double inter_mb = plan_inter.total_access_mb();
    const double fused_mb = static_cast<double>(fused * spec.element_bytes()) /
                            (1024.0 * 1024.0);
    table.add_row(
        {bench::glb_label(glb), util::fmt(het_mb, 2),
         util::fmt(inter_mb, 2) + " (" +
             util::fmt(util::benefit_percent(het_mb, inter_mb)) + ")",
         util::fmt(fused_mb, 2) + " (" +
             util::fmt(util::benefit_percent(het_mb, fused_mb)) + ")",
         std::to_string(fusions.size())});
  }
  bench::emit(
      "Extension: layer fusion vs inter-layer reuse (Section 5.4), MobileNet",
      table, args);

  std::cout << "reading: Section 5.4 needs the whole intermediate resident "
               "and only pays at 512 kB+; fusion keeps a rolling "
               "F_H-row window of it and elides intermediates from 64 kB up "
               "— at the cost of co-residency of both layers' filters, which "
               "is why not every boundary fuses.\n";
  return 0;
}
