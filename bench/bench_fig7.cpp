// Figure 7: benefit of the heterogeneous over the homogeneous scheme for
// off-chip access reduction, across data widths (8/16/32-bit) and GLB
// sizes, for MobileNetV2.
#include <iostream>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  const auto net = model::zoo::mobilenetv2();
  struct Cell {
    int width_bits = 0;
    count_t glb = 0;
    double hom_mb = 0, het_mb = 0;
  };
  std::vector<Cell> cells;
  for (int width : {8, 16, 32}) {
    for (const auto glb : arch::paper_glb_sizes()) {
      cells.push_back({.width_bits = width, .glb = glb});
    }
  }

  util::parallel_for_each(cells, [&](Cell& cell) {
    arch::AcceleratorSpec spec = arch::paper_spec(cell.glb);
    spec.data_width_bits = cell.width_bits;
    core::ManagerOptions options;
    options.analyzer.estimator.padded_traffic = !args.no_padding;
    const core::MemoryManager manager(spec, options);
    cell.hom_mb =
        manager.plan_homogeneous(net, core::Objective::kAccesses).total_access_mb();
    cell.het_mb = manager.plan(net, core::Objective::kAccesses).total_access_mb();
  });

  util::Table table({"data width", "GLB", "Hom MB", "Het MB",
                     "Het benefit over Hom %"});
  for (const Cell& c : cells) {
    table.add_row({std::to_string(c.width_bits) + "-bit",
                   bench::glb_label(c.glb), util::fmt(c.hom_mb, 2),
                   util::fmt(c.het_mb, 2),
                   util::fmt(util::benefit_percent(c.hom_mb, c.het_mb))});
  }
  bench::emit("Figure 7: Het vs Hom access benefit by data width, MobileNetV2",
              table, args);

  std::cout << "paper shape: at 32-bit the Het scheme cuts ~69% at 64 kB and "
               "~52% at 128 kB over Hom; the gap fades for larger buffers "
               "and narrower data.\n";
  return 0;
}
