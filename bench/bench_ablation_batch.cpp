// Ablation (Section 2.3's batching discussion / Escher): per-image
// off-chip traffic versus batch size.  Weight-dominated networks amortize
// their filter loads when the manager picks weight-resident policies;
// activation-dominated networks barely move.
#include <iostream>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  const count_t glb = util::kib(256);
  util::Table table({"model", "batch", "total MB", "per-image MB",
                     "per-image vs batch1 %"});
  for (const char* name : {"GoogLeNet", "ResNet18", "MobileNetV2"}) {
    const auto net = model::zoo::by_name(name);
    double base_per_image = 0.0;
    for (int batch : {1, 2, 4, 8, 16, 32}) {
      core::ManagerOptions options;
      options.analyzer.estimator.batch = batch;
      options.analyzer.estimator.padded_traffic = !args.no_padding;
      const core::MemoryManager manager(arch::paper_spec(glb), options);
      const auto plan = manager.plan(net, core::Objective::kAccesses);
      const double per_image = plan.total_access_mb() / batch;
      if (batch == 1) {
        base_per_image = per_image;
      }
      table.add_row({net.name(), std::to_string(batch),
                     util::fmt(plan.total_access_mb(), 2),
                     util::fmt(per_image, 2),
                     util::fmt(100.0 * (base_per_image - per_image) /
                               base_per_image)});
    }
  }
  bench::emit("Ablation: per-image traffic vs batch size @ 256 kB", table,
              args);

  std::cout << "reading: weight-heavy nets (GoogLeNet, ResNet18) amortize "
               "their filters across the batch once the manager switches to "
               "weight-resident policies; activation-heavy MobileNetV2 "
               "gains little — the Escher tradeoff the paper's related work "
               "discusses.\n";
  return 0;
}
