// Energy consequence of the access reductions (the paper's motivation,
// Sections 1 and 2.3): per model at the smallest buffer, energy of the
// best fixed-partition baseline versus the managed GLB, split into
// DRAM / SRAM / MAC terms.
#include <iostream>

#include "bench_common.hpp"
#include "core/energy.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  const auto spec = arch::paper_spec(util::kib(64));
  const core::EnergyModel energy_model;
  core::ManagerOptions options;
  options.analyzer.estimator.padded_traffic = !args.no_padding;
  const core::MemoryManager manager(spec, options);

  util::Table table({"model", "scheme", "DRAM mJ", "SRAM mJ", "RF mJ",
                     "MAC mJ", "total mJ", "saving %"});
  for (const auto& net : model::zoo::all_models()) {
    count_t best_baseline = ~0ull;
    for (const auto& part : scalesim::paper_partitions()) {
      best_baseline = std::min(
          best_baseline, scalesim::Simulator(spec, part).run(net).total_accesses);
    }
    const auto baseline =
        core::raw_energy(best_baseline, net.total_macs(), spec, energy_model);
    const auto plan = manager.plan(net, core::Objective::kAccesses);
    const auto managed = core::plan_energy(plan, net, energy_model);

    auto row = [&](const char* scheme, const core::EnergyBreakdown& e,
                   const core::EnergyBreakdown& reference) {
      table.add_row({net.name(), scheme, util::fmt(e.dram_pj * 1e-9, 2),
                     util::fmt(e.sram_pj * 1e-9, 2),
                     util::fmt(e.rf_pj * 1e-9, 2),
                     util::fmt(e.mac_pj * 1e-9, 2),
                     util::fmt(e.total_mj(), 2),
                     util::fmt(100.0 * (reference.total_pj() - e.total_pj()) /
                               reference.total_pj())});
    };
    row("best fixed split", baseline, baseline);
    row("Het (accesses)", managed, baseline);
    // Eyeriss-style hierarchy: operand forwarding moves most on-chip reads
    // from the GLB to the cheap register level, which makes the DRAM term
    // (what the policies cut) an even larger share of the total.
    const auto hier = core::hierarchical_plan_energy(plan, net, energy_model);
    row("Het (hierarchical)", hier, hier);
  }
  bench::emit("Energy at 64 kB: managed GLB vs best fixed partition", table,
              args);

  std::cout << "model: DRAM " << energy_model.dram_pj_per_byte
            << " pJ/B, SRAM " << energy_model.sram_pj_per_byte
            << " pJ/B (ratio " << energy_model.dram_to_sram_ratio()
            << "x, the paper's 10-100x band), MAC " << energy_model.mac_pj
            << " pJ.  DRAM dominates at 64 kB, so Figure 5's access cuts "
               "translate almost one-for-one into energy.\n";
  return 0;
}
