// Figure 6: heterogeneous-scheme memory breakdown for ResNet18 with a
// 64 kB buffer — per layer, the GLB space the chosen policy assigns to each
// data type, the policy label (with +p for prefetching), and the fixed
// sa_50_50 partition lines for contrast.
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/buffer.hpp"

int main(int argc, char** argv) {
  using namespace rainbow;
  const auto args = bench::parse_args(argc, argv);

  const auto spec = arch::paper_spec(util::kib(64));
  const core::MemoryManager manager(spec);
  const auto net = model::zoo::resnet18();
  const auto plan = manager.plan(net, core::Objective::kAccesses);

  util::Table table({"layer", "policy", "ifmap kB", "filter kB", "ofmap kB",
                     "total kB", "GLB util %"});
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const auto& a = plan.assignment(i);
    const auto& fp = a.estimate.footprint;
    std::ostringstream policy;
    policy << a.estimate.choice;
    table.add_row(
        {"L" + std::to_string(i + 1), policy.str(),
         util::fmt(static_cast<double>(fp.ifmap) / 1024.0),
         util::fmt(static_cast<double>(fp.filter) / 1024.0),
         util::fmt(static_cast<double>(fp.ofmap) / 1024.0),
         util::fmt(static_cast<double>(fp.total()) / 1024.0),
         util::fmt(100.0 * static_cast<double>(fp.total()) /
                   static_cast<double>(spec.glb_elems()))});
  }
  bench::emit("Figure 6: Het memory breakdown, ResNet18 @ 64 kB", table, args);

  const scalesim::BufferPartition fixed{.ifmap_fraction = 0.5};
  std::cout << "fixed sa_50_50 partitions for contrast: ifmap "
            << fixed.ifmap_buffer(spec).usable_bytes() / 1024
            << " kB, filter "
            << fixed.filter_buffer(spec).usable_bytes() / 1024
            << " kB, ofmap " << fixed.ofmap_buffer().usable_bytes() / 1024
            << " kB (usable halves of the double buffers)\n";
  std::cout << "paper shape: early layers lean on the filter/ofmap share "
               "(p1), middle layers on ofmap (p5), last layers on ifmap "
               "(p2+p) — no fixed split covers all three regimes.\n";
  return 0;
}
