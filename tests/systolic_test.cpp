// Tests for the register-level systolic array: functional correctness of
// the skewed output-stationary dataflow (against naive GEMM and the golden
// convolution reference) and cycle-exact agreement with the analytic fold
// timing the scalesim baseline charges.
#include <gtest/gtest.h>

#include <random>

#include "scalesim/systolic.hpp"
#include "systolic/conv_driver.hpp"

namespace rainbow::systolic {
namespace {

Matrix random_matrix(int rows, int cols, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(-9, 9);
  Matrix m(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      m.at(r, c) = dist(rng);
    }
  }
  return m;
}

TEST(PEArrayTest, RejectsBadDimensions) {
  EXPECT_THROW(PEArray(0, 4), std::invalid_argument);
  EXPECT_THROW(PEArray(4, -1), std::invalid_argument);
}

TEST(PEArrayTest, StepValidatesSpans) {
  PEArray array(2, 3);
  std::vector<value_t> two(2), three(3);
  EXPECT_NO_THROW(array.step(two, three));
  EXPECT_THROW(array.step(three, three), std::invalid_argument);
  EXPECT_THROW((void)array.acc(2, 0), std::out_of_range);
}

TEST(PEArrayTest, SinglePEAccumulatesDotProduct) {
  PEArray array(1, 1);
  const value_t a[] = {1, 2, 3};
  const value_t b[] = {4, 5, 6};
  for (int k = 0; k < 3; ++k) {
    array.step(std::span(&a[k], 1), std::span(&b[k], 1));
  }
  EXPECT_EQ(array.acc(0, 0), 4 + 10 + 18);
  EXPECT_EQ(array.cycles(), 3u);
  array.reset();
  EXPECT_EQ(array.acc(0, 0), 0);
  EXPECT_EQ(array.cycles(), 0u);
}

TEST(Gemm, NaiveMatmulKnownValues) {
  Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Matrix c = naive_matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(Gemm, DimensionMismatchThrows) {
  EXPECT_THROW((void)naive_matmul(Matrix(2, 3), Matrix(2, 2)),
               std::invalid_argument);
  EXPECT_THROW((void)systolic_matmul(Matrix(2, 3), Matrix(2, 2), 4, 4),
               std::invalid_argument);
}

struct GemmShape {
  int m, k, n, pe;
};

class SystolicGemmTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(SystolicGemmTest, MatchesNaiveProduct) {
  const auto [m, k, n, pe] = GetParam();
  const Matrix a = random_matrix(m, k, 11);
  const Matrix b = random_matrix(k, n, 12);
  const GemmRun run = systolic_matmul(a, b, pe, pe);
  EXPECT_EQ(run.product, naive_matmul(a, b));
  // Fold structure and cycle count match the closed form.
  const count_t folds = util::ceil_div(m, pe) * util::ceil_div(n, pe);
  EXPECT_EQ(run.folds, folds);
  EXPECT_EQ(run.cycles, folds * (static_cast<count_t>(k) + 2 * pe - 2));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SystolicGemmTest,
    ::testing::Values(GemmShape{1, 1, 1, 4}, GemmShape{4, 4, 4, 4},
                      GemmShape{5, 7, 3, 4},     // ragged folds
                      GemmShape{16, 9, 16, 16},  // exactly one fold
                      GemmShape{33, 20, 18, 16}, // multi-fold ragged
                      GemmShape{8, 64, 8, 8}),
    [](const auto& info) {
      const auto& p = info.param;
      return "m" + std::to_string(p.m) + "k" + std::to_string(p.k) + "n" +
             std::to_string(p.n) + "pe" + std::to_string(p.pe);
    });

TEST(Im2col, MaterializesPaddedPatches) {
  const auto layer = model::make_conv("c", 3, 3, 1, 3, 3, 1, 1, 1);
  ref::Tensor3 ifmap(1, 3, 3);
  int v = 1;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      ifmap.at(0, y, x) = v++;
    }
  }
  const Matrix a = im2col(layer, ifmap);
  EXPECT_EQ(a.rows(), 9);
  EXPECT_EQ(a.cols(), 9);
  // Output (0,0): the patch around the top-left pixel, padded with zeros.
  EXPECT_EQ(a.at(0, 0), 0);  // (-1,-1)
  EXPECT_EQ(a.at(0, 4), 1);  // centre
  EXPECT_EQ(a.at(0, 5), 2);
  // Output (1,1): the full centre patch 1..9.
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(a.at(4, i), i + 1);
  }
}

TEST(Im2col, ChannelSliceValidation) {
  const auto layer = model::make_conv("c", 4, 4, 3, 3, 3, 2, 1, 1);
  const auto ops = ref::random_operands(layer, 5);
  EXPECT_THROW((void)im2col(layer, ops.ifmap, 2, 2), std::invalid_argument);
  const Matrix slice = im2col(layer, ops.ifmap, 1, 2);
  EXPECT_EQ(slice.cols(), 2 * 9);
}

struct ConvShape {
  const char* name;
  model::Layer layer;
};

class SystolicConvTest : public ::testing::TestWithParam<ConvShape> {};

TEST_P(SystolicConvTest, MatchesReferenceAndTimingModel) {
  const model::Layer& layer = GetParam().layer;
  const auto spec = arch::paper_spec(util::kib(64));
  const auto ops = ref::random_operands(layer, 21);

  const ConvRun run = run_conv(layer, ops, spec);
  EXPECT_EQ(run.ofmap, ref::reference_forward(layer, ops));

  // Cycle-for-cycle agreement with the analytic fold model (square array).
  EXPECT_EQ(run.cycles, scalesim::compute_cycles(layer, spec));
  EXPECT_EQ(run.folds, scalesim::fold_geometry(layer, spec).folds());
}

INSTANTIATE_TEST_SUITE_P(
    Layers, SystolicConvTest,
    ::testing::Values(
        ConvShape{"conv3x3", model::make_conv("c", 10, 10, 3, 3, 3, 20, 1, 1)},
        ConvShape{"strided5x5", model::make_conv("c", 11, 11, 2, 5, 5, 7, 2, 2)},
        ConvShape{"pointwise", model::make_pointwise("pw", 9, 9, 8, 18)},
        ConvShape{"depthwise", model::make_depthwise("dw", 9, 9, 5, 3, 3, 1, 1)},
        ConvShape{"depthwise_s2",
                  model::make_depthwise("dw", 12, 12, 3, 3, 3, 2, 1)},
        ConvShape{"dense", model::make_fully_connected("fc", 40, 25)},
        ConvShape{"projection", model::make_projection("pl", 8, 8, 6, 10, 2)}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace rainbow::systolic
