// White-box tests of the baseline's buffer-residency traffic model: exact
// re-fetch arithmetic for both fold orders, the order-selection flag, and
// the thrash regime.
#include <gtest/gtest.h>

#include "scalesim/simulator.hpp"

namespace rainbow::scalesim {
namespace {

using model::make_conv;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(BaselineDetail, ColumnTileResidencyAmortizesOversizedFilters) {
  // Filters exceed their partition as a whole (36,864 > 15,360), but one
  // 16-filter column tile (16 x 72 = 1,152) fits — so the filter-outer
  // order holds each tile across the row sweep and the total filter
  // traffic stays compulsory.
  const auto spec = spec_kb(64);  // feature pool 60 kB
  const BufferPartition part{.ifmap_fraction = 0.5};  // 15 kB usable each
  const Simulator sim(spec, part);
  const auto layer = make_conv("c", 14, 14, 8, 3, 3, 512, 1, 1);
  const auto r = sim.simulate_layer(layer);
  EXPECT_FALSE(r.row_outer_order);
  EXPECT_EQ(r.traffic.filter_reads, layer.filter_elems());
  EXPECT_EQ(r.traffic.ifmap_reads, layer.ifmap_elems());  // fits entirely
  EXPECT_EQ(r.traffic.ofmap_writes, layer.ofmap_elems());
}

TEST(BaselineDetail, RowOuterStreamsBigIfmapOnce) {
  // Big ifmap (64 kB > partition) whose sliding window fits, small fully
  // resident filters: the row-outer order reaches compulsory traffic while
  // filter-outer would re-fetch the ifmap spill per column fold.
  const auto spec = spec_kb(64);
  const BufferPartition part{.ifmap_fraction = 0.5};
  const Simulator sim(spec, part);
  const auto layer = make_conv("c", 64, 64, 16, 3, 3, 32, 1, 1);
  const auto r = sim.simulate_layer(layer);
  EXPECT_TRUE(r.row_outer_order);
  EXPECT_EQ(r.traffic.ifmap_reads, layer.ifmap_elems());
  EXPECT_EQ(r.traffic.filter_reads, layer.filter_elems());
}

TEST(BaselineDetail, IfmapSpillReFetchedPerColumnFold) {
  // Big ifmap, small filters: filter-outer order wins and the spilled
  // ifmap bytes re-fetch per column fold.
  const auto spec = spec_kb(64);
  const BufferPartition part{.ifmap_fraction = 0.5};
  const Simulator sim(spec, part);
  // ifmap 64x64x16 = 65,536 > 15,360; filters 5x5x16x64 = 25.6k; window
  // 5*64*16 = 5,120 fits, so order A would stream the ifmap once but
  // thrash filters; the simulator picks whichever is cheaper.
  const auto layer = make_conv("c", 64, 64, 16, 5, 5, 64, 1, 2);
  const auto r = sim.simulate_layer(layer);
  // Order A: ifmap once (window fits) + filter spill x (row_folds-1).
  const count_t usable_flt = part.filter_buffer(spec).usable_elems(spec);
  const count_t row_folds = (4096 + 15) / 16;
  const count_t order_a = layer.ifmap_elems() + layer.filter_elems() +
                          (layer.filter_elems() - usable_flt) *
                              (row_folds - 1);
  EXPECT_LE(r.traffic.ifmap_reads + r.traffic.filter_reads, order_a);
}

TEST(BaselineDetail, EverythingResidentMeansCompulsoryTraffic) {
  const auto spec = arch::paper_spec(util::mib(16));
  const Simulator sim(spec, BufferPartition{.ifmap_fraction = 0.5});
  const auto layer = make_conv("c", 28, 28, 32, 3, 3, 64, 1, 1);
  const auto r = sim.simulate_layer(layer);
  EXPECT_EQ(r.traffic.total(), layer.ifmap_elems() + layer.filter_elems() +
                                   layer.ofmap_elems());
}

TEST(BaselineDetail, OrderFlagTracksTheCheaperSchedule) {
  const auto spec = spec_kb(64);
  const BufferPartition part{.ifmap_fraction = 0.5};
  const Simulator sim(spec, part);
  // Oversized filter tiles (16 x 3x3x128 = 18.4k > 15.4k) push filter
  // traffic up in BOTH orders, but filter-outer only re-fetches the tile
  // spill while row-outer re-fetches the whole filter spill: B wins.
  const auto deep = make_conv("d", 14, 14, 128, 3, 3, 512, 1, 1);
  EXPECT_FALSE(sim.simulate_layer(deep).row_outer_order);
  // Spilling ifmap with fitting window and fully resident filters: A wins
  // (ties also report row-outer).
  const auto wide = make_conv("w", 64, 64, 16, 3, 3, 32, 1, 1);
  EXPECT_TRUE(sim.simulate_layer(wide).row_outer_order);
}

TEST(BaselineDetail, PartitionMonotonicity) {
  // Giving the filter buffer more space never increases filter traffic on
  // a filter-bound layer.
  const auto layer = make_conv("c", 14, 14, 8, 3, 3, 512, 1, 1);
  const auto spec = spec_kb(64);
  count_t prev = ~0ull;
  for (double frac : {0.75, 0.50, 0.25}) {  // filter share grows
    const Simulator sim(spec, BufferPartition{.ifmap_fraction = frac});
    const auto r = sim.simulate_layer(layer);
    EXPECT_LE(r.traffic.filter_reads, prev) << frac;
    prev = r.traffic.filter_reads;
  }
}

TEST(BaselineDetail, ComputeCyclesUnaffectedByPartition) {
  const auto layer = make_conv("c", 28, 28, 16, 3, 3, 32, 1, 1);
  const auto spec = spec_kb(64);
  count_t reference = 0;
  for (const auto& part : paper_partitions()) {
    const Simulator sim(spec, part);
    const auto r = sim.simulate_layer(layer);
    if (reference == 0) {
      reference = r.compute_cycles;
    }
    EXPECT_EQ(r.compute_cycles, reference);
  }
}

}  // namespace
}  // namespace rainbow::scalesim
