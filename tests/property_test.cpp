// Property-based sweeps (parameterized gtest) over a grid of layer shapes:
// the invariants of Section 3 must hold for every policy on every layer,
// not just the paper's six networks.
#include <gtest/gtest.h>

#include <tuple>

#include "core/analyzer.hpp"
#include "engine/engine.hpp"

namespace rainbow {
namespace {

using core::Estimate;
using core::Estimator;
using core::Policy;
using core::PolicyChoice;
using model::Layer;
using model::LayerKind;

// Grid axes: (spatial size, channels, filters, kernel, stride, kind).
using LayerParam = std::tuple<int, int, int, int, int, LayerKind>;

Layer make_layer(const LayerParam& p) {
  const auto [hw, ci, nf, k, s, kind] = p;
  Layer::Params params;
  params.kind = kind;
  params.name = "grid";
  params.ifmap_h = params.ifmap_w = hw;
  params.channels = ci;
  params.filter_h = params.filter_w = (kind == LayerKind::kConv) ? k : 1;
  if (kind == LayerKind::kDepthwise) {
    params.filter_h = params.filter_w = k;
    params.filters = ci;
  } else {
    params.filters = nf;
  }
  params.stride = s;
  params.padding = (params.filter_h > 1) ? params.filter_h / 2 : 0;
  if (kind == LayerKind::kFullyConnected) {
    params.ifmap_h = params.ifmap_w = 1;
    params.stride = 1;
    params.padding = 0;
  }
  return Layer(params);
}

class LayerGridTest : public ::testing::TestWithParam<LayerParam> {
 protected:
  static const Estimator& estimator() {
    static const Estimator est(arch::paper_spec(util::kib(1024)));
    return est;
  }
};

TEST_P(LayerGridTest, AccessesNeverBelowCompulsoryTraffic) {
  const Layer layer = make_layer(GetParam());
  const count_t compulsory =
      layer.padded_ifmap_elems() + layer.filter_elems() + layer.ofmap_elems();
  for (Policy p : core::kAllPolicies) {
    const Estimate e = estimator().estimate(layer, p, false);
    EXPECT_GE(e.accesses(), compulsory) << core::to_string(p);
    if (core::is_minimum_traffic(p, layer)) {
      EXPECT_EQ(e.accesses(), compulsory) << core::to_string(p);
    }
  }
}

TEST_P(LayerGridTest, FootprintsArePositiveAndDecomposed) {
  const Layer layer = make_layer(GetParam());
  for (Policy p : core::kAllPolicies) {
    const Estimate e = estimator().estimate(layer, p, false);
    const auto& fp = e.footprint;
    EXPECT_GT(fp.ifmap, 0u);
    EXPECT_GT(fp.filter, 0u);
    EXPECT_GT(fp.ofmap, 0u);
    EXPECT_EQ(fp.total(), fp.ifmap + fp.filter + fp.ofmap);
  }
}

TEST_P(LayerGridTest, PolicyFootprintOrdering) {
  // Tiled policies never need more space than keeping the whole layer —
  // modulo the padding halo: sliding windows span the padded width while
  // whole-map terms are unpadded, so P1/P3 may exceed intra by at most the
  // padded-vs-unpadded difference (tiny maps with big kernels).
  const Layer layer = make_layer(GetParam());
  const auto intra = estimator().estimate(layer, Policy::kIntraLayer, false);
  const count_t halo =
      layer.padded_ifmap_elems() - std::min(layer.padded_ifmap_elems(),
                                            layer.ifmap_elems());
  for (Policy p : {Policy::kIfmapReuse, Policy::kFilterReuse,
                   Policy::kPerChannel}) {
    const Estimate e = estimator().estimate(layer, p, false);
    EXPECT_LE(e.memory_elems(), intra.memory_elems() + halo)
        << core::to_string(p);
  }
  // Filter reuse involves no padded window: strict ordering holds.
  EXPECT_LE(estimator().estimate(layer, Policy::kFilterReuse, false).memory_elems(),
            intra.memory_elems());
}

TEST_P(LayerGridTest, PrefetchHalvesNothingButLatency) {
  const Layer layer = make_layer(GetParam());
  for (Policy p : core::kAllPolicies) {
    const Estimate serial = estimator().estimate(layer, p, false);
    const Estimate overlap =
        estimator().estimate_choice(layer, [&] {
          PolicyChoice c = serial.choice;
          c.prefetch = true;
          return c;
        }());
    EXPECT_EQ(overlap.accesses(), serial.accesses()) << core::to_string(p);
    EXPECT_LE(overlap.latency_cycles, serial.latency_cycles)
        << core::to_string(p);
    EXPECT_EQ(overlap.memory_elems(), 2 * serial.memory_elems())
        << core::to_string(p);
  }
}

TEST_P(LayerGridTest, LatencyLowerBounds) {
  const Layer layer = make_layer(GetParam());
  const double bw = estimator().spec().elements_per_cycle();
  for (Policy p : core::kAllPolicies) {
    for (bool prefetch : {false, true}) {
      const Estimate e = estimator().estimate(layer, p, prefetch);
      EXPECT_GE(e.latency_cycles, e.compute_cycles - 1e-9);
      EXPECT_GE(e.latency_cycles,
                static_cast<double>(e.accesses()) / bw - 1e-9);
    }
  }
}

TEST_P(LayerGridTest, EngineReproducesEstimator) {
  const Layer layer = make_layer(GetParam());
  const engine::Engine eng(estimator().spec());
  for (Policy p : core::kAllPolicies) {
    const Estimate e = estimator().estimate(layer, p, false);
    if (!e.feasible) {
      continue;
    }
    const auto exec = eng.execute_layer(layer, e.choice);
    EXPECT_EQ(exec.traffic.total(), e.accesses()) << core::to_string(p);
    EXPECT_NEAR(exec.latency_cycles, e.latency_cycles,
                1e-6 * e.latency_cycles + 1e-6)
        << core::to_string(p);
  }
}

TEST_P(LayerGridTest, AnalyzerPicksFeasibleOptimum) {
  const Layer layer = make_layer(GetParam());
  for (count_t kb : {32u, 128u}) {
    const core::Analyzer analyzer(arch::paper_spec(util::kib(kb)));
    const Estimate best =
        analyzer.best_estimate(layer, core::Objective::kAccesses);
    EXPECT_TRUE(best.feasible);
    EXPECT_LE(best.memory_elems(), util::kib(kb));
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConvGrid, LayerGridTest,
    ::testing::Combine(::testing::Values(7, 14, 28, 56),     // spatial
                       ::testing::Values(3, 16, 64),         // channels
                       ::testing::Values(8, 32, 128),        // filters
                       ::testing::Values(1, 3, 5),           // kernel
                       ::testing::Values(1, 2),              // stride
                       ::testing::Values(LayerKind::kConv)));

// Extreme geometries: large kernels, stride 3 (stride > 1 with partial
// window overlap), stride 4 with 1x1 (stride outruns the filter).
INSTANTIATE_TEST_SUITE_P(
    ExtremeGrid, LayerGridTest,
    ::testing::Combine(::testing::Values(15, 29), ::testing::Values(4, 24),
                       ::testing::Values(6, 48), ::testing::Values(7),
                       ::testing::Values(1, 3),
                       ::testing::Values(LayerKind::kConv)));

INSTANTIATE_TEST_SUITE_P(
    StrideOutrunsFilter, LayerGridTest,
    ::testing::Combine(::testing::Values(16, 33), ::testing::Values(8),
                       ::testing::Values(16), ::testing::Values(1),
                       ::testing::Values(4),
                       ::testing::Values(LayerKind::kConv,
                                         LayerKind::kPointwise)));

INSTANTIATE_TEST_SUITE_P(
    DepthwiseGrid, LayerGridTest,
    ::testing::Combine(::testing::Values(14, 56, 112), ::testing::Values(16, 96),
                       ::testing::Values(1), ::testing::Values(3, 5),
                       ::testing::Values(1, 2),
                       ::testing::Values(LayerKind::kDepthwise)));

INSTANTIATE_TEST_SUITE_P(
    PointwiseAndDense, LayerGridTest,
    ::testing::Combine(::testing::Values(7, 28), ::testing::Values(32, 256),
                       ::testing::Values(64, 512), ::testing::Values(1),
                       ::testing::Values(1),
                       ::testing::Values(LayerKind::kPointwise,
                                         LayerKind::kFullyConnected)));

// Filter-block sweep: footprint monotone in n, traffic antitone in n.
class FilterBlockTest : public ::testing::TestWithParam<int> {};

TEST_P(FilterBlockTest, FootprintMonotoneTrafficAntitone) {
  const Layer layer = model::make_conv("c", 14, 14, 64, 3, 3, 128, 1, 1);
  const Estimator est(arch::paper_spec(util::kib(1024)));
  const int n = GetParam();
  const PolicyChoice a{.policy = Policy::kPartialIfmap, .filter_block = n};
  const PolicyChoice b{.policy = Policy::kPartialIfmap, .filter_block = n + 1};
  EXPECT_LT(core::planned_footprint(layer, a).total(),
            core::planned_footprint(layer, b).total());
  EXPECT_GE(est.traffic(layer, a).total(), est.traffic(layer, b).total());
}

INSTANTIATE_TEST_SUITE_P(Blocks, FilterBlockTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 63, 100));

}  // namespace
}  // namespace rainbow
