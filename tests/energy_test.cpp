// Unit tests for the energy model: arithmetic, validation, and the
// paper-level property that access reduction translates into energy
// reduction at the default coefficients.
#include <gtest/gtest.h>

#include "core/energy.hpp"
#include "scalesim/simulator.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"

namespace rainbow::core {
namespace {

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(Energy, ValidationRejectsNonPositiveCoefficients) {
  EnergyModel m;
  m.dram_pj_per_byte = 0.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
  m = EnergyModel{};
  m.mac_pj = -1.0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(Energy, DefaultRatioIsInThePapersBand) {
  // Section 2.3: off-chip transfers cost ~10-100x a local operation.
  const EnergyModel m;
  EXPECT_GE(m.dram_to_sram_ratio(), 10.0);
  EXPECT_LE(m.dram_to_sram_ratio(), 100.0);
}

TEST(Energy, RawEnergyArithmetic) {
  const auto spec = spec_kb(64);  // 1-byte elements
  const EnergyModel m{.dram_pj_per_byte = 100.0,
                      .sram_pj_per_byte = 1.0,
                      .mac_pj = 0.5};
  const EnergyBreakdown e = raw_energy(1000, 2000, spec, m);
  EXPECT_DOUBLE_EQ(e.dram_pj, 1000 * 100.0);
  EXPECT_DOUBLE_EQ(e.sram_pj, (2 * 2000 + 1000) * 1.0);
  EXPECT_DOUBLE_EQ(e.mac_pj, 2000 * 0.5);
  EXPECT_DOUBLE_EQ(e.total_pj(), e.dram_pj + e.sram_pj + e.mac_pj);
}

TEST(Energy, ElementWidthScalesByteCosts) {
  auto spec = spec_kb(64);
  spec.data_width_bits = 32;
  const EnergyBreakdown wide = raw_energy(1000, 0, spec, {});
  const EnergyBreakdown narrow = raw_energy(1000, 0, spec_kb(64), {});
  EXPECT_DOUBLE_EQ(wide.dram_pj, 4.0 * narrow.dram_pj);
}

TEST(Energy, BreakdownAccumulates) {
  EnergyBreakdown a{1.0, 2.0, 3.0};
  const EnergyBreakdown b{10.0, 20.0, 30.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.dram_pj, 11.0);
  EXPECT_DOUBLE_EQ(a.total_pj(), 66.0);
}

TEST(Energy, PlanEnergySumsLayers) {
  const auto spec = spec_kb(64);
  const MemoryManager manager(spec);
  const auto net = model::zoo::mobilenet();
  const auto plan = manager.plan(net, Objective::kAccesses);
  EnergyBreakdown sum;
  for (const auto& a : plan.assignments()) {
    sum += layer_energy(a.estimate, net.layer(a.layer_index), spec, {});
  }
  const EnergyBreakdown total = plan_energy(plan, net, {});
  EXPECT_DOUBLE_EQ(total.total_pj(), sum.total_pj());
  EXPECT_GT(total.total_mj(), 0.0);
}

TEST(Energy, PlanNetworkMismatchThrows) {
  const auto spec = spec_kb(64);
  const ExecutionPlan empty("x", "y", spec, Objective::kAccesses);
  EXPECT_THROW((void)plan_energy(empty, model::zoo::mobilenet(), {}),
               std::invalid_argument);
}

TEST(Energy, AccessReductionIsEnergyReduction) {
  // The paper's bottom line: at 64 kB, the managed GLB burns considerably
  // less energy than the best fixed-partition baseline because DRAM
  // dominates.
  const auto spec = spec_kb(64);
  const MemoryManager manager(spec);
  for (const auto& net : model::zoo::all_models()) {
    count_t best_baseline = ~0ull;
    for (const auto& part : scalesim::paper_partitions()) {
      best_baseline = std::min(
          best_baseline,
          scalesim::Simulator(spec, part).run(net).total_accesses);
    }
    const EnergyBreakdown baseline =
        raw_energy(best_baseline, net.total_macs(), spec, {});
    const auto plan = manager.plan(net, Objective::kAccesses);
    const EnergyBreakdown managed = plan_energy(plan, net, {});
    EXPECT_LT(managed.total_pj(), baseline.total_pj()) << net.name();
    // The saving comes from the DRAM term: compute energy is identical and
    // the scratchpad term barely moves.
    const double dram_saving = baseline.dram_pj - managed.dram_pj;
    const double total_saving = baseline.total_pj() - managed.total_pj();
    EXPECT_GT(dram_saving, 0.9 * total_saving) << net.name();
  }
}

TEST(Energy, GlbStreamMatchesTracedSimulation) {
  // glb_stream_elems duplicates the fold arithmetic core cannot import
  // from scalesim; the traced simulator's SRAM read count pins the two
  // together.
  const auto spec = spec_kb(64);
  const auto net = model::zoo::mobilenet();
  const scalesim::Simulator sim(spec,
                                scalesim::BufferPartition{.ifmap_fraction = 0.5});
  const auto traced = sim.run_traced(net);
  count_t analytic = 0;
  for (const auto& layer : net.layers()) {
    analytic += glb_stream_elems(layer, spec);
  }
  EXPECT_EQ(analytic, traced.sram_read_events);
}

TEST(Energy, HierarchicalModelShiftsOperandCostOffTheGlb) {
  // Operand forwarding in the array means the GLB sees far fewer reads
  // than 2 x MACs; the flat model over-charges the SRAM term accordingly.
  const auto spec = spec_kb(64);
  const auto net = model::zoo::resnet18();
  const MemoryManager manager(spec);
  const auto plan = manager.plan(net, Objective::kAccesses);
  const EnergyBreakdown flat = plan_energy(plan, net);
  const EnergyBreakdown hier = hierarchical_plan_energy(plan, net);
  EXPECT_LT(hier.sram_pj, 0.3 * flat.sram_pj);
  EXPECT_GT(hier.rf_pj, 0.0);
  EXPECT_DOUBLE_EQ(flat.rf_pj, 0.0);
  // DRAM and MAC terms are identical across the two models.
  EXPECT_NEAR(hier.dram_pj, flat.dram_pj, 1e-6 * flat.dram_pj);
  EXPECT_NEAR(hier.mac_pj, flat.mac_pj, 1e-6 * flat.mac_pj);
}

TEST(Energy, HierarchicalArithmetic) {
  const auto spec = spec_kb(64);  // 1-byte elements
  const EnergyModel m{.dram_pj_per_byte = 100.0,
                      .sram_pj_per_byte = 10.0,
                      .rf_pj_per_byte = 1.0,
                      .mac_pj = 0.5};
  const EnergyBreakdown e = hierarchical_energy(1000, 5000, 2000, spec, m);
  EXPECT_DOUBLE_EQ(e.dram_pj, 1000 * 100.0);
  EXPECT_DOUBLE_EQ(e.sram_pj, (5000 + 1000) * 10.0);
  EXPECT_DOUBLE_EQ(e.rf_pj, 2 * 2000 * 1.0);
  EXPECT_DOUBLE_EQ(e.mac_pj, 2000 * 0.5);
}

}  // namespace
}  // namespace rainbow::core
