// Property tests over the whole zoo: every plan the manager produces must
// lower to a well-formed command stream — balanced alloc/free for every
// region, exactly one barrier per layer with nothing but frees behind it,
// per-layer command sums equal to the engine totals of the schedule the
// plan implies — and the stream analyzer must find nothing to report.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "analysis/stream_analyzer.hpp"
#include "codegen/lower.hpp"
#include "core/estimator.hpp"
#include "core/manager.hpp"
#include "engine/schedule.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

using codegen::Command;
using codegen::Program;

struct RegionEvents {
  int allocs = 0;
  int frees = 0;
};

void check_well_formed(const Program& program,
                       const core::ExecutionPlan& plan,
                       const model::Network& network,
                       const std::string& label) {
  std::map<int, RegionEvents> events;
  for (std::size_t i = 0; i < program.layers.size(); ++i) {
    const codegen::LayerProgram& layer = program.layers[i];
    const core::LayerAssignment& assignment = plan.assignment(i);

    std::size_t barriers = 0;
    bool past_barrier = false;
    engine::ScheduleTotals sums;
    for (const Command& cmd : layer.commands) {
      switch (cmd.op) {
        case Command::Op::kAlloc:
          ++events[cmd.region].allocs;
          break;
        case Command::Op::kFree:
          EXPECT_TRUE(past_barrier)
              << label << ": free before the barrier in " << layer.layer_name;
          ++events[cmd.region].frees;
          break;
        case Command::Op::kBarrier:
          ++barriers;
          past_barrier = true;
          break;
        case Command::Op::kLoad:
          EXPECT_FALSE(past_barrier)
              << label << ": load after the barrier in " << layer.layer_name;
          if (cmd.kind == codegen::DataKind::kIfmap) {
            sums.ifmap_loads += cmd.elems;
          } else {
            sums.filter_loads += cmd.elems;
          }
          break;
        case Command::Op::kCompute:
          EXPECT_FALSE(past_barrier) << label << ": compute after the "
                                     << "barrier in " << layer.layer_name;
          sums.macs += cmd.macs;
          break;
        case Command::Op::kStore:
          EXPECT_FALSE(past_barrier)
              << label << ": store after the barrier in " << layer.layer_name;
          sums.ofmap_stores += cmd.elems;
          break;
      }
    }
    EXPECT_EQ(barriers, 1u)
        << label << ": layer " << layer.layer_name
        << " is not terminated by exactly one barrier";

    // The stream's transfer/compute sums must be exactly the totals of
    // the schedule the plan claims for this layer.
    const core::InterlayerAdjust adjust{
        .ifmap_resident = assignment.ifmap_from_glb,
        .keep_ofmap = assignment.ofmap_stays_in_glb};
    const engine::ScheduleTotals claimed = engine::totals(engine::build_schedule(
        network.layer(assignment.layer_index), assignment.estimate.choice,
        adjust));
    EXPECT_EQ(sums.ifmap_loads, claimed.ifmap_loads)
        << label << ": " << layer.layer_name;
    EXPECT_EQ(sums.filter_loads, claimed.filter_loads)
        << label << ": " << layer.layer_name;
    EXPECT_EQ(sums.ofmap_stores, claimed.ofmap_stores)
        << label << ": " << layer.layer_name;
    EXPECT_EQ(sums.macs, claimed.macs) << label << ": " << layer.layer_name;
  }
  for (const auto& [region, counts] : events) {
    EXPECT_EQ(counts.allocs, 1)
        << label << ": region " << region << " allocated "
        << counts.allocs << " times";
    EXPECT_EQ(counts.frees, 1) << label << ": region " << region
                               << " freed " << counts.frees << " times";
  }
}

void check_model(const model::Network& net, count_t glb_kb, bool interlayer) {
  const std::string label = net.name() + " @ " + std::to_string(glb_kb) +
                            " kB" + (interlayer ? " +inter" : "");
  core::ManagerOptions options;
  options.interlayer_reuse = interlayer;
  const core::MemoryManager manager(arch::paper_spec(util::kib(glb_kb)),
                                    options);
  const auto plan = manager.plan(net, core::Objective::kAccesses);
  ASSERT_TRUE(plan.feasible()) << label;
  const Program program = codegen::lower(plan, net);

  check_well_formed(program, plan, net, label);

  const AnalysisResult result = analyze_lowering(program, plan, net);
  EXPECT_TRUE(result.clean()) << label << "\n" << result.report.summary();
  EXPECT_LE(result.peak_live_elems, result.capacity_elems) << label;
  EXPECT_LE(result.peak_live_elems, result.glb_peak_elems) << label;
}

TEST(StreamProperty, EveryZooPlanLowersWellFormedSmallGlb) {
  for (const auto& net : model::zoo::all_models()) {
    check_model(net, 64, false);
  }
}

TEST(StreamProperty, EveryZooPlanLowersWellFormedLargeGlb) {
  for (const auto& net : model::zoo::all_models()) {
    check_model(net, 1024, false);
  }
}

TEST(StreamProperty, EveryZooPlanLowersWellFormedWithInterlayerReuse) {
  for (const auto& net : model::zoo::all_models()) {
    check_model(net, 1024, true);
  }
}

}  // namespace
}  // namespace rainbow::analysis
