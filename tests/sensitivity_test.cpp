// Tests for the DSE sensitivity analysis.
#include <gtest/gtest.h>

#include "dse/sensitivity.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::dse {
namespace {

std::vector<SweepPoint> glb_sweep(const model::Network& net) {
  SweepConfig config;
  for (count_t kb = 32; kb <= 1024; kb *= 2) {
    config.glb_bytes.push_back(util::kib(kb));
  }
  return run_sweep(net, config);
}

TEST(Sensitivity, MarginalUtilityArithmetic) {
  std::vector<SweepPoint> points(2);
  points[0].glb_bytes = util::kib(64);
  points[0].accesses = 1'000'000;
  points[0].latency_cycles = 5000.0;
  points[1].glb_bytes = util::kib(128);
  points[1].accesses = 900'000;
  points[1].latency_cycles = 4000.0;
  const auto m = marginal_utility(points, 8);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_DOUBLE_EQ(m[0].bytes_saved_per_byte,
                   100'000.0 / util::kib(64));
  EXPECT_DOUBLE_EQ(m[0].latency_saved_cycles, 1000.0);
}

TEST(Sensitivity, ValidatesInput) {
  std::vector<SweepPoint> one(1);
  EXPECT_THROW((void)marginal_utility(one), std::invalid_argument);
  std::vector<SweepPoint> unsorted(2);
  unsorted[0].glb_bytes = util::kib(128);
  unsorted[1].glb_bytes = util::kib(64);
  EXPECT_THROW((void)marginal_utility(unsorted), std::invalid_argument);
}

TEST(Sensitivity, MarginalUtilityDecaysOnRealModels) {
  // Het's access curve flattens fast (Figure 5): the first doubling buys
  // more than the last one.
  for (const char* name : {"ResNet18", "GoogLeNet"}) {
    const auto points = glb_sweep(model::zoo::by_name(name));
    const auto m = marginal_utility(points);
    EXPECT_GE(m.front().bytes_saved_per_byte,
              m.back().bytes_saved_per_byte)
        << name;
  }
}

TEST(Sensitivity, KneeIsWithinTheSweep) {
  const auto points = glb_sweep(model::zoo::mobilenetv2());
  const count_t knee = knee_glb_bytes(points);
  EXPECT_GE(knee, points.front().glb_bytes);
  EXPECT_LE(knee, points.back().glb_bytes);
  // MobileNetV2's Het curve is nearly flat (Figure 5): the knee sits at
  // the small end.
  EXPECT_LE(knee, util::kib(128));
}

TEST(Sensitivity, KneeRespectsThreshold) {
  // A zero threshold is never undercut by a monotone curve until it goes
  // perfectly flat; a huge threshold trips immediately.
  const auto points = glb_sweep(model::zoo::resnet18());
  EXPECT_EQ(knee_glb_bytes(points, 1e12), points.front().glb_bytes);
}

}  // namespace
}  // namespace rainbow::dse
