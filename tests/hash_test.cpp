// util/hash.hpp is the single FNV-1a implementation the EvalCache keys
// and the serve single-flight shards both depend on.  Cached plans and
// shard assignments must be stable across builds, so this test pins the
// exact constants, a set of published FNV-1a golden digests, and the
// compile-time usability of the function.
#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/eval_cache.hpp"

namespace rainbow::util {
namespace {

TEST(Fnv1aHash, PinsTheStandardParameters) {
  EXPECT_EQ(kFnv1aOffsetBasis, 14695981039346656037ull);
  EXPECT_EQ(kFnv1aPrime, 1099511628211ull);
  // The empty string hashes to the offset basis by definition.
  EXPECT_EQ(fnv1a(""), kFnv1aOffsetBasis);
}

TEST(Fnv1aHash, MatchesPublishedGoldenDigests) {
  // Reference vectors from the FNV specification (64-bit FNV-1a).
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1aHash, IsUsableAtCompileTime) {
  static_assert(fnv1a("") == 0xcbf29ce484222325ull);
  static_assert(fnv1a("a") == 0xaf63dc4c8601ec8cull);
  static_assert(fnv1a("foobar") == 0x85944171f73967e8ull);
  static_assert(fnv1a_byte(kFnv1aOffsetBasis, 'a') == fnv1a("a"));
}

TEST(Fnv1aHash, HandlesHighBytesAsUnsigned) {
  // Bytes >= 0x80 must be folded as unsigned values; a signed-char XOR
  // would smear the high bits and change every digest containing them.
  const std::string high("\xff\x80\x01", 3);
  std::uint64_t expected = kFnv1aOffsetBasis;
  expected = fnv1a_byte(expected, 0xff);
  expected = fnv1a_byte(expected, 0x80);
  expected = fnv1a_byte(expected, 0x01);
  EXPECT_EQ(fnv1a(high), expected);
  EXPECT_NE(fnv1a(high), fnv1a(""));
}

TEST(Fnv1aHash, EvalKeyUsesTheSharedImplementation) {
  for (const std::string bytes : {std::string(), std::string("a"),
                                  std::string("foobar"),
                                  std::string("\x00\xff junk", 7)}) {
    EXPECT_EQ(core::EvalKey::fnv1a(bytes), fnv1a(bytes)) << bytes;
  }
}

}  // namespace
}  // namespace rainbow::util
