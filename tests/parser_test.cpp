// Unit tests for the model text format: parsing, serialization round-trips
// (including all six zoo models), and error diagnostics.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "model/parser.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::model {
namespace {

constexpr const char* kValid = R"(# a tiny model
network, Tiny
CV, conv1, 8, 8, 3, 3, 3, 4, 1, 1
DW, dw1, 8, 8, 4, 3, 3, 4, 1, 1
PW, pw1, 8, 8, 4, 1, 1, 8, 1, 0
FC, fc, 1, 1, 8, 1, 1, 10, 1, 0
)";

TEST(Parser, ParsesValidModel) {
  const Network net = parse_network(kValid);
  EXPECT_EQ(net.name(), "Tiny");
  ASSERT_EQ(net.size(), 4u);
  EXPECT_EQ(net.layer(0).kind(), LayerKind::kConv);
  EXPECT_EQ(net.layer(1).kind(), LayerKind::kDepthwise);
  EXPECT_EQ(net.layer(3).filters(), 10);
}

TEST(Parser, ParsesBranchProducer) {
  const Network net = parse_network(
      "network, B\n"
      "CV, a, 8, 8, 3, 3, 3, 4, 1, 1\n"
      "CV, b, 8, 8, 4, 3, 3, 4, 1, 1\n"
      "PL, p, 8, 8, 3, 1, 1, 4, 1, 0, 0\n");
  ASSERT_EQ(net.size(), 3u);
  ASSERT_TRUE(net.producer_of(2).has_value());
  EXPECT_EQ(*net.producer_of(2), 0u);
  EXPECT_FALSE(net.is_sequential_boundary(1));
}

TEST(Parser, SkipsCommentsAndBlankLines) {
  const Network net = parse_network(
      "# leading comment\n"
      "\n"
      "network, X\n"
      "   \n"
      "CV, a, 8, 8, 3, 3, 3, 4, 1, 1  # trailing comment\n");
  EXPECT_EQ(net.size(), 1u);
}

TEST(Parser, MissingHeaderThrows) {
  EXPECT_THROW((void)parse_network("CV, a, 8, 8, 3, 3, 3, 4, 1, 1\n"),
               std::runtime_error);
}

TEST(Parser, EmptyInputThrows) {
  EXPECT_THROW((void)parse_network(""), std::runtime_error);
}

TEST(Parser, BadKindThrows) {
  EXPECT_THROW((void)parse_network("network, X\nZZ, a, 8, 8, 3, 3, 3, 4, 1, 1\n"),
               std::runtime_error);
}

TEST(Parser, BadIntegerReportsLineNumber) {
  try {
    (void)parse_network("network, X\nCV, a, eight, 8, 3, 3, 3, 4, 1, 1\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, WrongArityThrows) {
  EXPECT_THROW((void)parse_network("network, X\nCV, a, 8, 8, 3\n"),
               std::runtime_error);
}

TEST(Parser, NegativeProducerThrows) {
  EXPECT_THROW(
      parse_network("network, X\n"
                    "CV, a, 8, 8, 3, 3, 3, 4, 1, 1\n"
                    "CV, b, 8, 8, 4, 3, 3, 4, 1, 1, -1\n"),
      std::runtime_error);
}

TEST(Parser, OutOfRangeProducerThrows) {
  EXPECT_THROW(
      parse_network("network, X\n"
                    "CV, a, 8, 8, 3, 3, 3, 4, 1, 1, 5\n"),
      std::runtime_error);
}

TEST(Parser, InvalidLayerGeometryReportsLine) {
  // Depthwise with filters != channels is rejected by Layer's validation.
  try {
    (void)parse_network("network, X\nDW, d, 8, 8, 4, 3, 3, 8, 1, 1\n");
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, SerializeRoundTrip) {
  const Network original = parse_network(kValid);
  const Network reparsed = parse_network(serialize_network(original));
  ASSERT_EQ(reparsed.size(), original.size());
  EXPECT_EQ(reparsed.name(), original.name());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed.layer(i), original.layer(i)) << "layer " << i;
  }
}

TEST(Parser, AllZooModelsRoundTrip) {
  for (const Network& original : zoo::all_models()) {
    const Network reparsed = parse_network(serialize_network(original));
    ASSERT_EQ(reparsed.size(), original.size()) << original.name();
    EXPECT_EQ(reparsed.name(), original.name());
    for (std::size_t i = 0; i < original.size(); ++i) {
      EXPECT_EQ(reparsed.layer(i), original.layer(i))
          << original.name() << " layer " << i;
      EXPECT_EQ(reparsed.producer_of(i), original.producer_of(i))
          << original.name() << " layer " << i;
    }
  }
}

TEST(Parser, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "rainbow_model_test.model";
  const Network original = zoo::resnet18();
  save_network(original, path);
  const Network loaded = load_network(path);
  EXPECT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.name(), original.name());
  std::filesystem::remove(path);
}

TEST(Parser, LoadMissingFileThrows) {
  EXPECT_THROW((void)load_network("/nonexistent/net.model"), std::runtime_error);
}

}  // namespace
}  // namespace rainbow::model
