// Unit tests for the per-policy footprint formulas of Section 3.2,
// cross-checked against hand computations on the paper's own layers.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/footprint.hpp"

namespace rainbow::core {
namespace {

using model::Layer;
using model::make_conv;
using model::make_depthwise;
using model::make_fully_connected;

// ResNet18 conv5_2a: 7x7x512, 3x3, 512 filters, s1 p1 — the layer behind
// the paper's 2353 kB intra-layer peak.
Layer resnet_stage4() { return make_conv("c", 7, 7, 512, 3, 3, 512, 1, 1); }

TEST(Footprint, TotalIsSumOfParts) {
  const Footprint fp{10, 20, 30};
  EXPECT_EQ(fp.total(), 60u);
}

TEST(Footprint, DoubledDoublesEveryTerm) {
  const Footprint fp{10, 20, 30};
  const Footprint d = fp.doubled();
  EXPECT_EQ(d.ifmap, 20u);
  EXPECT_EQ(d.filter, 40u);
  EXPECT_EQ(d.ofmap, 60u);
}

TEST(Footprint, IntraLayerHoldsEverything) {
  const Layer l = resnet_stage4();
  const Footprint fp = working_footprint(l, {.policy = Policy::kIntraLayer});
  EXPECT_EQ(fp.ifmap, 7u * 7 * 512);          // unpadded whole map
  EXPECT_EQ(fp.filter, 3u * 3 * 512 * 512);
  EXPECT_EQ(fp.ofmap, 7u * 7 * 512);
  // The paper's Table 3 peak: 2,409,472 B = 2353.0 kB at 8-bit.
  EXPECT_EQ(fp.total(), 2409472u);
}

TEST(Footprint, Policy1SlidingWindowAllFilters) {
  const Layer l = resnet_stage4();
  const Footprint fp = working_footprint(l, {.policy = Policy::kIfmapReuse});
  EXPECT_EQ(fp.ifmap, 3u * 9 * 512);   // F_H x padded width x C_I
  EXPECT_EQ(fp.filter, 3u * 3 * 512 * 512);
  EXPECT_EQ(fp.ofmap, 7u * 512);       // one row, all output channels
}

TEST(Footprint, Policy2WholeIfmapOneFilter) {
  const Layer l = make_conv("c", 56, 56, 64, 3, 3, 64, 1, 1);
  const Footprint fp = working_footprint(l, {.policy = Policy::kFilterReuse});
  EXPECT_EQ(fp.ifmap, 56u * 56 * 64);
  EXPECT_EQ(fp.filter, 3u * 3 * 64);
  EXPECT_EQ(fp.ofmap, 56u * 56);
  // The paper's 199.7 kB cell (GoogLeNet conv2 / ResNet18 conv2_x).
  EXPECT_EQ(fp.total(), 204416u);
}

TEST(Footprint, Policy3OneChannelOfAllFilters) {
  const Layer l = make_conv("conv1", 224, 224, 3, 7, 7, 64, 2, 3);
  const Footprint fp = working_footprint(l, {.policy = Policy::kPerChannel});
  EXPECT_EQ(fp.ifmap, 7u * 229);       // one-channel window, padded width
  EXPECT_EQ(fp.filter, 7u * 7 * 64);   // one channel of every filter
  EXPECT_EQ(fp.ofmap, 112u * 112 * 64);// whole ofmap accumulates on-chip
  // The paper's 788.6 kB cell.
  EXPECT_NEAR(static_cast<double>(fp.total()) / 1024.0, 788.6, 0.2);
}

TEST(Footprint, Policy4BlocksFilters) {
  const Layer l = resnet_stage4();
  const Footprint fp = working_footprint(
      l, {.policy = Policy::kPartialIfmap, .filter_block = 8});
  EXPECT_EQ(fp.ifmap, 3u * 9 * 512);
  EXPECT_EQ(fp.filter, 3u * 3 * 512 * 8);
  EXPECT_EQ(fp.ofmap, 7u * 8);
}

TEST(Footprint, Policy5BlocksFilterChannels) {
  const Layer l = resnet_stage4();
  const Footprint fp = working_footprint(
      l, {.policy = Policy::kPartialPerChannel, .filter_block = 8});
  EXPECT_EQ(fp.ifmap, 3u * 9);
  EXPECT_EQ(fp.filter, 3u * 3 * 8);
  EXPECT_EQ(fp.ofmap, 7u * 7 * 8);
}

TEST(Footprint, FootprintGrowsWithFilterBlock) {
  const Layer l = resnet_stage4();
  count_t prev = 0;
  for (int n = 1; n <= 64; n *= 2) {
    const Footprint fp = working_footprint(
        l, {.policy = Policy::kPartialIfmap, .filter_block = n});
    EXPECT_GT(fp.total(), prev);
    prev = fp.total();
  }
}

TEST(Footprint, DepthwisePolicy3IsPerChannel) {
  const Layer l = make_depthwise("dw", 112, 112, 32, 3, 3, 1, 1);
  const Footprint fp = working_footprint(l, {.policy = Policy::kPerChannel});
  EXPECT_EQ(fp.ifmap, 3u * 114);
  EXPECT_EQ(fp.filter, 9u);            // a single per-channel filter
  EXPECT_EQ(fp.ofmap, 112u * 112);     // no cross-channel accumulation
}

TEST(Footprint, DepthwisePolicy4BlocksChannels) {
  const Layer l = make_depthwise("dw", 112, 112, 32, 3, 3, 1, 1);
  const Footprint fp = working_footprint(
      l, {.policy = Policy::kPartialIfmap, .filter_block = 4});
  EXPECT_EQ(fp.ifmap, 3u * 114 * 4);
  EXPECT_EQ(fp.filter, 9u * 4);
  EXPECT_EQ(fp.ofmap, 112u * 4);
}

TEST(Footprint, FullyConnectedDegenerates) {
  const Layer l = make_fully_connected("fc", 512, 1000);
  const Footprint intra = working_footprint(l, {.policy = Policy::kIntraLayer});
  EXPECT_EQ(intra.total(), 512u + 512 * 1000 + 1000);
  const Footprint p2 = working_footprint(l, {.policy = Policy::kFilterReuse});
  EXPECT_EQ(p2.total(), 512u + 512 + 1);
}

TEST(Footprint, FallbackStripe) {
  const Layer l = resnet_stage4();
  const Footprint fp = working_footprint(l, {.policy = Policy::kFallbackTiled,
                                             .filter_block = 2,
                                             .row_stripe = 3});
  // stripe input rows = (3-1)*1 + 3 = 5, one channel wide window.
  EXPECT_EQ(fp.ifmap, 5u * 9);
  EXPECT_EQ(fp.filter, 3u * 3 * 2);
  EXPECT_EQ(fp.ofmap, 3u * 7 * 2);
}

TEST(Footprint, PrefetchDoublesThroughPolicyFootprint) {
  const Layer l = resnet_stage4();
  const PolicyChoice base{.policy = Policy::kFilterReuse};
  PolicyChoice prefetch = base;
  prefetch.prefetch = true;
  EXPECT_EQ(policy_footprint(l, prefetch).total(),
            2 * policy_footprint(l, base).total());
}

TEST(Footprint, OutOfRangeFilterBlockThrows) {
  const Layer l = resnet_stage4();
  EXPECT_THROW((void)working_footprint(
                   l, {.policy = Policy::kPartialIfmap, .filter_block = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)working_footprint(
                   l, {.policy = Policy::kPartialIfmap, .filter_block = 513}),
               std::invalid_argument);
}

TEST(Footprint, OutOfRangeStripeThrows) {
  const Layer l = resnet_stage4();
  EXPECT_THROW((void)working_footprint(l, {.policy = Policy::kFallbackTiled,
                                     .filter_block = 1,
                                     .row_stripe = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)working_footprint(l, {.policy = Policy::kFallbackTiled,
                                     .filter_block = 1,
                                     .row_stripe = 8}),
               std::invalid_argument);
}

TEST(PolicyLabels, ShortLabels) {
  EXPECT_EQ(short_label(Policy::kIntraLayer, false), "intra");
  EXPECT_EQ(short_label(Policy::kIfmapReuse, false), "p1");
  EXPECT_EQ(short_label(Policy::kFilterReuse, true), "p2+p");
  EXPECT_EQ(short_label(Policy::kPartialPerChannel, false), "p5");
  EXPECT_EQ(short_label(Policy::kFallbackTiled, true), "tiled+p");
}

TEST(PolicyLabels, MinimumTrafficClassification) {
  const Layer conv = resnet_stage4();
  const Layer dw = make_depthwise("dw", 14, 14, 64, 3, 3, 1, 1);
  EXPECT_TRUE(is_minimum_traffic(Policy::kIntraLayer, conv));
  EXPECT_TRUE(is_minimum_traffic(Policy::kPerChannel, conv));
  EXPECT_FALSE(is_minimum_traffic(Policy::kPartialIfmap, conv));
  EXPECT_FALSE(is_minimum_traffic(Policy::kPartialPerChannel, conv));
  // Depthwise: P4/P5 reach minimum traffic (Section 5.1).
  EXPECT_TRUE(is_minimum_traffic(Policy::kPartialIfmap, dw));
  EXPECT_TRUE(is_minimum_traffic(Policy::kPartialPerChannel, dw));
  EXPECT_FALSE(is_minimum_traffic(Policy::kFallbackTiled, conv));
}

}  // namespace
}  // namespace rainbow::core
