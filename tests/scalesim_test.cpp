// Unit tests for the SCALE-Sim-style baseline: fold geometry, zero-stall
// timing, buffer partitions, and the traffic model's qualitative behaviour
// (re-fetch under pressure, partition-direction sensitivity).
#include <gtest/gtest.h>

#include "model/zoo/zoo.hpp"
#include "scalesim/simulator.hpp"

namespace rainbow::scalesim {
namespace {

using model::make_conv;
using model::make_depthwise;
using model::make_fully_connected;

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(Systolic, FoldGeometryDense) {
  const auto layer = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const FoldGeometry g = fold_geometry(layer, spec_kb(64));
  EXPECT_EQ(g.output_rows, 196u);
  EXPECT_EQ(g.output_cols, 64u);
  EXPECT_EQ(g.reduction, 3u * 3 * 32);
  EXPECT_EQ(g.channel_groups, 1u);
  EXPECT_EQ(g.row_folds, 13u);  // ceil(196/16)
  EXPECT_EQ(g.col_folds, 4u);
  EXPECT_EQ(g.folds(), 52u);
}

TEST(Systolic, FoldGeometryDepthwise) {
  const auto layer = make_depthwise("dw", 14, 14, 32, 3, 3, 1, 1);
  const FoldGeometry g = fold_geometry(layer, spec_kb(64));
  EXPECT_EQ(g.output_cols, 1u);
  EXPECT_EQ(g.reduction, 9u);
  EXPECT_EQ(g.channel_groups, 32u);
  EXPECT_EQ(g.col_folds, 1u);
  EXPECT_EQ(g.folds(), 13u * 32);
}

TEST(Systolic, ComputeCyclesFormula) {
  const auto layer = make_conv("c", 14, 14, 32, 3, 3, 64, 1, 1);
  const auto spec = spec_kb(64);
  // folds x (T + 2*16 - 2)
  EXPECT_EQ(compute_cycles(layer, spec), 52u * (288 + 30));
}

TEST(Systolic, UtilizationBounded) {
  const auto spec = spec_kb(64);
  for (const auto& net : model::zoo::all_models()) {
    for (const auto& layer : net.layers()) {
      const double u = utilization(layer, spec);
      EXPECT_GT(u, 0.0) << layer.name();
      EXPECT_LE(u, 1.0) << layer.name();
    }
  }
}

TEST(Systolic, DepthwiseUtilizationIsLow) {
  // One active column out of 16: utilization can never exceed 1/16.
  const auto layer = make_depthwise("dw", 56, 56, 128, 3, 3, 1, 1);
  EXPECT_LE(utilization(layer, spec_kb(64)), 1.0 / 16.0 + 1e-9);
}

TEST(Buffers, DoubleBufferHalvesUsableSpace) {
  const DoubleBuffer buf(util::kib(32));
  EXPECT_EQ(buf.assigned_bytes(), util::kib(32));
  EXPECT_EQ(buf.usable_bytes(), util::kib(16));
  EXPECT_EQ(buf.usable_elems(spec_kb(64)), util::kib(16));
}

TEST(Buffers, PartitionSplitsFeaturePool) {
  const auto spec = spec_kb(64);
  const BufferPartition part{.ifmap_fraction = 0.25};
  const count_t pool = util::kib(64) - 4096;
  EXPECT_EQ(part.ifmap_buffer(spec).assigned_bytes(), pool / 4);
  EXPECT_EQ(part.filter_buffer(spec).assigned_bytes(), pool - pool / 4);
  EXPECT_EQ(part.ofmap_buffer().assigned_bytes(), 4096u);
}

TEST(Buffers, PartitionLabels) {
  EXPECT_EQ(BufferPartition{.ifmap_fraction = 0.25}.label(), "sa_25_75");
  EXPECT_EQ(BufferPartition{.ifmap_fraction = 0.5}.label(), "sa_50_50");
  EXPECT_EQ(BufferPartition{.ifmap_fraction = 0.75}.label(), "sa_75_25");
}

TEST(Buffers, InvalidPartitionsThrow) {
  const auto spec = spec_kb(64);
  EXPECT_THROW(BufferPartition{.ifmap_fraction = 0.0}.validate(spec),
               std::invalid_argument);
  EXPECT_THROW(BufferPartition{.ifmap_fraction = 1.0}.validate(spec),
               std::invalid_argument);
  BufferPartition huge_ofmap{.ifmap_fraction = 0.5,
                             .ofmap_bytes = util::kib(128)};
  EXPECT_THROW(huge_ofmap.validate(spec), std::invalid_argument);
}

TEST(Buffers, PaperPartitions) {
  const auto parts = paper_partitions();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_DOUBLE_EQ(parts[0].ifmap_fraction, 0.25);
  EXPECT_DOUBLE_EQ(parts[1].ifmap_fraction, 0.50);
  EXPECT_DOUBLE_EQ(parts[2].ifmap_fraction, 0.75);
}

TEST(Simulator, TrafficNeverBelowCompulsory) {
  // Every operand must cross the DRAM boundary at least once.
  const Simulator sim(spec_kb(64), BufferPartition{.ifmap_fraction = 0.5});
  for (const auto& net : model::zoo::all_models()) {
    for (const auto& layer : net.layers()) {
      const LayerResult r = sim.simulate_layer(layer);
      EXPECT_GE(r.traffic.ifmap_reads, layer.ifmap_elems()) << layer.name();
      EXPECT_GE(r.traffic.filter_reads, layer.filter_elems()) << layer.name();
      EXPECT_EQ(r.traffic.ofmap_writes, layer.ofmap_elems()) << layer.name();
    }
  }
}

TEST(Simulator, BigBufferReachesCompulsoryTraffic) {
  const Simulator sim(arch::paper_spec(util::mib(64)),
                      BufferPartition{.ifmap_fraction = 0.5});
  const auto layer = make_conv("c", 28, 28, 64, 3, 3, 128, 1, 1);
  const LayerResult r = sim.simulate_layer(layer);
  EXPECT_EQ(r.traffic.ifmap_reads, layer.ifmap_elems());
  EXPECT_EQ(r.traffic.filter_reads, layer.filter_elems());
}

TEST(Simulator, TrafficMonotoneInBufferSize) {
  const auto net = model::zoo::resnet18();
  count_t prev = ~0ull;
  for (const auto glb : arch::paper_glb_sizes()) {
    const Simulator sim(arch::paper_spec(glb),
                        BufferPartition{.ifmap_fraction = 0.5});
    const RunResult run = sim.run(net);
    EXPECT_LE(run.total_accesses, prev) << glb;
    prev = run.total_accesses;
  }
}

TEST(Simulator, FilterHeavyLayerPrefersFilterPartition) {
  // Late ResNet stage: 2.3 MB of filters, 25 kB ifmap.  Assigning 75% of
  // the memory to filters must not lose to assigning 25%.
  const auto layer = make_conv("c", 7, 7, 512, 3, 3, 512, 1, 1);
  const Simulator filters_big(spec_kb(256), BufferPartition{.ifmap_fraction = 0.25});
  const Simulator ifmap_big(spec_kb(256), BufferPartition{.ifmap_fraction = 0.75});
  EXPECT_LE(filters_big.simulate_layer(layer).traffic.total(),
            ifmap_big.simulate_layer(layer).traffic.total());
}

TEST(Simulator, IfmapHeavyLayerPrefersIfmapPartition) {
  // Early layer: 1.2 MB ifmap, 0.9 kB of filters.
  const auto layer = make_conv("c", 112, 112, 96, 3, 3, 32, 2, 1);
  const Simulator filters_big(spec_kb(256), BufferPartition{.ifmap_fraction = 0.25});
  const Simulator ifmap_big(spec_kb(256), BufferPartition{.ifmap_fraction = 0.75});
  EXPECT_LE(ifmap_big.simulate_layer(layer).traffic.total(),
            filters_big.simulate_layer(layer).traffic.total());
}

TEST(Simulator, ZeroStallLatencyIndependentOfBuffers) {
  const auto net = model::zoo::mobilenet();
  count_t reference = 0;
  for (const auto glb : arch::paper_glb_sizes()) {
    for (const auto& part : paper_partitions()) {
      const Simulator sim(arch::paper_spec(glb), part);
      const RunResult run = sim.run(net);
      if (reference == 0) {
        reference = run.total_cycles;
      }
      EXPECT_EQ(run.total_cycles, reference);
    }
  }
}

TEST(Simulator, RunAggregatesLayers) {
  const Simulator sim(spec_kb(64), BufferPartition{.ifmap_fraction = 0.5});
  const auto net = model::zoo::mobilenet();
  const RunResult run = sim.run(net);
  ASSERT_EQ(run.layers.size(), net.size());
  count_t accesses = 0;
  count_t cycles = 0;
  for (const LayerResult& r : run.layers) {
    accesses += r.traffic.total();
    cycles += r.compute_cycles;
  }
  EXPECT_EQ(run.total_accesses, accesses);
  EXPECT_EQ(run.total_cycles, cycles);
  EXPECT_GT(run.access_mb(sim.spec()), 0.0);
}

TEST(Simulator, TracedRunMatchesAnalyticTotals) {
  // The cycle-level fold walk must reproduce the analytic model exactly —
  // it is the same machine, just materialising its trace.
  const Simulator sim(spec_kb(64), BufferPartition{.ifmap_fraction = 0.25});
  const auto net = model::zoo::mobilenet();
  const RunResult analytic = sim.run(net);
  const TraceResult traced = sim.run_traced(net);
  EXPECT_EQ(traced.aggregate.total_accesses, analytic.total_accesses);
  EXPECT_EQ(traced.aggregate.total_cycles, analytic.total_cycles);
  ASSERT_EQ(traced.aggregate.layers.size(), net.size());
  // Every MAC consumes one ifmap and one filter operand; every output is
  // drained once.
  count_t expected_writes = 0;
  for (const auto& layer : net.layers()) {
    expected_writes += layer.ofmap_elems();
  }
  EXPECT_EQ(traced.sram_write_events, expected_writes);
  // Each reduction step feeds one operand per active row plus one per
  // active column: fewer events than 2 x MACs (which would be one pair per
  // PE), more than the number of MAC steps.
  EXPECT_GT(traced.sram_read_events, 0u);
  EXPECT_LT(traced.sram_read_events, 2 * net.total_macs());
  EXPECT_NE(traced.trace_checksum, 0u);
}

TEST(Simulator, FullyConnectedIsCompulsoryAtAnyPartition) {
  // rt == 1 for FC layers: no re-fetch whatever the split.
  const auto fc = make_fully_connected("fc", 2048, 1024);
  for (const auto& part : paper_partitions()) {
    const Simulator sim(spec_kb(64), part);
    const LayerResult r = sim.simulate_layer(fc);
    EXPECT_EQ(r.traffic.total(),
              fc.ifmap_elems() + fc.filter_elems() + fc.ofmap_elems());
  }
}

}  // namespace
}  // namespace rainbow::scalesim
