// Mutation matrix for the stream analyzer: one deliberately corrupted
// command stream per S-diagnostic, each asserting that exactly its own
// code fires and every other S-code stays quiet.  The base fixture is a
// minimal clean one-layer stream; S014/S015 mutate a real lowering so the
// plan cross-checks have a plan to disagree with.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/stream_analyzer.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::analysis {
namespace {

using codegen::Command;
using codegen::DataKind;
using codegen::LayerProgram;
using codegen::Program;
using validate::Code;

constexpr Code kAllStreamCodes[] = {
    Code::kStreamDeadRegion,        Code::kStreamDoubleAlloc,
    Code::kStreamBadFree,           Code::kStreamRegionLeak,
    Code::kStreamOverCommit,        Code::kStreamUseBeforeLoad,
    Code::kStreamStoreBeforeCompute, Code::kStreamMissingBarrier,
    Code::kStreamUnterminatedLayer, Code::kStreamDeadLoad,
    Code::kStreamMalformed,         Code::kStreamTransferOverflow,
    Code::kStreamPlacementFailure,  Code::kStreamFootprintMismatch,
    Code::kStreamScheduleMismatch};

/// The mutated stream must fire `expected` (exactly `hits` times) and no
/// other S-code at all.
void expect_only(const validate::ValidationReport& report, Code expected,
                 std::size_t hits = 1) {
  for (const Code code : kAllStreamCodes) {
    if (code == expected) {
      EXPECT_EQ(report.count(code), hits)
          << validate::code_string(code) << "\n" << report.summary();
    } else {
      EXPECT_EQ(report.count(code), 0u)
          << validate::code_string(code) << "\n" << report.summary();
    }
  }
}

/// Minimal clean stream: three regions, both inputs loaded, one compute,
/// the ofmap drained, a barrier, balanced frees.  32 of `capacity_bytes`
/// elements live at peak (8-bit data, so elements == bytes).
Program base_program(count_t capacity_bytes, bool prefetch) {
  Program program;
  program.model = "fixture";
  program.spec = arch::paper_spec(util::kib(64));
  program.spec.glb_bytes = capacity_bytes;
  LayerProgram layer;
  layer.layer_index = 0;
  layer.layer_name = "l0";
  layer.choice.prefetch = prefetch;
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kAlloc, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kAlloc, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kLoad, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kLoad, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kCompute, .macs = 100},
      {.op = Command::Op::kStore, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
      {.op = Command::Op::kBarrier},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 16},
      {.op = Command::Op::kFree, .region = 1, .kind = DataKind::kFilter,
       .elems = 8},
      {.op = Command::Op::kFree, .region = 2, .kind = DataKind::kOfmap,
       .elems = 8},
  };
  program.layers.push_back(std::move(layer));
  return program;
}

std::vector<Command>& commands(Program& program) {
  return program.layers[0].commands;
}

void erase_at(Program& program, std::size_t index) {
  auto& cmds = commands(program);
  cmds.erase(cmds.begin() + static_cast<std::ptrdiff_t>(index));
}

TEST(StreamMutation, BaseFixtureIsClean) {
  const auto result = analyze_stream(base_program(64, false));
  EXPECT_TRUE(result.clean()) << result.report.summary();
  EXPECT_EQ(result.peak_live_elems, 32u);
  const auto prefetched = analyze_stream(base_program(64, true));
  EXPECT_TRUE(prefetched.clean()) << prefetched.report.summary();
}

TEST(StreamMutation, S001DeadRegionTransfer) {
  auto program = base_program(64, false);
  commands(program)[6].region = 99;  // store drains a region never allocated
  expect_only(analyze_stream(program).report, Code::kStreamDeadRegion);
}

TEST(StreamMutation, S002DoubleAlloc) {
  auto program = base_program(64, false);
  auto& cmds = commands(program);
  cmds.insert(cmds.begin() + 2, cmds[1]);  // re-allocate the filter region
  expect_only(analyze_stream(program).report, Code::kStreamDoubleAlloc);
}

TEST(StreamMutation, S003DoubleFree) {
  auto program = base_program(64, false);
  commands(program).push_back({.op = Command::Op::kFree, .region = 1,
                               .kind = DataKind::kFilter, .elems = 8});
  expect_only(analyze_stream(program).report, Code::kStreamBadFree);
}

TEST(StreamMutation, S004RegionLeak) {
  auto program = base_program(64, false);
  erase_at(program, 10);  // the ofmap is never freed
  // A lone surviving ofmap is a legal hand-off at the layer boundary; the
  // leak is only certain at the end of the program.
  expect_only(analyze_stream(program).report, Code::kStreamRegionLeak);
}

TEST(StreamMutation, S005OverCommit) {
  // Same stream, quarter-size scratchpad: the second and third allocation
  // each push occupancy past capacity.  S013 must stay suppressed — a
  // placement failure is implied by over-commit, not separate news.
  const auto program = base_program(16, false);
  expect_only(analyze_stream(program).report, Code::kStreamOverCommit, 2);
}

TEST(StreamMutation, S006UseBeforeLoad) {
  auto program = base_program(64, false);
  erase_at(program, 4);  // the filter region is never filled
  expect_only(analyze_stream(program).report, Code::kStreamUseBeforeLoad);
}

TEST(StreamMutation, S007StoreBeforeCompute) {
  auto program = base_program(64, false);
  std::swap(commands(program)[5], commands(program)[6]);
  expect_only(analyze_stream(program).report,
              Code::kStreamStoreBeforeCompute);
}

TEST(StreamMutation, S008MissingBarrierUnderPrefetch) {
  auto program = base_program(64, true);
  erase_at(program, 7);  // frees tear down regions with DMA still in flight
  expect_only(analyze_stream(program).report, Code::kStreamMissingBarrier);
}

TEST(StreamMutation, S009UnterminatedSerialLayer) {
  auto program = base_program(64, false);
  erase_at(program, 7);
  const auto result = analyze_stream(program);
  expect_only(result.report, Code::kStreamUnterminatedLayer);
  EXPECT_TRUE(result.ok());  // a warning, not an error
  EXPECT_EQ(result.report.warning_count(), 1u);
}

TEST(StreamMutation, S010DeadLoad) {
  auto program = base_program(64, false);
  erase_at(program, 6);  // drop the store...
  erase_at(program, 5);  // ...and the compute: both loads feed nothing
  expect_only(analyze_stream(program).report, Code::kStreamDeadLoad, 2);
}

TEST(StreamMutation, S011FreeKindMismatch) {
  auto program = base_program(64, false);
  // filter freed as ofmap: not the sanctioned ofmap->ifmap hand-off
  commands(program)[9].kind = DataKind::kOfmap;
  expect_only(analyze_stream(program).report, Code::kStreamMalformed);
}

TEST(StreamMutation, S012TransferOverflow) {
  auto program = base_program(64, false);
  commands(program)[4].elems = 999;  // filter load overflows its region
  expect_only(analyze_stream(program).report,
              Code::kStreamTransferOverflow);
}

TEST(StreamMutation, S013PlacementFailure) {
  // Fits by size (70 of 100 live) but first-fit cannot place: freeing the
  // first region leaves holes of 40 and 40 around the survivor, and the
  // third allocation needs 50 contiguous.
  Program program;
  program.model = "fixture";
  program.spec = arch::paper_spec(util::kib(64));
  program.spec.glb_bytes = 100;
  LayerProgram layer;
  layer.layer_index = 0;
  layer.layer_name = "l0";
  layer.commands = {
      {.op = Command::Op::kAlloc, .region = 0, .kind = DataKind::kIfmap,
       .elems = 40},
      {.op = Command::Op::kAlloc, .region = 1, .kind = DataKind::kOfmap,
       .elems = 20},
      {.op = Command::Op::kFree, .region = 0, .kind = DataKind::kIfmap,
       .elems = 40},
      {.op = Command::Op::kAlloc, .region = 2, .kind = DataKind::kIfmap,
       .elems = 50},
      {.op = Command::Op::kFree, .region = 1, .kind = DataKind::kOfmap,
       .elems = 20},
      {.op = Command::Op::kFree, .region = 2, .kind = DataKind::kIfmap,
       .elems = 50},
  };
  program.layers.push_back(std::move(layer));
  expect_only(analyze_stream(program).report,
              Code::kStreamPlacementFailure);
}

/// Real plan + lowering for the cross-check mutations.
struct Lowered {
  model::Network net = model::zoo::mobilenet();
  core::ExecutionPlan plan;
  Program program;
  Lowered()
      : plan(core::MemoryManager(arch::paper_spec(util::kib(128)))
                 .plan(net, core::Objective::kAccesses)),
        program(codegen::lower(plan, net)) {}
};

TEST(StreamMutation, CrossCheckBaselineIsClean) {
  const Lowered fixture;
  const auto result =
      analyze_lowering(fixture.program, fixture.plan, fixture.net);
  EXPECT_TRUE(result.clean()) << result.report.summary();
}

TEST(StreamMutation, S014ChoiceDisagreesWithPlan) {
  Lowered fixture;
  fixture.program.layers[0].choice.prefetch =
      !fixture.program.layers[0].choice.prefetch;
  const auto result =
      analyze_lowering(fixture.program, fixture.plan, fixture.net);
  // The stream's claimed policy choice no longer matches the plan's; the
  // schedule sums still compare against the *plan's* choice, so S015
  // stays quiet and attributes the fault to the right invariant.
  expect_only(result.report, Code::kStreamFootprintMismatch);
}

TEST(StreamMutation, S015ScheduleSumsDisagreeWithPlan) {
  Lowered fixture;
  auto& cmds = fixture.program.layers[0].commands;
  const auto compute =
      std::find_if(cmds.begin(), cmds.end(), [](const Command& cmd) {
        return cmd.op == Command::Op::kCompute;
      });
  ASSERT_NE(compute, cmds.end());
  compute->macs += 1;
  const auto result =
      analyze_lowering(fixture.program, fixture.plan, fixture.net);
  expect_only(result.report, Code::kStreamScheduleMismatch);
}

}  // namespace
}  // namespace rainbow::analysis
