// Tests for the structured plan report and its JSON serialization.
#include <gtest/gtest.h>

#include "core/manager.hpp"
#include "core/report.hpp"
#include "model/zoo/zoo.hpp"

namespace rainbow::core {
namespace {

arch::AcceleratorSpec spec_kb(count_t kb) { return arch::paper_spec(util::kib(kb)); }

TEST(Report, BuildsOneRowPerLayer) {
  const auto spec = spec_kb(64);
  const MemoryManager manager(spec);
  const auto net = model::zoo::resnet18();
  const auto plan = manager.plan(net, Objective::kAccesses);
  const PlanReport report = build_report(plan, net);
  ASSERT_EQ(report.layers.size(), net.size());
  EXPECT_EQ(report.model, "ResNet18");
  EXPECT_EQ(report.scheme, "Het");
  EXPECT_EQ(report.objective, "accesses");
  EXPECT_EQ(report.glb_bytes, util::kib(64));
  EXPECT_EQ(report.total_accesses, plan.total_accesses());
  count_t accesses = 0;
  for (const auto& row : report.layers) {
    accesses += row.accesses;
    EXPECT_EQ(row.memory_elems,
              row.ifmap_elems + row.filter_elems + row.ofmap_elems);
    EXPECT_FALSE(row.policy.empty());
  }
  EXPECT_EQ(accesses, report.total_accesses);
}

TEST(Report, MismatchThrows) {
  const auto spec = spec_kb(64);
  const ExecutionPlan empty("x", "y", spec, Objective::kAccesses);
  EXPECT_THROW((void)build_report(empty, model::zoo::mobilenet()),
               std::invalid_argument);
}

TEST(Report, JsonContainsEveryLayerAndBalances) {
  const auto spec = spec_kb(64);
  const MemoryManager manager(spec);
  const auto net = model::zoo::mobilenet();
  const auto plan = manager.plan(net, Objective::kLatency);
  const std::string json = to_json(build_report(plan, net));
  for (const auto& layer : net.layers()) {
    EXPECT_NE(json.find("\"" + layer.name() + "\""), std::string::npos)
        << layer.name();
  }
  EXPECT_NE(json.find("\"objective\": \"latency\""), std::string::npos);
  // Balanced braces/brackets — a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Report, JsonEscapesSpecialCharacters) {
  model::Network net("quote\"and\\slash");
  net.add(model::make_conv("layer\"1", 8, 8, 3, 3, 3, 4, 1, 1));
  const MemoryManager manager(spec_kb(64));
  const auto plan = manager.plan(net, Objective::kAccesses);
  const std::string json = to_json(build_report(plan, net));
  EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("layer\\\"1"), std::string::npos);
}

TEST(Report, InterlayerFlagsSurvive) {
  ManagerOptions options;
  options.interlayer_reuse = true;
  const MemoryManager manager(spec_kb(1024), options);
  const auto net = model::zoo::mnasnet();
  const auto plan = manager.plan(net, Objective::kAccesses);
  ASSERT_GT(plan.interlayer_links(), 0u);
  const PlanReport report = build_report(plan, net);
  std::size_t links = 0;
  for (const auto& row : report.layers) {
    links += row.ofmap_stays_in_glb ? 1 : 0;
  }
  EXPECT_EQ(links, plan.interlayer_links());
  EXPECT_NE(to_json(report).find("\"ofmap_stays_in_glb\": true"),
            std::string::npos);
}

}  // namespace
}  // namespace rainbow::core
