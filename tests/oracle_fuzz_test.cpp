// Differential fuzz: oracle vs Algorithm 1 on hundreds of seeded random
// networks.  For every seed the branch-and-bound planner and the greedy
// heuristic plan the same network on the same machine; the oracle must
// never lose (its search space contains the heuristic's plan by
// construction), both plans must pass the PlanValidator, and both
// lowerings must pass the static stream analyzer with zero error
// diagnostics.  Seeds fan across a thread pool — labels stress;concurrency
// put this binary under both the ASan/UBSan full run and the TSan
// `ctest -L concurrency` job.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <cstdint>
#include <numeric>
#include <vector>

#include "analysis/stream_analyzer.hpp"
#include "codegen/lower.hpp"
#include "core/manager.hpp"
#include "model/random.hpp"
#include "model/zoo/zoo.hpp"
#include "oracle/oracle.hpp"
#include "util/thread_pool.hpp"
#include "validate/plan_validator.hpp"

namespace rainbow::oracle {
namespace {

using core::Objective;
using model::Network;

constexpr std::size_t kSeeds = 512;

arch::AcceleratorSpec spec_for_seed(std::uint64_t seed) {
  constexpr count_t kSizesKb[] = {32, 64, 128, 256};
  return arch::paper_spec(util::kib(kSizesKb[seed % 4]));
}

Network network_for_seed(std::uint64_t seed) {
  model::RandomNetworkOptions options;
  options.min_layers = 3;
  options.max_layers = 10;
  options.input_size = 16 + static_cast<int>(seed % 17);  // 16..32
  options.max_channels = 64;
  return model::random_network(seed, options);
}

/// Zero *error* diagnostics from both the plan validator and the static
/// stream analyzer; returns the first message otherwise so the failing
/// seed is diagnosable from the ctest log.
testing::AssertionResult plan_is_clean(const core::ExecutionPlan& plan,
                                       const Network& net) {
  if (!plan.feasible()) {
    return testing::AssertionFailure() << "plan infeasible";
  }
  const validate::PlanValidator validator;
  const validate::ValidationReport vreport = validator.validate(plan, net);
  if (vreport.error_count() != 0) {
    return testing::AssertionFailure()
           << "validator: " << vreport.diagnostics().front().message();
  }
  const auto program = codegen::lower(plan, net);
  const auto analysis = analysis::analyze_lowering(program, plan, net);
  if (analysis.report.error_count() != 0) {
    return testing::AssertionFailure()
           << "analyzer: " << analysis.report.diagnostics().front().message();
  }
  return testing::AssertionSuccess();
}

TEST(OracleFuzz, NeverLosesToAlgorithmOneOnRandomNetworks) {
  std::vector<std::uint64_t> seeds(kSeeds);
  std::iota(seeds.begin(), seeds.end(), std::uint64_t{1});
  std::atomic<std::size_t> planned{0};
  std::atomic<std::size_t> improved{0};

  util::parallel_for_each(seeds, [&](std::uint64_t seed) {
    const Network net = network_for_seed(seed);
    const arch::AcceleratorSpec spec = spec_for_seed(seed);
    const Objective objective =
        (seed / 4) % 2 == 0 ? Objective::kAccesses : Objective::kLatency;

    core::ManagerOptions moptions;
    moptions.interlayer_reuse = true;
    const core::MemoryManager manager(spec, moptions);

    OracleOptions ooptions;
    ooptions.node_budget = 100'000;  // random nets close way below this
    const OraclePlanner planner(spec, ooptions);

    std::optional<core::ExecutionPlan> heuristic;
    std::optional<OracleResult> oracle;
    try {
      heuristic.emplace(manager.plan(net, objective));
      oracle.emplace(planner.plan(net, objective));
    } catch (const std::runtime_error&) {
      // A layer that cannot execute on this GLB at all: both sides agree
      // by throwing; the seed exercises nothing further.
      return;
    }

    const double heuristic_cost = plan_cost(*heuristic).primary;
    EXPECT_LE(oracle->best_cost.primary, heuristic_cost)
        << "seed " << seed << " (" << net.name() << ", "
        << spec.glb_bytes / 1024 << " kB, " << core::to_string(objective)
        << "): the heuristic beat the oracle — its plan left the search "
           "space";
    EXPECT_LE(oracle->lower_bound,
              oracle->best_cost.primary + 1e-9 * oracle->best_cost.primary)
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(plan_cost(oracle->plan).primary,
                     oracle->best_cost.primary)
        << "seed " << seed;

    EXPECT_TRUE(plan_is_clean(*heuristic, net)) << "seed " << seed;
    EXPECT_TRUE(plan_is_clean(oracle->plan, net)) << "seed " << seed;

    ++planned;
    if (oracle->best_cost.primary < heuristic_cost) {
      ++improved;
    }
  });

  // The harness must actually exercise the differential pair, and the
  // generator must produce some networks where the greedy link pass is
  // beatable (otherwise the fuzz is vacuous).
  EXPECT_GE(planned.load(), kSeeds * 9 / 10);
  RecordProperty("planned", static_cast<int>(planned.load()));
  RecordProperty("oracle_improved", static_cast<int>(improved.load()));
}

// Full-size zoo members under a node budget: searches that do not close in
// test time must still return bounded-suboptimal answers with the same
// validity guarantees as exact ones.
TEST(OracleFuzz, FullZooBoundedSearchesStayValid) {
  struct Case {
    std::string name;
    count_t kb;
  };
  std::vector<Case> cases;
  for (const std::string& name : model::zoo::model_names()) {
    for (count_t kb : {64u, 256u, 1024u}) {
      cases.push_back({name, kb});
    }
  }
  util::parallel_for_each(cases, [&](const Case& c) {
    const Network net = model::zoo::by_name(c.name);
    const arch::AcceleratorSpec spec = arch::paper_spec(util::kib(c.kb));
    OracleOptions options;
    options.node_budget = 50'000;
    const OraclePlanner planner(spec, options);
    const OracleResult result = planner.plan(net, Objective::kAccesses);

    core::ManagerOptions moptions;
    moptions.interlayer_reuse = true;
    const core::MemoryManager manager(spec, moptions);
    const core::ExecutionPlan heuristic =
        manager.plan(net, Objective::kAccesses);

    EXPECT_LE(result.best_cost.primary, plan_cost(heuristic).primary)
        << c.name << " @ " << c.kb << " kB";
    EXPECT_LE(result.lower_bound, result.best_cost.primary);
    EXPECT_DOUBLE_EQ(plan_cost(result.plan).primary, result.best_cost.primary);
    EXPECT_TRUE(plan_is_clean(result.plan, net)) << c.name << " @ " << c.kb;
    EXPECT_TRUE(plan_is_clean(heuristic, net)) << c.name << " @ " << c.kb;
  });
}

}  // namespace
}  // namespace rainbow::oracle
